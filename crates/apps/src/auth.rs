//! Authentication of outsourced skyline queries — the paper's second
//! application, mirroring how Voronoi diagrams authenticate outsourced kNN.
//!
//! The data owner builds the skyline diagram, hashes every cell's
//! `(cell index, result ids, result coordinates)` into a Merkle tree, and
//! publishes the 32-byte root. An untrusted server answers queries with the
//! cell's result plus a Merkle path; the client recomputes the leaf hash
//! and folds the path to the root. A server cannot forge, truncate, or
//! substitute a result without breaking SHA-256.
//!
//! SHA-256 is implemented here from the FIPS 180-4 specification (no
//! external dependency is in the approved set); it is validated against the
//! standard test vectors below.

use skyline_core::diagram::CellDiagram;
use skyline_core::geometry::{Dataset, Point, PointId};

/// A 32-byte digest.
pub type Digest = [u8; 32];

// --- SHA-256 (FIPS 180-4) ---------------------------------------------------

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Computes SHA-256 of a byte string.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];

    // Padding: 0x80, zeros, 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (hi, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *hi = hi.wrapping_add(v);
        }
    }

    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(h) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

// --- Merkle tree over diagram cells -----------------------------------------

/// Authenticated wrapper around a cell diagram, held by the (untrusted)
/// server. The client needs only [`AuthenticatedDiagram::root`] and the
/// diagram's grid lines (public metadata).
#[derive(Clone, Debug)]
pub struct AuthenticatedDiagram {
    diagram: CellDiagram,
    /// `levels[0]` = leaf hashes (padded to a power of two); `levels.last()`
    /// = `[root]`.
    levels: Vec<Vec<Digest>>,
    /// Serialized leaf payloads, regenerated lazily would cost; kept simple.
    n_leaves: usize,
}

/// A query answer with its Merkle authentication path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuthenticatedAnswer {
    /// Linear cell index the query resolved to.
    pub cell: usize,
    /// The skyline result ids.
    pub result: Vec<PointId>,
    /// The result points' coordinates (the client typically wants them).
    pub coordinates: Vec<Point>,
    /// Sibling hashes from leaf to root.
    pub path: Vec<Digest>,
}

fn leaf_payload(cell: usize, result: &[PointId], coords: &[Point]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + result.len() * 20);
    payload.extend_from_slice(&(cell as u64).to_le_bytes());
    for (id, p) in result.iter().zip(coords) {
        payload.extend_from_slice(&id.0.to_le_bytes());
        payload.extend_from_slice(&p.x.to_le_bytes());
        payload.extend_from_slice(&p.y.to_le_bytes());
    }
    payload
}

fn node_hash(left: &Digest, right: &Digest) -> Digest {
    let mut buf = [0u8; 65];
    buf[0] = 0x01; // domain separation from leaves
    buf[1..33].copy_from_slice(left);
    buf[33..].copy_from_slice(right);
    sha256(&buf)
}

fn leaf_hash(payload: &[u8]) -> Digest {
    let mut buf = Vec::with_capacity(payload.len() + 1);
    buf.push(0x00);
    buf.extend_from_slice(payload);
    sha256(&buf)
}

impl AuthenticatedDiagram {
    /// Builds the Merkle tree over every cell of the diagram.
    pub fn new(dataset: &Dataset, diagram: CellDiagram) -> Self {
        let n_leaves = diagram.grid().cell_count();
        let mut leaves: Vec<Digest> = (0..n_leaves)
            .map(|idx| {
                let cell = diagram.grid().cell_from_linear(idx);
                let result = diagram.result(cell);
                let coords: Vec<Point> = result.iter().map(|&id| dataset.point(id)).collect();
                leaf_hash(&leaf_payload(idx, result, &coords))
            })
            .collect();
        // Pad to a power of two with a fixed filler.
        let filler = leaf_hash(b"skyline-diagram-merkle-filler");
        let width = n_leaves.next_power_of_two();
        leaves.resize(width, filler);

        let mut levels = vec![leaves];
        while levels
            .last()
            .expect("levels starts with the leaf level")
            .len()
            > 1
        {
            let prev = levels.last().expect("levels starts with the leaf level");
            let next: Vec<Digest> = prev
                .chunks_exact(2)
                .map(|pair| node_hash(&pair[0], &pair[1]))
                .collect();
            levels.push(next);
        }
        AuthenticatedDiagram {
            diagram,
            levels,
            n_leaves,
        }
    }

    /// The published Merkle root.
    pub fn root(&self) -> Digest {
        self.levels
            .last()
            .expect("the constructor always pushes the leaf level")[0]
    }

    /// The wrapped diagram (server side).
    pub fn diagram(&self) -> &CellDiagram {
        &self.diagram
    }

    /// Answers a query with an authentication path.
    pub fn query(&self, dataset: &Dataset, q: Point) -> AuthenticatedAnswer {
        let cell = self.diagram.grid().cell_of(q);
        let idx = self.diagram.grid().linear_index(cell);
        let result = self.diagram.result(cell).to_vec();
        let coordinates: Vec<Point> = result.iter().map(|&id| dataset.point(id)).collect();

        let mut path = Vec::with_capacity(self.levels.len() - 1);
        let mut pos = idx;
        for level in &self.levels[..self.levels.len() - 1] {
            path.push(level[pos ^ 1]);
            pos >>= 1;
        }
        AuthenticatedAnswer {
            cell: idx,
            result,
            coordinates,
            path,
        }
    }

    /// Number of real (unpadded) leaves.
    pub fn leaf_count(&self) -> usize {
        self.n_leaves
    }
}

/// Client-side verification: recomputes the leaf hash from the claimed
/// answer and folds the path up to the published root.
pub fn verify(answer: &AuthenticatedAnswer, root: &Digest) -> bool {
    if answer.result.len() != answer.coordinates.len() {
        return false;
    }
    let mut hash = leaf_hash(&leaf_payload(
        answer.cell,
        &answer.result,
        &answer.coordinates,
    ));
    let mut pos = answer.cell;
    for sibling in &answer.path {
        hash = if pos & 1 == 0 {
            node_hash(&hash, sibling)
        } else {
            node_hash(sibling, &hash)
        };
        pos >>= 1;
    }
    hash == *root
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::quadrant::QuadrantEngine;

    fn hex(d: &Digest) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_test_vectors() {
        // FIPS / de-facto standard vectors.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Exercise multi-block padding boundaries (55, 56, 64 bytes).
        assert_eq!(
            hex(&sha256(&[0x61u8; 56])),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"
        );
    }

    fn build() -> (Dataset, AuthenticatedDiagram) {
        let ds = skyline_core::geometry::Dataset::from_coords([
            (1, 92),
            (3, 96),
            (12, 86),
            (5, 94),
            (15, 85),
            (8, 78),
            (16, 83),
            (13, 83),
            (6, 93),
            (21, 82),
            (11, 9),
        ])
        .unwrap();
        let d = QuadrantEngine::Sweeping.build(&ds);
        let auth = AuthenticatedDiagram::new(&ds, d);
        (ds, auth)
    }

    #[test]
    fn honest_answers_verify() {
        let (ds, auth) = build();
        let root = auth.root();
        for qx in (0..25).step_by(4) {
            for qy in (0..100).step_by(11) {
                let answer = auth.query(&ds, Point::new(qx, qy));
                assert!(verify(&answer, &root), "({qx}, {qy})");
                assert_eq!(
                    answer.result.as_slice(),
                    auth.diagram().query(Point::new(qx, qy))
                );
            }
        }
    }

    #[test]
    fn tampered_result_fails() {
        let (ds, auth) = build();
        let root = auth.root();
        let mut answer = auth.query(&ds, Point::new(14, 81));
        assert!(verify(&answer, &root));
        // Drop one skyline point — the classic outsourcing attack.
        answer.result.pop();
        answer.coordinates.pop();
        assert!(!verify(&answer, &root));
    }

    #[test]
    fn substituted_coordinates_fail() {
        let (ds, auth) = build();
        let root = auth.root();
        let mut answer = auth.query(&ds, Point::new(14, 81));
        answer.coordinates[0] = Point::new(0, 0);
        assert!(!verify(&answer, &root));
    }

    #[test]
    fn wrong_cell_fails() {
        let (ds, auth) = build();
        let root = auth.root();
        let mut answer = auth.query(&ds, Point::new(14, 81));
        answer.cell += 1;
        assert!(!verify(&answer, &root));
    }

    #[test]
    fn mismatched_lengths_fail() {
        let (ds, auth) = build();
        let root = auth.root();
        let mut answer = auth.query(&ds, Point::new(14, 81));
        answer.coordinates.push(Point::new(1, 1));
        assert!(!verify(&answer, &root));
    }

    #[test]
    fn roots_commit_to_content() {
        let (ds, auth) = build();
        // A diagram over slightly different data must yield another root.
        let ds2 = skyline_core::geometry::Dataset::from_coords(
            ds.points().iter().map(|p| (p.x, p.y + 1)),
        )
        .unwrap();
        let auth2 = AuthenticatedDiagram::new(&ds2, QuadrantEngine::Sweeping.build(&ds2));
        assert_ne!(auth.root(), auth2.root());
        assert_eq!(auth.leaf_count(), auth2.leaf_count());
    }
}
