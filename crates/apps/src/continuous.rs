//! Continuous skyline queries for moving query points, and safe zones —
//! the paper's generalization of the location-based "safe zone" literature
//! (\[7\], \[10\], \[13\], \[24\]) from one dynamic attribute to all-dynamic
//! attributes.
//!
//! A **safe zone** is the region in which a query can move without its
//! result changing: exactly the skyline polyomino containing it. A client
//! moving along a segment therefore only needs a result update when the
//! segment crosses a grid (or bisector) line; [`trace_segment`] and
//! [`trace_segment_dynamic`] compute the full itinerary of
//! `(parameter interval, result)` steps with exact rational arithmetic — no
//! epsilon sampling, no floating-point point location.

use skyline_core::diagram::{CellDiagram, MergedDiagram, PolyominoRef};
use skyline_core::dynamic::SubcellDiagram;
use skyline_core::geometry::{Coord, Point, PointId};
use skyline_core::parallel::{self, ParallelConfig};

/// One step of a moving query's itinerary: for parameters in
/// `[t_start, t_end]` of the segment `a → b`, the skyline result is `result`.
#[derive(Clone, Debug, PartialEq)]
pub struct TraversalStep {
    /// Interval start (0 = segment start), exact value rounded for display.
    pub t_start: f64,
    /// Interval end (1 = segment end).
    pub t_end: f64,
    /// The skyline result holding throughout the interval.
    pub result: Vec<PointId>,
}

/// Exact rational `num / den` with `den > 0`, compared via `i128` cross
/// multiplication so `1/2 == 2/4` (equality must agree with the ordering,
/// or `dedup` after sorting would miss equal crossing parameters).
#[derive(Clone, Copy, Debug)]
struct Frac {
    num: i128,
    den: i128,
}

impl PartialEq for Frac {
    fn eq(&self, other: &Self) -> bool {
        self.num * other.den == other.num * self.den
    }
}

impl Eq for Frac {}

impl Frac {
    fn new(num: i128, den: i128) -> Self {
        debug_assert!(den != 0);
        if den < 0 {
            Frac {
                num: -num,
                den: -den,
            }
        } else {
            Frac { num, den }
        }
    }

    fn midpoint(self, other: Frac) -> Frac {
        // (a/b + c/d) / 2 = (ad + cb) / 2bd
        Frac::new(
            self.num * other.den + other.num * self.den,
            2 * self.den * other.den,
        )
    }

    fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl PartialOrd for Frac {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Frac {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

/// Crossing parameters of the segment `a → b` with a family of axis lines,
/// restricted to the open interval `(0, 1)`.
fn crossings(a: Coord, b: Coord, lines: &[Coord], scale: i128, out: &mut Vec<Frac>) {
    let d = b - a;
    if d == 0 {
        return;
    }
    // Line positions are compared in `scale`-multiplied space (subcell
    // grids store doubled coordinates): q(t)·scale = line ⟺
    // t = (line - a·scale) / (d·scale).
    for &line in lines {
        let t = Frac::new(line as i128 - a as i128 * scale, d as i128 * scale);
        if t > Frac::new(0, 1) && t < Frac::new(1, 1) {
            out.push(t);
        }
    }
}

/// Point location at the exact rational segment parameter: slab index of
/// `(a + t·(b-a))·scale` among `lines`, with the greater-side convention.
fn slab_at(a: Coord, b: Coord, t: Frac, lines: &[Coord], scale: i128) -> u32 {
    // position·den = (a + t·(b-a))·scale·den = (a·den + num·(b-a))·scale
    let num = a as i128 * t.den + t.num * (b - a) as i128;
    let scaled = num * scale;
    lines.partition_point(|&l| l as i128 * t.den <= scaled) as u32
}

/// Shared line structure the itinerary walks over.
struct LineFamily<'a> {
    x_lines: &'a [Coord],
    y_lines: &'a [Coord],
    /// 1 for cell diagrams (raw coordinates), 2 for subcell diagrams
    /// (doubled coordinates).
    scale: i128,
}

fn itinerary<R>(
    a: Point,
    b: Point,
    lines: LineFamily<'_>,
    mut result_at: impl FnMut(u32, u32) -> R,
    mut equal: impl FnMut(&R, &R) -> bool,
    mut to_ids: impl FnMut(&R) -> Vec<PointId>,
) -> Vec<TraversalStep> {
    let LineFamily {
        x_lines,
        y_lines,
        scale,
    } = lines;
    // Cross-multiplied rational comparisons stay within i128 for segment
    // endpoints up to 2^28 in magnitude — far beyond any diagram domain.
    for c in [a.x, a.y, b.x, b.y] {
        assert!(
            c.abs() <= 1 << 28,
            "segment endpoints must be within ±2^28 for exact traversal"
        );
    }
    let mut ts: Vec<Frac> = vec![Frac::new(0, 1), Frac::new(1, 1)];
    crossings(a.x, b.x, x_lines, scale, &mut ts);
    crossings(a.y, b.y, y_lines, scale, &mut ts);
    ts.sort_unstable();
    ts.dedup();

    let mut steps: Vec<(Frac, Frac, R)> = Vec::new();
    for w in ts.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        let mid = t0.midpoint(t1);
        let i = slab_at(a.x, b.x, mid, x_lines, scale);
        let j = slab_at(a.y, b.y, mid, y_lines, scale);
        let r = result_at(i, j);
        match steps.last_mut() {
            Some((_, end, prev)) if equal(prev, &r) => *end = t1,
            _ => steps.push((t0, t1, r)),
        }
    }
    steps
        .into_iter()
        .map(|(t0, t1, r)| TraversalStep {
            t_start: t0.to_f64(),
            t_end: t1.to_f64(),
            result: to_ids(&r),
        })
        .collect()
}

/// Itinerary of a query moving from `a` to `b` over a quadrant/global cell
/// diagram. Steps with equal results are coalesced; the union of intervals
/// is exactly `[0, 1]`.
pub fn trace_segment(diagram: &CellDiagram, a: Point, b: Point) -> Vec<TraversalStep> {
    let grid = diagram.grid();
    itinerary(
        a,
        b,
        LineFamily {
            x_lines: grid.x_lines(),
            y_lines: grid.y_lines(),
            scale: 1,
        },
        |i, j| diagram.result_id((i, j)),
        |x, y| x == y,
        |rid| diagram.results().get(*rid).to_vec(),
    )
}

/// Itinerary of a query moving from `a` to `b` over a dynamic subcell
/// diagram (lines live in doubled coordinates, handled internally).
pub fn trace_segment_dynamic(diagram: &SubcellDiagram, a: Point, b: Point) -> Vec<TraversalStep> {
    let grid = diagram.grid();
    itinerary(
        a,
        b,
        LineFamily {
            x_lines: grid.x_lines(),
            y_lines: grid.y_lines(),
            scale: 2,
        },
        |i, j| diagram.result_id((i, j)),
        |x, y| x == y,
        |rid| diagram.results().get(*rid).to_vec(),
    )
}

/// Itineraries for a batch of independent segments over a cell diagram,
/// evaluated with the given parallel configuration. Entry `k` is exactly
/// `trace_segment(diagram, segments[k].0, segments[k].1)` — order and
/// content are identical at every thread count.
pub fn trace_segments(
    diagram: &CellDiagram,
    segments: &[(Point, Point)],
    cfg: &ParallelConfig,
) -> Vec<Vec<TraversalStep>> {
    parallel::map(cfg, segments, |&(a, b)| trace_segment(diagram, a, b))
}

/// Batched variant of [`trace_segment_dynamic`], with the same ordering
/// guarantee as [`trace_segments`].
pub fn trace_segments_dynamic(
    diagram: &SubcellDiagram,
    segments: &[(Point, Point)],
    cfg: &ParallelConfig,
) -> Vec<Vec<TraversalStep>> {
    parallel::map(cfg, segments, |&(a, b)| {
        trace_segment_dynamic(diagram, a, b)
    })
}

/// Itinerary along a polyline (a route with waypoints): per-leg itineraries
/// concatenated, with the leg index attached and equal-result steps merged
/// across leg boundaries. Parameters are per-leg (`t ∈ [0, 1]` within each
/// leg).
pub fn trace_route(diagram: &CellDiagram, waypoints: &[Point]) -> Vec<(usize, TraversalStep)> {
    assert!(waypoints.len() >= 2, "a route needs at least two waypoints");
    let mut out: Vec<(usize, TraversalStep)> = Vec::new();
    for (leg, pair) in waypoints.windows(2).enumerate() {
        for step in trace_segment(diagram, pair[0], pair[1]) {
            match out.last_mut() {
                // Merge a leg-initial step into the previous leg's final
                // step when the result carries over the waypoint.
                Some((_, prev)) if prev.result == step.result && step.t_start == 0.0 => {
                    prev.t_end = leg as f64 + step.t_end;
                }
                _ => out.push((
                    leg,
                    TraversalStep {
                        t_start: leg as f64 + step.t_start,
                        t_end: leg as f64 + step.t_end,
                        result: step.result,
                    },
                )),
            }
        }
    }
    out
}

/// The safe zone of a query: the polyomino within which its quadrant/global
/// result cannot change.
pub fn safe_zone<'d>(
    diagram: &CellDiagram,
    merged: &'d MergedDiagram,
    q: Point,
) -> PolyominoRef<'d> {
    let cell = diagram.grid().cell_of(q);
    let linear = diagram.grid().linear_index(cell);
    merged.polyomino_of_cell(linear)
}

/// The dynamic safe zone: the subcell polyomino within which a query's
/// *dynamic* skyline cannot change. Pair with
/// [`merge_subcells`](skyline_core::diagram::merge::merge_subcells); the
/// returned polyomino's cells are subcell indices of `diagram.grid()`.
pub fn dynamic_safe_zone<'d>(
    diagram: &SubcellDiagram,
    merged: &'d MergedDiagram,
    q: Point,
) -> PolyominoRef<'d> {
    let sc = diagram.grid().subcell_of(q);
    let linear = diagram.grid().linear_index(sc);
    merged.polyomino_of_cell(linear)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::diagram::merge::merge;
    use skyline_core::dynamic::DynamicEngine;
    use skyline_core::geometry::Dataset;
    use skyline_core::quadrant::QuadrantEngine;

    fn hotel() -> Dataset {
        Dataset::from_coords([
            (1, 92),
            (3, 96),
            (12, 86),
            (5, 94),
            (15, 85),
            (8, 78),
            (16, 83),
            (13, 83),
            (6, 93),
            (21, 82),
            (11, 9),
        ])
        .unwrap()
    }

    #[test]
    fn intervals_tile_the_segment() {
        let ds = hotel();
        let d = QuadrantEngine::Sweeping.build(&ds);
        let steps = trace_segment(&d, Point::new(0, 0), Point::new(25, 100));
        assert!((steps[0].t_start - 0.0).abs() < 1e-12);
        assert!((steps.last().unwrap().t_end - 1.0).abs() < 1e-12);
        for w in steps.windows(2) {
            assert!((w[0].t_end - w[1].t_start).abs() < 1e-12);
            assert_ne!(w[0].result, w[1].result, "consecutive steps must differ");
        }
    }

    #[test]
    fn steps_match_pointwise_queries() {
        let ds = hotel();
        let d = QuadrantEngine::Scanning.build(&ds);
        // Horizontal path at integer y: every integer x strictly inside a
        // step interval must agree with a direct diagram query.
        let (a, b) = (Point::new(0, 50), Point::new(25, 50));
        let steps = trace_segment(&d, a, b);
        for x in 0..=25 {
            let t = x as f64 / 25.0;
            let q = Point::new(x, 50);
            let step = steps
                .iter()
                .find(|s| s.t_start <= t && t <= s.t_end)
                .expect("segment covered");
            // On-boundary integer parameters may fall on a crossing; accept
            // either adjacent step there by re-checking with the diagram.
            if (t - step.t_start).abs() > 1e-9 && (t - step.t_end).abs() > 1e-9 {
                assert_eq!(step.result.as_slice(), d.query(q), "x = {x}");
            }
        }
    }

    #[test]
    fn stationary_segment_yields_single_step() {
        let ds = hotel();
        let d = QuadrantEngine::Sweeping.build(&ds);
        let q = Point::new(7, 40);
        let steps = trace_segment(&d, q, q);
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].result.as_slice(), d.query(q));
    }

    #[test]
    fn dynamic_trace_matches_pointwise() {
        let ds = Dataset::from_coords([(0, 0), (6, 10), (12, 4)]).unwrap();
        let d = DynamicEngine::Scanning.build(&ds);
        let (a, b) = (Point::new(-2, 5), Point::new(14, 5));
        let steps = trace_segment_dynamic(&d, a, b);
        assert!(
            steps.len() > 1,
            "dynamic diagram should change along the path"
        );
        for s in &steps {
            let mid_t = (s.t_start + s.t_end) / 2.0;
            let qx = a.x as f64 + mid_t * (b.x - a.x) as f64;
            let q = Point::new(qx.round() as i64, 5);
            // Only check when the rounded midpoint stays inside the step.
            let t_of_q = (q.x - a.x) as f64 / (b.x - a.x) as f64;
            if t_of_q > s.t_start + 1e-9 && t_of_q < s.t_end - 1e-9 {
                assert_eq!(s.result.as_slice(), d.query(q));
            }
        }
    }

    #[test]
    fn batched_traces_match_per_segment_calls() {
        let ds = hotel();
        let d = QuadrantEngine::Sweeping.build(&ds);
        let segments: Vec<(Point, Point)> = (0..12)
            .map(|k| (Point::new(k, 0), Point::new(25 - k, 100)))
            .collect();
        let expected: Vec<Vec<TraversalStep>> = segments
            .iter()
            .map(|&(a, b)| trace_segment(&d, a, b))
            .collect();
        for threads in [0, 1, 3] {
            let cfg = ParallelConfig::with_threads(threads);
            assert_eq!(
                trace_segments(&d, &segments, &cfg),
                expected,
                "threads = {threads}"
            );
        }

        let dd = DynamicEngine::Scanning.build(&ds);
        let expected_dyn: Vec<Vec<TraversalStep>> = segments
            .iter()
            .map(|&(a, b)| trace_segment_dynamic(&dd, a, b))
            .collect();
        assert_eq!(
            trace_segments_dynamic(&dd, &segments, &ParallelConfig::with_threads(3)),
            expected_dyn
        );
    }

    #[test]
    fn route_concatenates_and_merges_legs() {
        let ds = hotel();
        let d = QuadrantEngine::Sweeping.build(&ds);
        let waypoints = [
            Point::new(0, 0),
            Point::new(25, 0),
            Point::new(25, 100),
            Point::new(0, 100),
        ];
        let route = trace_route(&d, &waypoints);
        // Coverage: starts at 0, ends at #legs, contiguous.
        assert!((route[0].1.t_start - 0.0).abs() < 1e-12);
        assert!((route.last().unwrap().1.t_end - 3.0).abs() < 1e-12);
        for w in route.windows(2) {
            assert!((w[0].1.t_end - w[1].1.t_start).abs() < 1e-12);
            assert_ne!(w[0].1.result, w[1].1.result, "merged steps must differ");
        }
        // Each step matches a pointwise query at its own midpoint when that
        // midpoint is interior and integral.
        for (leg, step) in &route {
            let local_mid = (step.t_start + step.t_end) / 2.0 - *leg as f64;
            if !(0.0..=1.0).contains(&local_mid) {
                continue; // merged step spanning legs; skip the spot check
            }
            let (a, b) = (waypoints[*leg], waypoints[leg + 1]);
            let q = Point::new(
                (a.x as f64 + local_mid * (b.x - a.x) as f64).round() as i64,
                (a.y as f64 + local_mid * (b.y - a.y) as f64).round() as i64,
            );
            // Only exact when the rounded point stays inside the step.
            let t_q = if b.x != a.x {
                (q.x - a.x) as f64 / (b.x - a.x) as f64
            } else if b.y != a.y {
                (q.y - a.y) as f64 / (b.y - a.y) as f64
            } else {
                local_mid
            } + *leg as f64;
            if t_q > step.t_start + 1e-9 && t_q < step.t_end - 1e-9 {
                assert_eq!(step.result.as_slice(), d.query(q));
            }
        }
    }

    #[test]
    #[should_panic(expected = "two waypoints")]
    fn route_requires_two_waypoints() {
        let ds = hotel();
        let d = QuadrantEngine::Sweeping.build(&ds);
        let _ = trace_route(&d, &[Point::new(0, 0)]);
    }

    #[test]
    fn safe_zone_contains_the_query_cell() {
        let ds = hotel();
        let d = QuadrantEngine::Sweeping.build(&ds);
        let merged = merge(&d);
        let q = Point::new(14, 81);
        let zone = safe_zone(&d, &merged, q);
        assert!(zone.cells.contains(&d.grid().cell_of(q)));
        // Every cell of the zone shares the query's result.
        for &cell in zone.cells {
            assert_eq!(d.result(cell), d.query(q));
        }
    }

    #[test]
    fn dynamic_safe_zone_is_sound() {
        use skyline_core::diagram::merge::merge_subcells;
        let ds = Dataset::from_coords([(0, 0), (6, 10), (12, 4)]).unwrap();
        let d = DynamicEngine::Scanning.build(&ds);
        let merged = merge_subcells(&d);
        for q in [Point::new(3, 3), Point::new(-2, 8), Point::new(9, 1)] {
            let zone = dynamic_safe_zone(&d, &merged, q);
            assert!(zone.is_connected());
            for &sc in zone.cells {
                assert_eq!(d.result(sc), d.query(q), "subcell {sc:?} of zone at {q}");
            }
        }
    }

    #[test]
    fn vertical_segment_with_endpoint_on_grid_line() {
        let ds = hotel();
        let d = QuadrantEngine::Baseline.build(&ds);
        // x = 13 is p8's grid line: the greater-side convention must apply
        // uniformly along the whole path.
        let steps = trace_segment(&d, Point::new(13, 0), Point::new(13, 100));
        for s in &steps {
            let y = ((s.t_start + s.t_end) / 2.0 * 100.0).round() as i64;
            let t = y as f64 / 100.0;
            if t > s.t_start + 1e-9 && t < s.t_end - 1e-9 {
                assert_eq!(s.result.as_slice(), d.query(Point::new(13, y)));
            }
        }
    }
}
