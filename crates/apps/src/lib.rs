//! # skyline-apps
//!
//! The four applications the ICDE'18 paper motivates for skyline diagrams,
//! each mirroring a classic use of Voronoi diagrams:
//!
//! | Module | Application | Voronoi analogue |
//! |---|---|---|
//! | [`reverse`] | reverse skyline queries | reverse kNN |
//! | [`continuous`] | safe zones & moving-query itineraries | safe regions for moving kNN |
//! | [`auth`] | Merkle authentication of outsourced results | authenticated kNN |
//! | [`pir`] | two-server XOR-PIR private queries | PIR-based kNN |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod continuous;
pub mod pir;
pub mod reverse;
pub mod reverse_diagram;
