//! Private Information Retrieval (PIR) based skyline queries — the paper's
//! third application: because the skyline diagram makes every query a *cell
//! lookup by index*, any index-addressable PIR protocol turns skyline
//! queries private, exactly as Voronoi diagrams enable PIR-based kNN.
//!
//! This module implements the classic information-theoretic **two-server
//! XOR PIR** (Chor–Goldreich–Kushilevitz–Sudan): the database is the
//! diagram's per-cell results serialized into equal-length records; the
//! client sends each non-colluding server a random-looking subset of
//! indices; each server XOR-folds the selected records; the XOR of the two
//! replies is the requested record. Each individual query vector is a
//! uniformly random subset, so a single server learns *nothing* about which
//! cell — hence which query location — the client is interested in.

use rand::rngs::StdRng;
use rand::Rng;
use skyline_core::diagram::CellDiagram;
use skyline_core::geometry::{Point, PointId};

/// Server-side database: fixed-size records, one per diagram cell.
#[derive(Clone, Debug)]
pub struct PirServer {
    records: Vec<Vec<u8>>,
    record_len: usize,
}

/// The public parameters a client needs: grid lines for local point
/// location (these reveal nothing about any individual query) and the
/// record geometry.
#[derive(Clone, Debug)]
pub struct PirClientParams {
    /// Vertical grid lines of the diagram.
    pub x_lines: Vec<i64>,
    /// Horizontal grid lines of the diagram.
    pub y_lines: Vec<i64>,
    /// Number of records (cells).
    pub n_records: usize,
    /// Bytes per record.
    pub record_len: usize,
}

/// Serializes a result as `count ‖ ids…`, padded to the database-wide
/// maximum: `4 + 4·max_len` bytes.
fn encode_record(result: &[PointId], record_len: usize) -> Vec<u8> {
    let mut rec = Vec::with_capacity(record_len);
    rec.extend_from_slice(&(result.len() as u32).to_le_bytes());
    for id in result {
        rec.extend_from_slice(&id.0.to_le_bytes());
    }
    debug_assert!(rec.len() <= record_len, "record exceeds fixed size");
    rec.resize(record_len, 0);
    rec
}

/// Decodes a record back into point ids.
#[must_use]
pub fn decode_record(record: &[u8]) -> Vec<PointId> {
    let count = u32::from_le_bytes(
        record[..4]
            .try_into()
            .expect("slice [..4] is exactly 4 bytes long"),
    ) as usize;
    (0..count)
        .map(|i| {
            let off = 4 + 4 * i;
            PointId(u32::from_le_bytes(
                record[off..off + 4]
                    .try_into()
                    .expect("slice of width 4 is 4 bytes long"),
            ))
        })
        .collect()
}

impl PirServer {
    /// Builds the record database from a diagram. Both (non-colluding)
    /// servers hold an identical copy.
    pub fn new(diagram: &CellDiagram) -> Self {
        let max_len = diagram
            .cell_results()
            .iter()
            .map(|&rid| diagram.results().get(rid).len())
            .max()
            .unwrap_or(0);
        let record_len = 4 + 4 * max_len;
        let records = diagram
            .cell_results()
            .iter()
            .map(|&rid| encode_record(diagram.results().get(rid), record_len))
            .collect();
        PirServer {
            records,
            record_len,
        }
    }

    /// Public client parameters for this database.
    pub fn client_params(&self, diagram: &CellDiagram) -> PirClientParams {
        PirClientParams {
            x_lines: diagram.grid().x_lines().to_vec(),
            y_lines: diagram.grid().y_lines().to_vec(),
            n_records: self.records.len(),
            record_len: self.record_len,
        }
    }

    /// Answers a query bit-vector: XOR of the selected records. The server
    /// sees only a uniformly random subset selection.
    pub fn answer(&self, selection: &[bool]) -> Vec<u8> {
        assert_eq!(
            selection.len(),
            self.records.len(),
            "selection length mismatch"
        );
        let mut acc = vec![0u8; self.record_len];
        for (rec, &selected) in self.records.iter().zip(selection) {
            if selected {
                for (a, b) in acc.iter_mut().zip(rec) {
                    *a ^= b;
                }
            }
        }
        acc
    }
}

/// A client query: one selection vector per server.
#[derive(Clone, Debug)]
pub struct PirQuery {
    /// Selection for server 1: a uniformly random subset.
    pub to_server1: Vec<bool>,
    /// Selection for server 2: the same subset with the target flipped.
    pub to_server2: Vec<bool>,
}

/// Client-side query generation for the cell containing `q`.
pub fn make_query(params: &PirClientParams, q: Point, rng: &mut StdRng) -> (usize, PirQuery) {
    // Local point location — performed entirely on the client.
    let i = params.x_lines.partition_point(|&x| x <= q.x);
    let j = params.y_lines.partition_point(|&y| y <= q.y);
    let target = j * (params.x_lines.len() + 1) + i;

    let mut to_server1: Vec<bool> = (0..params.n_records).map(|_| rng.gen()).collect();
    let mut to_server2 = to_server1.clone();
    to_server2[target] = !to_server2[target];
    // Randomize which server gets the flipped vector so even the *pair*
    // assignment carries no information.
    if rng.gen() {
        std::mem::swap(&mut to_server1, &mut to_server2);
    }
    (
        target,
        PirQuery {
            to_server1,
            to_server2,
        },
    )
}

/// Client-side reconstruction: XOR of the two answers, decoded.
#[must_use]
pub fn reconstruct(answer1: &[u8], answer2: &[u8]) -> Vec<PointId> {
    assert_eq!(answer1.len(), answer2.len(), "answer length mismatch");
    let record: Vec<u8> = answer1.iter().zip(answer2).map(|(a, b)| a ^ b).collect();
    decode_record(&record)
}

/// End-to-end private skyline query against two non-colluding servers.
#[must_use]
pub fn private_skyline_query(
    server1: &PirServer,
    server2: &PirServer,
    params: &PirClientParams,
    q: Point,
    rng: &mut StdRng,
) -> Vec<PointId> {
    let (_, query) = make_query(params, q, rng);
    let a1 = server1.answer(&query.to_server1);
    let a2 = server2.answer(&query.to_server2);
    reconstruct(&a1, &a2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use skyline_core::geometry::Dataset;
    use skyline_core::quadrant::QuadrantEngine;

    fn setup() -> (Dataset, CellDiagram, PirServer, PirServer, PirClientParams) {
        let ds = Dataset::from_coords([
            (1, 92),
            (3, 96),
            (12, 86),
            (5, 94),
            (15, 85),
            (8, 78),
            (16, 83),
            (13, 83),
            (6, 93),
            (21, 82),
            (11, 9),
        ])
        .unwrap();
        let diagram = QuadrantEngine::Sweeping.build(&ds);
        let server = PirServer::new(&diagram);
        let params = server.client_params(&diagram);
        (ds, diagram, server.clone(), server, params)
    }

    #[test]
    fn retrieval_matches_direct_lookup() {
        let (_, diagram, s1, s2, params) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        for qx in (0..25).step_by(3) {
            for qy in (0..100).step_by(9) {
                let q = Point::new(qx, qy);
                let got = private_skyline_query(&s1, &s2, &params, q, &mut rng);
                assert_eq!(got.as_slice(), diagram.query(q), "({qx}, {qy})");
            }
        }
    }

    #[test]
    fn record_roundtrip() {
        let ids = vec![PointId(3), PointId(8), PointId(1000)];
        let rec = encode_record(&ids, 4 + 4 * 5);
        assert_eq!(rec.len(), 24);
        assert_eq!(decode_record(&rec), ids);
        assert!(decode_record(&encode_record(&[], 12)).is_empty());
    }

    #[test]
    fn single_server_view_is_balanced() {
        // Each selection bit should be ~uniform regardless of the target:
        // run many queries for one fixed q and check the target index is
        // selected about half the time on server 1.
        let (_, _, _, _, params) = setup();
        let mut rng = StdRng::seed_from_u64(42);
        let q = Point::new(14, 81);
        let mut selected = 0usize;
        let trials = 2000;
        let mut target_idx = 0;
        for _ in 0..trials {
            let (target, query) = make_query(&params, q, &mut rng);
            target_idx = target;
            if query.to_server1[target] {
                selected += 1;
            }
        }
        let frac = selected as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.05, "target bit biased: {frac}");
        assert!(target_idx < params.n_records);
    }

    #[test]
    fn queries_differ_in_exactly_one_position() {
        let (_, _, _, _, params) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let (target, query) = make_query(&params, Point::new(5, 5), &mut rng);
        let diffs: Vec<usize> = (0..params.n_records)
            .filter(|&k| query.to_server1[k] != query.to_server2[k])
            .collect();
        assert_eq!(diffs, vec![target]);
    }

    #[test]
    #[should_panic(expected = "selection length mismatch")]
    fn wrong_selection_length_panics() {
        let (_, _, s1, _, _) = setup();
        let _ = s1.answer(&[true, false]);
    }
}
