//! Reverse skyline queries, the first application the paper lists for
//! skyline diagrams (mirroring how Voronoi diagrams serve reverse-kNN).
//!
//! A point `p` is in the **reverse skyline** of a query `q` (Dellis &
//! Seeger's monochromatic definition) iff `q` appears in the dynamic skyline
//! centered at `p` — equivalently, iff no other data point `p'` satisfies
//! `|p' - p| ⪯ |q - p|` componentwise with one strict inequality.
//!
//! [`ReverseSkylineIndex`] precomputes, for every `p`, the dynamic skyline
//! `DSL(p)` of the other points around `p` (exactly the per-point answers a
//! dynamic skyline diagram encodes); since any dominator of `|q - p|` is
//! itself dominated by a `DSL(p)` member, checking `q` against the `DSL(p)`
//! staircase is enough. Queries drop from the naive `O(n²)` to
//! `O(n·|DSL|)` with `|DSL| = O(log n)` on average.

use skyline_core::geometry::{Coord, Dataset, Point, PointId};
use skyline_core::parallel::{self, ParallelConfig};
use skyline_core::skyline::sort_sweep::minima_xy;

/// Naive `O(n²)` reverse skyline, the oracle the index is validated against.
#[must_use]
pub fn reverse_skyline_naive(dataset: &Dataset, q: Point) -> Vec<PointId> {
    let mut out: Vec<PointId> = dataset
        .iter()
        .filter(|&(id, p)| {
            let qd = ((q.x - p.x).abs(), (q.y - p.y).abs());
            !dataset.iter().any(|(other, o)| {
                if other == id {
                    return false;
                }
                let od = ((o.x - p.x).abs(), (o.y - p.y).abs());
                od.0 <= qd.0 && od.1 <= qd.1 && (od.0 < qd.0 || od.1 < qd.1)
            })
        })
        .map(|(id, _)| id)
        .collect();
    out.sort_unstable();
    out
}

/// Precomputed per-point dynamic skylines for fast reverse skyline queries.
#[derive(Clone, Debug)]
pub struct ReverseSkylineIndex {
    points: Vec<Point>,
    /// `staircases[i]`: the mapped coordinates `(|p' - p_i|)` of `DSL(p_i)`,
    /// sorted by x — a minimization staircase.
    staircases: Vec<Vec<(Coord, Coord)>>,
}

impl ReverseSkylineIndex {
    /// Builds the index with the process-wide parallel configuration
    /// (`SKYLINE_THREADS`): `O(n² log n)` total.
    pub fn new(dataset: &Dataset) -> Self {
        ReverseSkylineIndex::new_with(dataset, &ParallelConfig::from_env())
    }

    /// Builds the index with an explicit parallel configuration: per-point
    /// `DSL(p)` staircases are independent, so construction parallelizes
    /// over points with identical output at every thread count.
    pub fn new_with(dataset: &Dataset, cfg: &ParallelConfig) -> Self {
        let points: Vec<Point> = dataset.points().to_vec();
        let staircases = parallel::map_indexed(cfg, points.len(), |i| {
            let id = PointId(i as u32);
            let p = points[i];
            let mut mapped: Vec<(Coord, Coord, PointId)> = dataset
                .iter()
                .filter(|&(other, _)| other != id)
                .map(|(other, o)| ((o.x - p.x).abs(), (o.y - p.y).abs(), other))
                .collect();
            let dsl = minima_xy(&mut mapped);
            let mut stairs: Vec<(Coord, Coord)> = dsl
                .into_iter()
                .map(|other| {
                    let o = dataset.point(other);
                    ((o.x - p.x).abs(), (o.y - p.y).abs())
                })
                .collect();
            stairs.sort_unstable();
            stairs
        });
        ReverseSkylineIndex { points, staircases }
    }

    /// The reverse skyline of `q`.
    #[must_use]
    pub fn query(&self, q: Point) -> Vec<PointId> {
        (0..self.points.len() as u32)
            .map(PointId)
            .filter(|&id| self.contains(id, q))
            .collect()
    }

    /// Reverse skylines for a batch of independent queries, evaluated with
    /// the given parallel configuration. Entry `k` is exactly
    /// `self.query(queries[k])`.
    #[must_use]
    pub fn batch_query(&self, queries: &[Point], cfg: &ParallelConfig) -> Vec<Vec<PointId>> {
        parallel::map(cfg, queries, |&q| self.query(q))
    }

    /// True iff `p_id` belongs to the reverse skyline of `q`: `|q - p|` must
    /// not be dominated by any staircase entry of `DSL(p)`.
    pub fn contains(&self, id: PointId, q: Point) -> bool {
        let p = self.points[id.index()];
        let qd = ((q.x - p.x).abs(), (q.y - p.y).abs());
        // Staircase entries are the minima of the mapped neighbors; `q` is
        // dominated by some neighbor iff it is dominated by a minimum.
        !self.staircases[id.index()]
            .iter()
            .any(|&(x, y)| x <= qd.0 && y <= qd.1 && (x < qd.0 || y < qd.1))
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Never empty for a valid dataset.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Bichromatic reverse skyline (Dellis & Seeger): given *products* `P` and
/// *customers* `C`, the customers for whom a (new) product `q` would enter
/// their dynamic skyline over `P ∪ {q}` — i.e. customers `c` such that no
/// existing product `p` satisfies `|p - c| ⪯ |q - c|`.
///
/// This is the market-impact primitive: "which customers would even look
/// at a product placed at `q`?"
#[must_use]
pub fn bichromatic_reverse_skyline(
    products: &Dataset,
    customers: &Dataset,
    q: Point,
) -> Vec<PointId> {
    customers
        .iter()
        .filter(|&(_, c)| {
            let qd = ((q.x - c.x).abs(), (q.y - c.y).abs());
            !products.iter().any(|(_, p)| {
                let pd = ((p.x - c.x).abs(), (p.y - c.y).abs());
                pd.0 <= qd.0 && pd.1 <= qd.1 && (pd.0 < qd.0 || pd.1 < qd.1)
            })
        })
        .map(|(id, _)| id)
        .collect()
}

/// Per-customer index for repeated bichromatic queries: stores each
/// customer's dynamic-skyline staircase over the product set, so one query
/// is `O(|C| · log)` staircase checks instead of `O(|C| · |P|)`.
#[derive(Clone, Debug)]
pub struct BichromaticIndex {
    customers: Vec<Point>,
    /// Mapped staircase `(|p - c|)` of each customer's product skyline.
    staircases: Vec<Vec<(Coord, Coord)>>,
}

impl BichromaticIndex {
    /// Builds the index with the process-wide parallel configuration
    /// (`SKYLINE_THREADS`): `O(|C| · |P| log |P|)`.
    pub fn new(products: &Dataset, customers: &Dataset) -> Self {
        BichromaticIndex::new_with(products, customers, &ParallelConfig::from_env())
    }

    /// Builds the index with an explicit parallel configuration: per-customer
    /// staircases are independent, so construction parallelizes over
    /// customers with identical output at every thread count.
    pub fn new_with(products: &Dataset, customers: &Dataset, cfg: &ParallelConfig) -> Self {
        let customer_points: Vec<Point> = customers.points().to_vec();
        let staircases = parallel::map(cfg, &customer_points, |c| {
            let mut mapped: Vec<(Coord, Coord, PointId)> = products
                .iter()
                .map(|(id, p)| ((p.x - c.x).abs(), (p.y - c.y).abs(), id))
                .collect();
            let dsl = minima_xy(&mut mapped);
            let mut stairs: Vec<(Coord, Coord)> = dsl
                .into_iter()
                .map(|id| {
                    let p = products.point(id);
                    ((p.x - c.x).abs(), (p.y - c.y).abs())
                })
                .collect();
            stairs.sort_unstable();
            stairs
        });
        BichromaticIndex {
            customers: customer_points,
            staircases,
        }
    }

    /// Bichromatic reverse skylines for a batch of candidate placements.
    /// Entry `k` is exactly `self.query(queries[k])`.
    #[must_use]
    pub fn batch_query(&self, queries: &[Point], cfg: &ParallelConfig) -> Vec<Vec<PointId>> {
        parallel::map(cfg, queries, |&q| self.query(q))
    }

    /// Customers that would see a product at `q` in their dynamic skyline.
    #[must_use]
    pub fn query(&self, q: Point) -> Vec<PointId> {
        (0..self.customers.len() as u32)
            .map(PointId)
            .filter(|id| {
                let c = self.customers[id.index()];
                let qd = ((q.x - c.x).abs(), (q.y - c.y).abs());
                !self.staircases[id.index()]
                    .iter()
                    .any(|&(x, y)| x <= qd.0 && y <= qd.1 && (x < qd.0 || y < qd.1))
            })
            .collect()
    }

    /// Number of indexed customers.
    pub fn len(&self) -> usize {
        self.customers.len()
    }

    /// Never empty for a valid customer dataset.
    pub fn is_empty(&self) -> bool {
        self.customers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_dataset(n: usize, domain: i64, seed: u64) -> Dataset {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % domain as u64) as i64
        };
        Dataset::from_coords((0..n).map(|_| (next(), next()))).unwrap()
    }

    #[test]
    fn index_matches_naive() {
        let ds = lcg_dataset(40, 100, 3);
        let index = ReverseSkylineIndex::new(&ds);
        for qx in (0..100).step_by(17) {
            for qy in (0..100).step_by(13) {
                let q = Point::new(qx, qy);
                assert_eq!(index.query(q), reverse_skyline_naive(&ds, q), "{q}");
            }
        }
    }

    #[test]
    fn index_matches_naive_under_ties() {
        let ds = lcg_dataset(30, 6, 8);
        let index = ReverseSkylineIndex::new(&ds);
        for qx in 0..6 {
            for qy in 0..6 {
                let q = Point::new(qx, qy);
                assert_eq!(index.query(q), reverse_skyline_naive(&ds, q), "{q}");
            }
        }
    }

    #[test]
    fn query_at_a_data_point_contains_it() {
        // q exactly at p: |q - p| = (0, 0) can only be dominated by an
        // exact duplicate of p... which never dominates (0,0) strictly.
        let ds = lcg_dataset(25, 50, 1);
        let index = ReverseSkylineIndex::new(&ds);
        for (id, p) in ds.iter() {
            assert!(index.contains(id, p), "{id}");
        }
        assert_eq!(index.len(), 25);
        assert!(!index.is_empty());
    }

    #[test]
    fn single_point_is_always_reverse_skyline() {
        let ds = Dataset::from_coords([(5, 5)]).unwrap();
        let index = ReverseSkylineIndex::new(&ds);
        assert_eq!(index.query(Point::new(100, -100)), vec![PointId(0)]);
    }

    #[test]
    fn parallel_index_and_batch_queries_match_sequential() {
        let ds = lcg_dataset(35, 90, 4);
        let reference = ReverseSkylineIndex::new_with(&ds, &ParallelConfig::sequential());
        let queries: Vec<Point> = (0..90).step_by(7).map(|v| Point::new(v, 89 - v)).collect();
        let expected: Vec<Vec<PointId>> = queries.iter().map(|&q| reference.query(q)).collect();
        for threads in [1, 2, 3, 8] {
            let cfg = ParallelConfig::with_threads(threads);
            let index = ReverseSkylineIndex::new_with(&ds, &cfg);
            assert_eq!(
                index.staircases, reference.staircases,
                "threads = {threads}"
            );
            assert_eq!(index.batch_query(&queries, &cfg), expected);
        }
        assert_eq!(
            reference.batch_query(&queries, &ParallelConfig::sequential()),
            expected
        );
    }

    #[test]
    fn bichromatic_parallel_build_and_batch_match() {
        let products = lcg_dataset(20, 60, 12);
        let customers = lcg_dataset(25, 60, 13);
        let reference =
            BichromaticIndex::new_with(&products, &customers, &ParallelConfig::sequential());
        let queries: Vec<Point> = (0..60).step_by(9).map(|v| Point::new(v, v / 2)).collect();
        let expected: Vec<Vec<PointId>> = queries.iter().map(|&q| reference.query(q)).collect();
        for threads in [2, 5] {
            let cfg = ParallelConfig::with_threads(threads);
            let index = BichromaticIndex::new_with(&products, &customers, &cfg);
            assert_eq!(
                index.staircases, reference.staircases,
                "threads = {threads}"
            );
            assert_eq!(index.batch_query(&queries, &cfg), expected);
        }
    }

    #[test]
    fn bichromatic_index_matches_naive() {
        let products = lcg_dataset(25, 80, 2);
        let customers = lcg_dataset(30, 80, 5);
        let index = BichromaticIndex::new(&products, &customers);
        assert_eq!(index.len(), 30);
        assert!(!index.is_empty());
        for qx in (0..80).step_by(13) {
            for qy in (0..80).step_by(11) {
                let q = Point::new(qx, qy);
                assert_eq!(
                    index.query(q),
                    bichromatic_reverse_skyline(&products, &customers, q),
                    "{q}"
                );
            }
        }
    }

    #[test]
    fn product_placed_on_a_customer_always_wins_that_customer() {
        // |q - c| = (0, 0) can only be dominated strictly — impossible.
        let products = lcg_dataset(15, 40, 3);
        let customers = lcg_dataset(10, 40, 9);
        let index = BichromaticIndex::new(&products, &customers);
        for (id, c) in customers.iter() {
            assert!(index.query(c).contains(&id), "{id}");
        }
    }

    #[test]
    fn monochromatic_is_bichromatic_with_self_excluded() {
        // For q not in the dataset, RSL over P equals the bichromatic
        // query with customers = P and products = P minus the customer —
        // checked pointwise via the definitions.
        let ds = lcg_dataset(12, 30, 7);
        let q = Point::new(13, 17);
        let mono = reverse_skyline_naive(&ds, q);
        for (id, _) in ds.iter() {
            let others =
                Dataset::from_coords(ds.iter().filter(|&(o, _)| o != id).map(|(_, p)| (p.x, p.y)))
                    .unwrap();
            let single = Dataset::from_coords([(ds.point(id).x, ds.point(id).y)]).unwrap();
            let bi = bichromatic_reverse_skyline(&others, &single, q);
            assert_eq!(mono.contains(&id), !bi.is_empty(), "{id}");
        }
    }

    #[test]
    fn far_query_keeps_only_outer_points() {
        // Points on a line; a far-right query's reverse skyline cannot
        // contain an interior point (its neighbor dominates toward q).
        let ds = Dataset::from_coords([(0, 0), (10, 0), (20, 0)]).unwrap();
        let rsl = reverse_skyline_naive(&ds, Point::new(1000, 0));
        assert!(!rsl.contains(&PointId(0)));
        let index = ReverseSkylineIndex::new(&ds);
        assert_eq!(index.query(Point::new(1000, 0)), rsl);
    }
}
