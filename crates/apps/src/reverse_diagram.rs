//! The **reverse skyline diagram**: the same precomputation idea the paper
//! applies to forward skylines, applied to *reverse* skyline queries — its
//! first listed application, carried to completion.
//!
//! `p ∈ RSL(q)` depends on comparisons `|p' - p| ⪯ |q - p|`, which flip
//! exactly when `q` crosses one of the lines `q.x = p.x ± |p'.x - p.x|`
//! (equivalently `q.x = p'.x` or `q.x = 2·p.x - p'.x`, the reflection of
//! `p'` through `p`), and likewise for y. Drawing all `O(n²)` such lines
//! per axis partitions the plane into cells with **constant reverse
//! skyline**, mirroring how bisector lines partition it for dynamic
//! skylines (Definition 7), with reflections in place of midpoints — and
//! no doubling needed, since reflections of integer points are integers.
//!
//! Construction evaluates each distinct cell with the
//! [`ReverseSkylineIndex`] staircase
//! test (`O(n·|DSL|)` per cell); results are interned so the `O(n⁴)` cell
//! array stays one `u32` per cell. Intended for the same small-`n` regime
//! as the dynamic diagram.

use skyline_core::geometry::{Coord, Dataset, Point, PointId};
use skyline_core::result_set::{ResultId, ResultInterner};

use crate::reverse::ReverseSkylineIndex;

/// A reverse skyline diagram: constant-`RSL` cells over the reflection
/// grid.
#[derive(Clone, Debug)]
pub struct ReverseSkylineDiagram {
    xlines: Vec<Coord>,
    ylines: Vec<Coord>,
    results: ResultInterner,
    cells: Vec<ResultId>,
}

fn reflection_lines(values: impl Iterator<Item = Coord> + Clone) -> Vec<Coord> {
    let vals: Vec<Coord> = values.collect();
    let mut lines = Vec::with_capacity(vals.len() * vals.len());
    for &a in &vals {
        for &b in &vals {
            lines.push(2 * a - b); // includes a itself when a == b
            lines.push(b);
        }
    }
    lines.sort_unstable();
    lines.dedup();
    lines
}

impl ReverseSkylineDiagram {
    /// Builds the diagram: `O(n²)` lines per axis, one staircase-index
    /// evaluation per cell.
    pub fn build(dataset: &Dataset) -> Self {
        let xlines = reflection_lines(dataset.points().iter().map(|p| p.x));
        let ylines = reflection_lines(dataset.points().iter().map(|p| p.y));

        let width = xlines.len() + 1;
        let height = ylines.len() + 1;
        let mut results = ResultInterner::new();
        let mut cells = Vec::with_capacity(width * height);

        // Interior samples in doubled coordinates keep everything exact;
        // the staircase test is translation-safe, so evaluate against a
        // doubled copy of the dataset.
        let doubled = Dataset::from_coords(dataset.points().iter().map(|p| (2 * p.x, 2 * p.y)))
            .expect("doubling preserves validity");
        let doubled_index = ReverseSkylineIndex::new(&doubled);

        for j in 0..height as u32 {
            for i in 0..width as u32 {
                let q = Point::new(sample(&xlines, i), sample(&ylines, j));
                let rsl = doubled_index.query(q);
                cells.push(results.intern_sorted(rsl));
            }
        }
        ReverseSkylineDiagram {
            xlines,
            ylines,
            results,
            cells,
        }
    }

    /// The reverse skyline for an arbitrary query point (`O(log n)` point
    /// location; on-line queries resolve to the greater side, as
    /// everywhere in this workspace).
    pub fn query(&self, q: Point) -> &[PointId] {
        let i = self.xlines.partition_point(|&x| x <= q.x);
        let j = self.ylines.partition_point(|&y| y <= q.y);
        self.results
            .get(self.cells[j * (self.xlines.len() + 1) + i])
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of distinct reverse-skyline results.
    pub fn distinct_results(&self) -> usize {
        self.results.len()
    }

    /// The vertical reflection-line positions (raw coordinates).
    pub fn x_lines(&self) -> &[Coord] {
        &self.xlines
    }

    /// The horizontal reflection-line positions (raw coordinates).
    pub fn y_lines(&self) -> &[Coord] {
        &self.ylines
    }

    /// The interned result id of a cell, for rendering.
    pub fn result_id(&self, i: u32, j: u32) -> skyline_core::result_set::ResultId {
        self.cells[j as usize * (self.xlines.len() + 1) + i as usize]
    }

    /// The id of the empty result (for renderers).
    pub fn empty_result(&self) -> skyline_core::result_set::ResultId {
        self.results.empty()
    }
}

/// Interior sample of slab `i`, in doubled coordinates.
fn sample(lines: &[Coord], i: u32) -> Coord {
    let i = i as usize;
    if i == 0 {
        2 * lines[0] - 1
    } else if i == lines.len() {
        2 * lines[lines.len() - 1] + 1
    } else {
        lines[i - 1] + lines[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reverse::reverse_skyline_naive;

    fn lcg_dataset(n: usize, domain: i64, seed: u64) -> Dataset {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % domain as u64) as i64
        };
        Dataset::from_coords((0..n).map(|_| (next(), next()))).unwrap()
    }

    #[test]
    fn lookup_matches_naive_off_lines() {
        // Scale the dataset by 4 so odd query coordinates never hit the
        // reflection lines (all line positions are ≡ 0 mod 4).
        let base = lcg_dataset(8, 20, 1);
        let ds = Dataset::from_coords(base.points().iter().map(|p| (4 * p.x, 4 * p.y))).unwrap();
        let diagram = ReverseSkylineDiagram::build(&ds);
        let mut q = Point::new(-31, -31);
        while q.x < 90 {
            q.y = -31;
            while q.y < 90 {
                assert_eq!(
                    diagram.query(q),
                    reverse_skyline_naive(&ds, q).as_slice(),
                    "{q}"
                );
                q.y += 14; // stays odd
            }
            q.x += 14;
        }
    }

    #[test]
    fn every_cell_constant() {
        // Two interior samples of the same cell must agree (spot check on
        // a tiny instance where cells are wide).
        let ds = Dataset::from_coords([(0, 0), (8, 8)]).unwrap();
        let diagram = ReverseSkylineDiagram::build(&ds);
        assert_eq!(
            diagram.query(Point::new(1, 1)),
            diagram.query(Point::new(1, 1))
        );
        assert!(diagram.cell_count() > 9);
        assert!(diagram.distinct_results() >= 2);
    }

    #[test]
    fn reflection_lines_contain_points_and_reflections() {
        let lines = reflection_lines([0i64, 10].into_iter());
        // 2*0-10 = -10, 0, 10, 2*10-0 = 20.
        assert_eq!(lines, vec![-10, 0, 10, 20]);
    }

    #[test]
    fn single_point_dataset() {
        let ds = Dataset::from_coords([(5, 5)]).unwrap();
        let diagram = ReverseSkylineDiagram::build(&ds);
        // The lone point is in every query's reverse skyline.
        for q in [(0, 0), (5, 5), (100, -100)] {
            assert_eq!(diagram.query(Point::new(q.0, q.1)), &[PointId(0)]);
        }
    }

    #[test]
    fn ties_are_handled() {
        let ds = Dataset::from_coords([(2, 2), (2, 2), (6, 2)]).unwrap();
        let scaled = Dataset::from_coords(ds.points().iter().map(|p| (4 * p.x, 4 * p.y))).unwrap();
        let diagram = ReverseSkylineDiagram::build(&scaled);
        for qx in [-5i64, 1, 9, 17, 31] {
            for qy in [-5i64, 1, 9, 17] {
                let q = Point::new(qx, qy);
                assert_eq!(
                    diagram.query(q),
                    reverse_skyline_naive(&scaled, q).as_slice(),
                    "{q}"
                );
            }
        }
    }
}
