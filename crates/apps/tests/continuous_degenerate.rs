//! Degenerate-segment coverage for `apps::continuous::trace_segment` and
//! `trace_segment_dynamic`: zero-length segments, axis-aligned travel
//! *along* a grid line, and endpoints exactly on grid/bisector lines.
//!
//! Every itinerary must be well-formed regardless of degeneracy: the `t`
//! intervals tile `[0, 1]` exactly (the endpoints 0 and 1 are inserted as
//! exact rationals, and adjacent steps share the identical crossing value,
//! so float equality is exact here), no step is empty, and consecutive
//! steps carry different results (coalescing is total).

use skyline_apps::continuous::{trace_segment, trace_segment_dynamic, TraversalStep};
use skyline_core::diagram::CellDiagram;
use skyline_core::dynamic::{DynamicEngine, SubcellDiagram};
use skyline_core::geometry::{Dataset, Point};
use skyline_core::quadrant::QuadrantEngine;

fn dataset() -> Dataset {
    // x grid lines at {0, 6, 12}, y grid lines at {0, 4, 10}; dynamic
    // bisectors at x ∈ {3, 6, 9} and y ∈ {2, 5, 7} (doubled-coordinate
    // lines at twice these values).
    Dataset::from_coords([(0, 0), (6, 10), (12, 4)]).expect("valid coords")
}

fn quadrant_diagram() -> CellDiagram {
    QuadrantEngine::Sweeping.build(&dataset())
}

fn dynamic_diagram() -> SubcellDiagram {
    DynamicEngine::Scanning.build(&dataset())
}

/// Structural invariants every itinerary must satisfy.
fn assert_well_formed(steps: &[TraversalStep], what: &str) {
    assert!(!steps.is_empty(), "{what}: itinerary must not be empty");
    assert_eq!(steps[0].t_start, 0.0, "{what}: must start at t = 0");
    assert_eq!(
        steps[steps.len() - 1].t_end,
        1.0,
        "{what}: must end at t = 1"
    );
    for w in steps.windows(2) {
        assert_eq!(
            w[0].t_end, w[1].t_start,
            "{what}: steps must tile without gaps or overlaps"
        );
        assert_ne!(
            w[0].result, w[1].result,
            "{what}: equal-result steps must be coalesced"
        );
    }
    for s in steps {
        assert!(
            s.t_start < s.t_end,
            "{what}: no empty steps ([{}, {}])",
            s.t_start,
            s.t_end
        );
    }
}

#[test]
fn zero_length_segments_yield_one_full_step() {
    let d = quadrant_diagram();
    let dd = dynamic_diagram();
    // Interior point, point on a grid line, point on a dataset point, and a
    // point on a dynamic bisector (x = 3).
    for q in [
        Point::new(5, 3),
        Point::new(6, 7),
        Point::new(12, 4),
        Point::new(3, 5),
        Point::new(-2, -2),
    ] {
        let steps = trace_segment(&d, q, q);
        assert_well_formed(&steps, &format!("quadrant stationary at {q}"));
        assert_eq!(steps.len(), 1, "stationary query has one step at {q}");
        assert_eq!(steps[0].result.as_slice(), d.query(q), "at {q}");

        let dsteps = trace_segment_dynamic(&dd, q, q);
        assert_well_formed(&dsteps, &format!("dynamic stationary at {q}"));
        assert_eq!(dsteps.len(), 1);
        assert_eq!(dsteps[0].result.as_slice(), dd.query(q), "dynamic at {q}");
    }
}

#[test]
fn axis_aligned_travel_along_a_grid_line_is_well_formed() {
    let d = quadrant_diagram();
    // y = 4 is a grid line: the whole path lies *on* it. The greater-side
    // convention applies uniformly, so results must match pointwise queries
    // at interior integer parameters.
    let (a, b) = (Point::new(-3, 4), Point::new(15, 4));
    let steps = trace_segment(&d, a, b);
    assert_well_formed(&steps, "horizontal along y = 4");
    for x in a.x..=b.x {
        let t = (x - a.x) as f64 / (b.x - a.x) as f64;
        let interior = steps
            .iter()
            .find(|s| s.t_start + 1e-9 < t && t < s.t_end - 1e-9);
        if let Some(step) = interior {
            assert_eq!(
                step.result.as_slice(),
                d.query(Point::new(x, 4)),
                "x = {x} on the y = 4 grid line"
            );
        }
    }

    // x = 6 is a grid line: vertical travel along it.
    let vsteps = trace_segment(&d, Point::new(6, -2), Point::new(6, 12));
    assert_well_formed(&vsteps, "vertical along x = 6");

    // Dynamic: y = 5 is the (0,10) bisector — a subcell line. Traveling
    // along it must still produce a tiled, coalesced itinerary.
    let dd = dynamic_diagram();
    let dsteps = trace_segment_dynamic(&dd, Point::new(-2, 5), Point::new(14, 5));
    assert_well_formed(&dsteps, "dynamic along the y = 5 bisector");
    assert!(
        dsteps.len() > 1,
        "crossing vertical subcell lines must change the result"
    );
}

#[test]
fn endpoints_exactly_on_lines_are_handled() {
    let d = quadrant_diagram();
    // Both endpoints on grid lines (x = 0 start, x = 12 end), crossing the
    // interior line x = 6 on the way.
    let steps = trace_segment(&d, Point::new(0, 7), Point::new(12, 7));
    assert_well_formed(&steps, "grid-line endpoints");

    // Endpoint exactly on a grid *corner* (a dataset point).
    let corner = trace_segment(&d, Point::new(6, 10), Point::new(2, 2));
    assert_well_formed(&corner, "corner endpoint");

    let dd = dynamic_diagram();
    // Start exactly on the x = 3 bisector, end exactly on the x = 9 one.
    let dsteps = trace_segment_dynamic(&dd, Point::new(3, 1), Point::new(9, 8));
    assert_well_formed(&dsteps, "bisector endpoints");
    // A segment from a bisector point to itself plus an axis move: end on
    // the y = 7 bisector of (10, 4).
    let mixed = trace_segment_dynamic(&dd, Point::new(5, 7), Point::new(3, 7));
    assert_well_formed(&mixed, "ending on the y = 7 bisector");
}

#[test]
fn segment_inside_one_cell_is_a_single_step() {
    let d = quadrant_diagram();
    // Strictly inside the cell (6, 12) × (4, 10): no crossings at all.
    let steps = trace_segment(&d, Point::new(7, 5), Point::new(11, 9));
    assert_well_formed(&steps, "single-cell segment");
    assert_eq!(steps.len(), 1);
    assert_eq!(steps[0].result.as_slice(), d.query(Point::new(9, 7)));
}

#[test]
fn diagonal_through_a_grid_corner_dedupes_the_crossing() {
    let d = quadrant_diagram();
    // The diagonal from (0, -2) to (12, 10) passes exactly through the grid
    // corner (6, 4): the x-crossing and y-crossing coincide at t = 1/2 and
    // must be deduplicated, not produce an empty step.
    let steps = trace_segment(&d, Point::new(0, -2), Point::new(12, 10));
    assert_well_formed(&steps, "diagonal through corner (6, 4)");

    let dd = dynamic_diagram();
    // Through the subcell corner (6, 5) — x grid line meets y bisector.
    let dsteps = trace_segment_dynamic(&dd, Point::new(2, 1), Point::new(10, 9));
    assert_well_formed(&dsteps, "dynamic diagonal through (6, 5)");
}
