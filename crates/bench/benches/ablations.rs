//! E8 (Criterion form): design-choice ablations — DSG graph vs sweep,
//! high-d scanning union vs inclusion–exclusion, merging union–find vs
//! flood fill.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline_bench::{highd_dataset, sweep_dataset};
use skyline_core::diagram::merge::{merge, merge_flood_fill};
use skyline_core::dsg::DirectedSkylineGraph;
use skyline_core::geometry::CellGrid;
use skyline_core::highd::HighDEngine;
use skyline_core::quadrant::{dsg_algorithm, QuadrantEngine};
use skyline_data::Distribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    let ds = sweep_dataset(200, Distribution::Independent);
    group.bench_function("dsg/graph_build", |b| {
        b.iter(|| DirectedSkylineGraph::new_2d(&ds))
    });
    let dsg = DirectedSkylineGraph::new_2d(&ds);
    group.bench_function("dsg/sweep_only", |b| {
        b.iter(|| dsg_algorithm::build_with_dsg(CellGrid::new(&ds), &dsg))
    });

    let ds3 = highd_dataset(15, 3, Distribution::Independent);
    group.bench_with_input(
        BenchmarkId::new("highd_scanning", "union"),
        &ds3,
        |b, ds| b.iter(|| HighDEngine::Scanning.build(ds)),
    );
    group.bench_with_input(
        BenchmarkId::new("highd_scanning", "inclusion_exclusion"),
        &ds3,
        |b, ds| b.iter(|| HighDEngine::ScanningInclusionExclusion.build(ds)),
    );

    let diagram = QuadrantEngine::Sweeping.build(&ds);
    group.bench_function("merge/union_find", |b| b.iter(|| merge(&diagram)));
    group.bench_function("merge/flood_fill", |b| {
        b.iter(|| merge_flood_fill(&diagram))
    });

    // k-skyband engines (k = 3) and the literal Algorithm 4.
    group.bench_function("skyband/baseline_k3", |b| {
        b.iter(|| skyline_core::skyband::build_baseline(&ds, 3))
    });
    group.bench_function("skyband/incremental_k3", |b| {
        b.iter(|| skyline_core::skyband::build_incremental(&ds, 3))
    });
    let gp = skyline_data::DatasetSpec {
        n: 200,
        dims: 2,
        domain: 1_000_000,
        distribution: Distribution::Independent,
        seed: 424242,
    }
    .build_2d();
    if skyline_core::quadrant::algorithm4::build(&gp).is_ok() {
        group.bench_function("sweeping/algorithm4_walks", |b| {
            b.iter(|| skyline_core::quadrant::algorithm4::build(&gp).unwrap())
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
