//! E9 (Criterion form): application-layer throughput — moving-query
//! traversal, authenticated queries, PIR retrieval, reverse-skyline
//! queries, and diagram (de)serialization.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skyline_apps::auth::{verify, AuthenticatedDiagram};
use skyline_apps::continuous::trace_segment;
use skyline_apps::pir::{private_skyline_query, PirServer};
use skyline_apps::reverse::ReverseSkylineIndex;
use skyline_bench::sweep_dataset;
use skyline_core::geometry::Point;
use skyline_core::quadrant::QuadrantEngine;
use skyline_core::serialize;
use skyline_data::Distribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("applications");
    group.sample_size(20);

    let ds = sweep_dataset(200, Distribution::Independent);
    let diagram = QuadrantEngine::Sweeping.build(&ds);
    let mut rng = StdRng::seed_from_u64(5);
    let lim = 2000i64;

    let segments: Vec<(Point, Point)> = (0..64)
        .map(|_| {
            (
                Point::new(rng.gen_range(0..lim), rng.gen_range(0..lim)),
                Point::new(rng.gen_range(0..lim), rng.gen_range(0..lim)),
            )
        })
        .collect();
    group.bench_function("trace_segment_64", |b| {
        b.iter(|| {
            segments
                .iter()
                .map(|&(a, bb)| trace_segment(&diagram, a, bb).len())
                .sum::<usize>()
        })
    });

    let auth = AuthenticatedDiagram::new(&ds, diagram.clone());
    let root = auth.root();
    let queries: Vec<Point> = (0..64)
        .map(|_| Point::new(rng.gen_range(0..lim), rng.gen_range(0..lim)))
        .collect();
    group.bench_function("auth_query_verify_64", |b| {
        b.iter(|| {
            queries
                .iter()
                .filter(|&&q| verify(&auth.query(&ds, q), &root))
                .count()
        })
    });

    let server = PirServer::new(&diagram);
    let params = server.client_params(&diagram);
    group.bench_function("pir_query_8", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| {
            queries
                .iter()
                .take(8)
                .map(|&q| private_skyline_query(&server, &server, &params, q, &mut rng).len())
                .sum::<usize>()
        })
    });

    group.bench_function("reverse_index_build", |b| {
        b.iter(|| ReverseSkylineIndex::new(&ds))
    });
    let index = ReverseSkylineIndex::new(&ds);
    group.bench_function("reverse_query_64", |b| {
        b.iter(|| queries.iter().map(|&q| index.query(q).len()).sum::<usize>())
    });

    group.bench_function("maintained_index_churn", |b| {
        // 32 inserts + 32 queries against a 200-point base: the lazy
        // rebuild amortization in action.
        b.iter(|| {
            let mut index =
                skyline_core::maintained::MaintainedIndex::new(QuadrantEngine::Sweeping);
            for p in ds.points() {
                index.insert(*p);
            }
            let mut total = 0usize;
            for (k, &q) in queries.iter().take(32).enumerate() {
                index.insert(Point::new(q.x / 2 + k as i64, q.y / 2));
                total += index.query(q).len();
            }
            total
        })
    });

    group.bench_function("serialize_encode", |b| {
        b.iter(|| serialize::encode_cell_diagram(&diagram))
    });
    let bytes = serialize::encode_cell_diagram(&diagram);
    group.bench_function("serialize_decode", |b| {
        b.iter(|| serialize::decode_cell_diagram(&bytes).expect("valid"))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
