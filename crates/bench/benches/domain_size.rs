//! E2 (Criterion form): effect of the per-dimension domain size on
//! quadrant diagram construction (cell count saturates at `min(s², n²)`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline_bench::domain_dataset;
use skyline_core::quadrant::QuadrantEngine;
use skyline_data::Distribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("domain_size");
    group.sample_size(10);
    for s in [16i64, 256, 4096] {
        let ds = domain_dataset(200, s, Distribution::Independent);
        for engine in QuadrantEngine::ALL {
            group.bench_with_input(BenchmarkId::new(engine.name(), s), &ds, |b, ds| {
                b.iter(|| engine.build(ds))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
