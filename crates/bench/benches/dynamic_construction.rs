//! E3 (Criterion form): dynamic diagram construction across the three
//! engines. Subcell grids are O(n⁴); sizes stay small by design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline_bench::sweep_dataset;
use skyline_core::dynamic::DynamicEngine;
use skyline_data::Distribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_construction");
    group.sample_size(10);
    for n in [10usize, 20, 30] {
        let ds = sweep_dataset(n, Distribution::Independent);
        for engine in DynamicEngine::ALL {
            if engine == DynamicEngine::Baseline && n > 20 {
                continue; // O(n⁵): keep the suite fast
            }
            group.bench_with_input(BenchmarkId::new(engine.name(), n), &ds, |b, ds| {
                b.iter(|| engine.build(ds))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
