//! E7 (Criterion form): global diagram construction (four reflected
//! quadrant runs plus per-cell union) vs a single quadrant run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline_bench::sweep_dataset;
use skyline_core::global;
use skyline_core::quadrant::QuadrantEngine;
use skyline_data::Distribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_construction");
    group.sample_size(10);
    for n in [100usize, 200, 400] {
        let ds = sweep_dataset(n, Distribution::Independent);
        group.bench_with_input(BenchmarkId::new("quadrant", n), &ds, |b, ds| {
            b.iter(|| QuadrantEngine::Sweeping.build(ds))
        });
        group.bench_with_input(BenchmarkId::new("global", n), &ds, |b, ds| {
            b.iter(|| global::build(ds, QuadrantEngine::Sweeping))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
