//! E4 (Criterion form): high-dimensional quadrant diagrams across d and
//! engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline_bench::highd_dataset;
use skyline_core::highd::HighDEngine;
use skyline_data::Distribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("highd_construction");
    group.sample_size(10);
    for d in [2usize, 3, 4] {
        let ds = highd_dataset(15, d, Distribution::Independent);
        for engine in HighDEngine::ALL {
            group.bench_with_input(BenchmarkId::new(engine.name(), d), &ds, |b, ds| {
                b.iter(|| engine.build(ds))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
