//! E1 (Criterion form): quadrant diagram construction across engines,
//! dataset sizes, and distributions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline_bench::sweep_dataset;
use skyline_core::quadrant::QuadrantEngine;
use skyline_data::Distribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("quadrant_construction");
    group.sample_size(10);
    for dist in Distribution::ALL {
        for n in [100usize, 200, 400] {
            let ds = sweep_dataset(n, dist);
            for engine in QuadrantEngine::ALL {
                group.bench_with_input(
                    BenchmarkId::new(format!("{}/{}", dist.name(), engine.name()), n),
                    &ds,
                    |b, ds| b.iter(|| engine.build(ds)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
