//! E6 (Criterion form): per-query latency — precomputed diagram lookup vs
//! from-scratch skyline computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skyline_bench::sweep_dataset;
use skyline_core::geometry::Point;
use skyline_core::quadrant::QuadrantEngine;
use skyline_core::query;
use skyline_data::Distribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_time");
    let mut rng = StdRng::seed_from_u64(99);
    for n in [100usize, 400, 1600] {
        let ds = sweep_dataset(n, Distribution::Independent);
        let diagram = QuadrantEngine::Sweeping.build(&ds);
        let lim = 10 * n as i64;
        let queries: Vec<Point> = (0..1024)
            .map(|_| Point::new(rng.gen_range(0..lim), rng.gen_range(0..lim)))
            .collect();
        group.bench_with_input(BenchmarkId::new("diagram_lookup", n), &queries, |b, qs| {
            b.iter(|| qs.iter().map(|&q| diagram.query(q).len()).sum::<usize>())
        });
        group.bench_with_input(BenchmarkId::new("from_scratch", n), &queries, |b, qs| {
            b.iter(|| {
                qs.iter()
                    .map(|&q| query::quadrant_skyline(&ds, q).len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
