//! Regenerates every table/figure of the reconstructed evaluation (DESIGN.md
//! experiments E1–E15) and prints them as Markdown. Run with:
//!
//! ```text
//! cargo run -p skyline-bench --release --bin experiments             # all
//! cargo run -p skyline-bench --release --bin experiments -- e1 e3   # subset
//! cargo run -p skyline-bench --release --bin experiments -- \
//!     e11 --profile smoke --json BENCH_PR3.json --gate              # CI gate
//! cargo run -p skyline-bench --release --bin experiments -- \
//!     e13 --profile smoke --json BENCH_PR6.json --gate              # SLO gate
//! cargo run -p skyline-bench --release --bin experiments -- \
//!     e14 --profile smoke --json BENCH_PR9.json --gate              # cold start
//! cargo run -p skyline-bench --release --bin experiments -- \
//!     e15 --profile smoke --json BENCH_PR10.json --gate             # memory
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skyline_bench::json::{render_records, BenchRecord};
use skyline_bench::quantile::{percentile, slo_violations, SloSpec, PERCENTILE_LABELS};
use skyline_bench::{domain_dataset, fmt_ms, highd_dataset, sweep_dataset, time_ms, time_stats};
use skyline_core::diagram::merge::{merge, merge_flood_fill};
use skyline_core::dsg::DirectedSkylineGraph;
use skyline_core::dynamic::{self, DynamicEngine};
use skyline_core::geometry::{CellGrid, Dataset, Point};
use skyline_core::global;
use skyline_core::highd::HighDEngine;
use skyline_core::parallel::ParallelConfig;
use skyline_core::quadrant::{self, QuadrantEngine};
use skyline_core::query;
use skyline_core::telemetry;
use skyline_data::Distribution;

const USAGE: &str = "\
Usage: experiments [EXPERIMENT...] [--profile smoke|full] [--json PATH] [--gate]

  EXPERIMENT       any of e1..e15 (default: run all experiments)
  --profile NAME   dataset sizes for e11/e12/e13/e14: 'full' (default) or
                   'smoke' (CI-sized)
  --json PATH      write the machine-readable bench records collected this run
                   (the BENCH_PR3.json schema) to PATH
  --gate           check every guard armed by the selected experiments and
                   report ALL violations before exiting 1: the 1.25x parallel
                   regression guard (e11/e12/e13), the telemetry overhead
                   guard (--telemetry), and the E13 open-loop SLO bounds
                   (lanes = 0 rows vs the committed per-family p99/p999
                   budgets), the E14 cold-start floor (container load
                   must beat rebuild-from-points by 10x at n >= 400), and the
                   E15 memory guards (t=4 peak bytes within 1.25x of t=0,
                   retained bytes-per-cell under the absolute budget)
  --gate-ratio X   override the parallel regression ratio (default 1.25);
                   mainly a testing aid for the gate pipeline itself
  --gate-floor-ms X  absolute-time floor for the regression and efficiency
                   guards (default 5): a comparison where both sides ran
                   under X ms is exempt, because sub-floor records measure
                   scheduler noise on shared CI hosts, not the code
  --efficiency-ratio X  override every per-record t4/t1 efficiency threshold
                   (see the E11 efficiency guard); mainly a testing aid
  --slo-scale X    scale every E13 SLO bound by X (default 1.0); X = 0 makes
                   every bound fail, which the CLI tests use
  --telemetry      capture the telemetry metrics registry around every
                   e11/e12/e13 configuration and embed the counter readings in
                   the JSON records; with --gate, additionally fail if a
                   recording-on run regresses more than 5% (+0.5 ms slack)
                   over a recording-off run of the same configuration on this
                   host";

/// Allowed gated slowdown of any parallel configuration relative to its own
/// sequential run (same host, same invocation).
const GATE_RATIO: f64 = 1.25;

/// Absolute-time floor for the regression and efficiency guards: when both
/// sides of a comparison ran under this many milliseconds, the comparison is
/// skipped. Sub-floor records (e.g. dynamic/subset n=10 at ~1 ms) measure
/// scheduler noise on shared 1-core CI hosts, not the code — the PR 7 smoke
/// flake came from exactly such a record.
const GATE_FLOOR_MS: f64 = 5.0;

/// Required t=4 over t=1 speedup on wide hosts (>= 4 hardware threads) for
/// the large global configurations — the scaling cliff this PR removes must
/// never silently return.
const EFFICIENCY_WIDE_GLOBAL: f64 = 2.0;

/// Baseline t4/t1 threshold on wide hosts for every other record: t=4 must
/// at least not lose to t=1.
const EFFICIENCY_WIDE_DEFAULT: f64 = 1.0;

/// t4/t1 threshold on narrow hosts (< 4 hardware threads), where physical
/// speedup is impossible and 4 workers time-slice one core: t=4 may pay a
/// bounded oversubscription tax but must not collapse.
const EFFICIENCY_NARROW: f64 = 0.8;

/// Allowed slowdown of a recording-on run over a recording-off run of the
/// same configuration (`--telemetry --gate`), plus an absolute slack so
/// sub-millisecond configurations don't gate on scheduler noise.
const TELEMETRY_OVERHEAD_RATIO: f64 = 1.05;
const TELEMETRY_OVERHEAD_SLACK_MS: f64 = 0.5;

/// Required speedup of a container load over a rebuild-from-points of the
/// same index at `n >= 400` (`e14 --gate`): the zero-copy load path's whole
/// reason to exist is to skip diagram construction, so it must beat the
/// construction it skips by an order of magnitude.
const COLD_START_RATIO: f64 = 10.0;

/// Allowed growth of a t=4 build's peak-bytes delta over the t=0 build of
/// the same E15 configuration (same host, same invocation): parallel
/// workers hold per-band scratch, but the arena outputs dominate, so the
/// working-set peak must stay near sequential.
const MEM_PEAK_RATIO: f64 = 1.25;

/// The global family's own peak bound: its *parallel formulation* is a
/// different algorithm, not the sequential one fanned out — every row's
/// 4-way union materializes as run-length `BitRuns` before the
/// sequential interning pass, an inherent `O(cells)` staging buffer the
/// streaming sequential path never holds. Measured 1.28x at n = 800
/// (1.15x at n = 400); the bound leaves regression headroom above that
/// without letting a second staging copy slip in.
const MEM_PEAK_RATIO_GLOBAL: f64 = 1.6;

/// Peak-comparison floor for the E15 guard: pairs whose peak deltas are
/// both under this many bytes measure allocator noise (thread-spawn
/// scratch, registry nodes), not the diagram working set.
const MEM_PEAK_FLOOR_BYTES: u64 = 1 << 20;

/// Absolute E15 budget on retained arena bytes per diagram cell
/// (`heap_bytes() / cells`). The measured worst case is the global
/// diagram at ~90 B/cell (n = 800; the global interner rides on top of
/// the shared cell table); quadrant sits near 33 and dynamic subcells
/// under 12. The
/// budget sits well above so real regressions (a nested `Vec` per cell,
/// an un-shrunk scratch buffer) trip it while allocator rounding does
/// not.
const MEM_BYTES_PER_CELL_BUDGET: f64 = 128.0;

/// Dataset sizes for the E11 sweep: `Full` reproduces the committed
/// `BENCH_PR3.json`; `Smoke` is small enough for a per-push CI job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Profile {
    Smoke,
    Full,
}

/// Parsed command line; parsing is exhaustive — anything unrecognized is an
/// error, not silently ignored.
struct Options {
    experiments: Vec<String>,
    profile: Profile,
    json_path: Option<String>,
    gate: bool,
    gate_ratio: f64,
    gate_floor_ms: f64,
    efficiency_ratio: Option<f64>,
    slo_scale: f64,
    telemetry: bool,
}

const EXPERIMENT_NAMES: [&str; 15] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
];

impl Options {
    fn parse(args: impl Iterator<Item = String>) -> Result<Options, String> {
        let mut opts = Options {
            experiments: Vec::new(),
            profile: Profile::Full,
            json_path: None,
            gate: false,
            gate_ratio: GATE_RATIO,
            gate_floor_ms: GATE_FLOOR_MS,
            efficiency_ratio: None,
            slo_scale: 1.0,
            telemetry: false,
        };
        let float_arg = |name: &str, value: Option<String>| -> Result<f64, String> {
            let value = value.ok_or(format!("{name} needs a value"))?;
            let parsed: f64 = value
                .parse()
                .map_err(|_| format!("{name} needs a number, got '{value}'"))?;
            if parsed.is_finite() && parsed >= 0.0 {
                Ok(parsed)
            } else {
                Err(format!("{name} must be a finite non-negative number"))
            }
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let lower = arg.to_lowercase();
            match lower.as_str() {
                "--profile" => {
                    let value = args.next().ok_or("--profile needs a value")?;
                    opts.profile = match value.to_lowercase().as_str() {
                        "smoke" => Profile::Smoke,
                        "full" => Profile::Full,
                        other => return Err(format!("unknown profile '{other}'")),
                    };
                }
                "--json" => {
                    opts.json_path = Some(args.next().ok_or("--json needs a path")?);
                }
                "--gate" => opts.gate = true,
                "--gate-ratio" => opts.gate_ratio = float_arg("--gate-ratio", args.next())?,
                "--gate-floor-ms" => {
                    opts.gate_floor_ms = float_arg("--gate-floor-ms", args.next())?;
                }
                "--efficiency-ratio" => {
                    opts.efficiency_ratio = Some(float_arg("--efficiency-ratio", args.next())?);
                }
                "--slo-scale" => opts.slo_scale = float_arg("--slo-scale", args.next())?,
                "--telemetry" => opts.telemetry = true,
                "--help" | "-h" => {
                    println!("{USAGE}");
                    std::process::exit(0);
                }
                name if EXPERIMENT_NAMES.contains(&name) => {
                    opts.experiments.push(name.to_string());
                }
                other => return Err(format!("unknown argument '{other}'")),
            }
        }
        Ok(opts)
    }
}

fn main() {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let want =
        |name: &str| opts.experiments.is_empty() || opts.experiments.iter().any(|a| a == name);

    println!("# Experiment run (skyline-diagram reconstruction of ICDE'18)\n");
    if want("e1") {
        e1_quadrant_construction();
    }
    if want("e2") {
        e2_domain_size();
    }
    if want("e3") {
        e3_dynamic_construction();
    }
    if want("e4") {
        e4_highd_construction();
    }
    if want("e5") {
        e5_diagram_statistics();
    }
    if want("e6") {
        e6_query_time();
    }
    if want("e7") {
        e7_global_construction();
    }
    if want("e8") {
        e8_ablations();
    }
    if want("e9") {
        e9_applications();
    }
    if want("e10") {
        e10_extensions();
    }
    let mut records = Vec::new();
    if want("e11") {
        records.extend(e11_parallel_scalability(opts.profile, opts.telemetry));
    }
    if want("e12") {
        records.extend(e12_serving_throughput(opts.profile, opts.telemetry));
    }
    if want("e13") {
        records.extend(e13_open_loop(opts.profile, opts.telemetry));
    }
    if want("e14") {
        records.extend(e14_cold_start(opts.profile));
    }
    if want("e15") {
        records.extend(e15_memory(opts.profile));
    }
    let overhead_violations = if opts.telemetry && (want("e11") || want("e12") || want("e13")) {
        telemetry_overhead(opts.profile)
    } else {
        Vec::new()
    };

    // Every guard below APPENDS to one failure list instead of exiting, so a
    // single run reports every broken gate (JSON artifact, regression ratio,
    // telemetry overhead, SLO bounds) rather than just the first.
    let mut failures: Vec<String> = Vec::new();
    if let Some(path) = &opts.json_path {
        match std::fs::write(path, render_records(&records)) {
            Ok(()) => eprintln!("wrote {} records to {path}", records.len()),
            Err(err) => failures.push(format!("cannot write bench records to {path}: {err}")),
        }
    }
    if opts.gate {
        // The parallel-regression guard only makes sense when an experiment
        // that produces threads > 0 records ran: an e14-only invocation
        // collects exclusively sequential cold-start rows.
        if want("e11") || want("e12") || want("e13") {
            match gate_regressions(&records, opts.gate_ratio, opts.gate_floor_ms) {
                Ok(checked) => {
                    eprintln!(
                        "gate: {checked} parallel configurations within {}x of sequential (floor {} ms)",
                        opts.gate_ratio, opts.gate_floor_ms
                    );
                }
                Err(violations) => failures.extend(violations),
            }
        }
        if want("e11") {
            match gate_efficiency(&records, opts.efficiency_ratio, opts.gate_floor_ms) {
                Ok(checked) => {
                    eprintln!("gate: {checked} t4/t1 efficiency thresholds met");
                }
                Err(violations) => failures.extend(violations),
            }
        }
        if opts.telemetry && overhead_violations.is_empty() {
            eprintln!(
                "gate: telemetry overhead within {TELEMETRY_OVERHEAD_RATIO}x                  (+{TELEMETRY_OVERHEAD_SLACK_MS} ms) of recording-off"
            );
        }
        failures.extend(overhead_violations);
        if want("e13") {
            match gate_slos(&records, opts.slo_scale) {
                Ok(checked) => {
                    eprintln!("gate: {checked} open-loop SLO bounds honored on lanes = 0 rows");
                }
                Err(violations) => failures.extend(violations),
            }
        }
        if want("e15") {
            match gate_memory(&records) {
                Ok(checked) => {
                    eprintln!(
                        "gate: {checked} memory bounds honored (peak within {MEM_PEAK_RATIO}x, \
                         {MEM_PEAK_RATIO_GLOBAL}x global; <= {MEM_BYTES_PER_CELL_BUDGET} B/cell)"
                    );
                }
                Err(violations) => failures.extend(violations),
            }
        }
        if want("e14") {
            match gate_cold_start(&records, opts.gate_floor_ms) {
                Ok(checked) => {
                    eprintln!(
                        "gate: {checked} cold-start configurations load >= {COLD_START_RATIO}x faster than rebuild"
                    );
                }
                Err(violations) => failures.extend(violations),
            }
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("gate violation: {f}");
        }
        eprintln!("{} gate violation(s)", failures.len());
        std::process::exit(1);
    }
}

/// The telemetry registry as sorted `(name, value)` pairs for embedding in
/// bench records: every counter, plus per-histogram `.count`/`.sum` keys.
fn metric_pairs() -> Vec<(String, u64)> {
    let snap = telemetry::metrics_snapshot();
    let mut pairs: Vec<(String, u64)> = snap
        .counters
        .iter()
        .map(|c| (c.name.to_string(), c.value))
        .collect();
    for h in &snap.histograms {
        pairs.push((format!("{}.count", h.name), h.count));
        pairs.push((format!("{}.sum", h.name), h.sum));
    }
    pairs.sort();
    pairs
}

/// The `--telemetry --gate` overhead guard: re-measures each E11
/// configuration sequentially with span recording off and then on, and
/// reports every configuration where the recording-on minimum exceeds
/// [`TELEMETRY_OVERHEAD_RATIO`] times the recording-off minimum plus
/// [`TELEMETRY_OVERHEAD_SLACK_MS`]. Same-host, same-invocation comparison,
/// like [`gate_regressions`].
fn telemetry_overhead(profile: Profile) -> Vec<String> {
    println!(
        "## Telemetry overhead (recording on vs off, sequential)
"
    );
    println!("| algorithm | n | off | on | spans |");
    println!("|---|---|---|---|---|");
    let cfg = ParallelConfig::with_threads(2).cap_to_hardware();
    let mut violations = Vec::new();
    for config in scalability_configs(profile) {
        let ds = sweep_dataset(config.n, config.distribution);
        let plain = time_stats(config.reps, || (config.build)(&ds, &cfg));
        telemetry::start_recording();
        let instrumented = time_stats(config.reps, || (config.build)(&ds, &cfg));
        let spans = telemetry::stop_recording().len();
        println!(
            "| {} | {} | {} | {} | {} |",
            config.algorithm,
            config.n,
            fmt_ms(plain.min_ms),
            fmt_ms(instrumented.min_ms),
            spans,
        );
        let budget = TELEMETRY_OVERHEAD_RATIO * plain.min_ms + TELEMETRY_OVERHEAD_SLACK_MS;
        if instrumented.min_ms > budget {
            violations.push(format!(
                "telemetry overhead: {} n={}: recording-on {} vs recording-off {}                  (budget {})",
                config.algorithm,
                config.n,
                fmt_ms(instrumented.min_ms),
                fmt_ms(plain.min_ms),
                fmt_ms(budget),
            ));
        }
    }
    println!();
    violations
}

/// The regression gate (CI `bench-smoke` job): every parallel record must be
/// no more than `ratio` (default [`GATE_RATIO`]) times slower (by minimum
/// wall time) than the sequential (`threads = 0`) record of the same
/// configuration from the same invocation — same-host comparison, so
/// absolute machine speed cancels out. Comparisons where both sides ran
/// under `floor_ms` are exempt (see [`GATE_FLOOR_MS`]). Returns the number
/// of parallel records checked, or the violation list.
fn gate_regressions(
    records: &[BenchRecord],
    ratio: f64,
    floor_ms: f64,
) -> Result<usize, Vec<String>> {
    let key = |r: &BenchRecord| {
        (
            r.experiment.clone(),
            r.algorithm.clone(),
            r.n,
            r.s,
            r.d,
            r.distribution.clone(),
        )
    };
    let sequential: std::collections::HashMap<_, f64> = records
        .iter()
        .filter(|r| r.threads == 0)
        .map(|r| (key(r), r.min_ms))
        .collect();

    let mut violations = Vec::new();
    let mut checked = 0usize;
    // E15 rows carry a threads column too, but they time exactly one build
    // per configuration (bytes are the measurand); their t=4 vs t=0
    // comparison belongs to `gate_memory`, not the timing guard.
    for r in records
        .iter()
        .filter(|r| r.threads > 0 && r.experiment != "e15")
    {
        let Some(&seq_ms) = sequential.get(&key(r)) else {
            violations.push(format!(
                "{} {} n={} threads={} has no sequential baseline record",
                r.experiment, r.algorithm, r.n, r.threads
            ));
            continue;
        };
        checked += 1;
        if r.min_ms < floor_ms && seq_ms < floor_ms {
            continue;
        }
        if r.min_ms > ratio * seq_ms {
            violations.push(format!(
                "{} {} n={} dist={} threads={}: {} vs sequential {} ({:.2}x > {ratio}x)",
                r.experiment,
                r.algorithm,
                r.n,
                r.distribution,
                r.threads,
                fmt_ms(r.min_ms),
                fmt_ms(seq_ms),
                r.min_ms / seq_ms
            ));
        }
    }
    if checked == 0 && violations.is_empty() {
        violations.push("no parallel records collected — run e11/e12/e13 with --gate".to_string());
    }
    if violations.is_empty() {
        Ok(checked)
    } else {
        Err(violations)
    }
}

/// The per-record t4/t1 efficiency threshold, graded by host width: wide
/// hosts (>= 4 hardware threads, e.g. standard CI runners) demand real
/// speedup on the large global configurations and parity elsewhere; narrow
/// hosts can only check that 4 workers time-slicing fewer cores don't
/// collapse. The E11 smoke profile runs at n <= 200, so the wide-global
/// threshold arms on the full profile (n >= 400) where the PR 3 scaling
/// cliff lived.
fn efficiency_threshold(algorithm: &str, n: usize, hardware_threads: usize) -> f64 {
    if hardware_threads < 4 {
        return EFFICIENCY_NARROW;
    }
    if algorithm.starts_with("global/") && n >= 400 {
        EFFICIENCY_WIDE_GLOBAL
    } else {
        EFFICIENCY_WIDE_DEFAULT
    }
}

/// The E11 t4/t1 efficiency guard: for every E11 configuration with both a
/// `threads = 1` and a `threads = 4` record, `t1_min / t4_min` must reach
/// the per-record threshold ([`efficiency_threshold`], or `override_ratio`
/// for every record when given). Pairs where both records ran under
/// `floor_ms` are exempt, like the regression guard. Returns the number of
/// pairs checked, or the violation list.
fn gate_efficiency(
    records: &[BenchRecord],
    override_ratio: Option<f64>,
    floor_ms: f64,
) -> Result<usize, Vec<String>> {
    let hardware_threads = skyline_core::parallel::available_threads();
    let key = |r: &BenchRecord| (r.algorithm.clone(), r.n, r.distribution.clone());
    let mut pairs: std::collections::HashMap<_, (Option<f64>, Option<f64>)> =
        std::collections::HashMap::new();
    for r in records.iter().filter(|r| r.experiment == "e11") {
        let entry = pairs.entry(key(r)).or_default();
        match r.threads {
            1 => entry.0 = Some(r.min_ms),
            4 => entry.1 = Some(r.min_ms),
            _ => {}
        }
    }

    let mut violations = Vec::new();
    let mut checked = 0usize;
    let mut keys: Vec<_> = pairs.keys().cloned().collect();
    keys.sort();
    for k in keys {
        let (algorithm, n, distribution) = &k;
        let (Some(t1), Some(t4)) = pairs[&k] else {
            continue;
        };
        checked += 1;
        if t1 < floor_ms && t4 < floor_ms {
            continue;
        }
        let threshold =
            override_ratio.unwrap_or_else(|| efficiency_threshold(algorithm, *n, hardware_threads));
        if t1 / t4 < threshold {
            violations.push(format!(
                "efficiency: {algorithm} n={n} dist={distribution}: t4/t1 speedup {:.2}x < required {threshold:.2}x (t1 {} vs t4 {}, host width {hardware_threads})",
                t1 / t4,
                fmt_ms(t1),
                fmt_ms(t4),
            ));
        }
    }
    if checked == 0 {
        violations.push("no t1/t4 record pairs collected — run e11 with --gate".to_string());
    }
    if violations.is_empty() {
        Ok(checked)
    } else {
        Err(violations)
    }
}

/// The committed E13 SLO table: per-family open-loop latency budgets for
/// the `lanes = 0` (inline, queue-free) rows. The bounds are deliberately
/// generous — on the smoke profile the measured p99 sits orders of
/// magnitude below them — because their job is to catch pathological tail
/// regressions (a stall, a lock convoy, an accidental O(n) rescan) on
/// shared CI hardware, not to pin microsecond-level performance.
fn slo_specs(scale: f64) -> Vec<SloSpec> {
    let p99 = |family| SloSpec {
        family,
        label: "p99",
        percentile: 99.0,
        bound_us: (100_000.0 * scale) as u64,
    };
    let mut specs = vec![
        p99("quadrant"),
        p99("global"),
        p99("safe_zone"),
        p99("trace"),
        p99("overall"),
    ];
    specs.push(SloSpec {
        family: "overall",
        label: "p999",
        percentile: 99.9,
        bound_us: (250_000.0 * scale) as u64,
    });
    specs
}

/// The E13 SLO gate: applies [`slo_specs`] to the interpolated percentile
/// metrics embedded in every `lanes = 0` open-loop record. Multi-lane rows
/// are excluded on purpose — on a 1-core host trailing lanes run after the
/// schedule, so their tails measure the schedule length, not the server
/// (EXPERIMENTS.md E13 discusses this). Returns the number of bounds
/// checked, or the violation list.
fn gate_slos(records: &[BenchRecord], scale: f64) -> Result<usize, Vec<String>> {
    let specs = slo_specs(scale);
    let mut checked = 0usize;
    let mut violations = Vec::new();
    for r in records
        .iter()
        .filter(|r| r.experiment == "e13" && r.threads == 0)
    {
        let measured: Vec<(String, String, u64)> = r
            .metrics
            .iter()
            .filter_map(|(key, value)| {
                let (family, label) = key.strip_suffix("_us")?.rsplit_once('.')?;
                Some((family.to_string(), label.to_string(), *value))
            })
            .collect();
        checked += specs.len();
        violations.extend(
            slo_violations(&specs, &measured)
                .into_iter()
                .map(|msg| format!("{} n={}: {msg}", r.algorithm, r.n)),
        );
    }
    if checked == 0 {
        violations.push("no lanes = 0 open-loop records collected — run e13 --gate".to_string());
    }
    if violations.is_empty() {
        Ok(checked)
    } else {
        Err(violations)
    }
}

/// E13: open-loop tail latency. Arrivals follow a fixed-rate schedule and
/// latency is measured from the *scheduled* arrival, so queueing delay is
/// charged to the server (coordinated-omission-safe) — see
/// `skyline_serve::openloop`. Sweeps arrival rate × lane count; the
/// `lanes = 0` rows are the queue-free SLO reference, and the digest column
/// is bit-identical across lane counts by construction. Records use
/// `threads` for the lane count and embed interpolated per-family
/// percentiles (µs) as metrics, which [`gate_slos`] checks.
/// E14 — cold-start latency: building the full index from raw points versus
/// loading the snapshot container ([`skyline_core::container`]) written by
/// that same build. Both paths end in an identical, query-ready
/// [`skyline_core::index::SkylineIndex`]; the container rows measure the
/// bounds-checked, checksum-validated decode that `skydiag load` and
/// [`skyline_serve::SkylineServer::from_container`] run on startup. All
/// rows are sequential (`threads = 0`): the decode path is single-threaded
/// by design. The `mem.container.bytes` metric records the file size per
/// configuration (deterministic, so committed artifacts stay byte-stable;
/// the pre-PR10 `container.bytes` spelling rides along as a compat alias).
fn e14_cold_start(profile: Profile) -> Vec<BenchRecord> {
    use skyline_core::container;
    use skyline_core::index::SkylineIndex;
    use skyline_core::maintained::Handle;

    // Quadrant+global sweep sizes, the small dynamic-diagram size (the
    // O(n^4) subcell grid keeps it tiny), and repetitions per measurement.
    let (sizes, dynamic_n, reps): (Vec<usize>, usize, usize) = match profile {
        Profile::Smoke => (vec![200, 400], 30, 2),
        Profile::Full => (vec![400, 800], 60, 3),
    };
    println!(
        "## E14 — cold start: rebuild from points vs container load ({} profile)\n",
        match profile {
            Profile::Smoke => "smoke",
            Profile::Full => "full",
        }
    );
    println!("| configuration | n | rebuild | load | speedup | container size |");
    println!("|---|---|---|---|---|---|");

    let mut records = Vec::new();
    let mut run_case = |family: &str, n: usize, with_dynamic: bool| {
        let ds = sweep_dataset(n, Distribution::Independent);
        let build = || {
            SkylineIndex::builder()
                .with_global(true)
                .with_dynamic(with_dynamic)
                .build(&ds)
        };
        let index = build();
        let handles: Vec<Handle> = (0..ds.len() as u64).map(Handle).collect();
        let bytes = container::encode_index(&index, &handles);
        let rebuild = time_stats(reps, build);
        let load = time_stats(reps, || {
            container::decode_index(&bytes).expect("fresh container bytes must decode")
        });
        println!(
            "| {family} | {n} | {} | {} | {:.1}x | {} B |",
            fmt_ms(rebuild.min_ms),
            fmt_ms(load.min_ms),
            rebuild.min_ms / load.min_ms,
            bytes.len(),
        );
        for (leg, stats) in [("rebuild", &rebuild), ("load", &load)] {
            records.push(BenchRecord {
                experiment: "e14".to_string(),
                algorithm: format!("{family}/{leg}"),
                n,
                s: 10 * n as i64,
                d: 2,
                distribution: Distribution::Independent.name().to_string(),
                threads: 0,
                reps,
                min_ms: stats.min_ms,
                median_ms: stats.median_ms,
                metrics: vec![
                    // Canonical key on the memory-observatory naming
                    // scheme, plus the pre-PR10 spelling as a compat
                    // alias so existing gate configs keep resolving.
                    ("mem.container.bytes".to_string(), bytes.len() as u64),
                    ("container.bytes".to_string(), bytes.len() as u64),
                ],
            });
        }
    };
    for &n in &sizes {
        run_case("coldstart", n, false);
    }
    run_case("coldstart-dynamic", dynamic_n, true);
    println!();
    records
}

/// The E14 cold-start guard: for every `n >= 400` configuration with both
/// legs recorded, the container load must be at least [`COLD_START_RATIO`]
/// times faster than the rebuild. Pairs whose rebuild ran under `floor_ms`
/// are exempt (a sub-floor rebuild means the ratio measures scheduler noise,
/// not the decode path — see [`GATE_FLOOR_MS`]). Returns the number of
/// pairs checked, or the violation list.
fn gate_cold_start(records: &[BenchRecord], floor_ms: f64) -> Result<usize, Vec<String>> {
    let mut pairs: std::collections::HashMap<(String, usize), (Option<f64>, Option<f64>)> =
        std::collections::HashMap::new();
    for r in records.iter().filter(|r| r.experiment == "e14") {
        if let Some(family) = r.algorithm.strip_suffix("/rebuild") {
            pairs.entry((family.to_string(), r.n)).or_default().0 = Some(r.min_ms);
        } else if let Some(family) = r.algorithm.strip_suffix("/load") {
            pairs.entry((family.to_string(), r.n)).or_default().1 = Some(r.min_ms);
        }
    }

    let mut violations = Vec::new();
    let mut checked = 0usize;
    let mut keys: Vec<_> = pairs.keys().cloned().collect();
    keys.sort();
    for k in keys {
        let (family, n) = &k;
        if *n < 400 {
            continue;
        }
        let (Some(rebuild), Some(load)) = pairs[&k] else {
            violations.push(format!(
                "cold start: {family} n={n} is missing a rebuild or load record"
            ));
            continue;
        };
        if rebuild < floor_ms {
            continue;
        }
        checked += 1;
        if rebuild / load < COLD_START_RATIO {
            violations.push(format!(
                "cold start: {family} n={n}: load {} vs rebuild {} ({:.1}x < required {COLD_START_RATIO}x)",
                fmt_ms(load),
                fmt_ms(rebuild),
                rebuild / load,
            ));
        }
    }
    if checked == 0 && violations.is_empty() {
        violations
            .push("no cold-start pairs at n >= 400 collected — run e14 with --gate".to_string());
    }
    if violations.is_empty() {
        Ok(checked)
    } else {
        Err(violations)
    }
}

/// E15 — memory scaling: peak working set, allocation churn, and retained
/// arena bytes per cell across the three diagram families at threads
/// {0, 4}, plus the per-snapshot serve footprint under the E12-style
/// workload. Byte metrics come from the `mem-telemetry` counting
/// allocator (all zeros when it is compiled out — the table says so) and
/// the `heap_bytes()` arena accessors; they ride in the same bench-record
/// JSON schema as the timing experiments (committed as `BENCH_PR10.json`).
///
/// Metric keys per build row: `mem.peak_bytes` (peak-minus-baseline delta
/// across the build, the peak-RSS proxy), `mem.alloc_bytes`/`mem.allocs`
/// (allocation churn), `mem.heap_bytes` (retained arena estimate),
/// `mem.cells`, `mem.bytes_per_cell`, and the non-zero per-phase
/// `mem.phase.*.alloc_bytes` attribution. Snapshot rows add
/// `mem.snapshot_bytes`.
fn e15_memory(profile: Profile) -> Vec<BenchRecord> {
    use skyline_core::telemetry::mem;
    use skyline_serve::{QueryMix, ServerOptions, SkylineServer, WorkloadSpec};

    let (sizes, dynamic_n): (Vec<usize>, usize) = match profile {
        Profile::Smoke => (vec![100, 200], 10),
        Profile::Full => (vec![400, 800], 40),
    };
    println!(
        "## E15 — memory scaling ({} profile, counting allocator {})\n",
        match profile {
            Profile::Smoke => "smoke",
            Profile::Full => "full",
        },
        if mem::enabled() {
            "on"
        } else {
            "off (all byte columns read zero)"
        },
    );
    println!("| family | n | threads | peak bytes | alloc churn | retained | cells | B/cell |");
    println!("|---|---|---|---|---|---|---|---|");

    let mut records = Vec::new();

    // One timed build per configuration: bytes are the measurand here, and
    // repeating the build would fold the first run's freed scratch into
    // the next run's peak baseline. `reset_metrics` re-seats the peak at
    // the current live level, so `peak - live_before` is the build's own
    // high-water contribution (the peak-RSS proxy).
    let mut run_build =
        |family: &str,
         n: usize,
         threads: usize,
         build: &dyn Fn(&Dataset, &ParallelConfig) -> (usize, usize)| {
            let ds = sweep_dataset(n, Distribution::Independent);
            let cfg = ParallelConfig::with_threads(threads).cap_to_hardware();
            telemetry::reset_metrics();
            let before = mem::stats();
            let start_ns = telemetry::now_ns();
            let (heap_bytes, cells) = build(&ds, &cfg);
            let elapsed_ms = telemetry::ms_since(start_ns);
            let after = mem::stats();
            let peak_delta = after.peak_bytes.saturating_sub(before.live_bytes);
            let bytes_per_cell = heap_bytes as u64 / cells.max(1) as u64;
            println!(
            "| {family} | {n} | {threads} | {peak_delta} | {} | {heap_bytes} | {cells} | {bytes_per_cell} |",
            after.alloc_bytes,
        );
            let mut metrics = vec![
                ("mem.peak_bytes".to_string(), peak_delta),
                ("mem.alloc_bytes".to_string(), after.alloc_bytes),
                ("mem.allocs".to_string(), after.allocs),
                ("mem.heap_bytes".to_string(), heap_bytes as u64),
                ("mem.cells".to_string(), cells as u64),
                ("mem.bytes_per_cell".to_string(), bytes_per_cell),
            ];
            for (i, row) in mem::phase_stats().into_iter().enumerate() {
                if row.alloc_bytes > 0 {
                    metrics.push((mem::PHASE_METRIC_NAMES[i].0.to_string(), row.alloc_bytes));
                }
            }
            records.push(BenchRecord {
                experiment: "e15".to_string(),
                algorithm: family.to_string(),
                n,
                s: 10 * n as i64,
                d: 2,
                distribution: Distribution::Independent.name().to_string(),
                threads,
                reps: 1,
                min_ms: elapsed_ms,
                median_ms: elapsed_ms,
                metrics,
            });
        };

    for &threads in &[0usize, 4] {
        for &n in &sizes {
            run_build("quadrant/sweeping", n, threads, &|ds, cfg| {
                let d = QuadrantEngine::Sweeping.build_with(ds, cfg);
                (d.heap_bytes(), d.grid().cell_count())
            });
            // The default sweeping engine on both quadrant legs: the
            // scanning engine's band-parallel variant snapshots its row
            // frontier per band, which inflates t>0 peaks by ~1.3x on
            // purpose (band independence) and would trip a guard meant
            // for *regressions* (see EXPERIMENTS.md E15).
            run_build("global/sweeping", n, threads, &|ds, cfg| {
                let d = global::build_with(ds, QuadrantEngine::Sweeping, cfg);
                (d.heap_bytes(), d.grid().cell_count())
            });
        }
        run_build("dynamic/scanning", dynamic_n, threads, &|ds, cfg| {
            let d = DynamicEngine::Scanning.build_with(ds, cfg);
            (d.heap_bytes(), d.grid().subcell_count())
        });
    }

    // Per-snapshot footprint under the E12 workload shape: one sequential
    // server, the standard query/update mix, then the published snapshot's
    // retained bytes (index arenas + handle table + filled caches) — the
    // number serve-side retention budgeting multiplies by snapshot count.
    let (serve_n, queries_total, rounds, updates) = match profile {
        Profile::Smoke => (200usize, 2_000usize, 4usize, 4usize),
        Profile::Full => (400, 8_000, 8, 8),
    };
    let ds = sweep_dataset(serve_n, Distribution::Independent);
    for (family, cache_slots) in [
        ("serve/snapshot-cached", 4096usize),
        ("serve/snapshot-uncached", 0),
    ] {
        telemetry::reset_metrics();
        let before = mem::stats();
        let start_ns = telemetry::now_ns();
        let options = ServerOptions {
            with_global: true,
            cache_slots,
            parallel: ParallelConfig::sequential(),
            ..ServerOptions::default()
        };
        let (server, handles) = SkylineServer::with_dataset(&ds, options);
        let spec = WorkloadSpec {
            readers: 0,
            rounds,
            queries_per_reader: queries_total / rounds,
            updates_per_round: updates,
            domain: 10 * serve_n as i64,
            seed: skyline_bench::BASE_SEED,
            mix: QueryMix::default(),
        };
        let report = skyline_serve::workload::run(&server, &spec, &handles);
        let elapsed_ms = telemetry::ms_since(start_ns);
        let after = mem::stats();
        let snapshot_bytes = server.reader().snapshot().heap_bytes();
        let peak_delta = after.peak_bytes.saturating_sub(before.live_bytes);
        println!(
            "| {family} | {serve_n} | 0 | {peak_delta} | {} | {snapshot_bytes} | - | - |",
            after.alloc_bytes,
        );
        let mut metrics = vec![
            ("mem.peak_bytes".to_string(), peak_delta),
            ("mem.alloc_bytes".to_string(), after.alloc_bytes),
            ("mem.allocs".to_string(), after.allocs),
            ("mem.snapshot_bytes".to_string(), snapshot_bytes as u64),
            ("workload.checksum".to_string(), report.checksum),
        ];
        for (i, row) in mem::phase_stats().into_iter().enumerate() {
            if row.alloc_bytes > 0 {
                metrics.push((mem::PHASE_METRIC_NAMES[i].0.to_string(), row.alloc_bytes));
            }
        }
        records.push(BenchRecord {
            experiment: "e15".to_string(),
            algorithm: family.to_string(),
            n: serve_n,
            s: 10 * serve_n as i64,
            d: 2,
            distribution: Distribution::Independent.name().to_string(),
            threads: 0,
            reps: 1,
            min_ms: elapsed_ms,
            median_ms: elapsed_ms,
            metrics,
        });
    }
    println!();
    records
}

/// The E15 memory guard, armed only when the counting allocator is
/// compiled in (a `--no-default-features` run reports zero bytes — gating
/// on that would always pass vacuously, so it skips loudly instead):
///
/// * **Peak regression** — every t=4 build row's `mem.peak_bytes` delta
///   stays within [`MEM_PEAK_RATIO`] of the t=0 row of the same
///   configuration ([`MEM_PEAK_RATIO_GLOBAL`] for the global family,
///   whose parallel formulation stages per-row unions by design),
///   same-host/same-invocation like the timing guard. Pairs with both
///   peaks under [`MEM_PEAK_FLOOR_BYTES`] are exempt.
/// * **Absolute budget** — every build row's retained
///   `mem.heap_bytes / mem.cells` stays under
///   [`MEM_BYTES_PER_CELL_BUDGET`].
fn gate_memory(records: &[BenchRecord]) -> Result<usize, Vec<String>> {
    use skyline_core::telemetry::mem;
    if !mem::enabled() {
        eprintln!("gate: memory guards skipped (mem-telemetry compiled out)");
        return Ok(0);
    }
    let metric = |r: &BenchRecord, key: &str| {
        r.metrics
            .iter()
            .find(|(name, _)| name == key)
            .map(|&(_, value)| value)
    };
    let build_rows: Vec<&BenchRecord> = records
        .iter()
        .filter(|r| r.experiment == "e15" && !r.algorithm.starts_with("serve/"))
        .collect();

    let mut violations = Vec::new();
    let mut checked = 0usize;

    let sequential: std::collections::HashMap<(String, usize), u64> = build_rows
        .iter()
        .filter(|r| r.threads == 0)
        .filter_map(|r| metric(r, "mem.peak_bytes").map(|p| ((r.algorithm.clone(), r.n), p)))
        .collect();
    for r in build_rows.iter().filter(|r| r.threads > 0) {
        let Some(par_peak) = metric(r, "mem.peak_bytes") else {
            continue;
        };
        let Some(&seq_peak) = sequential.get(&(r.algorithm.clone(), r.n)) else {
            violations.push(format!(
                "e15 {} n={} threads={} has no sequential peak baseline",
                r.algorithm, r.n, r.threads
            ));
            continue;
        };
        if par_peak < MEM_PEAK_FLOOR_BYTES && seq_peak < MEM_PEAK_FLOOR_BYTES {
            continue;
        }
        checked += 1;
        let bound = if r.algorithm.starts_with("global/") {
            MEM_PEAK_RATIO_GLOBAL
        } else {
            MEM_PEAK_RATIO
        };
        if par_peak as f64 > bound * seq_peak as f64 {
            violations.push(format!(
                "e15 {} n={} threads={}: peak {par_peak} B vs sequential {seq_peak} B \
                 ({:.2}x > {bound}x)",
                r.algorithm,
                r.n,
                r.threads,
                par_peak as f64 / seq_peak as f64
            ));
        }
    }

    for r in &build_rows {
        let (Some(heap), Some(cells)) = (metric(r, "mem.heap_bytes"), metric(r, "mem.cells"))
        else {
            continue;
        };
        if cells == 0 {
            continue;
        }
        checked += 1;
        let per_cell = heap as f64 / cells as f64;
        if per_cell > MEM_BYTES_PER_CELL_BUDGET {
            violations.push(format!(
                "e15 {} n={} threads={}: {per_cell:.1} B/cell > budget {MEM_BYTES_PER_CELL_BUDGET}",
                r.algorithm, r.n, r.threads
            ));
        }
    }

    if checked == 0 && violations.is_empty() {
        violations.push("no e15 memory records collected — run e15 with --gate".to_string());
    }
    if violations.is_empty() {
        Ok(checked)
    } else {
        Err(violations)
    }
}

fn e13_open_loop(profile: Profile, capture_telemetry: bool) -> Vec<BenchRecord> {
    use skyline_serve::{run_open_loop, OpenLoopSpec, ServerOptions, SkylineServer};

    // (rate q/s, arrivals): the schedule length arrivals/rate stays around
    // a quarter second so the smoke profile fits a per-push CI job.
    let (n, points, lanes_sweep, reps): (usize, Vec<(u64, u64)>, Vec<usize>, usize) = match profile
    {
        Profile::Smoke => (200, vec![(2_000, 500), (8_000, 1_000)], vec![0, 4], 2),
        Profile::Full => (400, vec![(2_000, 2_000), (8_000, 4_000)], vec![0, 1, 4], 3),
    };
    println!(
        "## E13 — open-loop tail latency ({} profile, n = {n})\n",
        match profile {
            Profile::Smoke => "smoke",
            Profile::Full => "full",
        }
    );
    println!("| rate (q/s) | lanes | achieved | p50 | p95 | p99 | p999 | max | checksum |");
    println!("|---|---|---|---|---|---|---|---|---|");

    let ds = sweep_dataset(n, Distribution::Independent);
    let mut records = Vec::new();
    for &(rate, arrivals) in &points {
        for &lanes in &lanes_sweep {
            let spec = OpenLoopSpec {
                lanes,
                rate,
                arrivals,
                domain: 10 * n as i64,
                seed: skyline_bench::BASE_SEED,
                ..OpenLoopSpec::default()
            };
            if capture_telemetry {
                telemetry::reset_metrics();
            }
            let mut elapsed: Vec<f64> = Vec::with_capacity(reps);
            let mut best: Option<skyline_serve::OpenLoopReport> = None;
            for _ in 0..reps {
                let options = ServerOptions {
                    with_global: true,
                    cache_slots: 4096,
                    parallel: ParallelConfig::sequential(),
                    ..ServerOptions::default()
                };
                let (server, _handles) = SkylineServer::with_dataset(&ds, options);
                let report = run_open_loop(&server, &spec);
                elapsed.push(report.elapsed_ms);
                match &best {
                    Some(b) if b.elapsed_ms <= report.elapsed_ms => {}
                    _ => best = Some(report),
                }
            }
            let report = best.expect("at least one repetition ran");
            elapsed.sort_by(|a, b| a.total_cmp(b));
            let mut metrics = if capture_telemetry {
                metric_pairs()
            } else {
                Vec::new()
            };
            let mut tails = |name: &str, hist: &skyline_serve::LatencyHistogram| {
                for (label, p) in PERCENTILE_LABELS {
                    metrics.push((
                        format!("{name}.{label}_us"),
                        percentile(&hist.buckets, p) / 1_000,
                    ));
                }
            };
            for (name, hist) in &report.families {
                tails(name, hist);
            }
            tails("overall", &report.overall);
            metrics.push(("checksum".to_string(), report.checksum));
            metrics.sort();
            let pct = |p: f64| -> f64 { percentile(&report.overall.buckets, p) as f64 / 1_000.0 };
            println!(
                "| {rate} | {lanes} | {:.0}/s | {:.1}us | {:.1}us | {:.1}us | {:.1}us | {:.1}us | {:016x} |",
                report.achieved_rate(),
                pct(50.0),
                pct(95.0),
                pct(99.0),
                pct(99.9),
                report.overall.max_ns as f64 / 1_000.0,
                report.checksum,
            );
            records.push(BenchRecord {
                experiment: "e13".to_string(),
                algorithm: format!("openloop/r{rate}"),
                n,
                s: 10 * n as i64,
                d: 2,
                distribution: Distribution::Independent.name().to_string(),
                threads: lanes,
                reps,
                min_ms: elapsed[0],
                median_ms: elapsed[elapsed.len() / 2],
                metrics,
            });
        }
    }
    println!();
    records
}

/// A diagram build parameterized only by the parallel configuration, over a
/// fixed sweep dataset.
type Build = Box<dyn Fn(&Dataset, &ParallelConfig)>;

/// One E11 configuration.
struct ScalabilityConfig {
    algorithm: &'static str,
    n: usize,
    distribution: Distribution,
    reps: usize,
    build: Build,
}

fn scalability_configs(profile: Profile) -> Vec<ScalabilityConfig> {
    let quadrant = |engine: QuadrantEngine| -> Build {
        Box::new(move |ds, cfg| {
            let _ = std::hint::black_box(engine.build_with(ds, cfg));
        })
    };
    let global_with = |engine: QuadrantEngine| -> Build {
        Box::new(move |ds, cfg| {
            let _ = std::hint::black_box(global::build_with(ds, engine, cfg));
        })
    };
    let dynamic_with = |engine: DynamicEngine| -> Build {
        Box::new(move |ds, cfg| {
            let _ = std::hint::black_box(engine.build_with(ds, cfg));
        })
    };
    let cfg = |algorithm, n, distribution, reps, build| ScalabilityConfig {
        algorithm,
        n,
        distribution,
        reps,
        build,
    };

    use Distribution::{Anticorrelated, Independent};
    match profile {
        Profile::Full => vec![
            cfg(
                "global/scanning",
                400,
                Independent,
                2,
                global_with(QuadrantEngine::Scanning),
            ),
            cfg(
                "global/scanning",
                800,
                Independent,
                3,
                global_with(QuadrantEngine::Scanning),
            ),
            cfg(
                "global/scanning",
                800,
                Anticorrelated,
                2,
                global_with(QuadrantEngine::Scanning),
            ),
            cfg(
                "global/sweeping",
                800,
                Independent,
                2,
                global_with(QuadrantEngine::Sweeping),
            ),
            cfg(
                "quadrant/scanning",
                800,
                Independent,
                3,
                quadrant(QuadrantEngine::Scanning),
            ),
            cfg(
                "quadrant/sweeping",
                800,
                Independent,
                3,
                quadrant(QuadrantEngine::Sweeping),
            ),
            cfg(
                "dynamic/scanning",
                40,
                Independent,
                2,
                dynamic_with(DynamicEngine::Scanning),
            ),
            cfg(
                "dynamic/subset",
                30,
                Independent,
                2,
                dynamic_with(DynamicEngine::Subset),
            ),
        ],
        Profile::Smoke => vec![
            cfg(
                "global/scanning",
                100,
                Independent,
                5,
                global_with(QuadrantEngine::Scanning),
            ),
            cfg(
                "global/sweeping",
                100,
                Independent,
                5,
                global_with(QuadrantEngine::Sweeping),
            ),
            cfg(
                "quadrant/scanning",
                200,
                Independent,
                5,
                quadrant(QuadrantEngine::Scanning),
            ),
            cfg(
                "quadrant/sweeping",
                200,
                Independent,
                5,
                quadrant(QuadrantEngine::Sweeping),
            ),
            cfg(
                "dynamic/scanning",
                10,
                Independent,
                3,
                dynamic_with(DynamicEngine::Scanning),
            ),
            cfg(
                "dynamic/subset",
                10,
                Independent,
                3,
                dynamic_with(DynamicEngine::Subset),
            ),
        ],
    }
}

/// E11: construction-time scalability over the `SKYLINE_THREADS` sweep.
/// `threads = 0` is the historical sequential reference path; `threads >= 1`
/// selects the restructured parallel engines (worker count capped at the
/// hardware width, see `skyline_core::parallel`). Returns the machine-
/// readable records backing `BENCH_PR3.json`.
fn e11_parallel_scalability(profile: Profile, capture_telemetry: bool) -> Vec<BenchRecord> {
    let threads = [0usize, 1, 2, 4];
    println!(
        "## E11 — parallel scalability ({} profile)\n",
        match profile {
            Profile::Smoke => "smoke",
            Profile::Full => "full",
        }
    );
    println!("| algorithm | dist | n | t=0 (seq) | t=1 | t=2 | t=4 | speedup (t=4) |");
    println!("|---|---|---|---|---|---|---|---|");

    let mut records = Vec::new();
    for config in scalability_configs(profile) {
        let ds = sweep_dataset(config.n, config.distribution);
        let mut row = format!(
            "| {} | {} | {} |",
            config.algorithm,
            config.distribution.name(),
            config.n
        );
        let mut seq_min = f64::NAN;
        let mut t4_min = f64::NAN;
        for t in threads {
            // Capped, not exact: a t=4 row on a 2-core runner measures the
            // 2-worker configuration, not oversubscription thrash. The
            // efficiency gate grades the resulting ratios by the same
            // hardware width (`available_threads`).
            let cfg = ParallelConfig::with_threads(t).cap_to_hardware();
            if capture_telemetry {
                telemetry::reset_metrics();
            }
            let stats = time_stats(config.reps, || (config.build)(&ds, &cfg));
            let metrics = if capture_telemetry {
                metric_pairs()
            } else {
                Vec::new()
            };
            if t == 0 {
                seq_min = stats.min_ms;
            }
            if t == 4 {
                t4_min = stats.min_ms;
            }
            row.push_str(&format!(" {} |", fmt_ms(stats.min_ms)));
            records.push(BenchRecord {
                experiment: "e11".to_string(),
                algorithm: config.algorithm.to_string(),
                n: config.n,
                s: 10 * config.n as i64,
                d: 2,
                distribution: config.distribution.name().to_string(),
                threads: t,
                reps: config.reps,
                min_ms: stats.min_ms,
                median_ms: stats.median_ms,
                metrics,
            });
        }
        row.push_str(&format!(" {:.2}x |", seq_min / t4_min));
        println!("{row}");
    }
    println!();
    records
}

/// E12: concurrent serving throughput over the reader sweep. The *total*
/// query work is held fixed while the reader count grows, so `threads = 0`
/// (readers inline on the caller) is the sequential baseline the `--gate`
/// compares against, exactly like E11. Each repetition serves a fresh
/// [`skyline_serve::SkylineServer`] (construction excluded from timing);
/// every round applies writer updates behind a `refresh()` barrier before
/// the readers fan out, so the measured loop includes epoch publication.
/// Records use `threads` for the reader count.
fn e12_serving_throughput(profile: Profile, capture_telemetry: bool) -> Vec<BenchRecord> {
    use skyline_serve::{QueryMix, ServerOptions, SkylineServer, WorkloadSpec};

    // (n, total queries, rounds, updates/round, reps); the totals divide
    // evenly by rounds × readers for every reader count in the sweep.
    let (n, queries_total, rounds, updates, reps) = match profile {
        Profile::Smoke => (200usize, 2_000usize, 4usize, 4usize, 3usize),
        Profile::Full => (400, 8_000, 8, 8, 3),
    };
    let readers_sweep = [0usize, 1, 2, 4];
    println!(
        "## E12 — serving throughput, fixed total work ({} profile, n = {n}, \
         {queries_total} queries, {updates} updates/round)\n",
        match profile {
            Profile::Smoke => "smoke",
            Profile::Full => "full",
        }
    );
    println!("| algorithm | r=0 (inline) | r=1 | r=2 | r=4 | q/s (r=4) | cache hit rate (r=4) |");
    println!("|---|---|---|---|---|---|---|");

    let ds = sweep_dataset(n, Distribution::Independent);
    let mut records = Vec::new();
    for (algorithm, cache_slots) in [("serve/cached", 4096usize), ("serve/uncached", 0)] {
        let mut row = format!("| {algorithm} |");
        let mut last_qps = 0.0;
        let mut last_hit_rate = None;
        for readers in readers_sweep {
            let spec = WorkloadSpec {
                readers,
                rounds,
                queries_per_reader: queries_total / (rounds * readers.max(1)),
                updates_per_round: updates,
                domain: 10 * n as i64,
                seed: skyline_bench::BASE_SEED,
                mix: QueryMix::default(),
            };
            if capture_telemetry {
                telemetry::reset_metrics();
            }
            let mut elapsed: Vec<f64> = Vec::with_capacity(reps);
            for _ in 0..reps {
                let options = ServerOptions {
                    with_global: true,
                    cache_slots,
                    parallel: ParallelConfig::sequential(),
                    ..ServerOptions::default()
                };
                let (server, handles) = SkylineServer::with_dataset(&ds, options);
                let report = skyline_serve::workload::run(&server, &spec, &handles);
                elapsed.push(report.elapsed_ms);
                if readers == 4 {
                    last_qps = report.queries_per_sec();
                    let cache = report.cache;
                    last_hit_rate =
                        (cache.lookups() > 0).then(|| cache.hits as f64 / cache.lookups() as f64);
                }
            }
            elapsed.sort_by(|a, b| a.total_cmp(b));
            let min_ms = elapsed[0];
            let median_ms = elapsed[elapsed.len() / 2];
            let metrics = if capture_telemetry {
                metric_pairs()
            } else {
                Vec::new()
            };
            row.push_str(&format!(" {} |", fmt_ms(min_ms)));
            records.push(BenchRecord {
                experiment: "e12".to_string(),
                algorithm: algorithm.to_string(),
                n,
                s: 10 * n as i64,
                d: 2,
                distribution: Distribution::Independent.name().to_string(),
                threads: readers,
                reps,
                min_ms,
                median_ms,
                metrics,
            });
        }
        row.push_str(&match last_hit_rate {
            Some(rate) => format!(" {last_qps:.0} | {:.1}% |", 100.0 * rate),
            None => format!(" {last_qps:.0} | — |"),
        });
        println!("{row}");
    }
    println!();
    records
}

/// E10: the extensions beyond the paper's text (DESIGN.md §2).
fn e10_extensions() {
    use skyline_core::skyband;

    println!("## E10 — extensions (independent data)\n");

    println!("### k-skyband diagram construction (n = 200)\n");
    println!("| k | baseline | incremental | avg band size (cell (0,0)) |");
    println!("|---|---|---|---|");
    let ds = sweep_dataset(200, Distribution::Independent);
    for k in [1u32, 2, 4, 8] {
        let b = time_ms(2, || skyband::build_baseline(&ds, k));
        let i = time_ms(2, || skyband::build_incremental(&ds, k));
        let d = skyband::build_incremental(&ds, k);
        println!(
            "| {k} | {} | {} | {} |",
            fmt_ms(b),
            fmt_ms(i),
            d.result((0, 0)).len()
        );
    }

    println!("\n### literal Algorithm 4 vs corner-key sweeping (general position)\n");
    println!("| n | algorithm4 (vertex walks) | sweeping (full diagram) |");
    println!("|---|---|---|");
    for n in [100usize, 200, 400] {
        // General position: the sweep datasets use domain 10n, which keeps
        // ties rare but not impossible; retry seeds until tie-free.
        let mut seed_offset = 0;
        let ds = loop {
            let candidate = skyline_data::DatasetSpec {
                n,
                dims: 2,
                domain: 1000 * n as i64,
                distribution: Distribution::Independent,
                seed: skyline_bench::BASE_SEED + seed_offset,
            }
            .build_2d();
            if skyline_core::quadrant::algorithm4::build(&candidate).is_ok() {
                break candidate;
            }
            seed_offset += 1;
        };
        let a4 = time_ms(2, || {
            skyline_core::quadrant::algorithm4::build(&ds).unwrap()
        });
        let sw = time_ms(2, || QuadrantEngine::Sweeping.build(&ds));
        println!("| {n} | {} | {} |", fmt_ms(a4), fmt_ms(sw));
    }

    println!("\n### d-dimensional global diagram (n = 12)\n");
    println!("| d | build (DSG reflections) |");
    println!("|---|---|");
    for d in [2usize, 3, 4] {
        let ds = highd_dataset(12, d, Distribution::Independent);
        let t = time_ms(2, || {
            skyline_core::highd::global::build(&ds, HighDEngine::DirectedSkylineGraph)
        });
        println!("| {d} | {} |", fmt_ms(t));
    }
    println!();
}

/// E9: the application layer — the paper's motivating use cases, measured.
fn e9_applications() {
    use skyline_apps::auth::{verify, AuthenticatedDiagram};
    use skyline_apps::continuous::trace_segment;
    use skyline_apps::pir::{private_skyline_query, PirServer};
    use skyline_apps::reverse::ReverseSkylineIndex;
    use skyline_apps::reverse_diagram::ReverseSkylineDiagram;
    use skyline_core::serialize;

    println!("## E9 — applications (independent data)\n");
    let ds = sweep_dataset(200, Distribution::Independent);
    let diagram = QuadrantEngine::Sweeping.build(&ds);
    let mut rng = StdRng::seed_from_u64(5);
    let lim = 2000i64;
    let queries: Vec<Point> = (0..1000)
        .map(|_| Point::new(rng.gen_range(0..lim), rng.gen_range(0..lim)))
        .collect();

    println!("| operation | configuration | time |");
    println!("|---|---|---|");

    let t = time_ms(3, || {
        queries
            .iter()
            .take(100)
            .map(|&q| {
                let b = Point::new((q.x + 977) % lim, (q.y + 463) % lim);
                trace_segment(&diagram, q, b).len()
            })
            .sum::<usize>()
    });
    println!(
        "| moving-query itinerary | 100 random segments, n = 200 | {} |",
        fmt_ms(t)
    );

    let auth = AuthenticatedDiagram::new(&ds, diagram.clone());
    let root = auth.root();
    let t = time_ms(3, || {
        queries
            .iter()
            .filter(|&&q| verify(&auth.query(&ds, q), &root))
            .count()
    });
    println!(
        "| authenticated query + verify | 1000 queries, n = 200 | {} |",
        fmt_ms(t)
    );
    let t = time_ms(2, || AuthenticatedDiagram::new(&ds, diagram.clone()));
    println!(
        "| Merkle tree construction | n = 200 diagram | {} |",
        fmt_ms(t)
    );

    let server = PirServer::new(&diagram);
    let params = server.client_params(&diagram);
    let t = time_ms(2, || {
        let mut rng = StdRng::seed_from_u64(11);
        queries
            .iter()
            .take(20)
            .map(|&q| private_skyline_query(&server, &server, &params, q, &mut rng).len())
            .sum::<usize>()
    });
    println!(
        "| 2-server XOR-PIR retrieval | 20 queries over {} records | {} |",
        params.n_records,
        fmt_ms(t)
    );

    let t = time_ms(2, || ReverseSkylineIndex::new(&ds));
    println!("| reverse-skyline index build | n = 200 | {} |", fmt_ms(t));
    let index = ReverseSkylineIndex::new(&ds);
    let t = time_ms(3, || {
        queries.iter().map(|&q| index.query(q).len()).sum::<usize>()
    });
    println!("| reverse-skyline queries | 1000 queries | {} |", fmt_ms(t));

    let small = sweep_dataset(12, Distribution::Independent);
    let t = time_ms(2, || ReverseSkylineDiagram::build(&small));
    let rd = ReverseSkylineDiagram::build(&small);
    println!(
        "| reverse-skyline *diagram* build | n = 12, {} cells, {} distinct | {} |",
        rd.cell_count(),
        rd.distinct_results(),
        fmt_ms(t)
    );

    let bytes = serialize::encode_cell_diagram(&diagram);
    let t = time_ms(3, || serialize::encode_cell_diagram(&diagram));
    println!(
        "| diagram serialization | n = 200 -> {:.1} KiB | {} |",
        bytes.len() as f64 / 1024.0,
        fmt_ms(t)
    );
    let t = time_ms(3, || serialize::decode_cell_diagram(&bytes).expect("valid"));
    println!(
        "| diagram deserialization (validated) | same | {} |",
        fmt_ms(t)
    );
    println!();
}

/// E1: quadrant diagram construction time vs n, per distribution & engine.
fn e1_quadrant_construction() {
    println!("## E1 — quadrant diagram construction time vs n\n");
    let ns = [100usize, 200, 400, 800, 1600];
    for dist in Distribution::ALL {
        println!("### {} data\n", dist.name());
        println!("| n | baseline | dsg | scanning | sweeping |");
        println!("|---|---|---|---|---|");
        for &n in &ns {
            let ds = sweep_dataset(n, dist);
            let mut row = format!("| {n} |");
            for engine in QuadrantEngine::ALL {
                // The O(n³) engines get one repetition at the largest sizes.
                let reps = if n >= 800 { 1 } else { 2 };
                let skip_slow = n > 800 && engine == QuadrantEngine::Baseline;
                let cell = if skip_slow {
                    "—".to_string()
                } else {
                    fmt_ms(time_ms(reps, || engine.build(&ds)))
                };
                row.push_str(&format!(" {cell} |"));
            }
            println!("{row}");
        }
        println!();
    }
}

/// E2: effect of the per-dimension domain size s at fixed n.
fn e2_domain_size() {
    println!("## E2 — effect of domain size s (n = 400, independent data)\n");
    println!("| s | cells | baseline | dsg | scanning | sweeping |");
    println!("|---|---|---|---|---|---|");
    for s in [16i64, 64, 256, 1024, 4096] {
        let ds = domain_dataset(400, s, Distribution::Independent);
        let cells = CellGrid::new(&ds).cell_count();
        let mut row = format!("| {s} | {cells} |");
        for engine in QuadrantEngine::ALL {
            row.push_str(&format!(" {} |", fmt_ms(time_ms(2, || engine.build(&ds)))));
        }
        println!("{row}");
    }
    println!();
}

/// E3: dynamic diagram construction time vs n.
fn e3_dynamic_construction() {
    println!("## E3 — dynamic diagram construction time vs n (independent data)\n");
    println!("| n | subcells | baseline | subset | scanning |");
    println!("|---|---|---|---|---|");
    for n in [10usize, 20, 40, 60] {
        let ds = sweep_dataset(n, Distribution::Independent);
        let subcells = dynamic::SubcellGrid::new(&ds).subcell_count();
        let mut row = format!("| {n} | {subcells} |");
        for engine in DynamicEngine::ALL {
            let skip_slow = n > 40 && engine == DynamicEngine::Baseline;
            let cell = if skip_slow {
                "—".to_string()
            } else {
                fmt_ms(time_ms(1, || engine.build(&ds)))
            };
            row.push_str(&format!(" {cell} |"));
        }
        println!("{row}");
    }
    println!();
}

/// E4: high-dimensional construction vs d and vs n at d = 3.
fn e4_highd_construction() {
    println!("## E4 — high-dimensional construction (independent data)\n");
    println!("| d | n | cells | baseline | dsg | scanning | scanning-ie | sweeping |");
    println!("|---|---|---|---|---|---|---|---|");
    let configs = [(2usize, 20usize), (3, 20), (4, 20), (3, 10), (3, 40)];
    for (d, n) in configs {
        let ds = highd_dataset(n, d, Distribution::Independent);
        let grid = skyline_core::highd::OrthantGrid::new(&ds);
        let mut row = format!("| {d} | {n} | {} |", grid.cell_count());
        for engine in HighDEngine::ALL {
            row.push_str(&format!(" {} |", fmt_ms(time_ms(2, || engine.build(&ds)))));
        }
        println!("{row}");
    }
    println!();
}

/// E5: diagram size statistics — the polyomino/cell compression story.
fn e5_diagram_statistics() {
    println!("## E5 — diagram size statistics (sweeping engine)\n");
    println!("| dist | n | cells | polyominoes | poly/cell | distinct results | avg sky | max sky | interned ids |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for dist in Distribution::ALL {
        for n in [100usize, 400, 1600] {
            let ds = sweep_dataset(n, dist);
            let swept = quadrant::sweeping::build(&ds);
            let stats = swept.cell_diagram.stats();
            println!(
                "| {} | {} | {} | {} | {:.3} | {} | {:.2} | {} | {} |",
                dist.name(),
                n,
                stats.cell_count,
                swept.merged.len(),
                swept.merged.len() as f64 / stats.cell_count as f64,
                stats.distinct_results,
                stats.avg_result_len,
                stats.max_result_len,
                stats.interned_ids,
            );
        }
    }
    println!();
}

/// E6: query latency — precomputed diagram lookup vs from-scratch.
fn e6_query_time() {
    println!(
        "## E6 — query time: diagram lookup vs from-scratch (independent data, 10k queries)\n"
    );
    println!("| n | lookup (quadrant) | scratch (quadrant) | lookup (global) | scratch (global) | quadrant speedup |");
    println!("|---|---|---|---|---|---|");
    let mut rng = StdRng::seed_from_u64(1);
    for n in [100usize, 400, 1600] {
        let ds = sweep_dataset(n, Distribution::Independent);
        let lim = 10 * n as i64;
        let queries: Vec<Point> = (0..10_000)
            .map(|_| Point::new(rng.gen_range(0..lim), rng.gen_range(0..lim)))
            .collect();
        let quadrant_diag = QuadrantEngine::Sweeping.build(&ds);
        let global_diag = global::build(&ds, QuadrantEngine::Sweeping);

        let lookup_q = time_ms(3, || {
            queries
                .iter()
                .map(|&q| quadrant_diag.query(q).len())
                .sum::<usize>()
        });
        let scratch_q = time_ms(3, || {
            queries
                .iter()
                .map(|&q| query::quadrant_skyline(&ds, q).len())
                .sum::<usize>()
        });
        let lookup_g = time_ms(3, || {
            queries
                .iter()
                .map(|&q| global_diag.query(q).len())
                .sum::<usize>()
        });
        let scratch_g = time_ms(3, || {
            queries
                .iter()
                .map(|&q| query::global_skyline(&ds, q).len())
                .sum::<usize>()
        });
        println!(
            "| {n} | {} | {} | {} | {} | {:.0}x |",
            fmt_ms(lookup_q),
            fmt_ms(scratch_q),
            fmt_ms(lookup_g),
            fmt_ms(scratch_g),
            scratch_q / lookup_q,
        );
    }

    println!("\n(dynamic skyline, n = 60, 10k queries)\n");
    println!("| lookup (dynamic) | scratch (dynamic) | speedup |");
    println!("|---|---|---|");
    let ds = sweep_dataset(60, Distribution::Independent);
    let dyn_diag = DynamicEngine::Scanning.build(&ds);
    let queries: Vec<Point> = (0..10_000)
        .map(|_| Point::new(rng.gen_range(0..600), rng.gen_range(0..600)))
        .collect();
    let lookup = time_ms(3, || {
        queries
            .iter()
            .map(|&q| dyn_diag.query(q).len())
            .sum::<usize>()
    });
    let scratch = time_ms(3, || {
        queries
            .iter()
            .map(|&q| query::dynamic_skyline(&ds, q).len())
            .sum::<usize>()
    });
    println!(
        "| {} | {} | {:.0}x |",
        fmt_ms(lookup),
        fmt_ms(scratch),
        scratch / lookup
    );
    println!();
}

/// E7: global diagram construction (4 reflected runs + union) vs quadrant.
fn e7_global_construction() {
    println!("## E7 — global vs quadrant construction (sweeping engine)\n");
    println!("| dist | n | quadrant | global | ratio |");
    println!("|---|---|---|---|---|");
    for dist in Distribution::ALL {
        for n in [100usize, 400, 800] {
            let ds = sweep_dataset(n, dist);
            let q = time_ms(2, || QuadrantEngine::Sweeping.build(&ds));
            let g = time_ms(2, || global::build(&ds, QuadrantEngine::Sweeping));
            println!(
                "| {} | {} | {} | {} | {:.1}x |",
                dist.name(),
                n,
                fmt_ms(q),
                fmt_ms(g),
                g / q
            );
        }
    }
    println!();
}

/// E8: ablations of the design choices called out in DESIGN.md.
fn e8_ablations() {
    println!("## E8 — ablations\n");

    // (a) DSG engine: graph construction vs sweep.
    println!("### E8a — DSG engine: graph construction vs deletion sweep (independent)\n");
    println!("| n | build DSG | sweep only | total |");
    println!("|---|---|---|---|");
    for n in [200usize, 400, 800] {
        let ds = sweep_dataset(n, Distribution::Independent);
        let graph = time_ms(2, || DirectedSkylineGraph::new_2d(&ds));
        let dsg = DirectedSkylineGraph::new_2d(&ds);
        let sweep = time_ms(2, || {
            quadrant::dsg_algorithm::build_with_dsg(CellGrid::new(&ds), &dsg)
        });
        let total = time_ms(2, || QuadrantEngine::DirectedSkylineGraph.build(&ds));
        println!(
            "| {n} | {} | {} | {} |",
            fmt_ms(graph),
            fmt_ms(sweep),
            fmt_ms(total)
        );
    }

    // (b) High-d scanning: union form vs the paper's inclusion–exclusion.
    println!("\n### E8b — high-d scanning: union vs inclusion–exclusion (d = 3, independent)\n");
    println!("| n | union | inclusion–exclusion |");
    println!("|---|---|---|");
    for n in [10usize, 20, 40] {
        let ds = highd_dataset(n, 3, Distribution::Independent);
        let u = time_ms(2, || HighDEngine::Scanning.build(&ds));
        let ie = time_ms(2, || HighDEngine::ScanningInclusionExclusion.build(&ds));
        println!("| {n} | {} | {} |", fmt_ms(u), fmt_ms(ie));
    }

    // (c) Subset engine: global-diagram cost vs per-subcell cost.
    println!("\n### E8c — dynamic subset engine: global-diagram share (independent)\n");
    println!("| n | build global | subcells given global | total subset | baseline |");
    println!("|---|---|---|---|---|");
    for n in [10usize, 20, 40] {
        let ds = sweep_dataset(n, Distribution::Independent);
        let g = time_ms(2, || global::build(&ds, QuadrantEngine::Sweeping));
        let global_diag = global::build(&ds, QuadrantEngine::Sweeping);
        let rest = time_ms(1, || dynamic::subset::build_with_global(&ds, &global_diag));
        let total = time_ms(1, || DynamicEngine::Subset.build(&ds));
        let base = time_ms(1, || DynamicEngine::Baseline.build(&ds));
        println!(
            "| {n} | {} | {} | {} | {} |",
            fmt_ms(g),
            fmt_ms(rest),
            fmt_ms(total),
            fmt_ms(base)
        );
    }

    // (d) Merging: union–find vs flood fill.
    println!("\n### E8d — polyomino merging: union–find vs flood fill (independent)\n");
    println!("| n | union–find | flood fill |");
    println!("|---|---|---|");
    for n in [200usize, 400, 800] {
        let ds = sweep_dataset(n, Distribution::Independent);
        let d = QuadrantEngine::Sweeping.build(&ds);
        let uf = time_ms(3, || merge(&d));
        let ff = time_ms(3, || merge_flood_fill(&d));
        println!("| {n} | {} | {} |", fmt_ms(uf), fmt_ms(ff));
    }
    println!();
}
