//! Differential fuzzing harness: generates random datasets across all
//! distributions, domain regimes (general position through heavy ties),
//! and sizes, and checks that every engine family agrees — forever, or for
//! `--seconds N` (default 10).
//!
//! ```text
//! cargo run -p skyline-bench --release --bin fuzz_diff -- --seconds 30
//! ```
//!
//! Beyond cross-engine agreement, every reference diagram is run through
//! the full invariant suite in [`skyline_core::invariants`]
//! **unconditionally** (the engines' own `debug_assert!` hooks are compiled
//! out in release builds, which is how this harness normally runs): brute
//! force semantic recompute of every cell, Definition 2 union check for
//! global diagrams, and the polyomino partition checks for the swept
//! diagram's merge.
//!
//! On a mismatch or invariant violation it prints the offending spec plus
//! a copy-pasteable one-round repro command, and exits nonzero:
//!
//! ```text
//! MISMATCH in scanning for DatasetSpec { n: 17, ... seed: 12345 }
//! reproduce with: cargo run -p skyline-bench --release --bin fuzz_diff -- --seed 12345
//! ```
//!
//! `--seed N` replays exactly that round (the spec is derived from the
//! seed alone, so the seed is the minimal repro). This is the long-running
//! companion to the bounded proptest suites.

use std::time::{Duration, Instant};

use skyline_core::dynamic::DynamicEngine;
use skyline_core::geometry::Dataset;
use skyline_core::global;
use skyline_core::highd::HighDEngine;
use skyline_core::invariants::{self, CellSemantics, FULL_SAMPLE};
use skyline_core::parallel::ParallelConfig;
use skyline_core::quadrant::QuadrantEngine;
use skyline_data::{DatasetSpec, Distribution};

const USAGE: &str = "\
Usage: fuzz_diff [--seconds N] [--seed SEED] [--help]

  --seconds N   fuzz for N wall-clock seconds (default 10)
  --seed SEED   replay exactly one round with this seed and exit
  --help, -h    print this message

Exit status: 0 all rounds agreed, 1 mismatch/invariant violation, 2 bad usage.";

/// Thread counts for the per-round parallel-vs-sequential differential
/// checks (in addition to whatever `SKYLINE_THREADS` selects for the
/// reference builds). Includes 1 (a single worker through the full guided
/// band-split machinery) and 4 (the CI gate's wide configuration) so the
/// threads {0, 1, 4} triple of the efficiency gate is exactly the set
/// proven bit-identical here; `with_threads` spawns exactly that many
/// workers even beyond the hardware width.
const FUZZ_THREADS: [usize; 4] = [1, 2, 3, 4];

/// Parsed command line for the harness.
#[derive(Debug, PartialEq, Eq)]
struct Options {
    seconds: u64,
    repro_seed: Option<u64>,
    help: bool,
}

/// Exhaustive argument parsing: every token is either a recognized flag, a
/// recognized flag's value, or an error — unknown arguments are never
/// silently ignored, wherever they appear on the line.
fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        seconds: 10,
        repro_seed: None,
        help: false,
    };
    let mut args = args;
    let int_value = |args: &mut dyn Iterator<Item = String>, name: &str| {
        let value = args
            .next()
            .ok_or_else(|| format!("{name} needs an integer value"))?;
        value
            .parse::<u64>()
            .map_err(|_| format!("{name} needs an integer value, got '{value}'"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seconds" => opts.seconds = int_value(&mut args, "--seconds")?,
            "--seed" => opts.repro_seed = Some(int_value(&mut args, "--seed")?),
            "--help" | "-h" => opts.help = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if opts.help {
        println!("{USAGE}");
        return;
    }

    if let Some(seed) = opts.repro_seed {
        round(seed, true);
        println!("seed {seed}: all engine families agreed and all invariants held");
        return;
    }

    let deadline = Instant::now() + Duration::from_secs(opts.seconds);
    let mut rounds = 0u64;
    let mut seed = 0xF00D_u64;

    while Instant::now() < deadline {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        round(seed, rounds % 4 == 0);
        rounds += 1;
    }
    println!("fuzz_diff: {rounds} rounds, all engine families agreed and all invariants held");
}

/// One fully seed-determined fuzzing round: dataset generation, every
/// cross-engine check, and the unconditional invariant validation.
fn round(seed: u64, with_highd: bool) {
    let pick = |m: u64, options: &[i64]| options[(seed >> (m * 7)) as usize % options.len()];

    let distribution = Distribution::ALL[(seed >> 3) as usize % 3];
    let n = pick(1, &[3, 8, 17, 33, 50]) as usize;
    let domain = pick(2, &[3, 7, 30, 1000]);
    let spec = DatasetSpec {
        n,
        dims: 2,
        domain,
        distribution,
        seed,
    };

    let ds = spec.build_2d();
    check_quadrant(&spec, &ds);
    check_global(&spec, &ds);
    if n <= 12 {
        check_dynamic(&spec, &ds);
    }
    if with_highd {
        let dims = 3 + (seed >> 11) as usize % 2;
        let spec3 = DatasetSpec {
            n: n.min(11),
            dims,
            domain,
            distribution,
            seed,
        };
        check_highd(&spec3);
    }
}

/// Semantic recompute budget: exhaustive for small grids, a deterministic
/// 512-cell sample for the largest rounds so throughput stays useful.
fn budget(n: usize) -> usize {
    if n <= 20 {
        FULL_SAMPLE
    } else {
        512
    }
}

fn fail(what: &str, spec: &DatasetSpec) -> ! {
    eprintln!("MISMATCH in {what} for {spec:?}");
    eprintln!(
        "reproduce with: cargo run -p skyline-bench --release --bin fuzz_diff -- --seed {}",
        spec.seed
    );
    std::process::exit(1);
}

fn check_quadrant(spec: &DatasetSpec, ds: &Dataset) {
    let reference = QuadrantEngine::Baseline.build(ds);
    if let Err(v) =
        invariants::validate_cell_diagram(ds, &reference, CellSemantics::Quadrant, budget(spec.n))
    {
        fail(&format!("quadrant invariants: {v}"), spec);
    }
    for engine in QuadrantEngine::ALL {
        if !engine.build(ds).same_results(&reference) {
            fail(engine.name(), spec);
        }
    }
    // Parallel engines must be bit-identical to the sequential reference at
    // fixed thread counts, independent of SKYLINE_THREADS.
    for engine in [QuadrantEngine::Scanning, QuadrantEngine::Sweeping] {
        for threads in FUZZ_THREADS {
            if !engine
                .build_with(ds, &ParallelConfig::with_threads(threads))
                .same_results(&reference)
            {
                fail(&format!("{}-threads-{threads}", engine.name()), spec);
            }
        }
    }
    // k-skyband engines, k = 2.
    let band_ref = skyline_core::skyband::build_baseline(ds, 2);
    if !skyline_core::skyband::build_incremental(ds, 2).same_results(&band_ref) {
        fail("skyband-incremental", spec);
    }
    // Serialization roundtrip.
    let bytes = skyline_core::serialize::encode_cell_diagram(&reference);
    match skyline_core::serialize::decode_cell_diagram(&bytes) {
        Ok(decoded) if decoded.same_results(&reference) => {}
        _ => fail("serialize-roundtrip", spec),
    }
    // Snapshot-container roundtrip: save → load must reproduce the quadrant
    // diagram and handle table exactly before the invariant checks below.
    let index = skyline_core::index::SkylineIndex::new(ds);
    let handles: Vec<skyline_core::maintained::Handle> = (0..ds.len() as u64)
        .map(skyline_core::maintained::Handle)
        .collect();
    let container = skyline_core::container::encode_index(&index, &handles);
    match skyline_core::container::decode_index(&container) {
        Ok(loaded)
            if loaded.handles == handles
                && loaded.index.quadrant_diagram().same_results(&reference) => {}
        _ => fail("container-roundtrip", spec),
    }
    // The swept diagram's polyomino merge must be a valid maximal partition.
    let swept = skyline_core::quadrant::sweeping::build(ds);
    if let Err(v) = invariants::validate_merged_cells(&swept.cell_diagram, &swept.merged) {
        fail(&format!("swept merge invariants: {v}"), spec);
    }
    // Literal Algorithm 4 vs corner-key polyomino count (general position
    // only; bounded-domain rounds are skipped by the tie check inside).
    if let Ok(walks) = skyline_core::quadrant::algorithm4::build(ds) {
        let nonempty = swept
            .merged
            .iter()
            .filter(|p| !swept.cell_diagram.results().get(p.result).is_empty())
            .count();
        if walks.len() != nonempty {
            fail("algorithm4-count", spec);
        }
    }
}

fn check_global(spec: &DatasetSpec, ds: &Dataset) {
    let reference = global::build(ds, QuadrantEngine::Baseline);
    if let Err(v) =
        invariants::validate_cell_diagram(ds, &reference, CellSemantics::Global, budget(spec.n))
    {
        fail(&format!("global invariants: {v}"), spec);
    }
    if !global::build(ds, QuadrantEngine::Sweeping).same_results(&reference) {
        fail("global-sweeping", spec);
    }
    for threads in FUZZ_THREADS {
        if !global::build_with(
            ds,
            QuadrantEngine::Sweeping,
            &ParallelConfig::with_threads(threads),
        )
        .same_results(&reference)
        {
            fail(&format!("global-sweeping-threads-{threads}"), spec);
        }
    }
}

fn check_dynamic(spec: &DatasetSpec, ds: &Dataset) {
    let reference = DynamicEngine::Baseline.build(ds);
    if let Err(v) = invariants::validate_subcell_diagram(ds, &reference, budget(spec.n)) {
        fail(&format!("dynamic invariants: {v}"), spec);
    }
    for engine in DynamicEngine::ALL {
        if !engine.build(ds).same_results(&reference) {
            fail(engine.name(), spec);
        }
        for threads in FUZZ_THREADS {
            if !engine
                .build_with(ds, &ParallelConfig::with_threads(threads))
                .same_results(&reference)
            {
                fail(&format!("{}-threads-{threads}", engine.name()), spec);
            }
        }
    }
    let merged = skyline_core::diagram::merge::merge_subcells(&reference);
    if let Err(v) = invariants::validate_merged_subcells(&reference, &merged) {
        fail(&format!("dynamic merge invariants: {v}"), spec);
    }
}

fn check_highd(spec: &DatasetSpec) {
    let ds = spec.build_d();
    let reference = HighDEngine::Baseline.build(&ds);
    for engine in HighDEngine::ALL {
        if !engine.build(&ds).same_results(&reference) {
            fail(engine.name(), spec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.seconds, 10);
        assert_eq!(opts.repro_seed, None);
        assert!(!opts.help);
    }

    #[test]
    fn recognized_flags() {
        let opts = parse(&["--seconds", "30", "--seed", "42"]).unwrap();
        assert_eq!(opts.seconds, 30);
        assert_eq!(opts.repro_seed, Some(42));
        assert!(parse(&["--help"]).unwrap().help);
        assert!(parse(&["-h"]).unwrap().help);
    }

    #[test]
    fn unknown_arguments_are_errors_anywhere() {
        assert!(parse(&["--bogus"]).is_err());
        // A trailing unknown argument after a valid flag pair must also fail
        // — nothing on the line may be silently ignored.
        assert!(parse(&["--seconds", "5", "--bogus"]).is_err());
        assert!(parse(&["--seed", "1", "extra"]).is_err());
    }

    #[test]
    fn missing_or_malformed_values_are_errors() {
        assert!(parse(&["--seconds"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seconds", "soon"]).is_err());
        assert!(parse(&["--seed", "-3"]).is_err());
    }
}
