//! Trace diagnosis for `skydiag report`: parses the Chrome trace files
//! [`crate::json::render_chrome_trace`] emits and turns them into a
//! machine-checkable verdict about where the build spent its time.
//!
//! The analysis answers the question ROADMAP item 4 poses: the parallel
//! scaling cliff is *imbalance-bound* — but which kind? The diagnosis
//! computes, per trace:
//!
//! * **per-thread busy fraction** — the share of the trace wall clock
//!   each telemetry thread spent inside top-level (depth-0) spans;
//! * **stitch stall** — total time in `pool.stitch` spans, the
//!   sequential merge that caps parallel speedup;
//! * **chunk-claim imbalance** — the spread of `pool.worker` payloads
//!   (chunks claimed per worker), the direct signature of the row-band
//!   split assigning unequal work;
//! * **critical-path phases** — top-level spans aggregated by name,
//!   sorted by total time.
//!
//! The verdict names the dominant bound (`band-imbalance`,
//! `stitch-stall`, `single-worker`, or `balanced`) so CI can assert on
//! it and so the ROADMAP item 4 rearchitecture has a baseline to beat.
//! When the memory-observatory counters ride along
//! ([`diagnose_with_mem`]), a build whose transient allocations dwarf its
//! retained arenas is re-labelled `alloc-churn`: the time is going to the
//! allocator, not to imbalanced compute.
//!
//! Like [`crate::json::validate_chrome_trace`], the parser is
//! line-oriented and only accepts the exact shape this workspace emits —
//! it is not a general JSON parser.

/// One `"X"` (complete) event parsed back out of an emitted trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedEvent {
    /// Span name, e.g. `"pool.worker"`.
    pub name: String,
    /// Compact telemetry thread id.
    pub tid: u64,
    /// Start timestamp, µs on the trace's shared axis.
    pub ts_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Nesting depth when the span opened (0 = top level).
    pub depth: u64,
    /// Optional span payload (e.g. chunks claimed for `pool.worker`).
    pub payload: Option<u64>,
}

/// Extracts the unsigned integer following `"key":` on an event line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extracts the string following `"key":"` on an event line (names in
/// this workspace are ASCII identifiers; escapes are not expected).
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let end = line[at..].find('"')?;
    Some(line[at..at + end].to_string())
}

/// Parses a trace produced by [`crate::json::render_chrome_trace`] into
/// its complete events. Metadata (`"M"`) events are skipped; any line
/// that does not match the emitted shape is an error naming the line.
pub fn parse_chrome_trace(trace: &str) -> Result<Vec<ParsedEvent>, String> {
    let trace = trace.trim();
    let body = trace
        .strip_prefix("{\"traceEvents\":[")
        .and_then(|rest| rest.strip_suffix("]}"))
        .ok_or_else(|| "trace must be an object with a traceEvents array".to_string())?;
    let mut events = Vec::new();
    for (k, line) in body.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        let line = line.trim().trim_end_matches(',');
        if line.contains("\"ph\":\"M\"") {
            continue;
        }
        if !line.contains("\"ph\":\"X\"") {
            return Err(format!("event {k} has an unexpected phase: {line:?}"));
        }
        let parse = || -> Option<ParsedEvent> {
            Some(ParsedEvent {
                name: field_str(line, "name")?,
                tid: field_u64(line, "tid")?,
                ts_us: field_u64(line, "ts")?,
                dur_us: field_u64(line, "dur")?,
                depth: field_u64(line, "depth")?,
                payload: field_u64(line, "payload"),
            })
        };
        events.push(parse().ok_or_else(|| format!("event {k} is missing a field: {line:?}"))?);
    }
    Ok(events)
}

/// Per-thread activity summary.
#[derive(Clone, Debug, PartialEq)]
pub struct ThreadStat {
    /// Compact telemetry thread id.
    pub tid: u64,
    /// Total time inside depth-0 spans on this thread, µs.
    pub busy_us: u64,
    /// `busy_us` over the trace wall clock, in `[0, 1]`-ish (top-level
    /// spans on one thread do not overlap, so this stays ≤ 1 up to µs
    /// truncation).
    pub busy_fraction: f64,
    /// Complete events recorded on this thread (any depth).
    pub events: usize,
}

/// One critical-path phase: depth-0 spans aggregated by name.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseStat {
    /// Span name.
    pub name: String,
    /// Total duration across occurrences, µs.
    pub total_us: u64,
    /// Number of occurrences.
    pub count: usize,
}

/// The full diagnosis of one trace. `verdict` is a stable token CI can
/// assert on; `detail` is the human sentence explaining it.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceDiagnosis {
    /// Trace wall clock: last span end minus first span start, µs.
    pub wall_us: u64,
    /// Per-thread busy summaries, sorted by tid.
    pub threads: Vec<ThreadStat>,
    /// Total time in `pool.stitch` spans, µs.
    pub stitch_us: u64,
    /// `stitch_us` over the wall clock.
    pub stitch_fraction: f64,
    /// Chunks claimed per `pool.worker` span, sorted ascending.
    pub worker_chunks: Vec<u64>,
    /// Max over min chunk claims (1.0 with fewer than two workers).
    pub chunk_imbalance: f64,
    /// Depth-0 spans aggregated by name, sorted by total time descending.
    pub phases: Vec<PhaseStat>,
    /// Total bytes allocated over the build, from the counting allocator
    /// (0 when no memory counters were supplied or `mem-telemetry` is
    /// compiled out).
    pub alloc_bytes: u64,
    /// Retained arena bytes of the build artifacts (`heap_bytes()`).
    pub arena_bytes: u64,
    /// `alloc_bytes / arena_bytes` (0.0 when either side is unknown).
    pub churn_ratio: f64,
    /// Stable verdict token: `"single-worker"`, `"band-imbalance"`,
    /// `"stitch-stall"`, `"alloc-churn"`, `"balanced"`, or `"empty"`.
    pub verdict: &'static str,
    /// Human-readable explanation of the verdict.
    pub detail: String,
}

/// Busy-fraction spread (max − min) above which the band split is
/// declared imbalance-bound.
const BUSY_SPREAD_THRESHOLD: f64 = 0.20;
/// Chunk-claim max/min ratio above which the band split is declared
/// imbalance-bound even when busy fractions look even.
const CHUNK_IMBALANCE_THRESHOLD: f64 = 1.5;
/// Stitch share of wall clock above which the merge is the bound.
const STITCH_THRESHOLD: f64 = 0.15;
/// Transient-allocation multiple of retained arena bytes above which a
/// build is declared churn-bound by [`diagnose_with_mem`]: several times
/// more bytes pass through the allocator than the diagram keeps, so the
/// wall clock is going to malloc/free traffic rather than arena growth.
pub const CHURN_RATIO: f64 = 4.0;

/// Analyzes parsed events into a [`TraceDiagnosis`].
pub fn diagnose(events: &[ParsedEvent]) -> TraceDiagnosis {
    let mut diagnosis = TraceDiagnosis {
        wall_us: 0,
        threads: Vec::new(),
        stitch_us: 0,
        stitch_fraction: 0.0,
        worker_chunks: Vec::new(),
        chunk_imbalance: 1.0,
        phases: Vec::new(),
        alloc_bytes: 0,
        arena_bytes: 0,
        churn_ratio: 0.0,
        verdict: "empty",
        detail: "trace contains no complete events".to_string(),
    };
    if events.is_empty() {
        return diagnosis;
    }
    let start = events.iter().map(|e| e.ts_us).min().unwrap_or(0);
    let end = events.iter().map(|e| e.ts_us + e.dur_us).max().unwrap_or(0);
    diagnosis.wall_us = (end - start).max(1);

    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let busy_us: u64 = events
            .iter()
            .filter(|e| e.tid == tid && e.depth == 0)
            .map(|e| e.dur_us)
            .sum();
        diagnosis.threads.push(ThreadStat {
            tid,
            busy_us,
            busy_fraction: busy_us as f64 / diagnosis.wall_us as f64,
            events: events.iter().filter(|e| e.tid == tid).count(),
        });
    }

    diagnosis.stitch_us = events
        .iter()
        .filter(|e| e.name == "pool.stitch")
        .map(|e| e.dur_us)
        .sum();
    diagnosis.stitch_fraction = diagnosis.stitch_us as f64 / diagnosis.wall_us as f64;

    diagnosis.worker_chunks = events
        .iter()
        .filter(|e| e.name == "pool.worker")
        .filter_map(|e| e.payload)
        .collect();
    diagnosis.worker_chunks.sort_unstable();
    if diagnosis.worker_chunks.len() >= 2 {
        let min = *diagnosis.worker_chunks.first().unwrap_or(&1);
        let max = *diagnosis.worker_chunks.last().unwrap_or(&1);
        diagnosis.chunk_imbalance = max as f64 / min.max(1) as f64;
    }

    let mut phase_names: Vec<&str> = events
        .iter()
        .filter(|e| e.depth == 0)
        .map(|e| e.name.as_str())
        .collect();
    phase_names.sort_unstable();
    phase_names.dedup();
    for name in phase_names {
        let matching = events.iter().filter(|e| e.depth == 0 && e.name == name);
        diagnosis.phases.push(PhaseStat {
            name: name.to_string(),
            total_us: matching.clone().map(|e| e.dur_us).sum(),
            count: matching.count(),
        });
    }
    diagnosis
        .phases
        .sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));

    let workers: Vec<&ThreadStat> = diagnosis.threads.iter().filter(|t| t.busy_us > 0).collect();
    let (verdict, detail) = if workers.len() <= 1 {
        (
            "single-worker",
            "all busy time sits on one thread — a sequential or 1-core run; \
             no cross-worker imbalance to localize"
                .to_string(),
        )
    } else {
        let busy_max = workers.iter().map(|t| t.busy_fraction).fold(0.0, f64::max);
        let busy_min = workers
            .iter()
            .map(|t| t.busy_fraction)
            .fold(f64::INFINITY, f64::min);
        let spread = busy_max - busy_min;
        if spread >= BUSY_SPREAD_THRESHOLD || diagnosis.chunk_imbalance >= CHUNK_IMBALANCE_THRESHOLD
        {
            (
                "band-imbalance",
                format!(
                    "the row-band split is imbalance-bound (ROADMAP item 4): busy \
                     fractions spread {:.0}% across workers, chunk claims max/min = {:.2}",
                    spread * 100.0,
                    diagnosis.chunk_imbalance
                ),
            )
        } else if diagnosis.stitch_fraction >= STITCH_THRESHOLD {
            (
                "stitch-stall",
                format!(
                    "the sequential stitch dominates: {:.0}% of the wall clock is \
                     spent in pool.stitch",
                    diagnosis.stitch_fraction * 100.0
                ),
            )
        } else {
            (
                "balanced",
                format!(
                    "workers are evenly loaded (busy spread {:.0}%, chunk max/min \
                     {:.2}) and the stitch stays under {:.0}% of wall",
                    spread * 100.0,
                    diagnosis.chunk_imbalance,
                    STITCH_THRESHOLD * 100.0
                ),
            )
        }
    };
    diagnosis.verdict = verdict;
    diagnosis.detail = detail;
    diagnosis
}

/// Parses and diagnoses a trace file's contents in one step.
pub fn diagnose_trace(trace: &str) -> Result<TraceDiagnosis, String> {
    Ok(diagnose(&parse_chrome_trace(trace)?))
}

/// [`diagnose`], joined with the memory-observatory counters:
/// `alloc_bytes` is the build's total allocated bytes (the counting
/// allocator's `mem.alloc_bytes`, transient and retained alike) and
/// `arena_bytes` the retained `heap_bytes()` of the artifacts. When the
/// build allocates at least [`CHURN_RATIO`] times what it keeps and the
/// trace shows no parallel bound (the timing verdict is `balanced` or
/// `single-worker`), the verdict becomes `alloc-churn` — fixing band
/// splits will not help a build that is paying the allocator. A
/// `band-imbalance` or `stitch-stall` verdict is never overridden; the
/// churn numbers still land in the report fields.
pub fn diagnose_with_mem(
    events: &[ParsedEvent],
    alloc_bytes: u64,
    arena_bytes: u64,
) -> TraceDiagnosis {
    let mut d = diagnose(events);
    d.alloc_bytes = alloc_bytes;
    d.arena_bytes = arena_bytes;
    if arena_bytes > 0 {
        d.churn_ratio = alloc_bytes as f64 / arena_bytes as f64;
    }
    let timing_bound = matches!(d.verdict, "band-imbalance" | "stitch-stall" | "empty");
    if d.churn_ratio >= CHURN_RATIO && !timing_bound {
        d.verdict = "alloc-churn";
        d.detail = format!(
            "transient allocations dominate: {:.1}x more bytes allocated \
             ({alloc_bytes} B) than the arenas retain ({arena_bytes} B); \
             the build is allocator-bound, not compute-imbalanced",
            d.churn_ratio
        );
    }
    d
}

fn fraction(v: f64) -> String {
    format!("{:.4}", v)
}

/// The diagnosis as one machine-checkable JSON object (hand-written like
/// the rest of the pipeline; keys are stable for CI assertions).
pub fn render_diagnosis_json(d: &TraceDiagnosis) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"verdict\": \"{}\",\n  \"detail\": \"{}\",\n  \"wall_us\": {},\n",
        d.verdict,
        d.detail.replace('"', "\\\""),
        d.wall_us
    );
    let _ = write!(
        out,
        "  \"stitch_us\": {},\n  \"stitch_fraction\": {},\n  \"chunk_imbalance\": {},\n",
        d.stitch_us,
        fraction(d.stitch_fraction),
        fraction(d.chunk_imbalance)
    );
    let _ = write!(
        out,
        "  \"alloc_bytes\": {},\n  \"arena_bytes\": {},\n  \"churn_ratio\": {},\n",
        d.alloc_bytes,
        d.arena_bytes,
        fraction(d.churn_ratio)
    );
    out.push_str("  \"threads\": [");
    for (k, t) in d.threads.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"tid\": {}, \"busy_us\": {}, \"busy_fraction\": {}, \"events\": {}}}",
            t.tid,
            t.busy_us,
            fraction(t.busy_fraction),
            t.events
        );
    }
    out.push_str("\n  ],\n  \"phases\": [");
    for (k, p) in d.phases.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"total_us\": {}, \"count\": {}}}",
            p.name, p.total_us, p.count
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// The diagnosis as a human-readable table (what `skydiag report` prints
/// alongside the JSON verdict).
pub fn render_diagnosis_table(d: &TraceDiagnosis) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "verdict: {}", d.verdict);
    let _ = writeln!(out, "  {}", d.detail);
    let _ = writeln!(
        out,
        "wall {:.3} ms | stitch {:.3} ms ({:.1}%) | chunk max/min {:.2}",
        d.wall_us as f64 / 1_000.0,
        d.stitch_us as f64 / 1_000.0,
        d.stitch_fraction * 100.0,
        d.chunk_imbalance
    );
    if d.arena_bytes > 0 {
        let _ = writeln!(
            out,
            "alloc {} B | arena {} B | churn {:.2}x",
            d.alloc_bytes, d.arena_bytes, d.churn_ratio
        );
    }
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>8} {:>8}",
        "tid", "busy_ms", "busy%", "events"
    );
    for t in &d.threads {
        let _ = writeln!(
            out,
            "{:>6} {:>12.3} {:>7.1}% {:>8}",
            t.tid,
            t.busy_us as f64 / 1_000.0,
            t.busy_fraction * 100.0,
            t.events
        );
    }
    let _ = writeln!(out, "top-level phases by total time:");
    for p in d.phases.iter().take(8) {
        let _ = writeln!(
            out,
            "  {:<28} {:>12.3} ms  x{}",
            p.name,
            p.total_us as f64 / 1_000.0,
            p.count
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::render_chrome_trace;
    use skyline_core::telemetry::SpanEvent;

    fn span(
        name: &'static str,
        thread: u64,
        depth: u32,
        start_us: u64,
        dur_us: u64,
        payload: Option<u64>,
    ) -> SpanEvent {
        SpanEvent {
            name,
            thread,
            depth,
            start_ns: start_us * 1_000,
            dur_ns: dur_us * 1_000,
            payload,
        }
    }

    #[test]
    fn parser_round_trips_rendered_traces() {
        let events = vec![
            span("pool.region", 0, 0, 10, 900, None),
            span("pool.worker", 1, 1, 20, 400, Some(6)),
            span("pool.stitch", 0, 1, 500, 100, Some(3)),
        ];
        let trace = render_chrome_trace(&events, "unit");
        let parsed = parse_chrome_trace(&trace).expect("emitted traces must parse");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].name, "pool.region");
        assert_eq!(parsed[1].payload, Some(6));
        assert_eq!(parsed[1].tid, 1);
        assert_eq!(parsed[2].ts_us, 500);
        assert_eq!(parsed[2].dur_us, 100);
        assert!(parse_chrome_trace("[]").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\":[\n{\"ph\":\"Q\"}\n]}").is_err());
    }

    #[test]
    fn single_worker_trace_gets_the_single_worker_verdict() {
        let events = vec![
            span("quadrant.build", 0, 0, 0, 1_000, None),
            span("pool.worker", 0, 1, 10, 800, Some(4)),
        ];
        let trace = render_chrome_trace(&events, "unit");
        let d = diagnose_trace(&trace).expect("trace parses");
        assert_eq!(d.verdict, "single-worker");
        assert_eq!(d.threads.len(), 1);
        assert_eq!(d.wall_us, 1_000);
        assert_eq!(d.phases[0].name, "quadrant.build");
    }

    #[test]
    fn uneven_chunk_claims_yield_band_imbalance() {
        // Two workers, one claiming 4x the chunks and busy 3x longer.
        let events = vec![
            span("pool.worker", 1, 0, 0, 900, Some(8)),
            span("pool.worker", 2, 0, 0, 300, Some(2)),
        ];
        let d = diagnose(&parse_chrome_trace(&render_chrome_trace(&events, "u")).unwrap());
        assert_eq!(d.verdict, "band-imbalance");
        assert!(d.detail.contains("ROADMAP item 4"));
        assert_eq!(d.worker_chunks, vec![2, 8]);
        assert!((d.chunk_imbalance - 4.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_stitch_yields_stitch_stall() {
        let events = vec![
            span("pool.worker", 1, 0, 0, 950, Some(4)),
            span("pool.worker", 2, 0, 0, 940, Some(4)),
            // The stitch nests inside the region span on the calling
            // thread (depth 1), exactly as `parallel.rs` records it.
            span("pool.stitch", 1, 1, 950, 400, Some(3)),
        ];
        let d = diagnose(&parse_chrome_trace(&render_chrome_trace(&events, "u")).unwrap());
        assert_eq!(d.verdict, "stitch-stall");
        assert_eq!(d.stitch_us, 400);
    }

    #[test]
    fn even_trace_is_balanced_and_json_is_machine_checkable() {
        let events = vec![
            span("pool.worker", 1, 0, 0, 900, Some(4)),
            span("pool.worker", 2, 0, 0, 880, Some(4)),
            span("pool.stitch", 1, 0, 900, 50, Some(2)),
        ];
        let d = diagnose(&parse_chrome_trace(&render_chrome_trace(&events, "u")).unwrap());
        assert_eq!(d.verdict, "balanced");
        let json = render_diagnosis_json(&d);
        assert!(json.contains("\"verdict\": \"balanced\""));
        assert!(json.contains("\"chunk_imbalance\": 1.0000"));
        assert!(json.contains("\"tid\": 1"));
        assert!(json.contains("\"name\": \"pool.worker\""));
        let table = render_diagnosis_table(&d);
        assert!(table.contains("verdict: balanced"));
        assert!(table.contains("pool.worker"));
    }

    #[test]
    fn churn_overrides_balanced_but_not_imbalance() {
        let balanced = vec![
            span("pool.worker", 1, 0, 0, 900, Some(4)),
            span("pool.worker", 2, 0, 0, 880, Some(4)),
        ];
        let parsed = parse_chrome_trace(&render_chrome_trace(&balanced, "u")).unwrap();
        // 10x more allocated than retained: churn-bound.
        let d = diagnose_with_mem(&parsed, 10_000_000, 1_000_000);
        assert_eq!(d.verdict, "alloc-churn");
        assert!((d.churn_ratio - 10.0).abs() < 1e-9);
        assert!(render_diagnosis_json(&d).contains("\"verdict\": \"alloc-churn\""));
        assert!(render_diagnosis_table(&d).contains("churn 10.00x"));
        // Under the ratio: the timing verdict stands, counters still land.
        let d = diagnose_with_mem(&parsed, 2_000_000, 1_000_000);
        assert_eq!(d.verdict, "balanced");
        assert_eq!(d.alloc_bytes, 2_000_000);
        // An imbalance-bound trace keeps its verdict even under churn.
        let skewed = vec![
            span("pool.worker", 1, 0, 0, 900, Some(8)),
            span("pool.worker", 2, 0, 0, 300, Some(2)),
        ];
        let parsed = parse_chrome_trace(&render_chrome_trace(&skewed, "u")).unwrap();
        let d = diagnose_with_mem(&parsed, 10_000_000, 1_000_000);
        assert_eq!(d.verdict, "band-imbalance");
        assert!((d.churn_ratio - 10.0).abs() < 1e-9);
        // Unknown arena bytes: no ratio, no override.
        let d = diagnose_with_mem(&parsed, 10_000_000, 0);
        assert_eq!(d.churn_ratio, 0.0);
    }

    #[test]
    fn empty_trace_diagnoses_as_empty() {
        let d = diagnose(&[]);
        assert_eq!(d.verdict, "empty");
        assert!(render_diagnosis_json(&d).contains("\"verdict\": \"empty\""));
    }
}
