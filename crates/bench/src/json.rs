//! Dependency-free JSON emission for the machine-readable bench pipeline
//! (`BENCH_PR3.json`). The workspace is hermetic (no registry crates), so
//! this module hand-writes the tiny subset of JSON the records need:
//! objects of strings, integers, and finite floats — no escaping beyond
//! the JSON string basics, no nesting beyond one array of flat objects.

use std::fmt::Write as _;

/// One measured bench configuration: an (experiment, algorithm, dataset,
/// threads) point with its wall-time summary. Serialized as one flat JSON
/// object per record.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Experiment id, e.g. `"e11"`.
    pub experiment: String,
    /// Algorithm family and engine, e.g. `"global/scanning"`.
    pub algorithm: String,
    /// Dataset size.
    pub n: usize,
    /// Per-dimension domain size.
    pub s: i64,
    /// Dimensionality.
    pub d: usize,
    /// Dataset distribution name.
    pub distribution: String,
    /// Thread configuration (`0` = sequential reference path).
    pub threads: usize,
    /// Repetitions measured.
    pub reps: usize,
    /// Minimum wall time across repetitions, in milliseconds.
    pub min_ms: f64,
    /// Median wall time across repetitions, in milliseconds.
    pub median_ms: f64,
}

/// Escapes a string for a JSON string literal (quotes, backslashes, and
/// control characters; the records only ever hold ASCII identifiers).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a finite float with enough precision for millisecond timings.
fn float(v: f64) -> String {
    assert!(v.is_finite(), "bench timings must be finite");
    format!("{v:.4}")
}

impl BenchRecord {
    /// The record as one flat JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"experiment\":\"{}\",\"algorithm\":\"{}\",\"n\":{},\"s\":{},",
                "\"d\":{},\"distribution\":\"{}\",\"threads\":{},\"reps\":{},",
                "\"min_ms\":{},\"median_ms\":{}}}"
            ),
            escape(&self.experiment),
            escape(&self.algorithm),
            self.n,
            self.s,
            self.d,
            escape(&self.distribution),
            self.threads,
            self.reps,
            float(self.min_ms),
            float(self.median_ms),
        )
    }
}

/// Renders the full record set as a pretty-printed JSON array (one record
/// per line, trailing newline) — stable output for committed artifacts.
pub fn render_records(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (k, r) in records.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&r.to_json());
        if k + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchRecord {
        BenchRecord {
            experiment: "e11".into(),
            algorithm: "global/scanning".into(),
            n: 800,
            s: 8000,
            d: 2,
            distribution: "independent".into(),
            threads: 4,
            reps: 3,
            min_ms: 687.25,
            median_ms: 700.5,
        }
    }

    #[test]
    fn record_serializes_flat_object() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"experiment\":\"e11\""));
        assert!(json.contains("\"algorithm\":\"global/scanning\""));
        assert!(json.contains("\"n\":800"));
        assert!(json.contains("\"threads\":4"));
        assert!(json.contains("\"min_ms\":687.2500"));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn render_is_valid_array_shape() {
        let one = render_records(&[sample()]);
        assert!(one.starts_with("[\n  {"));
        assert!(one.ends_with("}\n]\n"));
        let two = render_records(&[sample(), sample()]);
        assert_eq!(two.matches("\"experiment\"").count(), 2);
        assert_eq!(two.matches("},\n").count(), 1);
        assert_eq!(render_records(&[]), "[\n]\n");
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}
