//! Dependency-free JSON emission for the machine-readable bench pipeline
//! (`BENCH_PR3.json`) and the telemetry exporters. The workspace is
//! hermetic (no registry crates), so this module hand-writes the JSON the
//! pipeline needs: bench records (flat objects of strings, integers, and
//! finite floats, plus an optional metrics sub-object), Chrome trace-event
//! files built from [`skyline_core::telemetry`] span events (loadable in
//! Perfetto / `chrome://tracing`), flat metrics snapshots, and a minimal
//! structural validator CI runs over every emitted trace.

use std::fmt::Write as _;

use skyline_core::telemetry::{MetricsSnapshot, SpanEvent};

/// One measured bench configuration: an (experiment, algorithm, dataset,
/// threads) point with its wall-time summary. Serialized as one flat JSON
/// object per record.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Experiment id, e.g. `"e11"`.
    pub experiment: String,
    /// Algorithm family and engine, e.g. `"global/scanning"`.
    pub algorithm: String,
    /// Dataset size.
    pub n: usize,
    /// Per-dimension domain size.
    pub s: i64,
    /// Dimensionality.
    pub d: usize,
    /// Dataset distribution name.
    pub distribution: String,
    /// Thread configuration (`0` = sequential reference path).
    pub threads: usize,
    /// Repetitions measured.
    pub reps: usize,
    /// Minimum wall time across repetitions, in milliseconds.
    pub min_ms: f64,
    /// Median wall time across repetitions, in milliseconds.
    pub median_ms: f64,
    /// Telemetry counter readings attributed to this configuration
    /// (`experiments --telemetry`), as sorted `(name, value)` pairs.
    /// Empty — and absent from the JSON — when telemetry capture is off,
    /// so committed artifacts from plain runs are byte-stable.
    pub metrics: Vec<(String, u64)>,
}

/// Escapes a string for a JSON string literal (quotes, backslashes, and
/// control characters; the records only ever hold ASCII identifiers).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a finite float with enough precision for millisecond timings.
fn float(v: f64) -> String {
    assert!(v.is_finite(), "bench timings must be finite");
    format!("{v:.4}")
}

impl BenchRecord {
    /// The record as one flat JSON object (plus a `"metrics"` sub-object
    /// when telemetry readings are attached).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            concat!(
                "{{\"experiment\":\"{}\",\"algorithm\":\"{}\",\"n\":{},\"s\":{},",
                "\"d\":{},\"distribution\":\"{}\",\"threads\":{},\"reps\":{},",
                "\"min_ms\":{},\"median_ms\":{}"
            ),
            escape(&self.experiment),
            escape(&self.algorithm),
            self.n,
            self.s,
            self.d,
            escape(&self.distribution),
            self.threads,
            self.reps,
            float(self.min_ms),
            float(self.median_ms),
        );
        if !self.metrics.is_empty() {
            out.push_str(",\"metrics\":{");
            for (k, (name, value)) in self.metrics.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", escape(name), value);
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Renders the full record set as a pretty-printed JSON array (one record
/// per line, trailing newline) — stable output for committed artifacts.
pub fn render_records(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (k, r) in records.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&r.to_json());
        if k + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders drained span events as a Chrome trace-event file:
/// `{"traceEvents":[...]}` with one `"M"` (metadata) event naming the
/// process and one `"X"` (complete) event per span. Timestamps and
/// durations are microseconds on the telemetry clock's process-wide axis;
/// `tid` is the span's compact telemetry thread id. Load the output in
/// Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
pub fn render_chrome_trace(events: &[SpanEvent], process_name: &str) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    let _ = write!(
        out,
        "  {{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(process_name)
    );
    for e in events {
        out.push_str(",\n  ");
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"skyline\",\"pid\":1,\
             \"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"depth\":{}",
            escape(e.name),
            e.thread,
            e.start_ns / 1_000,
            e.dur_ns / 1_000,
            e.depth,
        );
        if let Some(payload) = e.payload {
            let _ = write!(out, ",\"payload\":{payload}");
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

/// Renders a metrics snapshot as one flat JSON object: counters as
/// `"name": value`, histograms as `"name": {"count":…,"sum":…,"buckets":
/// {"<bucket index>": count, …}}`. Keys come pre-sorted from the registry.
pub fn render_metrics_snapshot(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (k, c) in snapshot.counters.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", escape(c.name), c.value);
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (k, h) in snapshot.histograms.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\":{},\"sum\":{},\"buckets\":{{",
            escape(h.name),
            h.count,
            h.sum
        );
        for (j, (bucket, count)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{bucket}\":{count}");
        }
        out.push_str("}}");
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Structural summary of a validated Chrome trace (see
/// [`validate_chrome_trace`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// Number of `"X"` (complete) events.
    pub complete_events: usize,
    /// Number of `"M"` (metadata) events.
    pub metadata_events: usize,
}

/// Minimal structural checker for the trace files this module emits — the
/// CI gate that keeps `skydiag trace` output Perfetto-loadable. Not a JSON
/// parser: it verifies the exact shape [`render_chrome_trace`] produces
/// (one event object per line inside a `"traceEvents"` array, balanced
/// braces, and the mandatory `ph`/`name`/`pid`/`tid` fields — plus
/// `ts`/`dur` on every `"X"` event).
pub fn validate_chrome_trace(trace: &str) -> Result<TraceSummary, String> {
    let trace = trace.trim();
    let body = trace
        .strip_prefix("{\"traceEvents\":[")
        .and_then(|rest| rest.strip_suffix("]}"))
        .ok_or_else(|| "trace must be an object with a traceEvents array".to_string())?;
    let mut summary = TraceSummary {
        complete_events: 0,
        metadata_events: 0,
    };
    for (k, line) in body.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err(format!("event {k} is not a braced object: {line:?}"));
        }
        let depth_balance = line.matches('{').count() == line.matches('}').count();
        if !depth_balance {
            return Err(format!("event {k} has unbalanced braces: {line:?}"));
        }
        for field in ["\"ph\":", "\"name\":", "\"pid\":", "\"tid\":"] {
            if !line.contains(field) {
                return Err(format!("event {k} is missing {field}{line:?}"));
            }
        }
        if line.contains("\"ph\":\"X\"") {
            for field in ["\"ts\":", "\"dur\":"] {
                if !line.contains(field) {
                    return Err(format!("complete event {k} is missing {field}{line:?}"));
                }
            }
            summary.complete_events += 1;
        } else if line.contains("\"ph\":\"M\"") {
            summary.metadata_events += 1;
        } else {
            return Err(format!("event {k} has an unexpected phase: {line:?}"));
        }
    }
    if summary.metadata_events == 0 {
        return Err("trace has no process_name metadata event".to_string());
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchRecord {
        BenchRecord {
            experiment: "e11".into(),
            algorithm: "global/scanning".into(),
            n: 800,
            s: 8000,
            d: 2,
            distribution: "independent".into(),
            threads: 4,
            reps: 3,
            min_ms: 687.25,
            median_ms: 700.5,
            metrics: Vec::new(),
        }
    }

    fn span(name: &'static str, thread: u64, start_ns: u64, dur_ns: u64) -> SpanEvent {
        SpanEvent {
            name,
            thread,
            depth: 0,
            start_ns,
            dur_ns,
            payload: None,
        }
    }

    #[test]
    fn record_serializes_flat_object() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"experiment\":\"e11\""));
        assert!(json.contains("\"algorithm\":\"global/scanning\""));
        assert!(json.contains("\"n\":800"));
        assert!(json.contains("\"threads\":4"));
        assert!(json.contains("\"min_ms\":687.2500"));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn render_is_valid_array_shape() {
        let one = render_records(&[sample()]);
        assert!(one.starts_with("[\n  {"));
        assert!(one.ends_with("}\n]\n"));
        let two = render_records(&[sample(), sample()]);
        assert_eq!(two.matches("\"experiment\"").count(), 2);
        assert_eq!(two.matches("},\n").count(), 1);
        assert_eq!(render_records(&[]), "[\n]\n");
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn metrics_sub_object_appears_only_when_populated() {
        let mut r = sample();
        assert!(!r.to_json().contains("\"metrics\""));
        r.metrics = vec![("pool.regions".into(), 12), ("epoch.publish".into(), 3)];
        let json = r.to_json();
        assert!(json.contains("\"metrics\":{\"pool.regions\":12,\"epoch.publish\":3}"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn chrome_trace_round_trips_through_the_validator() {
        let events = vec![
            span("global.build", 0, 5_000, 90_000),
            SpanEvent {
                payload: Some(4),
                depth: 1,
                ..span("global.fanout", 0, 6_000, 50_000)
            },
            span("pool.worker", 3, 7_000, 40_000),
        ];
        let trace = render_chrome_trace(&events, "skydiag trace build");
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"M\""));
        assert!(trace.contains("\"name\":\"global.build\""));
        assert!(trace.contains("\"ts\":5,\"dur\":90"), "ns become µs");
        assert!(trace.contains("\"payload\":4"));
        assert!(trace.contains("\"tid\":3"));
        let summary = validate_chrome_trace(&trace).expect("emitted traces must self-validate");
        assert_eq!(
            summary,
            TraceSummary {
                complete_events: 3,
                metadata_events: 1
            }
        );
    }

    #[test]
    fn empty_trace_still_validates() {
        let trace = render_chrome_trace(&[], "empty");
        let summary = validate_chrome_trace(&trace).expect("metadata-only trace is valid");
        assert_eq!(summary.complete_events, 0);
        assert_eq!(summary.metadata_events, 1);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[\nnot-an-object\n]}").is_err());
        // An X event without ts/dur fails.
        let bad = "{\"traceEvents\":[\n  {\"ph\":\"X\",\"name\":\"a\",\"pid\":1,\"tid\":0}\n]}";
        assert!(validate_chrome_trace(bad).is_err());
        // No metadata event fails.
        let no_meta = "{\"traceEvents\":[\n  \
             {\"ph\":\"X\",\"name\":\"a\",\"pid\":1,\"tid\":0,\"ts\":1,\"dur\":2}\n]}";
        assert!(validate_chrome_trace(no_meta).is_err());
    }

    #[test]
    fn metrics_snapshot_renders_counters_and_histograms() {
        use skyline_core::telemetry::{CounterSnapshot, HistogramSnapshot};
        let snap = MetricsSnapshot {
            counters: vec![CounterSnapshot {
                name: "epoch.publish",
                value: 7,
            }],
            histograms: vec![HistogramSnapshot {
                name: "pool.worker_chunks",
                count: 3,
                sum: 12,
                buckets: vec![(3, 3)],
            }],
        };
        let json = render_metrics_snapshot(&snap);
        assert!(json.contains("\"epoch.publish\": 7"));
        assert!(
            json.contains("\"pool.worker_chunks\": {\"count\":3,\"sum\":12,\"buckets\":{\"3\":3}}")
        );
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
