//! Shared infrastructure for the benchmark suite and the `experiments`
//! binary: dataset construction for every sweep in DESIGN.md's experiment
//! index, plus a small wall-clock measurement helper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use skyline_core::geometry::{Dataset, DatasetD};
use skyline_data::{DatasetSpec, Distribution};

pub mod diag;
pub mod json;
pub mod quantile;

/// Fixed base seed: every experiment is reproducible bit-for-bit.
pub const BASE_SEED: u64 = 20180417; // ICDE 2018 main-conference week

/// Planar dataset for an (n, distribution) sweep point. The domain scales
/// with `n` (10 values per point) so general position dominates, matching
/// the unbounded-domain analyses; E2 varies the domain explicitly.
pub fn sweep_dataset(n: usize, distribution: Distribution) -> Dataset {
    DatasetSpec {
        n,
        dims: 2,
        domain: 10 * n as i64,
        distribution,
        seed: BASE_SEED,
    }
    .build_2d()
}

/// Planar dataset with an explicit domain size (experiment E2).
pub fn domain_dataset(n: usize, domain: i64, distribution: Distribution) -> Dataset {
    DatasetSpec {
        n,
        dims: 2,
        domain,
        distribution,
        seed: BASE_SEED,
    }
    .build_2d()
}

/// d-dimensional dataset for the high-dimensional sweeps (experiment E4).
pub fn highd_dataset(n: usize, dims: usize, distribution: Distribution) -> DatasetD {
    DatasetSpec {
        n,
        dims,
        domain: 10 * n as i64,
        distribution,
        seed: BASE_SEED,
    }
    .build_d()
}

/// Milliseconds for one run of `f`, minimized over `reps` runs (reduces
/// scheduler noise without criterion's sampling overhead — the experiments
/// binary sweeps configurations too large to criterion-sample).
pub fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(reps > 0);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(out);
        best = best.min(elapsed);
    }
    best
}

/// Wall-time summary over a set of repetitions, in milliseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeStats {
    /// Fastest repetition — the low-noise figure the tables report.
    pub min_ms: f64,
    /// Median repetition — a robustness check against one lucky run.
    pub median_ms: f64,
}

/// Times `reps` runs of `f` and returns the minimum and median wall times.
/// The machine-readable bench records carry both so a regression gate can
/// compare minima while the median exposes scheduling noise.
pub fn time_stats<T>(reps: usize, mut f: impl FnMut() -> T) -> TimeStats {
    assert!(reps > 0);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(out);
        samples.push(elapsed);
    }
    samples.sort_unstable_by(|a, b| a.total_cmp(b));
    let median_ms = if reps % 2 == 1 {
        samples[reps / 2]
    } else {
        (samples[reps / 2 - 1] + samples[reps / 2]) / 2.0
    };
    TimeStats {
        min_ms: samples[0],
        median_ms,
    }
}

/// Formats a milliseconds figure compactly for the experiment tables.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 1000.0 {
        format!("{:.2}s", ms / 1e3)
    } else if ms >= 1.0 {
        format!("{ms:.1}ms")
    } else {
        format!("{:.0}µs", ms * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_reproducible() {
        assert_eq!(
            sweep_dataset(50, Distribution::Independent),
            sweep_dataset(50, Distribution::Independent)
        );
        assert_eq!(highd_dataset(20, 3, Distribution::Correlated).dims(), 3);
        assert_eq!(
            domain_dataset(50, 16, Distribution::Anticorrelated).len(),
            50
        );
    }

    #[test]
    fn timing_returns_positive_values() {
        let ms = time_ms(3, || (0..1000).sum::<u64>());
        assert!(ms >= 0.0);
    }

    #[test]
    fn time_stats_orders_min_and_median() {
        let stats = time_stats(5, || (0..1000).sum::<u64>());
        assert!(stats.min_ms >= 0.0);
        assert!(stats.median_ms >= stats.min_ms);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ms(2500.0), "2.50s");
        assert_eq!(fmt_ms(12.34), "12.3ms");
        assert_eq!(fmt_ms(0.5), "500µs");
    }
}
