//! Percentile interpolation over the telemetry log2 histograms, plus the
//! SLO (service-level objective) types behind `experiments e13 --gate`.
//!
//! The telemetry layer records latencies into 65 log2 buckets
//! ([`skyline_core::telemetry::bucket_index`]): cheap on the hot path,
//! but a bucket only bounds a value to a power-of-two range. This module
//! recovers interpolated percentiles from those counts: find the bucket
//! holding the nearest-rank target, then linearly interpolate inside its
//! `[lower, upper)` range by rank position. The result is guaranteed to
//! land within one bucket boundary of the exact sample quantile — tight
//! enough to gate a p99 against a bound orders of magnitude away, which
//! is the only honest way to gate a tail on shared CI hardware.

use skyline_core::telemetry::bucket_lower_bound;

/// The percentile set the open-loop reports and E13 records publish, as
/// `(metric label, percentile)` pairs.
pub const PERCENTILE_LABELS: [(&str, f64); 4] =
    [("p50", 50.0), ("p95", 95.0), ("p99", 99.0), ("p999", 99.9)];

/// The 1-based nearest-rank target for percentile `p` over `total`
/// samples: the smallest rank whose cumulative fraction reaches `p`.
fn target_rank(total: u64, p: f64) -> u64 {
    let raw = ((p / 100.0) * total as f64).ceil();
    (raw as u64).clamp(1, total)
}

/// Interpolated percentile from dense log2 bucket counts (`buckets[i]` =
/// number of samples whose [`bucket_index`] is `i`, as kept by
/// `skyline_serve::LatencyHistogram`).
///
/// Finds the bucket containing the nearest-rank target and interpolates
/// linearly by rank within the bucket's value range, so the result lies
/// in `[bucket_lower_bound(i), bucket_lower_bound(i + 1)]` — within one
/// bucket boundary of the exact sample quantile. Returns 0 for an empty
/// histogram.
///
/// [`bucket_index`]: skyline_core::telemetry::bucket_index
pub fn percentile(buckets: &[u64], p: f64) -> u64 {
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile must lie within [0, 100]"
    );
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = target_rank(total, p);
    let mut cum = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        if cum + count >= target {
            let lower = bucket_lower_bound(i);
            let upper = bucket_lower_bound(i + 1);
            // Rank position inside this bucket, in (0, 1].
            let into = (target - cum) as f64 / count as f64;
            let offset = (into * (upper - lower) as f64) as u64;
            return lower.saturating_add(offset).min(upper);
        }
        cum += count;
    }
    // total > 0 guarantees the loop returned; keep the checker happy.
    bucket_lower_bound(buckets.len())
}

/// [`percentile`] over the sparse `(bucket index, count)` pairs a
/// [`skyline_core::telemetry::HistogramSnapshot`] carries.
pub fn percentile_sparse(pairs: &[(usize, u64)], p: f64) -> u64 {
    let len = pairs.iter().map(|&(i, _)| i + 1).max().unwrap_or(0);
    let mut dense = vec![0u64; len];
    for &(i, count) in pairs {
        dense[i] += count;
    }
    percentile(&dense, p)
}

/// One service-level objective: a percentile bound on one query family's
/// open-loop latency. `family` matches the
/// [`skyline_serve::FAMILY_NAMES`] entry (or `"overall"`); the bound is
/// in microseconds on the interpolated percentile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloSpec {
    /// Query family the bound applies to (e.g. `"quadrant"`, `"overall"`).
    pub family: &'static str,
    /// Metric label from [`PERCENTILE_LABELS`] (e.g. `"p99"`).
    pub label: &'static str,
    /// Percentile, in `[0, 100]` (e.g. `99.0`).
    pub percentile: f64,
    /// Inclusive upper bound on the interpolated percentile, in µs.
    pub bound_us: u64,
}

impl SloSpec {
    /// Checks a measured percentile (µs) against this bound, returning a
    /// gate-style violation message on breach.
    pub fn check(&self, measured_us: u64) -> Option<String> {
        if measured_us > self.bound_us {
            Some(format!(
                "SLO breach: {} {} = {}us exceeds bound {}us",
                self.family, self.label, measured_us, self.bound_us
            ))
        } else {
            None
        }
    }
}

/// Applies a spec table to measured `(family, label, value µs)` triples;
/// returns one message per breached bound. A spec whose (family, label)
/// pair has no measurement is itself a violation — a silently missing
/// family must not pass the gate.
pub fn slo_violations(specs: &[SloSpec], measured: &[(String, String, u64)]) -> Vec<String> {
    let mut out = Vec::new();
    for spec in specs {
        let hit = measured
            .iter()
            .find(|(family, label, _)| family == spec.family && label == spec.label);
        match hit {
            Some(&(_, _, value)) => out.extend(spec.check(value)),
            None => out.push(format!(
                "SLO breach: no measurement for {} {}",
                spec.family, spec.label
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::telemetry::{bucket_index, HISTOGRAM_BUCKETS};

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Builds the dense bucket counts for a raw sample set.
    fn histogram_of(samples: &[u64]) -> Vec<u64> {
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        for &s in samples {
            buckets[bucket_index(s)] += 1;
        }
        buckets
    }

    /// The exact nearest-rank quantile, same rank convention as
    /// [`percentile`].
    fn exact_quantile(sorted: &[u64], p: f64) -> u64 {
        let target = target_rank(sorted.len() as u64, p);
        sorted[(target - 1) as usize]
    }

    /// The property the module promises: the interpolated percentile is
    /// within one bucket boundary of the exact sample quantile.
    fn assert_within_one_bucket(samples: &mut [u64], p: f64, ctx: &str) {
        samples.sort_unstable();
        let exact = exact_quantile(samples, p);
        let approx = percentile(&histogram_of(samples), p);
        let b = bucket_index(exact);
        let lo = bucket_lower_bound(b);
        let hi = bucket_lower_bound(b + 1);
        assert!(
            approx >= lo && approx <= hi,
            "{ctx}: p{p} approx {approx} outside [{lo}, {hi}] around exact {exact}"
        );
    }

    #[test]
    fn interpolated_percentiles_stay_within_one_bucket_of_exact() {
        // Property test over deterministic pseudo-random sample sets:
        // uniform, log-uniform (exercises every bucket width), and
        // heavily tied distributions.
        for seed in 0..40u64 {
            let n = 1 + (splitmix(seed ^ 0xa11ce) % 400) as usize;
            let mut uniform: Vec<u64> = (0..n)
                .map(|i| splitmix(seed ^ (i as u64) << 1) % 1_000_000)
                .collect();
            let mut loguni: Vec<u64> = (0..n)
                .map(|i| {
                    let r = splitmix(seed.wrapping_mul(31) ^ i as u64);
                    let shift = r % 63;
                    (1u64 << shift) | (splitmix(r) & ((1 << shift) - 1).max(1))
                })
                .collect();
            let mut tied: Vec<u64> = (0..n)
                .map(|i| [0, 1, 7, 4096][(splitmix(seed ^ i as u64) % 4) as usize])
                .collect();
            for (label, p) in PERCENTILE_LABELS {
                assert_within_one_bucket(&mut uniform, p, &format!("uniform/{seed}/{label}"));
                assert_within_one_bucket(&mut loguni, p, &format!("loguni/{seed}/{label}"));
                assert_within_one_bucket(&mut tied, p, &format!("tied/{seed}/{label}"));
            }
        }
    }

    #[test]
    fn overflow_bucket_stays_bounded() {
        // Samples landing in the 65th (overflow) bucket [2^63, u64::MAX]:
        // interpolation must neither wrap nor leave the bucket.
        let mut samples: Vec<u64> = (0..50)
            .map(|i| (1u64 << 63) | splitmix(i))
            .chain(std::iter::repeat(u64::MAX).take(10))
            .collect();
        for (label, p) in PERCENTILE_LABELS {
            assert_within_one_bucket(&mut samples, p, &format!("overflow/{label}"));
        }
        // All-overflow histogram: every percentile lands in bucket 64.
        let all_max = vec![u64::MAX; 8];
        let v = percentile(&histogram_of(&all_max), 50.0);
        assert!(
            v >= 1u64 << 63,
            "p50 of all-MAX samples left the top bucket"
        );
    }

    #[test]
    fn empty_and_zero_histograms_report_zero() {
        assert_eq!(percentile(&[], 99.0), 0);
        assert_eq!(percentile(&vec![0u64; HISTOGRAM_BUCKETS], 50.0), 0);
        assert_eq!(percentile(&histogram_of(&[0, 0, 0]), 99.9), 0);
        assert_eq!(percentile_sparse(&[], 99.0), 0);
    }

    #[test]
    fn sparse_and_dense_agree() {
        let samples: Vec<u64> = (0..200).map(|i| splitmix(i) % 50_000).collect();
        let dense = histogram_of(&samples);
        let sparse: Vec<(usize, u64)> = dense
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
        for (_, p) in PERCENTILE_LABELS {
            assert_eq!(percentile(&dense, p), percentile_sparse(&sparse, p));
        }
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let samples: Vec<u64> = (0..500).map(|i| splitmix(i ^ 0xfeed) % 1_000_000).collect();
        let buckets = histogram_of(&samples);
        let values: Vec<u64> = PERCENTILE_LABELS
            .iter()
            .map(|&(_, p)| percentile(&buckets, p))
            .collect();
        for w in values.windows(2) {
            assert!(w[0] <= w[1], "percentiles must be monotone: {values:?}");
        }
    }

    #[test]
    fn slo_check_reports_breaches_and_missing_families() {
        let specs = [
            SloSpec {
                family: "quadrant",
                label: "p99",
                percentile: 99.0,
                bound_us: 1_000,
            },
            SloSpec {
                family: "overall",
                label: "p999",
                percentile: 99.9,
                bound_us: 5_000,
            },
        ];
        let ok = vec![
            ("quadrant".to_string(), "p99".to_string(), 900),
            ("overall".to_string(), "p999".to_string(), 5_000),
        ];
        assert!(slo_violations(&specs, &ok).is_empty());

        let breach = vec![("quadrant".to_string(), "p99".to_string(), 1_001)];
        let msgs = slo_violations(&specs, &breach);
        assert_eq!(msgs.len(), 2, "one breach plus one missing family");
        assert!(msgs[0].contains("quadrant p99 = 1001us exceeds bound 1000us"));
        assert!(msgs[1].contains("no measurement for overall p999"));
    }
}
