//! End-to-end anomaly capture: an injected refresh stall fires the
//! latency trigger, the flight recorder freezes the stall's immediate
//! past, and the drained dump renders to a structurally valid Chrome
//! trace that names the stall span — the whole "capture the anomaly
//! *after* it happened, without pre-arming a recording" contract.
//!
//! Lives in `skyline-bench` (not `skyline-serve`) because the structural
//! check is the bench crate's `validate_chrome_trace`. Trigger state is
//! process-global, so this file stays a single-test binary.

#![cfg(feature = "telemetry")]

use skyline_bench::json::{render_chrome_trace, validate_chrome_trace};
use skyline_core::geometry::Dataset;
use skyline_core::telemetry;
use skyline_serve::{run_open_loop, OpenLoopSpec, QueryMix, ServerOptions, SkylineServer};

const STALL_MS: u64 = 120;

#[test]
fn injected_stall_fires_latency_trigger_and_dumps_a_valid_trace() {
    let coords: Vec<(i64, i64)> = (0..120)
        .map(|i| ((i * 37) % 1201, (i * 61) % 1201))
        .collect();
    let ds = Dataset::from_coords(coords).expect("generated coords are valid");
    let (server, _handles) = SkylineServer::with_dataset(
        &ds,
        ServerOptions {
            injected_stall: (1, STALL_MS),
            ..ServerOptions::default()
        },
    );

    // Arm well above benign span durations (queries are microseconds) and
    // well below the stall, so the stall span's close is the trigger.
    telemetry::set_latency_trigger(STALL_MS * 1_000_000 / 2);
    assert!(
        !telemetry::anomaly_pending(),
        "trigger fired before the stalled run"
    );
    let report = run_open_loop(
        &server,
        &OpenLoopSpec {
            lanes: 0,
            rate: 50_000,
            arrivals: 300,
            domain: 1_300,
            seed: 11,
            mix: QueryMix::default(),
            refresh_every: 100,
        },
    );
    telemetry::set_latency_trigger(0);
    assert_eq!(report.arrivals, 300);

    assert!(
        telemetry::anomaly_pending(),
        "the {STALL_MS} ms stall span did not fire the latency trigger"
    );
    let dump = telemetry::take_anomaly_dump().expect("a frozen dump is pending");
    assert_eq!(dump.reason, "latency-over-threshold");
    assert!(
        dump.events
            .iter()
            .any(|e| e.name == "serve.refresh.injected_stall"),
        "dump does not contain the stall span: {:?}",
        dump.events.iter().map(|e| e.name).collect::<Vec<_>>()
    );
    // A second take must find nothing: the recorder re-armed.
    assert!(telemetry::take_anomaly_dump().is_none());

    let trace = render_chrome_trace(&dump.events, "anomaly-dump");
    let summary = validate_chrome_trace(&trace).expect("dump renders to a valid Chrome trace");
    assert_eq!(summary.complete_events as usize, dump.events.len());
    assert!(trace.contains("serve.refresh.injected_stall"), "{trace}");
}
