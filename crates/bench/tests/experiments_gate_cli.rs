//! CLI contract tests for the `experiments` gate pipeline: a gated run
//! with several broken guards must report *every* violation (artifact
//! write, parallel regression ratio, SLO bounds) before exiting 1 — not
//! bail on the first — and a healthy smoke run must exit 0. These run the
//! real binary via Cargo's `CARGO_BIN_EXE_*` environment contract.
//!
//! The failure run arms the guards deterministically with the testing
//! aids the binary exposes: `--gate-ratio` far below 1 makes every
//! parallel row a regression, `--slo-scale 0` makes every SLO bound 0,
//! and a `--json` path inside a nonexistent directory breaks the
//! artifact write. E13 smoke is the cheapest record-producing experiment
//! (schedule-bound, a few seconds), so both tests ride on it.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .env_remove("SKYLINE_THREADS")
        .output()
        .expect("experiments binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn gated_run_reports_every_broken_guard_in_one_pass() {
    let out = run(&[
        "e13",
        "--profile",
        "smoke",
        "--gate",
        "--gate-ratio",
        "0.0001",
        "--slo-scale",
        "0",
        "--json",
        "/nonexistent-experiments-gate-dir/records.json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    // All three guard classes appear in the same run's report.
    assert!(
        err.contains("cannot write bench records to"),
        "artifact failure missing: {err}"
    );
    assert!(
        err.contains("vs sequential") && err.contains("0.0001x"),
        "regression violations missing: {err}"
    );
    assert!(
        err.contains("SLO breach") && err.contains("exceeds bound 0us"),
        "SLO violations missing: {err}"
    );
    // The regression guard fires for BOTH swept rates, proving the gate
    // did not stop at the first violation.
    assert!(
        err.contains("openloop/r2000") && err.contains("openloop/r8000"),
        "expected violations from both rate configurations: {err}"
    );
    let count_line = err
        .lines()
        .find(|l| l.ends_with("gate violation(s)"))
        .unwrap_or_else(|| panic!("no violation count line in: {err}"));
    let count: usize = count_line
        .split_whitespace()
        .next()
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| panic!("unparsable violation count: {count_line}"));
    assert!(count >= 3, "expected >= 3 violations, got {count}: {err}");
}

#[test]
fn healthy_smoke_gate_exits_0_and_reports_slo_coverage() {
    let out = run(&["e13", "--profile", "smoke", "--gate"]);
    let err = stderr(&out);
    assert_eq!(out.status.code(), Some(0), "stderr: {err}");
    assert!(
        err.contains("open-loop SLO bounds honored"),
        "SLO gate summary missing: {err}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("## E13"), "E13 table missing: {stdout}");
}

#[test]
fn gate_floor_exempts_subfloor_records_from_both_guards() {
    // A regression ratio far below 1 makes every parallel row a violation —
    // unless the floor exempts it. With the floor above every smoke-profile
    // runtime, the run must pass even under the absurd ratio, proving the
    // flake-proofing path (PR 7's dynamic/subset n=10 noise) works.
    let out = run(&[
        "e11",
        "--profile",
        "smoke",
        "--gate",
        "--gate-ratio",
        "0.0001",
        "--gate-floor-ms",
        "1000000",
        "--efficiency-ratio",
        "0",
    ]);
    let err = stderr(&out);
    assert_eq!(out.status.code(), Some(0), "stderr: {err}");
    assert!(
        err.contains("floor 1000000 ms"),
        "floor missing from gate summary: {err}"
    );
    assert!(
        err.contains("efficiency thresholds met"),
        "efficiency gate summary missing: {err}"
    );
}

#[test]
fn efficiency_gate_reports_every_unmet_threshold() {
    // An unreachable efficiency threshold with the floor disabled must fail
    // the run and name the t4/t1 ratio for each checked configuration.
    let out = run(&[
        "e11",
        "--profile",
        "smoke",
        "--gate",
        "--gate-ratio",
        "1000000",
        "--gate-floor-ms",
        "0",
        "--efficiency-ratio",
        "1000000",
    ]);
    let err = stderr(&out);
    assert_eq!(out.status.code(), Some(1), "stderr: {err}");
    assert!(
        err.contains("efficiency:") && err.contains("t4/t1 speedup"),
        "efficiency violations missing: {err}"
    );
    // Fires for more than one configuration — the gate reports all of them.
    let fired = err.matches("efficiency:").count();
    assert!(fired >= 2, "expected >= 2 efficiency violations: {err}");
}

#[test]
fn malformed_gate_flags_exit_2() {
    for args in [
        &["--gate-ratio"][..],
        &["--gate-ratio", "fast"][..],
        &["--slo-scale", "-1"][..],
        &["--gate-floor-ms"][..],
        &["--gate-floor-ms", "tall"][..],
        &["--efficiency-ratio", "-2"][..],
    ] {
        let out = run(args);
        assert_eq!(out.status.code(), Some(2), "args = {args:?}");
        assert!(
            stderr(&out).contains("Usage: experiments"),
            "args = {args:?}"
        );
    }
}
