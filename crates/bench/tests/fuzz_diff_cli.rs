//! CLI contract tests for the `fuzz_diff` harness: argument handling must be
//! exhaustive (exit 2 with usage for anything unrecognized, wherever it
//! appears on the line), and the degenerate `--seconds 0` run must exit
//! cleanly. These run the real release/debug binary via Cargo's
//! `CARGO_BIN_EXE_*` environment contract.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fuzz_diff"))
        .args(args)
        .env_remove("SKYLINE_THREADS")
        .output()
        .expect("fuzz_diff binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn unknown_flag_exits_2_with_usage() {
    let out = run(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown argument '--bogus'"), "{err}");
    assert!(err.contains("Usage: fuzz_diff"), "{err}");
}

#[test]
fn unknown_argument_after_valid_flag_exits_2() {
    // The historical failure mode to guard against: trailing junk after a
    // valid flag pair must be rejected, not silently ignored.
    let out = run(&["--seed", "7", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown argument '--bogus'"));

    let out = run(&["--seconds", "1", "extra"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown argument 'extra'"));
}

#[test]
fn missing_and_malformed_values_exit_2() {
    for args in [
        &["--seconds"][..],
        &["--seed"][..],
        &["--seconds", "soon"][..],
        &["--seed", "-3"][..],
    ] {
        let out = run(args);
        assert_eq!(out.status.code(), Some(2), "args = {args:?}");
        assert!(stderr(&out).contains("integer value"), "args = {args:?}");
    }
}

#[test]
fn help_exits_0_with_usage() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("Usage: fuzz_diff"));
}

#[test]
fn zero_seconds_exits_cleanly() {
    let out = run(&["--seconds", "0"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("rounds"));
}

#[test]
fn single_seed_repro_round_passes() {
    let out = run(&["--seed", "12345"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("seed 12345"));
}
