//! Tiny flag parser for the CLI: `--flag value` pairs plus positional
//! arguments, with typed accessors and unknown-flag detection. Hand-rolled
//! so the workspace stays within its approved dependency set.

use std::collections::HashMap;

/// Parsed arguments: positionals in order, flags as string pairs.
#[derive(Debug, Default, Clone)]
pub struct Args {
    positionals: Vec<String>,
    flags: HashMap<String, String>,
    consumed: std::cell::RefCell<std::collections::HashSet<String>>,
}

/// Argument errors, rendered for the user by `main`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` had no following value.
    MissingValue(String),
    /// A flag value failed to parse; `(flag, value, expected)`.
    BadValue(String, String, &'static str),
    /// A required flag or positional was absent.
    Required(&'static str),
    /// Flags that no accessor asked for.
    Unknown(Vec<String>),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "--{flag} needs a value"),
            ArgError::BadValue(flag, value, expected) => {
                write!(f, "--{flag}: {value:?} is not a valid {expected}")
            }
            ArgError::Required(what) => write!(f, "missing required {what}"),
            ArgError::Unknown(flags) => {
                write!(f, "unknown flags: ")?;
                for (i, flag) in flags.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "--{flag}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program/subcommand names).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut positionals = Vec::new();
        let mut flags = HashMap::new();
        let mut iter = raw.into_iter();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
                flags.insert(name.to_string(), value);
            } else {
                positionals.push(arg);
            }
        }
        Ok(Args {
            positionals,
            flags,
            consumed: Default::default(),
        })
    }

    /// Positional argument `idx`, required.
    pub fn positional(&self, idx: usize, what: &'static str) -> Result<&str, ArgError> {
        self.positionals
            .get(idx)
            .map(String::as_str)
            .ok_or(ArgError::Required(what))
    }

    /// Number of positionals.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// Optional string flag.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.consumed.borrow_mut().insert(flag.to_string());
        self.flags.get(flag).map(String::as_str)
    }

    /// String flag with a default.
    pub fn get_or<'a>(&'a self, flag: &str, default: &'a str) -> &'a str {
        self.get(flag).unwrap_or(default)
    }

    /// Required string flag.
    pub fn require(&self, flag: &'static str) -> Result<&str, ArgError> {
        self.get(flag).ok_or(ArgError::Required(flag))
    }

    /// Integer flag with a default.
    pub fn get_i64(&self, flag: &str, default: i64) -> Result<i64, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::BadValue(flag.to_string(), v.to_string(), "integer")),
        }
    }

    /// Unsigned flag with a default.
    pub fn get_usize(&self, flag: &str, default: usize) -> Result<usize, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                ArgError::BadValue(flag.to_string(), v.to_string(), "unsigned integer")
            }),
        }
    }

    /// Errors if any provided flag was never consumed by an accessor.
    pub fn reject_unknown(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        let mut unknown: Vec<String> = self
            .flags
            .keys()
            .filter(|k| !consumed.contains(*k))
            .cloned()
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            unknown.sort_unstable();
            Err(ArgError::Unknown(unknown))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn positionals_and_flags() {
        let args = parse(&["input.csv", "--n", "100", "out.bin", "--seed", "7"]);
        assert_eq!(args.positional(0, "input").unwrap(), "input.csv");
        assert_eq!(args.positional(1, "output").unwrap(), "out.bin");
        assert_eq!(args.positional_count(), 2);
        assert_eq!(args.get_usize("n", 0).unwrap(), 100);
        assert_eq!(args.get_i64("seed", 0).unwrap(), 7);
        assert!(args.reject_unknown().is_ok());
    }

    #[test]
    fn defaults() {
        let args = parse(&[]);
        assert_eq!(args.get_or("engine", "sweeping"), "sweeping");
        assert_eq!(args.get_usize("n", 42).unwrap(), 42);
        assert_eq!(
            args.positional(0, "input"),
            Err(ArgError::Required("input"))
        );
    }

    #[test]
    fn missing_value() {
        let err = Args::parse(["--n".to_string()]).unwrap_err();
        assert_eq!(err, ArgError::MissingValue("n".into()));
    }

    #[test]
    fn bad_value() {
        let args = parse(&["--n", "xyz"]);
        assert!(matches!(
            args.get_usize("n", 0),
            Err(ArgError::BadValue(..))
        ));
    }

    #[test]
    fn unknown_flags_detected() {
        let args = parse(&["--bogus", "1", "--n", "5"]);
        let _ = args.get_usize("n", 0);
        assert_eq!(
            args.reject_unknown(),
            Err(ArgError::Unknown(vec!["bogus".into()]))
        );
    }

    #[test]
    fn error_display() {
        assert!(ArgError::MissingValue("x".into())
            .to_string()
            .contains("--x"));
        assert!(ArgError::Required("input").to_string().contains("input"));
        assert!(ArgError::Unknown(vec!["a".into(), "b".into()])
            .to_string()
            .contains("--a, --b"));
        assert!(ArgError::BadValue("n".into(), "z".into(), "integer")
            .to_string()
            .contains("integer"));
    }
}
