//! Subcommand implementations. Each command takes parsed [`Args`] and
//! writes to the given output stream, so tests can drive them end to end.

use std::io::Write;

use skyline_core::diagram::merge::merge;
use skyline_core::dynamic::DynamicEngine;
use skyline_core::geometry::{Dataset, Point};
use skyline_core::quadrant::QuadrantEngine;
use skyline_core::serialize;
use skyline_data::{csv, generators, hotel};

use crate::args::{ArgError, Args};

/// Top-level CLI error.
#[derive(Debug)]
pub enum CliError {
    /// Argument problems.
    Args(ArgError),
    /// File system problems.
    Io(std::io::Error),
    /// CSV parse problems.
    Csv(csv::CsvError),
    /// Diagram decode problems.
    Decode(serialize::DecodeError),
    /// Snapshot container problems.
    Container(skyline_core::container::Error),
    /// Anything else, with a message.
    Other(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Csv(e) => write!(f, "csv error: {e}"),
            CliError::Decode(e) => write!(f, "decode error: {e}"),
            CliError::Container(e) => write!(f, "container error: {e}"),
            CliError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<csv::CsvError> for CliError {
    fn from(e: csv::CsvError) -> Self {
        CliError::Csv(e)
    }
}

impl From<serialize::DecodeError> for CliError {
    fn from(e: serialize::DecodeError) -> Self {
        CliError::Decode(e)
    }
}

impl From<skyline_core::container::Error> for CliError {
    fn from(e: skyline_core::container::Error) -> Self {
        CliError::Container(e)
    }
}

fn parse_engine(name: &str) -> Result<QuadrantEngine, CliError> {
    QuadrantEngine::ALL
        .into_iter()
        .find(|e| e.name() == name)
        .ok_or_else(|| {
            CliError::Other(format!(
                "unknown engine {name:?}; expected one of baseline, dsg, scanning, sweeping"
            ))
        })
}

fn parse_distribution(name: &str) -> Result<generators::Distribution, CliError> {
    generators::Distribution::ALL
        .into_iter()
        .find(|d| d.name() == name)
        .ok_or_else(|| {
            CliError::Other(format!(
                "unknown distribution {name:?}; expected corr, inde or anti"
            ))
        })
}

fn load_dataset(path: &str) -> Result<Dataset, CliError> {
    if path == "hotel" {
        return Ok(hotel::dataset());
    }
    Ok(csv::parse_dataset_2d(&std::fs::read_to_string(path)?)?)
}

/// `skydiag gen --dist anti --n 100 --domain 1000 --seed 1 --out data.csv`
pub fn cmd_gen(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let spec = generators::DatasetSpec {
        n: args.get_usize("n", 100)?,
        dims: 2,
        domain: args.get_i64("domain", 1000)?,
        distribution: parse_distribution(args.get_or("dist", "inde"))?,
        seed: args.get_i64("seed", 1)? as u64,
    };
    let out_path = args.get("out").map(str::to_string);
    args.reject_unknown()?;
    let text = csv::to_csv_2d(&spec.build_2d());
    match out_path {
        Some(path) => std::fs::write(path, text)?,
        None => out.write_all(text.as_bytes())?,
    }
    Ok(())
}

/// `skydiag build data.csv --engine sweeping --kind quadrant --out d.skyd`
pub fn cmd_build(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.positional(0, "input csv path (or 'hotel')")?;
    let dataset = load_dataset(input)?;
    let engine = parse_engine(args.get_or("engine", "sweeping"))?;
    let kind = args.get_or("kind", "quadrant").to_string();
    let out_path = args.require("out")?.to_string();
    let k = args.get_usize("k", 2)?;
    args.reject_unknown()?;

    let bytes = match kind.as_str() {
        "quadrant" => serialize::encode_cell_diagram(&engine.build(&dataset)),
        "skyband" => serialize::encode_cell_diagram(&skyline_core::skyband::build_incremental(
            &dataset, k as u32,
        )),
        "global" => serialize::encode_cell_diagram(&skyline_core::global::build(&dataset, engine)),
        "dynamic" => serialize::encode_subcell_diagram(&DynamicEngine::Scanning.build(&dataset)),
        other => {
            return Err(CliError::Other(format!(
                "unknown kind {other:?}; expected quadrant, global, dynamic or skyband"
            )))
        }
    };
    std::fs::write(&out_path, &bytes)?;
    writeln!(out, "wrote {} bytes to {}", bytes.len(), out_path)?;
    Ok(())
}

/// `skydiag query d.skyd --at 10,80 [--kind quadrant]`
pub fn cmd_query(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.positional(0, "diagram path")?;
    let at = args.require("at")?;
    let kind = args.get_or("kind", "quadrant").to_string();
    args.reject_unknown()?;

    let q = parse_point(at)?;
    let bytes = std::fs::read(path)?;
    let result: Vec<u32> = match kind.as_str() {
        "quadrant" | "global" => serialize::decode_cell_diagram(&bytes)?
            .query(q)
            .iter()
            .map(|id| id.0)
            .collect(),
        "dynamic" => serialize::decode_subcell_diagram(&bytes)?
            .query(q)
            .iter()
            .map(|id| id.0)
            .collect(),
        other => {
            return Err(CliError::Other(format!(
                "unknown kind {other:?}; expected quadrant, global or dynamic"
            )))
        }
    };
    let names: Vec<String> = result.iter().map(|id| format!("p{id}")).collect();
    writeln!(out, "skyline at {q}: {{{}}}", names.join(", "))?;
    Ok(())
}

fn parse_point(text: &str) -> Result<Point, CliError> {
    let parts: Vec<&str> = text.split(',').collect();
    if parts.len() != 2 {
        return Err(CliError::Other(format!("expected x,y but found {text:?}")));
    }
    let x = parts[0]
        .trim()
        .parse()
        .map_err(|_| CliError::Other(format!("bad x coordinate {:?}", parts[0].trim())))?;
    let y = parts[1]
        .trim()
        .parse()
        .map_err(|_| CliError::Other(format!("bad y coordinate {:?}", parts[1].trim())))?;
    Ok(Point::new(x, y))
}

/// `skydiag stats data.csv [--engine sweeping]`
pub fn cmd_stats(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.positional(0, "input csv path (or 'hotel')")?;
    let dataset = load_dataset(input)?;
    let engine = parse_engine(args.get_or("engine", "sweeping"))?;
    args.reject_unknown()?;

    let diagram = engine.build(&dataset);
    let merged = merge(&diagram);
    let stats = diagram.stats();
    writeln!(out, "points:            {}", dataset.len())?;
    writeln!(
        out,
        "grid:              {} x {} lines",
        diagram.grid().nx(),
        diagram.grid().ny()
    )?;
    writeln!(out, "cells:             {}", stats.cell_count)?;
    writeln!(out, "polyominoes:       {}", merged.len())?;
    writeln!(out, "distinct results:  {}", stats.distinct_results)?;
    writeln!(out, "avg skyline size:  {:.2}", stats.avg_result_len)?;
    writeln!(out, "max skyline size:  {}", stats.max_result_len)?;
    writeln!(out, "interned ids:      {}", stats.interned_ids)?;
    Ok(())
}

/// `skydiag render data.csv --out diagram.svg [--engine sweeping]`
pub fn cmd_render(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.positional(0, "input csv path (or 'hotel')")?;
    let dataset = load_dataset(input)?;
    let engine = parse_engine(args.get_or("engine", "sweeping"))?;
    let out_path = args.require("out")?.to_string();
    args.reject_unknown()?;

    let diagram = engine.build(&dataset);
    let merged = merge(&diagram);
    let svg = skyline_viz::svg::render_merged_diagram(
        &dataset,
        &diagram,
        &merged,
        &skyline_viz::svg::SvgOptions::default(),
    );
    std::fs::write(&out_path, &svg)?;
    writeln!(out, "wrote {} to {}", human_bytes(svg.len()), out_path)?;
    Ok(())
}

/// `skydiag ascii data.csv [--engine sweeping]`
pub fn cmd_ascii(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.positional(0, "input csv path (or 'hotel')")?;
    let dataset = load_dataset(input)?;
    let engine = parse_engine(args.get_or("engine", "sweeping"))?;
    args.reject_unknown()?;
    let diagram = engine.build(&dataset);
    out.write_all(skyline_viz::ascii::render_cells(&diagram).as_bytes())?;
    writeln!(out, "\nlegend:\n{}", skyline_viz::ascii::legend(&diagram))?;
    Ok(())
}

/// `skydiag report <input>` — two families behind one verb, told apart by
/// sniffing the input file:
///
/// * `skydiag report trace.json [--json verdict.json]` diagnoses a Chrome
///   trace recorded by `skydiag trace build`/`serve-bench`: per-thread
///   busy fractions, stitch-stall time, chunk-claim imbalance, and a
///   critical-path phase table, plus a machine-checkable JSON verdict
///   naming the dominant bound (see `skyline_bench::diag`).
/// * `skydiag report data.csv --out report.html [--engine E] [--title T]`
///   is the classic dataset HTML report.
pub fn cmd_report(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.positional(0, "input csv path (or 'hotel') or trace.json")?;
    if input != "hotel" {
        if let Ok(content) = std::fs::read_to_string(input) {
            if content.trim_start().starts_with("{\"traceEvents\":[") {
                return cmd_report_trace(&content, args, out);
            }
        }
    }
    let dataset = load_dataset(input)?;
    let engine = parse_engine(args.get_or("engine", "sweeping"))?;
    let title = args.get_or("title", "Skyline diagram report").to_string();
    let out_path = args.require("out")?.to_string();
    args.reject_unknown()?;

    let html = skyline_viz::report::html_report(&title, &dataset, engine);
    std::fs::write(&out_path, &html)?;
    writeln!(out, "wrote {} to {}", human_bytes(html.len()), out_path)?;
    Ok(())
}

/// The trace-diagnosis arm of [`cmd_report`]: prints the human table and
/// either writes the JSON verdict to `--json PATH` or appends it to the
/// output stream, so both CI and a terminal get a machine-checkable
/// verdict without extra flags. With `--mem metrics.json` (the snapshot
/// `skydiag trace ... --metrics` writes), the allocator counters join the
/// diagnosis: `mem.alloc_bytes` against `mem.arena.index_bytes` drives
/// the `alloc-churn` verdict.
fn cmd_report_trace(trace: &str, args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let json_path = args.get("json").map(str::to_string);
    let mem_path = args.get("mem").map(str::to_string);
    args.reject_unknown()?;
    let diagnosis = match mem_path {
        Some(path) => {
            let metrics = std::fs::read_to_string(&path)?;
            let events = skyline_bench::diag::parse_chrome_trace(trace)
                .map_err(|e| CliError::Other(format!("trace diagnosis failed: {e}")))?;
            skyline_bench::diag::diagnose_with_mem(
                &events,
                metrics_counter(&metrics, "mem.alloc_bytes"),
                metrics_counter(&metrics, "mem.arena.index_bytes"),
            )
        }
        None => skyline_bench::diag::diagnose_trace(trace)
            .map_err(|e| CliError::Other(format!("trace diagnosis failed: {e}")))?,
    };
    out.write_all(skyline_bench::diag::render_diagnosis_table(&diagnosis).as_bytes())?;
    let json = skyline_bench::diag::render_diagnosis_json(&diagnosis);
    match json_path {
        Some(path) => {
            std::fs::write(&path, &json)?;
            writeln!(out, "verdict json -> {path}")?;
        }
        None => out.write_all(json.as_bytes())?,
    }
    Ok(())
}

/// `skydiag trace <mode>` — two families behind one verb:
///
/// * `skydiag trace build --out trace.json [...]` and
///   `skydiag trace serve-bench --out trace.json [...]` record a telemetry
///   session around a diagram build (resp. a serving workload) and export
///   the phase spans as a Chrome trace-event file loadable in Perfetto or
///   `chrome://tracing`. `--metrics m.json` additionally dumps the flat
///   metrics snapshot.
/// * `skydiag trace data.csv --from 0,0 --to 25,100 [--engine sweeping]`
///   is the continuous-query segment trace (result changes along a route).
pub fn cmd_trace(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.positional(0, "trace mode (build|serve-bench) or input csv path")?;
    match input {
        "build" => return cmd_trace_build(args, out),
        "serve-bench" => return cmd_trace_serve_bench(args, out),
        _ => {}
    }
    let dataset = load_dataset(input)?;
    let engine = parse_engine(args.get_or("engine", "sweeping"))?;
    let from = parse_point(args.require("from")?)?;
    let to = parse_point(args.require("to")?)?;
    args.reject_unknown()?;

    let diagram = engine.build(&dataset);
    let steps = skyline_apps::continuous::trace_segment(&diagram, from, to);
    writeln!(
        out,
        "route {from} -> {to}: {} result changes",
        steps.len() - 1
    )?;
    for step in steps {
        let names: Vec<String> = step.result.iter().map(|id| format!("p{}", id.0)).collect();
        writeln!(
            out,
            "  t in [{:.4}, {:.4}]  {{{}}}",
            step.t_start,
            step.t_end,
            names.join(", ")
        )?;
    }
    Ok(())
}

/// Dataset for the telemetry trace modes: `--data <csv|hotel>` loads a
/// file, otherwise `--n/--dist/--domain/--seed` drive the generator (the
/// same knobs as `skydiag gen`).
fn trace_dataset(args: &Args, default_n: usize) -> Result<Dataset, CliError> {
    if let Some(path) = args.get("data") {
        return load_dataset(path);
    }
    let spec = generators::DatasetSpec {
        n: args.get_usize("n", default_n)?,
        dims: 2,
        domain: args.get_i64("domain", 1000)?,
        distribution: parse_distribution(args.get_or("dist", "inde"))?,
        seed: args.get_i64("seed", 1)? as u64,
    };
    Ok(spec.build_2d())
}

/// Explicit `--threads T` wins; otherwise the process-wide
/// `SKYLINE_THREADS` configuration applies (so traces show the same
/// schedule the user's builds run with).
fn trace_parallel_config(args: &Args) -> Result<skyline_core::parallel::ParallelConfig, CliError> {
    use skyline_core::parallel::ParallelConfig;
    Ok(if args.get("threads").is_some() {
        ParallelConfig::with_threads(args.get_usize("threads", 0)?)
    } else {
        ParallelConfig::from_env()
    })
}

/// Stops the active recording session, renders the captured spans as a
/// Chrome trace, validates the rendering before anything touches disk, and
/// writes the trace (plus the optional metrics snapshot).
fn write_trace_outputs(
    label: &str,
    out_path: &str,
    metrics_path: Option<&str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let events = skyline_core::telemetry::stop_recording();
    let trace = skyline_bench::json::render_chrome_trace(&events, label);
    let summary = skyline_bench::json::validate_chrome_trace(&trace)
        .map_err(|e| CliError::Other(format!("internal error: generated trace is invalid: {e}")))?;
    std::fs::write(out_path, &trace)?;
    let threads: std::collections::HashSet<u64> = events.iter().map(|e| e.thread).collect();
    writeln!(
        out,
        "trace:       {} spans across {} threads -> {}",
        summary.complete_events,
        threads.len(),
        out_path
    )?;
    if summary.complete_events == 0 {
        writeln!(
            out,
            "note:        no spans captured (was the CLI built without the `telemetry` feature?)"
        )?;
    }
    if let Some(path) = metrics_path {
        let snapshot = skyline_core::telemetry::metrics_snapshot();
        std::fs::write(
            path,
            skyline_bench::json::render_metrics_snapshot(&snapshot),
        )?;
        writeln!(
            out,
            "metrics:     {} counters, {} histograms -> {}",
            snapshot.counters.len(),
            snapshot.histograms.len(),
            path
        )?;
    }
    Ok(())
}

/// `skydiag trace build --out trace.json [--n N] [--dist ...] [--domain S]
/// [--seed K] [--data data.csv|hotel] [--engine ...]
/// [--kind quadrant|global|dynamic] [--threads T] [--metrics m.json]`
fn cmd_trace_build(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let engine = parse_engine(args.get_or("engine", "sweeping"))?;
    let kind = args.get_or("kind", "quadrant").to_string();
    let out_path = args.require("out")?.to_string();
    let metrics_path = args.get("metrics").map(str::to_string);
    let cfg = trace_parallel_config(args)?;
    // The dynamic diagram is O(n^4) subcells; keep its default dataset small.
    let dataset = trace_dataset(args, if kind == "dynamic" { 40 } else { 400 })?;
    args.reject_unknown()?;

    skyline_core::telemetry::reset_metrics();
    skyline_core::telemetry::start_recording();
    let arena_bytes = match kind.as_str() {
        "quadrant" => engine.build_with(&dataset, &cfg).heap_bytes(),
        "global" => skyline_core::global::build_with(&dataset, engine, &cfg).heap_bytes(),
        "dynamic" => DynamicEngine::Scanning
            .build_with(&dataset, &cfg)
            .heap_bytes(),
        other => {
            // Close the session before failing so a bad kind never leaks a
            // recording generation into the caller's process.
            let _ = skyline_core::telemetry::stop_recording();
            return Err(CliError::Other(format!(
                "unknown kind {other:?}; expected quadrant, global or dynamic"
            )));
        }
    };
    // Lands the retained arena size in the metrics snapshot so a later
    // `skydiag report <trace> --mem <metrics>` can compute the
    // transient-vs-retained churn ratio against `mem.alloc_bytes`.
    skyline_core::counter!("mem.arena.index_bytes").add(arena_bytes as u64);
    writeln!(
        out,
        "traced {kind} build: n={} engine={}",
        dataset.len(),
        engine.name()
    )?;
    write_trace_outputs(
        &format!("skydiag trace build ({kind})"),
        &out_path,
        metrics_path.as_deref(),
        out,
    )
}

/// Parses `--stall NTH,MS` into the server's injected-stall test hook.
fn parse_stall(text: &str) -> Result<(u64, u64), CliError> {
    text.split_once(',')
        .and_then(|(nth, ms)| Some((nth.trim().parse().ok()?, ms.trim().parse().ok()?)))
        .ok_or_else(|| {
            CliError::Other(format!(
                "bad --stall {text:?}; expected NTH,MS (stall the NTH refresh for MS ms)"
            ))
        })
}

/// `skydiag trace serve-bench --out trace.json [--n N | --data ...]
/// [--readers R] [--rounds K] [--queries Q] [--updates U] [--seed S]
/// [--cache SLOTS] [--global 0|1] [--engine ...] [--metrics m.json]
/// [--stall NTH,MS [--anomaly dump.json]]`
///
/// `--stall NTH,MS` wedges the NTH refresh barrier for MS milliseconds
/// (the deterministic anomaly the flight recorder exists for). With
/// `--anomaly PATH`, the latency trigger is armed at half the stall just
/// before the workload runs; the stall span fires it, and the frozen
/// flight-recorder dump is validated and written to PATH as a Chrome
/// trace — the whole capture-after-the-fact flow, driven end to end.
fn cmd_trace_serve_bench(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let engine = parse_engine(args.get_or("engine", "sweeping"))?;
    let readers = args.get_usize("readers", 2)?;
    let rounds = args.get_usize("rounds", 3)?;
    let queries = args.get_usize("queries", 50)?;
    let updates = args.get_usize("updates", 8)?;
    let seed = args.get_i64("seed", 1)? as u64;
    let cache_slots = args.get_usize("cache", 1024)?;
    let with_global = args.get_usize("global", 1)? != 0;
    let out_path = args.require("out")?.to_string();
    let metrics_path = args.get("metrics").map(str::to_string);
    let injected_stall = match args.get("stall") {
        Some(text) => parse_stall(text)?,
        None => (0, 0),
    };
    let anomaly_path = args.get("anomaly").map(str::to_string);
    let dataset = trace_dataset(args, 200)?;
    args.reject_unknown()?;
    if anomaly_path.is_some() && injected_stall.0 == 0 {
        return Err(CliError::Other(
            "--anomaly needs --stall NTH,MS: without a stall nothing fires the trigger".into(),
        ));
    }

    let domain = dataset
        .points()
        .iter()
        .flat_map(|p| [p.x, p.y])
        .max()
        .unwrap_or(1000)
        .max(1);
    let options = skyline_serve::ServerOptions {
        engine,
        with_global,
        cache_slots,
        injected_stall,
        ..skyline_serve::ServerOptions::default()
    };
    let spec = skyline_serve::WorkloadSpec {
        readers,
        rounds,
        queries_per_reader: queries,
        updates_per_round: updates,
        domain,
        seed,
        mix: skyline_serve::QueryMix::default(),
    };

    skyline_core::telemetry::reset_metrics();
    skyline_core::telemetry::start_recording();
    let (server, handles) = skyline_serve::SkylineServer::with_dataset(&dataset, options);
    if anomaly_path.is_some() {
        // Armed after the build so a slow construction span cannot win the
        // first-trigger race; half the stall clears every benign span.
        skyline_core::telemetry::set_latency_trigger((injected_stall.1 * 1_000_000 / 2).max(1));
    }
    let report = skyline_serve::workload::run(&server, &spec, &handles);
    skyline_core::telemetry::set_latency_trigger(0);
    writeln!(
        out,
        "traced serve-bench: n={} readers={readers} rounds={rounds} queries/reader/round={queries} \
         updates/round={updates}",
        dataset.len(),
    )?;
    writeln!(out, "queries:     {}", report.queries)?;
    writeln!(out, "epochs:      {}", report.epochs_published)?;
    writeln!(out, "checksum:    {:#018x}", report.checksum)?;
    write_trace_outputs(
        "skydiag trace serve-bench",
        &out_path,
        metrics_path.as_deref(),
        out,
    )?;
    if let Some(path) = anomaly_path {
        let dump = skyline_core::telemetry::take_anomaly_dump().ok_or_else(|| {
            CliError::Other(
                "no anomaly trigger fired (is the CLI built without the `telemetry` feature, \
                 or the stall too short to cross the armed threshold?)"
                    .into(),
            )
        })?;
        let trace = skyline_bench::json::render_chrome_trace(&dump.events, "anomaly dump");
        skyline_bench::json::validate_chrome_trace(&trace).map_err(|e| {
            CliError::Other(format!(
                "internal error: anomaly dump trace is invalid: {e}"
            ))
        })?;
        std::fs::write(&path, &trace)?;
        writeln!(
            out,
            "anomaly:     {} ({} spans) -> {}",
            dump.reason,
            dump.events.len(),
            path
        )?;
    }
    Ok(())
}

/// `skydiag serve-bench <data.csv|hotel> [--readers R] [--rounds K]
/// [--queries Q] [--updates U] [--seed S] [--cache SLOTS] [--global 0|1]
/// [--engine ...]`
///
/// Closed-loop serving benchmark: loads the dataset into a
/// [`skyline_serve::SkylineServer`], then drives `rounds` rounds of
/// `updates` writer updates (fenced by a refresh barrier) followed by
/// `readers × queries` concurrent reader queries on the scoped pool.
/// The printed checksum is deterministic for a given spec and dataset —
/// identical across thread counts and cache settings.
pub fn cmd_serve_bench(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.positional(0, "input csv path (or 'hotel')")?;
    let dataset = load_dataset(input)?;
    let engine = parse_engine(args.get_or("engine", "sweeping"))?;
    let readers = args.get_usize("readers", 4)?;
    let rounds = args.get_usize("rounds", 8)?;
    let queries = args.get_usize("queries", 250)?;
    let updates = args.get_usize("updates", 0)?;
    let seed = args.get_i64("seed", 1)? as u64;
    let cache_slots = args.get_usize("cache", 4096)?;
    let with_global = args.get_usize("global", 1)? != 0;
    args.reject_unknown()?;

    let domain = dataset
        .points()
        .iter()
        .flat_map(|p| [p.x, p.y])
        .max()
        .unwrap_or(1000)
        .max(1);
    let options = skyline_serve::ServerOptions {
        engine,
        with_global,
        cache_slots,
        ..skyline_serve::ServerOptions::default()
    };
    let (server, handles) = skyline_serve::SkylineServer::with_dataset(&dataset, options);
    let spec = skyline_serve::WorkloadSpec {
        readers,
        rounds,
        queries_per_reader: queries,
        updates_per_round: updates,
        domain,
        seed,
        mix: skyline_serve::QueryMix::default(),
    };
    let report = skyline_serve::workload::run(&server, &spec, &handles);

    writeln!(
        out,
        "serve-bench: n={} readers={readers} rounds={rounds} queries/reader/round={queries} \
         updates/round={updates} cache={cache_slots} global={with_global}",
        dataset.len(),
    )?;
    writeln!(out, "queries:     {}", report.queries)?;
    writeln!(out, "updates:     {}", report.updates)?;
    writeln!(out, "epochs:      {}", report.epochs_published)?;
    writeln!(out, "elapsed:     {:.1} ms", report.elapsed_ms)?;
    writeln!(
        out,
        "throughput:  {:.0} queries/s",
        report.queries_per_sec()
    )?;
    let cache = report.cache;
    if cache.lookups() > 0 {
        writeln!(
            out,
            "cache:       {} hits / {} misses ({:.1}% hit rate, final epoch)",
            cache.hits,
            cache.misses,
            100.0 * cache.hits as f64 / cache.lookups() as f64
        )?;
    } else {
        writeln!(out, "cache:       disabled")?;
    }
    writeln!(out, "checksum:    {:#018x}", report.checksum)?;
    Ok(())
}

/// Value of a named counter in a rendered metrics-snapshot JSON file
/// ([`skyline_bench::json::render_metrics_snapshot`] output; 0 when
/// absent). Line-oriented like the trace parser — counters render as
/// `"name": value` entries.
fn metrics_counter(json: &str, name: &str) -> u64 {
    let pat = format!("\"{name}\": ");
    json.find(&pat)
        .and_then(|at| {
            let digits: String = json[at + pat.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse().ok()
        })
        .unwrap_or(0)
}

/// Value of a named counter in a metrics snapshot (0 when absent — the
/// telemetry-off build has an empty registry).
fn counter_value(snap: &skyline_core::telemetry::MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|c| c.name == name)
        .map_or(0, |c| c.value)
}

/// Dense per-bucket counts of a named histogram in a snapshot.
fn histogram_buckets(snap: &skyline_core::telemetry::MetricsSnapshot, name: &str) -> Vec<u64> {
    let mut dense = vec![0u64; skyline_core::telemetry::HISTOGRAM_BUCKETS];
    if let Some(h) = snap.histograms.iter().find(|h| h.name == name) {
        for &(i, count) in &h.buckets {
            if let Some(slot) = dense.get_mut(i) {
                *slot = count;
            }
        }
    }
    dense
}

/// `skydiag top [--ticks T] [--interval-ms MS] [--n N | --data ...]
/// [--readers R] [--queries Q] [--updates U] [--seed S] [--cache SLOTS]
/// [--global 0|1] [--engine ...]`
///
/// Interval-sampled serving monitor: builds one server, then runs `ticks`
/// workload slices against it and prints the metrics-registry *deltas* per
/// tick — query rate, epoch publications, cache hit ratio, and a bucket
/// sparkline per histogram that moved. With `--interval-ms` the tick
/// starts are paced on a fixed schedule through the telemetry clock
/// ([`skyline_core::telemetry::spin_until`]), open-loop style; the default
/// of 0 runs ticks back to back.
pub fn cmd_top(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use skyline_core::telemetry;

    let engine = parse_engine(args.get_or("engine", "sweeping"))?;
    let ticks = args.get_usize("ticks", 5)?.max(1);
    let interval_ms = args.get_usize("interval-ms", 0)? as u64;
    let readers = args.get_usize("readers", 2)?;
    let queries = args.get_usize("queries", 200)?;
    let updates = args.get_usize("updates", 4)?;
    let seed = args.get_i64("seed", 1)? as u64;
    let cache_slots = args.get_usize("cache", 4096)?;
    let with_global = args.get_usize("global", 1)? != 0;
    let dataset = trace_dataset(args, 200)?;
    args.reject_unknown()?;

    let domain = dataset
        .points()
        .iter()
        .flat_map(|p| [p.x, p.y])
        .max()
        .unwrap_or(1000)
        .max(1);
    let options = skyline_serve::ServerOptions {
        engine,
        with_global,
        cache_slots,
        ..skyline_serve::ServerOptions::default()
    };
    let (server, handles) = skyline_serve::SkylineServer::with_dataset(&dataset, options);
    writeln!(
        out,
        "top: n={} readers={readers} queries/reader/tick={queries} updates/tick={updates} \
         interval={interval_ms}ms",
        dataset.len(),
    )?;

    let mut prev = telemetry::metrics_snapshot();
    let mut prev_mem = telemetry::mem::stats();
    let origin_ns = telemetry::now_ns();
    for tick in 0..ticks {
        telemetry::spin_until(origin_ns + tick as u64 * interval_ms * 1_000_000);
        let spec = skyline_serve::WorkloadSpec {
            readers,
            rounds: 1,
            queries_per_reader: queries,
            updates_per_round: updates,
            domain,
            // A fresh seed per tick keeps the query stream moving instead
            // of replaying tick 1 into a fully warmed cache.
            seed: seed.wrapping_add(tick as u64),
            mix: skyline_serve::QueryMix::default(),
        };
        let tick_start = telemetry::now_ns();
        let report = skyline_serve::workload::run(&server, &spec, &handles);
        let wall_ms = telemetry::ms_since(tick_start).max(1e-6);
        let snap = telemetry::metrics_snapshot();
        let mem_now = telemetry::mem::stats();

        let hits =
            counter_value(&snap, "serve.cache.hit") - counter_value(&prev, "serve.cache.hit");
        let misses =
            counter_value(&snap, "serve.cache.miss") - counter_value(&prev, "serve.cache.miss");
        let hit_cell = if hits + misses > 0 {
            format!("{:.1}%", 100.0 * hits as f64 / (hits + misses) as f64)
        } else {
            "—".to_string()
        };
        writeln!(
            out,
            "tick {}/{ticks}: {} queries in {wall_ms:.1} ms ({:.0} q/s) | epochs {} | cache {hit_cell} \
             | live {} | peak {} | +{} allocs",
            tick + 1,
            report.queries,
            report.queries as f64 * 1_000.0 / wall_ms,
            report.epochs_published,
            human_bytes(mem_now.live_bytes as usize),
            human_bytes(mem_now.peak_bytes as usize),
            mem_now.allocs.saturating_sub(prev_mem.allocs),
        )?;
        prev_mem = mem_now;
        for h in &snap.histograms {
            let before = histogram_buckets(&prev, h.name);
            let after = histogram_buckets(&snap, h.name);
            let delta: Vec<u64> = after
                .iter()
                .zip(&before)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect();
            let moved: u64 = delta.iter().sum();
            if moved == 0 {
                continue;
            }
            // Show buckets up to the last active one, so the sparkline's
            // width tracks the magnitude range actually exercised.
            let width = delta.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
            writeln!(
                out,
                "  {:<20} {} (+{moved} samples)",
                h.name,
                skyline_viz::ascii::sparkline(&delta[..width]),
            )?;
        }
        if snap.histograms.is_empty() && tick == 0 {
            writeln!(
                out,
                "  (metrics registry is empty — built without the `telemetry` feature?)"
            )?;
        }
        prev = snap;
    }
    Ok(())
}

/// `skydiag save <out.skd> [--data data.csv|hotel | --n N --dist D --domain S
/// --seed K] [--engine ...] [--global 0|1] [--dynamic 0|1]`
///
/// Builds a [`skyline_core::index::SkylineIndex`] over the dataset and
/// writes it as a versioned snapshot container
/// ([`skyline_core::container`]): a later `skydiag load` (or
/// [`skyline_serve::SkylineServer::from_container`]) cold-starts from the
/// file without rebuilding any diagram.
pub fn cmd_save(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let out_path = args
        .positional(0, "output container path (out.skd)")?
        .to_string();
    let engine = parse_engine(args.get_or("engine", "sweeping"))?;
    let with_global = args.get_usize("global", 1)? != 0;
    let with_dynamic = args.get_usize("dynamic", 0)? != 0;
    let dataset = trace_dataset(args, 200)?;
    args.reject_unknown()?;

    let index = skyline_core::index::SkylineIndex::builder()
        .engine(engine)
        .with_global(with_global)
        .with_dynamic(with_dynamic)
        .build(&dataset);
    let handles: Vec<skyline_core::maintained::Handle> = (0..dataset.len() as u64)
        .map(skyline_core::maintained::Handle)
        .collect();
    let bytes = skyline_core::container::encode_index(&index, &handles);
    std::fs::write(&out_path, &bytes)?;
    writeln!(
        out,
        "wrote {} to {} (container v{}.{})",
        human_bytes(bytes.len()),
        out_path,
        skyline_core::container::MAJOR_VERSION,
        skyline_core::container::MINOR_VERSION,
    )?;
    for s in skyline_core::container::sections(&bytes)? {
        writeln!(
            out,
            "  section {:>2}  {:<24} {:>9} bytes @ {}",
            s.id, s.name, s.length, s.offset
        )?;
    }
    Ok(())
}

/// `skydiag load <in.skd> [--at X,Y] [--cache SLOTS]`
///
/// Cold-starts a [`skyline_serve::SkylineServer`] from a snapshot container
/// written by `skydiag save` — every section is checksum-validated and
/// bounds-checked, then the diagrams are adopted without rebuilding. With
/// `--at` the loaded server also answers the three query families at that
/// point.
pub fn cmd_load(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use skyline_core::telemetry;

    let path = args.positional(0, "input container path (in.skd)")?;
    let at = args.get("at").map(str::to_string);
    let cache_slots = args.get_usize("cache", 4096)?;
    let bytes = std::fs::read(path)?;
    args.reject_unknown()?;

    let options = skyline_serve::ServerOptions {
        cache_slots,
        ..skyline_serve::ServerOptions::default()
    };
    let start_ns = telemetry::now_ns();
    let (server, _handles) = skyline_serve::SkylineServer::from_container(&bytes, options)?;
    let cold_ms = telemetry::ms_since(start_ns);

    let mut reader = server.reader();
    let snap = reader.snapshot();
    let (has_global, has_dynamic) = snap.index().map_or((false, false), |ix| {
        (
            ix.global_diagram().is_some(),
            ix.dynamic_diagram().is_some(),
        )
    });
    writeln!(
        out,
        "cold-started epoch {} from {} ({}) in {cold_ms:.2} ms",
        snap.epoch(),
        path,
        human_bytes(bytes.len()),
    )?;
    writeln!(
        out,
        "points: {}  diagrams: quadrant{}{}",
        snap.len(),
        if has_global { " + global" } else { "" },
        if has_dynamic { " + dynamic" } else { "" },
    )?;
    if let Some(at) = at {
        let q = parse_point(&at)?;
        let show = |ids: &[skyline_core::maintained::Handle]| {
            let names: Vec<String> = ids.iter().map(|h| format!("h{}", h.0)).collect();
            format!("{{{}}}", names.join(", "))
        };
        writeln!(out, "quadrant at {q}: {}", show(&snap.quadrant(q)))?;
        writeln!(out, "global   at {q}: {}", show(&snap.global(q)))?;
        writeln!(out, "dynamic  at {q}: {}", show(&snap.dynamic(q)))?;
    }
    Ok(())
}

/// `skydiag mem <build|serve-bench>` — the memory-observatory report:
/// runs the workload under the counting allocator and prints where the
/// bytes went. Both modes print the allocator totals (allocated / freed /
/// peak) and the per-phase attribution table; `build` adds the retained
/// arena breakdown of the built index plus the container section sizes a
/// `skydiag save` of it would write, `serve-bench` adds the published
/// snapshot's retained footprint.
pub fn cmd_mem(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let mode = args.positional(0, "mem mode (build|serve-bench)")?;
    match mode {
        "build" => cmd_mem_build(args, out),
        "serve-bench" => cmd_mem_serve_bench(args, out),
        other => Err(CliError::Other(format!(
            "unknown mem mode {other:?}; expected build or serve-bench"
        ))),
    }
}

/// Allocator totals and per-phase attribution, shared by both `mem`
/// modes. `before` is the stats reading taken right after
/// `reset_metrics`, so deltas are the workload's own.
fn write_mem_tables(
    before: skyline_core::telemetry::mem::MemStats,
    after: skyline_core::telemetry::mem::MemStats,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    use skyline_core::telemetry::mem;
    if !mem::enabled() {
        writeln!(
            out,
            "allocator:   counters read zero (built without the `mem-telemetry` feature)"
        )?;
        return Ok(());
    }
    writeln!(
        out,
        "allocator:   {} allocated across {} allocations, {} freed",
        human_bytes(after.alloc_bytes as usize),
        after.allocs,
        human_bytes(after.dealloc_bytes as usize),
    )?;
    writeln!(
        out,
        "working set: {} retained (live delta), {} peak over baseline",
        human_bytes(after.live_bytes.saturating_sub(before.live_bytes) as usize),
        human_bytes(after.peak_bytes.saturating_sub(before.live_bytes) as usize),
    )?;
    writeln!(
        out,
        "{:<18} {:>12} {:>12} {:>10}",
        "phase", "alloc", "freed", "allocs"
    )?;
    for row in mem::phase_stats() {
        if row.alloc_bytes == 0 && row.dealloc_bytes == 0 {
            continue;
        }
        writeln!(
            out,
            "{:<18} {:>12} {:>12} {:>10}",
            row.phase.name(),
            human_bytes(row.alloc_bytes as usize),
            human_bytes(row.dealloc_bytes as usize),
            row.allocs,
        )?;
    }
    Ok(())
}

/// `skydiag mem build [--n N | --data ...] [--dist ...] [--domain S]
/// [--seed K] [--engine ...] [--global 0|1] [--dynamic 0|1] [--threads T]`
fn cmd_mem_build(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use skyline_core::telemetry;

    let engine = parse_engine(args.get_or("engine", "sweeping"))?;
    let with_global = args.get_usize("global", 1)? != 0;
    let with_dynamic = args.get_usize("dynamic", 0)? != 0;
    let cfg = trace_parallel_config(args)?;
    // The dynamic diagram is O(n^4) subcells; keep its default dataset small.
    let dataset = trace_dataset(args, if with_dynamic { 40 } else { 400 })?;
    args.reject_unknown()?;

    telemetry::reset_metrics();
    let before = telemetry::mem::stats();
    let start_ns = telemetry::now_ns();
    let index = skyline_core::index::SkylineIndex::builder()
        .engine(engine)
        .with_global(with_global)
        .with_dynamic(with_dynamic)
        .build_with(&dataset, &cfg);
    let build_ms = telemetry::ms_since(start_ns);
    let after = telemetry::mem::stats();

    writeln!(
        out,
        "mem build: n={} engine={} global={with_global} dynamic={with_dynamic} ({build_ms:.1} ms)",
        dataset.len(),
        engine.name(),
    )?;
    write_mem_tables(before, after, out)?;

    writeln!(out, "retained arenas:")?;
    let mut arena =
        |name: &str, bytes: usize| writeln!(out, "  {:<24} {:>12}", name, human_bytes(bytes));
    arena("dataset", index.dataset().heap_bytes())?;
    arena("quadrant diagram", index.quadrant_diagram().heap_bytes())?;
    arena("merged polyominoes", index.polyominoes().heap_bytes())?;
    if let Some(global) = index.global_diagram() {
        arena("global diagram", global.heap_bytes())?;
    }
    if let Some(dynamic) = index.dynamic_diagram() {
        arena("dynamic diagram", dynamic.heap_bytes())?;
    }
    arena("total", index.heap_bytes())?;

    let bytes = skyline_core::container::encode_index(&index, &[]);
    writeln!(
        out,
        "container:   {} total (what `skydiag save` would write)",
        human_bytes(bytes.len())
    )?;
    for sec in skyline_core::container::sections(&bytes)? {
        writeln!(
            out,
            "  section {:>2}  {:<24} {:>9} bytes",
            sec.id, sec.name, sec.length
        )?;
    }
    Ok(())
}

/// `skydiag mem serve-bench [--n N | --data ...] [--readers R] [--rounds K]
/// [--queries Q] [--updates U] [--seed S] [--cache SLOTS] [--global 0|1]
/// [--engine ...]`
fn cmd_mem_serve_bench(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use skyline_core::telemetry;

    let engine = parse_engine(args.get_or("engine", "sweeping"))?;
    let readers = args.get_usize("readers", 2)?;
    let rounds = args.get_usize("rounds", 3)?;
    let queries = args.get_usize("queries", 50)?;
    let updates = args.get_usize("updates", 8)?;
    let seed = args.get_i64("seed", 1)? as u64;
    let cache_slots = args.get_usize("cache", 4096)?;
    let with_global = args.get_usize("global", 1)? != 0;
    let dataset = trace_dataset(args, 200)?;
    args.reject_unknown()?;

    let domain = dataset
        .points()
        .iter()
        .flat_map(|p| [p.x, p.y])
        .max()
        .unwrap_or(1000)
        .max(1);
    let options = skyline_serve::ServerOptions {
        engine,
        with_global,
        cache_slots,
        ..skyline_serve::ServerOptions::default()
    };
    let spec = skyline_serve::WorkloadSpec {
        readers,
        rounds,
        queries_per_reader: queries,
        updates_per_round: updates,
        domain,
        seed,
        mix: skyline_serve::QueryMix::default(),
    };

    telemetry::reset_metrics();
    let before = telemetry::mem::stats();
    let start_ns = telemetry::now_ns();
    let (server, handles) = skyline_serve::SkylineServer::with_dataset(&dataset, options);
    let report = skyline_serve::workload::run(&server, &spec, &handles);
    let elapsed_ms = telemetry::ms_since(start_ns);
    let after = telemetry::mem::stats();

    writeln!(
        out,
        "mem serve-bench: n={} readers={readers} rounds={rounds} queries/reader/round={queries} \
         updates/round={updates} ({elapsed_ms:.1} ms, {} queries, checksum {:#018x})",
        dataset.len(),
        report.queries,
        report.checksum,
    )?;
    write_mem_tables(before, after, out)?;
    writeln!(
        out,
        "snapshot:    {} retained by the published epoch (index arenas, \
         handle table, filled caches)",
        human_bytes(server.reader().snapshot().heap_bytes()),
    )?;
    Ok(())
}

fn human_bytes(n: usize) -> String {
    if n >= 1 << 20 {
        format!("{:.1} MiB", n as f64 / (1 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.1} KiB", n as f64 / (1 << 10) as f64)
    } else {
        format!("{n} B")
    }
}

/// Usage text.
pub const USAGE: &str = "skydiag — skyline diagrams on the command line

USAGE:
  skydiag gen    [--dist corr|inde|anti] [--n N] [--domain S] [--seed K] [--out data.csv]
  skydiag build  <data.csv|hotel> --out d.skyd [--engine baseline|dsg|scanning|sweeping]
                 [--kind quadrant|global|dynamic|skyband] [--k K]
  skydiag query  <d.skyd> --at X,Y [--kind quadrant|global|dynamic]
  skydiag stats  <data.csv|hotel> [--engine ...]
  skydiag render <data.csv|hotel> --out d.svg [--engine ...]
  skydiag ascii  <data.csv|hotel> [--engine ...]
  skydiag trace  <data.csv|hotel> --from X,Y --to X,Y [--engine ...]
  skydiag trace  build --out trace.json [--n N] [--dist ...] [--domain S] [--seed K]
                 [--data data.csv|hotel] [--engine ...] [--kind quadrant|global|dynamic]
                 [--threads T] [--metrics metrics.json]
  skydiag trace  serve-bench --out trace.json [--n N | --data ...] [--readers R]
                 [--rounds K] [--queries Q] [--updates U] [--seed S] [--cache SLOTS]
                 [--global 0|1] [--engine ...] [--metrics metrics.json]
                 [--stall NTH,MS [--anomaly dump.json]]
                 (--stall wedges the NTH refresh for MS ms; --anomaly arms the
                 latency trigger and writes the flight-recorder dump it freezes)
  skydiag report <data.csv|hotel> --out report.html [--engine ...] [--title T]
  skydiag report <trace.json> [--json verdict.json] [--mem metrics.json]
                 (Chrome-trace input is auto-detected; prints a per-thread
                 busy/stall diagnosis table plus a machine-readable verdict;
                 --mem joins the allocator counters and can re-label the
                 verdict alloc-churn when transient allocations dominate)
  skydiag serve-bench <data.csv|hotel> [--readers R] [--rounds K] [--queries Q]
                 [--updates U] [--seed S] [--cache SLOTS] [--global 0|1] [--engine ...]
  skydiag top    [--ticks T] [--interval-ms MS] [--n N | --data ...] [--readers R]
                 [--queries Q] [--updates U] [--seed S] [--cache SLOTS]
                 [--global 0|1] [--engine ...]
                 (interval-sampled serving monitor: per-tick metric deltas,
                 live/peak heap bytes and allocation counts from the counting
                 allocator, with histogram-bucket sparklines — the
                 mem.alloc_size row is the allocation-size distribution)
  skydiag mem    build [--n N | --data ...] [--dist ...] [--domain S] [--seed K]
                 [--engine ...] [--global 0|1] [--dynamic 0|1] [--threads T]
  skydiag mem    serve-bench [--n N | --data ...] [--readers R] [--rounds K]
                 [--queries Q] [--updates U] [--seed S] [--cache SLOTS]
                 [--global 0|1] [--engine ...]
                 (memory observatory: allocator totals, per-phase allocation
                 attribution, retained arena breakdown, container sections)
  skydiag save   <out.skd> [--n N | --data data.csv|hotel] [--dist ...] [--domain S]
                 [--seed K] [--engine ...] [--global 0|1] [--dynamic 0|1]
                 (build an index and write it as a versioned snapshot container)
  skydiag load   <in.skd> [--at X,Y] [--cache SLOTS]
                 (cold-start a server from a container — checksum-validated,
                 no diagram rebuild; --at also answers all three families)

Input CSV: one `x,y` integer row per point; `#` comments allowed.
The literal input 'hotel' loads the paper's 11-hotel running example.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn run(
        cmd: fn(&Args, &mut dyn Write) -> Result<(), CliError>,
        parts: &[&str],
    ) -> Result<String, CliError> {
        let args = Args::parse(parts.iter().map(|s| s.to_string()))?;
        let mut out = Vec::new();
        cmd(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn gen_with_out_flag_writes_the_file() {
        // Regression: --out must be consumed before unknown-flag rejection.
        let dir = std::env::temp_dir().join("skydiag-test-gen");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.csv");
        run(cmd_gen, &["--n", "5", "--out", path.to_str().unwrap()]).unwrap();
        let ds = csv::parse_dataset_2d(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(ds.len(), 5);
    }

    #[test]
    fn gen_to_stdout_is_valid_csv() {
        let text = run(cmd_gen, &["--n", "25", "--dist", "anti", "--seed", "3"]).unwrap();
        let ds = csv::parse_dataset_2d(&text).unwrap();
        assert_eq!(ds.len(), 25);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("skydiag-test-container");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hotel.skd");
        let path_str = path.to_str().unwrap();

        let msg = run(cmd_save, &[path_str, "--data", "hotel", "--global", "1"]).unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        assert!(msg.contains("section"), "{msg}");

        let answer = run(cmd_load, &[path_str, "--at", "12,81"]).unwrap();
        assert!(answer.contains("cold-started epoch 1"), "{answer}");
        // Handles are 0-based over the hotel dataset: the paper's {p8, p10}
        // loads as {h7, h9}.
        assert!(answer.contains("{h7, h9}"), "{answer}");
    }

    #[test]
    fn load_rejects_corrupt_containers_with_a_typed_error() {
        let dir = std::env::temp_dir().join("skydiag-test-container-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.skd");
        let path_str = path.to_str().unwrap();

        run(cmd_save, &[path_str, "--data", "hotel"]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&path, &bytes).unwrap();

        let err = run(cmd_load, &[path_str]).unwrap_err();
        assert!(
            matches!(err, CliError::Container(_)),
            "expected a container error, got: {err}"
        );
    }

    #[test]
    fn build_query_roundtrip() {
        let dir = std::env::temp_dir().join("skydiag-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let diagram_path = dir.join("hotel.skyd");
        let diagram_str = diagram_path.to_str().unwrap();

        let msg = run(
            cmd_build,
            &["hotel", "--out", diagram_str, "--engine", "scanning"],
        )
        .unwrap();
        assert!(msg.contains("wrote"));

        let answer = run(cmd_query, &[diagram_str, "--at", "12,81"]).unwrap();
        // Point ids are 0-based: the paper's {p8, p10} prints as {p7, p9}.
        assert!(answer.contains("{p7, p9}"), "{answer}");
    }

    #[test]
    fn build_skyband_and_query() {
        let dir = std::env::temp_dir().join("skydiag-test-skyband");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hotel-band.skyd");
        let path_str = path.to_str().unwrap();
        run(
            cmd_build,
            &["hotel", "--out", path_str, "--kind", "skyband", "--k", "2"],
        )
        .unwrap();
        // Serialized skyband diagrams answer like any cell diagram; the
        // 2-band at (12, 81) adds p5 and p7 to the skyline {p8, p10}
        // (0-based: p4, p6, p7, p9).
        let answer = run(cmd_query, &[path_str, "--at", "12,81"]).unwrap();
        assert!(answer.contains("{p4, p6, p7, p9}"), "{answer}");
    }

    #[test]
    fn build_dynamic_and_query() {
        let dir = std::env::temp_dir().join("skydiag-test-dynamic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hotel-dyn.skyd");
        let path_str = path.to_str().unwrap();
        run(
            cmd_build,
            &["hotel", "--out", path_str, "--kind", "dynamic"],
        )
        .unwrap();
        // (19, 50) lies strictly inside a subcell; its dynamic skyline in
        // the reconstruction is {p6, p10} (0-based: p5, p9).
        let answer = run(cmd_query, &[path_str, "--at", "19,50", "--kind", "dynamic"]).unwrap();
        assert!(answer.contains("{p5, p9}"), "{answer}");
    }

    #[test]
    fn serve_bench_reports_and_is_deterministic() {
        let flags = [
            "hotel",
            "--readers",
            "2",
            "--rounds",
            "3",
            "--queries",
            "40",
            "--updates",
            "2",
            "--seed",
            "7",
        ];
        let first = run(cmd_serve_bench, &flags).unwrap();
        assert!(first.contains("queries:     240"), "{first}");
        assert!(first.contains("epochs:"), "{first}");
        assert!(first.contains("checksum:    0x"), "{first}");
        let second = run(cmd_serve_bench, &flags).unwrap();
        let checksum = |text: &str| {
            text.lines()
                .find(|l| l.starts_with("checksum:"))
                .map(str::to_owned)
        };
        assert_eq!(checksum(&first), checksum(&second), "must be deterministic");

        // The checksum is also independent of the cache configuration.
        let uncached = run(
            cmd_serve_bench,
            &[
                "hotel",
                "--readers",
                "2",
                "--rounds",
                "3",
                "--queries",
                "40",
                "--updates",
                "2",
                "--seed",
                "7",
                "--cache",
                "0",
            ],
        )
        .unwrap();
        assert!(uncached.contains("cache:       disabled"), "{uncached}");
        assert_eq!(checksum(&first), checksum(&uncached));
    }

    #[test]
    fn serve_bench_rejects_unknown_flags() {
        let err = run(cmd_serve_bench, &["hotel", "--reader", "2"]).unwrap_err();
        assert!(matches!(err, CliError::Args(_)), "{err}");
    }

    #[test]
    fn stats_output() {
        let text = run(cmd_stats, &["hotel"]).unwrap();
        assert!(text.contains("points:            11"));
        assert!(text.contains("polyominoes"));
    }

    #[test]
    fn ascii_output() {
        let text = run(cmd_ascii, &["hotel"]).unwrap();
        assert!(text.contains("legend"));
        assert!(text.lines().next().unwrap().contains('.'));
    }

    #[test]
    fn report_writes_html() {
        let dir = std::env::temp_dir().join("skydiag-test-report");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hotel.html");
        run(cmd_report, &["hotel", "--out", path.to_str().unwrap()]).unwrap();
        let html = std::fs::read_to_string(&path).unwrap();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("polyominoes"));
    }

    #[test]
    fn trace_produces_tiling_itinerary() {
        let text = run(cmd_trace, &["hotel", "--from", "0,0", "--to", "25,100"]).unwrap();
        assert!(text.contains("result changes"));
        assert!(text.contains("t in [0.0000"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn trace_build_and_serve_bench_write_valid_chrome_traces() {
        // One test drives both telemetry modes back to back: recording
        // sessions are process-global, so concurrent tests would stop each
        // other's sessions.
        let dir = std::env::temp_dir().join("skydiag-test-trace");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("build-trace.json");
        let metrics_path = dir.join("build-metrics.json");
        let text = run(
            cmd_trace,
            &[
                "build",
                "--n",
                "60",
                "--threads",
                "2",
                "--out",
                trace_path.to_str().unwrap(),
                "--metrics",
                metrics_path.to_str().unwrap(),
            ],
        )
        .unwrap();
        assert!(text.contains("traced quadrant build: n=60"), "{text}");
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        let summary = skyline_bench::json::validate_chrome_trace(&trace).unwrap();
        if cfg!(feature = "telemetry") {
            assert!(summary.complete_events > 0, "no spans in {trace}");
            let metrics = std::fs::read_to_string(&metrics_path).unwrap();
            assert!(metrics.contains("\"quadrant.builds\""), "{metrics}");
        }

        let serve_path = dir.join("serve-trace.json");
        let text = run(
            cmd_trace,
            &[
                "serve-bench",
                "--n",
                "40",
                "--readers",
                "1",
                "--rounds",
                "1",
                "--queries",
                "10",
                "--out",
                serve_path.to_str().unwrap(),
            ],
        )
        .unwrap();
        assert!(text.contains("checksum:"), "{text}");
        let trace = std::fs::read_to_string(&serve_path).unwrap();
        let summary = skyline_bench::json::validate_chrome_trace(&trace).unwrap();
        if cfg!(feature = "telemetry") {
            assert!(summary.complete_events > 0, "no spans in {trace}");
        }

        // Injected-stall anomaly flow: the stall span fires the armed
        // latency trigger and the frozen dump lands as a validated trace.
        let anomaly_trace = dir.join("anomaly-trace.json");
        let anomaly_dump = dir.join("anomaly-dump.json");
        let text = run(
            cmd_trace,
            &[
                "serve-bench",
                "--n",
                "40",
                "--readers",
                "1",
                "--rounds",
                "1",
                "--queries",
                "5",
                "--stall",
                "1,120",
                "--out",
                anomaly_trace.to_str().unwrap(),
                "--anomaly",
                anomaly_dump.to_str().unwrap(),
            ],
        );
        if cfg!(feature = "telemetry") {
            let text = text.unwrap();
            assert!(
                text.contains("anomaly:     latency-over-threshold"),
                "{text}"
            );
            let dump = std::fs::read_to_string(&anomaly_dump).unwrap();
            skyline_bench::json::validate_chrome_trace(&dump).unwrap();
            assert!(dump.contains("serve.refresh.injected_stall"), "{dump}");
        } else {
            // Without the feature the recorder cannot freeze anything and
            // the command says so instead of writing an empty dump.
            assert!(text.is_err());
        }

        // `report` sniffs the Chrome-trace shape in the same positional
        // slot the CSV path uses, and dispatches to the trace diagnosis.
        let verdict_path = dir.join("verdict.json");
        let text = run(
            cmd_report,
            &[
                trace_path.to_str().unwrap(),
                "--json",
                verdict_path.to_str().unwrap(),
            ],
        )
        .unwrap();
        assert!(text.contains("verdict:"), "{text}");
        let verdict = std::fs::read_to_string(&verdict_path).unwrap();
        for key in ["\"verdict\"", "\"wall_us\"", "\"chunk_imbalance\""] {
            assert!(verdict.contains(key), "missing {key} in {verdict}");
        }

        // `--mem` joins the allocator counters from the metrics snapshot
        // written next to the trace: the verdict JSON gains the churn
        // fields (real readings only when `mem-telemetry` is compiled in).
        let text = run(
            cmd_report,
            &[
                trace_path.to_str().unwrap(),
                "--mem",
                metrics_path.to_str().unwrap(),
            ],
        )
        .unwrap();
        assert!(text.contains("\"alloc_bytes\""), "{text}");
        assert!(text.contains("\"churn_ratio\""), "{text}");
        if skyline_core::telemetry::mem::enabled() {
            let metrics = std::fs::read_to_string(&metrics_path).unwrap();
            assert!(metrics.contains("\"mem.arena.index_bytes\""), "{metrics}");
            assert!(metrics.contains("\"mem.alloc_bytes\""), "{metrics}");
            assert!(!text.contains("\"arena_bytes\": 0,"), "{text}");
        }
    }

    #[test]
    fn top_prints_per_tick_metric_deltas() {
        let text = run(
            cmd_top,
            &[
                "--ticks",
                "2",
                "--n",
                "50",
                "--readers",
                "1",
                "--queries",
                "20",
                "--updates",
                "1",
            ],
        )
        .unwrap();
        assert!(text.contains("tick 1/2:"), "{text}");
        assert!(text.contains("tick 2/2:"), "{text}");
        assert!(text.contains("queries in"), "{text}");
        // The allocator columns are always printed; with `mem-telemetry`
        // compiled in they carry real readings and the allocation-size
        // histogram earns a sparkline row.
        assert!(text.contains("| live "), "{text}");
        assert!(text.contains("| peak "), "{text}");
        assert!(text.contains("allocs"), "{text}");
        if skyline_core::telemetry::mem::enabled() {
            assert!(text.contains("mem.alloc_size"), "{text}");
        }
        // Each tick issues updates, so the rebuild-latency histogram must
        // move and earn a sparkline row (telemetry builds only).
        #[cfg(feature = "telemetry")]
        assert!(text.contains("serve.rebuild_us"), "{text}");
    }

    #[test]
    fn mem_build_reports_phases_arenas_and_container_sections() {
        let text = run(cmd_mem, &["build", "--n", "60", "--global", "1"]).unwrap();
        assert!(text.contains("mem build: n=60"), "{text}");
        assert!(text.contains("retained arenas:"), "{text}");
        assert!(text.contains("quadrant diagram"), "{text}");
        assert!(text.contains("global diagram"), "{text}");
        assert!(text.contains("container:"), "{text}");
        assert!(text.contains("section"), "{text}");
        if skyline_core::telemetry::mem::enabled() {
            // The build must charge the quadrant- and global-build phases.
            assert!(text.contains("quadrant_build"), "{text}");
            assert!(text.contains("global_build"), "{text}");
        } else {
            assert!(text.contains("counters read zero"), "{text}");
        }
    }

    #[test]
    fn mem_serve_bench_reports_snapshot_footprint() {
        let text = run(
            cmd_mem,
            &[
                "serve-bench",
                "--n",
                "50",
                "--readers",
                "1",
                "--rounds",
                "1",
                "--queries",
                "10",
            ],
        )
        .unwrap();
        assert!(text.contains("mem serve-bench: n=50"), "{text}");
        assert!(text.contains("snapshot:"), "{text}");
        assert!(run(cmd_mem, &["warp"]).is_err());
    }

    #[test]
    fn trace_build_rejects_unknown_kind() {
        assert!(matches!(
            run(
                cmd_trace,
                &["build", "--kind", "warp", "--out", "/tmp/unused-trace.json"]
            ),
            Err(CliError::Other(_))
        ));
    }

    #[test]
    fn render_svg() {
        let dir = std::env::temp_dir().join("skydiag-test-render");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hotel.svg");
        run(cmd_render, &["hotel", "--out", path.to_str().unwrap()]).unwrap();
        let svg = std::fs::read_to_string(&path).unwrap();
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(matches!(
            run(
                cmd_build,
                &["hotel", "--out", "/tmp/x.skyd", "--engine", "warp"]
            ),
            Err(CliError::Other(_))
        ));
        assert!(matches!(
            run(cmd_query, &["/nonexistent.skyd", "--at", "1,2"]),
            Err(CliError::Io(_))
        ));
        assert!(matches!(
            run(cmd_gen, &["--dist", "weird"]),
            Err(CliError::Other(_))
        ));
        assert!(matches!(parse_point("1;2"), Err(CliError::Other(_))));
        assert!(matches!(parse_point("a,2"), Err(CliError::Other(_))));
    }

    #[test]
    fn human_bytes_formatting() {
        assert_eq!(human_bytes(10), "10 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 << 20), "3.0 MiB");
    }
}
