//! `skydiag`: skyline diagrams on the command line.
//!
//! See [`commands::USAGE`] or run `skydiag help`.

mod args;
mod commands;

use std::process::ExitCode;

use args::Args;
use commands::{
    cmd_ascii, cmd_build, cmd_gen, cmd_load, cmd_mem, cmd_query, cmd_render, cmd_report, cmd_save,
    cmd_serve_bench, cmd_stats, cmd_top, cmd_trace, USAGE,
};

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1);
    let Some(subcommand) = raw.next() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest: Vec<String> = raw.collect();

    let result = Args::parse(rest)
        .map_err(commands::CliError::Args)
        .and_then(|args| {
            let mut stdout = std::io::stdout().lock();
            match subcommand.as_str() {
                "gen" => cmd_gen(&args, &mut stdout),
                "build" => cmd_build(&args, &mut stdout),
                "query" => cmd_query(&args, &mut stdout),
                "stats" => cmd_stats(&args, &mut stdout),
                "render" => cmd_render(&args, &mut stdout),
                "ascii" => cmd_ascii(&args, &mut stdout),
                "trace" => cmd_trace(&args, &mut stdout),
                "report" => cmd_report(&args, &mut stdout),
                "serve-bench" => cmd_serve_bench(&args, &mut stdout),
                "top" => cmd_top(&args, &mut stdout),
                "mem" => cmd_mem(&args, &mut stdout),
                "save" => cmd_save(&args, &mut stdout),
                "load" => cmd_load(&args, &mut stdout),
                "help" | "--help" | "-h" => {
                    print!("{USAGE}");
                    Ok(())
                }
                other => Err(commands::CliError::Other(format!(
                    "unknown subcommand {other:?}; run `skydiag help`"
                ))),
            }
        });

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("skydiag: {e}");
            ExitCode::FAILURE
        }
    }
}
