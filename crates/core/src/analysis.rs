//! Analytics over a finished diagram: exact region areas and the induced
//! *result distribution* — for a query drawn uniformly from a box, the
//! probability of observing each skyline result is its region's area
//! share. The Voronoi analogy again: cell areas are load estimates.
//!
//! Areas are exact integers (cells are axis-aligned boxes clipped to the
//! query window), so the distribution sums to the window area exactly.

use std::collections::HashMap;

use crate::diagram::{CellDiagram, ClipBox};
use crate::geometry::{CellIndex, Coord, PointId};
use crate::result_set::ResultId;

/// Size statistics of a diagram, reported by the experiments harness.
/// Produced by [`CellDiagram::stats`] (which delegates to
/// [`diagram_stats`]; the float average is computed here so the diagram
/// layer itself stays integer-exact).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiagramStats {
    /// Number of skyline cells (`(nx + 1) * (ny + 1)`).
    pub cell_count: usize,
    /// Number of distinct skyline results across all cells.
    pub distinct_results: usize,
    /// Total point ids stored after interning — the diagram's real memory
    /// footprint in ids, versus `cell_count * avg_result_len` without it.
    pub interned_ids: usize,
    /// Mean skyline size over cells.
    pub avg_result_len: f64,
    /// Largest skyline over cells.
    pub max_result_len: usize,
}

/// Computes [`DiagramStats`] for a diagram.
#[must_use]
pub fn diagram_stats(diagram: &CellDiagram) -> DiagramStats {
    let cells = diagram.cell_results();
    let mut multiplicity: HashMap<ResultId, usize> = HashMap::new();
    for &rid in cells {
        *multiplicity.entry(rid).or_default() += 1;
    }
    let cell_count = cells.len();
    let total_result_len: usize = cells
        .iter()
        .map(|&rid| diagram.results().get(rid).len())
        .sum();
    DiagramStats {
        cell_count,
        distinct_results: multiplicity.len(),
        interned_ids: diagram.results().total_ids(),
        avg_result_len: total_result_len as f64 / cell_count as f64,
        max_result_len: cells
            .iter()
            .map(|&rid| diagram.results().get(rid).len())
            .max()
            .unwrap_or(0),
    }
}

/// One entry of the result distribution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResultShare {
    /// The interned result id in the source diagram.
    pub result: ResultId,
    /// The skyline point ids.
    pub ids: Vec<PointId>,
    /// Total clipped area of all cells carrying this result.
    pub area: i64,
}

/// Exact area of one cell clipped to the window; 0 if disjoint.
fn clipped_cell_area(diagram: &CellDiagram, (i, j): CellIndex, window: ClipBox) -> i64 {
    let xs = diagram.grid().x_lines();
    let ys = diagram.grid().y_lines();
    let lo = |lines: &[Coord], k: u32, min: Coord| -> Coord {
        if k == 0 {
            min
        } else {
            lines[k as usize - 1].max(min)
        }
    };
    let hi = |lines: &[Coord], k: u32, max: Coord| -> Coord {
        if k as usize == lines.len() {
            max
        } else {
            lines[k as usize].min(max)
        }
    };
    let w = hi(xs, i, window.x_max) - lo(xs, i, window.x_min);
    let h = hi(ys, j, window.y_max) - lo(ys, j, window.y_min);
    if w <= 0 || h <= 0 {
        0
    } else {
        w * h
    }
}

/// The exact result distribution of a diagram over a query window:
/// one entry per distinct result with positive clipped area, sorted by
/// decreasing area (ties by result id). The areas sum to the window area.
pub fn result_distribution(diagram: &CellDiagram, window: ClipBox) -> Vec<ResultShare> {
    assert!(
        window.x_max > window.x_min && window.y_max > window.y_min,
        "query window must have positive area"
    );
    let mut areas: HashMap<ResultId, i64> = HashMap::new();
    for cell in diagram.grid().cells() {
        let area = clipped_cell_area(diagram, cell, window);
        if area > 0 {
            *areas.entry(diagram.result_id(cell)).or_default() += area;
        }
    }
    let mut out: Vec<ResultShare> = areas
        .into_iter()
        .map(|(result, area)| ResultShare {
            result,
            ids: diagram.results().get(result).to_vec(),
            area,
        })
        .collect();
    out.sort_unstable_by(|a, b| b.area.cmp(&a.area).then(a.result.cmp(&b.result)));
    out
}

/// Probability that a uniform query in `window` has point `p` in its
/// quadrant skyline: the area share of regions whose result contains `p`.
pub fn containment_probability(diagram: &CellDiagram, window: ClipBox, p: PointId) -> f64 {
    let total = (window.x_max - window.x_min) * (window.y_max - window.y_min);
    let hit: i64 = result_distribution(diagram, window)
        .into_iter()
        .filter(|share| share.ids.binary_search(&p).is_ok())
        .map(|share| share.area)
        .sum();
    hit as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Dataset;
    use crate::quadrant::QuadrantEngine;

    fn window(ds: &Dataset, pad: i64) -> ClipBox {
        let xs: Vec<i64> = ds.points().iter().map(|p| p.x).collect();
        let ys: Vec<i64> = ds.points().iter().map(|p| p.y).collect();
        ClipBox {
            x_min: xs.iter().min().unwrap() - pad,
            x_max: xs.iter().max().unwrap() + pad,
            y_min: ys.iter().min().unwrap() - pad,
            y_max: ys.iter().max().unwrap() + pad,
        }
    }

    #[test]
    fn areas_sum_to_the_window() {
        let ds = crate::test_data::hotel_dataset();
        let d = QuadrantEngine::Sweeping.build(&ds);
        let w = window(&ds, 3);
        let dist = result_distribution(&d, w);
        let total: i64 = dist.iter().map(|s| s.area).sum();
        assert_eq!(total, (w.x_max - w.x_min) * (w.y_max - w.y_min));
        // Sorted by decreasing area.
        for pair in dist.windows(2) {
            assert!(pair[0].area >= pair[1].area);
        }
    }

    #[test]
    fn two_point_distribution_is_exact() {
        // Points (0,0), (10,10); window [-2,12]²  (area 196).
        let ds = Dataset::from_coords([(0, 0), (10, 10)]).unwrap();
        let d = QuadrantEngine::Baseline.build(&ds);
        let w = ClipBox {
            x_min: -2,
            x_max: 12,
            y_min: -2,
            y_max: 12,
        };
        let dist = result_distribution(&d, w);
        let lookup = |ids: &[u32]| -> i64 {
            dist.iter()
                .find(|s| s.ids.iter().map(|id| id.0).collect::<Vec<_>>() == ids)
                .map(|s| s.area)
                .unwrap_or(0)
        };
        // {p0}: x < 0, y < 0 clipped to [-2,0]² = 4.
        assert_eq!(lookup(&[0]), 4);
        // {p1}: (x<10, y<10) minus {p0}'s cell = 12*12 - 4 = 140.
        assert_eq!(lookup(&[1]), 140);
        // {}: the remaining L = 196 - 144 = 52.
        assert_eq!(lookup(&[]), 52);
    }

    #[test]
    fn containment_probability_matches_distribution() {
        let ds = crate::test_data::hotel_dataset();
        let d = QuadrantEngine::Scanning.build(&ds);
        let w = window(&ds, 2);
        for (id, _) in ds.iter() {
            let p = containment_probability(&d, w, id);
            assert!((0.0..=1.0).contains(&p), "{id}: {p}");
        }
        // p11 = (11, 9) is undominated, so it appears exactly for queries
        // below-left of it: area (11 - x_min) * (9 - y_min) of the window.
        let expected = ((11 - w.x_min) * (9 - w.y_min)) as f64
            / ((w.x_max - w.x_min) * (w.y_max - w.y_min)) as f64;
        let got = containment_probability(&d, w, crate::geometry::PointId(10));
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    #[test]
    fn disjoint_window_has_single_region() {
        let ds = Dataset::from_coords([(0, 0), (5, 5)]).unwrap();
        let d = QuadrantEngine::Baseline.build(&ds);
        // Entirely beyond all points: only the empty result.
        let w = ClipBox {
            x_min: 100,
            x_max: 110,
            y_min: 100,
            y_max: 110,
        };
        let dist = result_distribution(&d, w);
        assert_eq!(dist.len(), 1);
        assert!(dist[0].ids.is_empty());
        assert_eq!(dist[0].area, 100);
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn empty_window_rejected() {
        let ds = Dataset::from_coords([(0, 0)]).unwrap();
        let d = QuadrantEngine::Baseline.build(&ds);
        let _ = result_distribution(
            &d,
            ClipBox {
                x_min: 5,
                x_max: 5,
                y_min: 0,
                y_max: 1,
            },
        );
    }
}
