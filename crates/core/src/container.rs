//! Versioned binary snapshot container: the on-disk form of a
//! [`SkylineIndex`] (ROADMAP item 1, in the spirit of the versatiles tile
//! containers).
//!
//! `serialize.rs` round-trips single diagrams through a parse-heavy
//! encoding; a server restart therefore pays a full `O(n²)` rebuild. This
//! module instead persists the PR 8 arena layouts *verbatim* — the CSR
//! flat-ids/ends interner arrays, the CSR polyomino arenas, the row-major
//! cell→result arrays, and the grid/bisector line metadata — so a load is a
//! bounds-checked, checksum-validated copy of flat `u64`/`u32` arrays
//! straight into [`ResultInterner`]/[`MergedDiagram`] (via
//! [`ResultInterner::from_csr`] and [`MergedDiagram::from_csr`]) with no
//! per-element re-interning or re-merging. The bitset word blocks of
//! `result_set::BitsetInterner` are a build-time acceleration structure:
//! every finished diagram converges on the sorted-id CSR representation
//! (`to_result_interner`), which is what the container stores; loaded
//! interners can be re-expanded to word blocks with
//! `result_set::encode_results` when a word-parallel pass needs them.
//!
//! # Layout
//!
//! All integers are little-endian. The file is one fixed header, one
//! section directory, one header checksum, then the section payloads
//! back-to-back:
//!
//! ```text
//! offset 0   magic               b"SKDC"                      4 bytes
//!        4   major version       u16                          2 bytes
//!        6   minor version       u16                          2 bytes
//!        8   flags               u32 (bit0 global, bit1       4 bytes
//!                                     dynamic, bit2 handles)
//!       12   section count  c    u32                          4 bytes
//!       16   directory           c × 32-byte entries:
//!                                  id       u32
//!                                  reserved u32 (must be 0)
//!                                  offset   u64 (absolute)
//!                                  length   u64
//!                                  checksum u64 (word-wise FNV-1a 64
//!                                               of the payload)
//! 16 + 32c   header checksum     u64 (word-wise FNV-1a 64 of bytes
//!                                     [0, 16 + 32c))
//! 24 + 32c   payloads            contiguous, in directory order
//! ```
//!
//! Sections, in required id order (5–11 present per the flags):
//!
//! | id | content |
//! |----|---------|
//! | 1  | dataset: `u64 n`, then `n × (i64 x, i64 y)` |
//! | 2  | quadrant interner: `u64 sets`, `u64 total_ids`, `sets × u32` ends, `total_ids × u32` flat ids |
//! | 3  | quadrant cells: `u64 count`, `count × u32` result ids (row-major) |
//! | 4  | polyomino CSR: `u64 polys`, `u64 cells_total`, `polys × u32` results, `polys × u32` ends, `cells_total × (u32, u32)` member cells, `u64 map_len`, `map_len × u32` cell→polyomino |
//! | 5  | global interner (layout of 2) |
//! | 6  | global cells (layout of 3) |
//! | 7  | dynamic x bisector lines: `u64 count`, `count × i64` doubled coords |
//! | 8  | dynamic y bisector lines (layout of 7) |
//! | 9  | dynamic interner (layout of 2) |
//! | 10 | dynamic cells (layout of 3, over subcells) |
//! | 11 | handles: `u64 count`, `count × u64` |
//!
//! The cell grid is *not* stored: [`CellGrid::new`] rebuilds it from the
//! decoded dataset in `O(n log n)`, which also cross-validates the stored
//! cell arrays against an independently derived cell count.
//!
//! # Validation order
//!
//! [`decode_index`] validates strictly outside-in; every failure is a typed
//! [`Error`], never a panic or an out-of-bounds access:
//!
//! 1. length ≥ header, magic ([`Error::BadMagic`]), major version
//!    ([`Error::BadVersion`] — checked *before* any checksum so an old
//!    reader reports a new major as a version error, not corruption);
//! 2. header checksum over header + directory
//!    ([`Error::HeaderChecksumMismatch`]) — this covers the minor version,
//!    the flags, the section count, and every directory entry *including
//!    the per-section checksums*, so any single-bit flip anywhere in the
//!    file is caught by exactly one of the two checksum layers;
//! 3. directory shape: reserved words zero, ids strictly increasing,
//!    offsets exactly contiguous from the payload start (overlapping or
//!    gapped extents are structurally impossible to accept), extents
//!    overflow-checked, total length exact ([`Error::Truncated`] /
//!    [`Error::TrailingBytes`]);
//! 4. per-section payload checksums ([`Error::SectionChecksumMismatch`]);
//! 5. flags known and the section id list exactly the one the flags
//!    promise;
//! 6. semantic validation while copying out: dataset bounds
//!    ([`crate::geometry::MAX_COORD`]), interner CSR laws
//!    ([`ResultInterner::from_csr`]), result ids within the interner, cell
//!    counts against the rebuilt grid, polyomino CSR partition exactness,
//!    bisector lines strictly increasing and bounded, handle uniqueness —
//!    all reported as [`Error::Invalid`].
//!
//! # Forward compatibility
//!
//! The **major** version gates structure: a reader rejects any file whose
//! major differs from [`MAJOR_VERSION`] with [`Error::BadVersion`] before
//! reading anything else. The **minor** version is informational — minors
//! may only add flag bits and section ids, and since this reader rejects
//! unknown flags and unexpected section lists, a file *using* such an
//! addition is still rejected (as [`Error::Invalid`]) rather than
//! mis-read. The golden-fixture test pins both: today's bytes must load
//! forever under major 1, and a major-2 header must fail with a version
//! error.

use crate::diagram::{CellDiagram, MergedDiagram};
use crate::dynamic::SubcellDiagram;
use crate::geometry::{CellGrid, CellIndex, Coord, Dataset, Point, PointId, MAX_COORD};
use crate::index::SkylineIndex;
use crate::maintained::Handle;
use crate::result_set::{ResultId, ResultInterner};

/// FNV-1a 64 folded a *word* at a time: the input is split into 8-byte
/// little-endian words (the trailing partial word zero-padded) and each
/// word is XOR-folded then multiplied, exactly like byte-wise FNV-1a with
/// an eighth of the steps. XOR and odd multiplication are both bijections
/// on `u64`, so any single-bit flip in the input still changes the digest
/// — the property the corruption suite enforces exhaustively — while the
/// whole-file validation pass runs at memory speed instead of a byte per
/// step. Zero-padding the tail is safe because every checksummed region's
/// length is fixed independently (the header length by the section count,
/// each payload length by the directory), so two regions of different
/// lengths are never compared through this digest alone.
fn fnv64(data: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut words = data.chunks_exact(8);
    for w in &mut words {
        h ^= u64::from_le_bytes(w.try_into().expect("chunks_exact(8) yields 8-byte slices"));
        h = h.wrapping_mul(PRIME);
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Container magic bytes ("SKyline Diagram Container").
pub const MAGIC: [u8; 4] = *b"SKDC";
/// Major format version; readers reject any other major outright.
pub const MAJOR_VERSION: u16 = 1;
/// Minor format version; informational (see the module docs).
pub const MINOR_VERSION: u16 = 0;

const HEADER_LEN: usize = 16;
const DIR_ENTRY_LEN: usize = 32;

const FLAG_GLOBAL: u32 = 1;
const FLAG_DYNAMIC: u32 = 1 << 1;
const FLAG_HANDLES: u32 = 1 << 2;
const KNOWN_FLAGS: u32 = FLAG_GLOBAL | FLAG_DYNAMIC | FLAG_HANDLES;

const SEC_DATASET: u32 = 1;
const SEC_QUAD_RESULTS: u32 = 2;
const SEC_QUAD_CELLS: u32 = 3;
const SEC_MERGED: u32 = 4;
const SEC_GLOBAL_RESULTS: u32 = 5;
const SEC_GLOBAL_CELLS: u32 = 6;
const SEC_DYN_XLINES: u32 = 7;
const SEC_DYN_YLINES: u32 = 8;
const SEC_DYN_RESULTS: u32 = 9;
const SEC_DYN_CELLS: u32 = 10;
const SEC_HANDLES: u32 = 11;

/// Typed decoding failures. Corrupt or adversarial input maps to exactly
/// one of these; the decoder never panics and never reads out of bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Wrong magic bytes: not a skyline snapshot container.
    BadMagic,
    /// Unsupported major format version.
    BadVersion(u16),
    /// The checksum over header + directory did not match.
    HeaderChecksumMismatch,
    /// A section payload's checksum did not match (carries the section id).
    SectionChecksumMismatch(u32),
    /// The buffer ended before the declared structure was complete.
    Truncated,
    /// Bytes remain after the last declared section.
    TrailingBytes(usize),
    /// A structural or semantic invariant failed (message describes which).
    Invalid(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::BadMagic => write!(f, "not a skyline snapshot container"),
            Error::BadVersion(v) => write!(f, "unsupported container major version {v}"),
            Error::HeaderChecksumMismatch => write!(f, "header/directory checksum mismatch"),
            Error::SectionChecksumMismatch(id) => {
                write!(f, "checksum mismatch in section {id}")
            }
            Error::Truncated => write!(f, "truncated container"),
            Error::TrailingBytes(n) => write!(f, "{n} trailing bytes after the last section"),
            Error::Invalid(what) => write!(f, "invalid container: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// A decoded container: the index plus the serve-layer handle table (empty
/// when the container was written without one).
#[derive(Debug, Clone)]
pub struct LoadedSnapshot {
    /// The reassembled index, answering queries immediately.
    pub index: SkylineIndex,
    /// Per-point serve handles, parallel to the dataset (or empty).
    pub handles: Vec<Handle>,
}

/// One directory row, as reported by [`sections`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section id (see the module-level table).
    pub id: u32,
    /// Human-readable section name.
    pub name: &'static str,
    /// Absolute payload offset in the container.
    pub offset: u64,
    /// Payload length in bytes.
    pub length: u64,
}

fn section_name(id: u32) -> &'static str {
    match id {
        SEC_DATASET => "dataset",
        SEC_QUAD_RESULTS => "quadrant-results",
        SEC_QUAD_CELLS => "quadrant-cells",
        SEC_MERGED => "polyominoes",
        SEC_GLOBAL_RESULTS => "global-results",
        SEC_GLOBAL_CELLS => "global-cells",
        SEC_DYN_XLINES => "dynamic-xlines",
        SEC_DYN_YLINES => "dynamic-ylines",
        SEC_DYN_RESULTS => "dynamic-results",
        SEC_DYN_CELLS => "dynamic-cells",
        SEC_HANDLES => "handles",
        _ => "unknown",
    }
}

// ---------------------------------------------------------------- encoding

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_dataset(ds: &Dataset) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 16 * ds.len());
    put_u64(&mut out, ds.len() as u64);
    for p in ds.points() {
        put_i64(&mut out, p.x);
        put_i64(&mut out, p.y);
    }
    out
}

fn encode_interner(results: &ResultInterner) -> Vec<u8> {
    let ends = results.ends();
    let flat = results.flat_ids();
    let mut out = Vec::with_capacity(16 + 4 * (ends.len() + flat.len()));
    put_u64(&mut out, ends.len() as u64);
    put_u64(&mut out, flat.len() as u64);
    for &e in ends {
        put_u32(&mut out, e);
    }
    for &id in flat {
        put_u32(&mut out, id.0);
    }
    out
}

fn encode_cells(cells: &[ResultId]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 * cells.len());
    put_u64(&mut out, cells.len() as u64);
    for &rid in cells {
        put_u32(&mut out, rid.0);
    }
    out
}

fn encode_merged(merged: &MergedDiagram) -> Vec<u8> {
    let results = merged.polyomino_results();
    let ends = merged.polyomino_ends();
    let cells = merged.cells_flat();
    let map = merged.cell_to_polyomino();
    let mut out =
        Vec::with_capacity(24 + 4 * (results.len() + ends.len() + map.len()) + 8 * cells.len());
    put_u64(&mut out, results.len() as u64);
    put_u64(&mut out, cells.len() as u64);
    for &rid in results {
        put_u32(&mut out, rid.0);
    }
    for &e in ends {
        put_u32(&mut out, e);
    }
    for &(i, j) in cells {
        put_u32(&mut out, i);
        put_u32(&mut out, j);
    }
    put_u64(&mut out, map.len() as u64);
    for &p in map {
        put_u32(&mut out, p);
    }
    out
}

fn encode_lines(lines: &[Coord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 * lines.len());
    put_u64(&mut out, lines.len() as u64);
    for &v in lines {
        put_i64(&mut out, v);
    }
    out
}

fn encode_handles(handles: &[Handle]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 * handles.len());
    put_u64(&mut out, handles.len() as u64);
    for &h in handles {
        put_u64(&mut out, h.0);
    }
    out
}

fn assemble(flags: u32, sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let dir_end = HEADER_LEN + DIR_ENTRY_LEN * sections.len();
    let payload_total: usize = sections.iter().map(|(_, body)| body.len()).sum();
    let mut out = Vec::with_capacity(dir_end + 8 + payload_total);
    out.extend_from_slice(&MAGIC);
    put_u16(&mut out, MAJOR_VERSION);
    put_u16(&mut out, MINOR_VERSION);
    put_u32(&mut out, flags);
    put_u32(&mut out, sections.len() as u32);
    let mut offset = (dir_end + 8) as u64;
    for (id, body) in sections {
        put_u32(&mut out, *id);
        put_u32(&mut out, 0);
        put_u64(&mut out, offset);
        put_u64(&mut out, body.len() as u64);
        put_u64(&mut out, fnv64(body));
        offset += body.len() as u64;
    }
    let header_sum = fnv64(&out[..dir_end]);
    put_u64(&mut out, header_sum);
    for (_, body) in sections {
        out.extend_from_slice(body);
    }
    out
}

/// Serializes an index (and, optionally, its serve handle table) into a
/// container. Pass an empty `handles` slice to omit the handles section;
/// a non-empty slice must pair one handle per dataset point, in `PointId`
/// order.
pub fn encode_index(index: &SkylineIndex, handles: &[Handle]) -> Vec<u8> {
    let _span = crate::span!("container.encode", index.dataset().len() as u64);
    let _mem = crate::telemetry::mem::phase(crate::telemetry::mem::MemPhase::ContainerEncode);
    crate::counter!("container.encodes").add(1);
    debug_assert!(
        handles.is_empty() || handles.len() == index.dataset().len(),
        "a non-empty handle table pairs one handle per point"
    );
    let quadrant = index.quadrant_diagram();
    let mut flags = 0u32;
    let mut sections: Vec<(u32, Vec<u8>)> = vec![
        (SEC_DATASET, encode_dataset(index.dataset())),
        (SEC_QUAD_RESULTS, encode_interner(quadrant.results())),
        (SEC_QUAD_CELLS, encode_cells(quadrant.cell_results())),
        (SEC_MERGED, encode_merged(index.polyominoes())),
    ];
    if let Some(global) = index.global_diagram() {
        flags |= FLAG_GLOBAL;
        sections.push((SEC_GLOBAL_RESULTS, encode_interner(global.results())));
        sections.push((SEC_GLOBAL_CELLS, encode_cells(global.cell_results())));
    }
    if let Some(dynamic) = index.dynamic_diagram() {
        flags |= FLAG_DYNAMIC;
        sections.push((SEC_DYN_XLINES, encode_lines(dynamic.grid().x_lines())));
        sections.push((SEC_DYN_YLINES, encode_lines(dynamic.grid().y_lines())));
        sections.push((SEC_DYN_RESULTS, encode_interner(dynamic.results())));
        sections.push((SEC_DYN_CELLS, encode_cells(dynamic.cell_results())));
    }
    if !handles.is_empty() {
        flags |= FLAG_HANDLES;
        sections.push((SEC_HANDLES, encode_handles(handles)));
    }
    let out = assemble(flags, &sections);
    crate::counter!("mem.container.bytes").add(out.len() as u64);
    out
}

// ---------------------------------------------------------------- decoding

/// Bounds-checked little-endian reader over one section payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(Error::Invalid("section extent overflows the address space"))?;
        if end > self.buf.len() {
            return Err(Error::Invalid(
                "section payload shorter than its encoded counts",
            ));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, Error> {
        let bytes: [u8; 4] = self
            .take(4)?
            .try_into()
            .expect("take(4) returns exactly four bytes");
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, Error> {
        let bytes: [u8; 8] = self
            .take(8)?
            .try_into()
            .expect("take(8) returns exactly eight bytes");
        Ok(u64::from_le_bytes(bytes))
    }

    fn i64(&mut self) -> Result<i64, Error> {
        let bytes: [u8; 8] = self
            .take(8)?
            .try_into()
            .expect("take(8) returns exactly eight bytes");
        Ok(i64::from_le_bytes(bytes))
    }

    /// Reads a `u64` element count and rejects it unless `count *
    /// elem_size` fits in the bytes that remain — so corrupt counts can
    /// never drive an oversized allocation or an overflowing extent.
    fn count(&mut self, elem_size: usize) -> Result<usize, Error> {
        let raw = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if elem_size == 0 || raw > remaining / elem_size as u64 {
            return Err(Error::Invalid("element count exceeds section length"));
        }
        Ok(raw as usize)
    }

    fn finish(self) -> Result<(), Error> {
        if self.pos != self.buf.len() {
            return Err(Error::Invalid(
                "section payload longer than its encoded counts",
            ));
        }
        Ok(())
    }
}

struct DirEntry {
    id: u32,
    offset: u64,
    length: u64,
}

/// Validates steps 1–4 of the decode order (see the module docs) and
/// returns the flags plus the directory with per-section payload ranges.
fn validate_envelope(bytes: &[u8]) -> Result<(u32, Vec<DirEntry>), Error> {
    if bytes.len() < HEADER_LEN {
        return Err(Error::Truncated);
    }
    if bytes[..4] != MAGIC {
        return Err(Error::BadMagic);
    }
    let word = |at: usize| -> u32 {
        let b: [u8; 4] = bytes[at..at + 4]
            .try_into()
            .expect("header offsets are in bounds after the length check");
        u32::from_le_bytes(b)
    };
    let major = u16::from_le_bytes([bytes[4], bytes[5]]);
    if major != MAJOR_VERSION {
        return Err(Error::BadVersion(major));
    }
    let flags = word(8);
    let count = word(12) as usize;
    let dir_end = count
        .checked_mul(DIR_ENTRY_LEN)
        .and_then(|n| n.checked_add(HEADER_LEN))
        .ok_or(Error::Truncated)?;
    let payload_start = dir_end.checked_add(8).ok_or(Error::Truncated)?;
    if bytes.len() < payload_start {
        return Err(Error::Truncated);
    }
    let stored_sum = u64::from_le_bytes(
        bytes[dir_end..payload_start]
            .try_into()
            .expect("the header checksum word is in bounds after the length check"),
    );
    if fnv64(&bytes[..dir_end]) != stored_sum {
        return Err(Error::HeaderChecksumMismatch);
    }
    let mut dir = Vec::with_capacity(count);
    let mut expected_offset = payload_start as u64;
    for k in 0..count {
        let at = HEADER_LEN + k * DIR_ENTRY_LEN;
        let mut c = Cursor::new(&bytes[at..at + DIR_ENTRY_LEN]);
        let id = c.u32().expect("directory entries are 32 bytes");
        let reserved = c.u32().expect("directory entries are 32 bytes");
        let offset = c.u64().expect("directory entries are 32 bytes");
        let length = c.u64().expect("directory entries are 32 bytes");
        if reserved != 0 {
            return Err(Error::Invalid("reserved directory bytes must be zero"));
        }
        if let Some(&DirEntry { id: prev, .. }) = dir.last() {
            if id <= prev {
                return Err(Error::Invalid("section ids must be strictly increasing"));
            }
        }
        if offset != expected_offset {
            return Err(Error::Invalid(
                "section offsets must be contiguous (no gaps or overlaps)",
            ));
        }
        expected_offset = offset
            .checked_add(length)
            .ok_or(Error::Invalid("section extent overflows the address space"))?;
        dir.push(DirEntry { id, offset, length });
    }
    let total = expected_offset;
    if (bytes.len() as u64) < total {
        return Err(Error::Truncated);
    }
    if (bytes.len() as u64) > total {
        return Err(Error::TrailingBytes(bytes.len() - total as usize));
    }
    for (k, entry) in dir.iter().enumerate() {
        let at = HEADER_LEN + k * DIR_ENTRY_LEN + 24;
        let stored = u64::from_le_bytes(
            bytes[at..at + 8]
                .try_into()
                .expect("directory checksum words are in bounds"),
        );
        let body = &bytes[entry.offset as usize..(entry.offset + entry.length) as usize];
        if fnv64(body) != stored {
            return Err(Error::SectionChecksumMismatch(entry.id));
        }
    }
    Ok((flags, dir))
}

/// Lists the sections of a container after envelope validation (header,
/// version, both checksum layers, directory shape) — the `skydiag`
/// inspection path. Does **not** perform the semantic validation of
/// [`decode_index`].
pub fn sections(bytes: &[u8]) -> Result<Vec<SectionInfo>, Error> {
    let (_, dir) = validate_envelope(bytes)?;
    Ok(dir
        .iter()
        .map(|e| SectionInfo {
            id: e.id,
            name: section_name(e.id),
            offset: e.offset,
            length: e.length,
        })
        .collect())
}

fn decode_dataset(buf: &[u8]) -> Result<Dataset, Error> {
    let mut c = Cursor::new(buf);
    let n = c.count(16)?;
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let x = c.i64()?;
        let y = c.i64()?;
        points.push(Point::new(x, y));
    }
    c.finish()?;
    Dataset::new(points)
        .map_err(|_| Error::Invalid("dataset rejected: empty or coordinate overflow"))
}

fn decode_interner(buf: &[u8], n_points: usize) -> Result<ResultInterner, Error> {
    let mut c = Cursor::new(buf);
    let sets = c.count(4)?;
    let total = c.u64()?;
    let mut ends = Vec::with_capacity(sets);
    for _ in 0..sets {
        ends.push(c.u32()?);
    }
    let remaining = (buf.len() - c.pos) as u64;
    if total > remaining / 4 {
        return Err(Error::Invalid("element count exceeds section length"));
    }
    let total = total as usize;
    let mut flat = Vec::with_capacity(total);
    for _ in 0..total {
        let id = c.u32()?;
        if id as usize >= n_points {
            return Err(Error::Invalid("result id exceeds the dataset size"));
        }
        flat.push(PointId(id));
    }
    c.finish()?;
    // The read-only constructor: full structural validation, but no intern
    // lookup table — a loaded interner is never interned into, and skipping
    // the table rebuild keeps the cold-start E14 gate an order of magnitude
    // ahead of a rebuild.
    ResultInterner::from_csr_readonly(flat, ends).map_err(Error::Invalid)
}

fn decode_cells(buf: &[u8], expected: usize, interner_len: usize) -> Result<Vec<ResultId>, Error> {
    let mut c = Cursor::new(buf);
    let count = c.count(4)?;
    if count != expected {
        return Err(Error::Invalid(
            "cell count does not match the rebuilt grid shape",
        ));
    }
    let mut cells = Vec::with_capacity(count);
    for _ in 0..count {
        let rid = c.u32()?;
        if rid as usize >= interner_len {
            return Err(Error::Invalid("cell references an uninterned result id"));
        }
        cells.push(ResultId(rid));
    }
    c.finish()?;
    Ok(cells)
}

fn decode_merged(buf: &[u8], quadrant: &CellDiagram) -> Result<MergedDiagram, Error> {
    let grid = quadrant.grid();
    let cell_count = grid.cell_count();
    let (nx, ny) = (grid.x_lines().len() as u32, grid.y_lines().len() as u32);
    let mut c = Cursor::new(buf);
    let polys = c.count(4)?;
    if polys == 0 {
        return Err(Error::Invalid("a diagram has at least one polyomino"));
    }
    let cells_total = c.u64()?;
    if cells_total as usize != cell_count {
        return Err(Error::Invalid(
            "polyomino cells must partition the grid exactly",
        ));
    }
    let mut results = Vec::with_capacity(polys);
    for _ in 0..polys {
        let rid = c.u32()?;
        if rid as usize >= quadrant.results().len() {
            return Err(Error::Invalid(
                "polyomino references an uninterned result id",
            ));
        }
        results.push(ResultId(rid));
    }
    let mut ends = Vec::with_capacity(polys);
    let mut prev = 0u32;
    for k in 0..polys {
        let e = c.u32()?;
        // Strictly increasing with ends[0] >= 1: no empty polyominoes.
        let increasing = if k == 0 { e >= 1 } else { e > prev };
        if !increasing {
            return Err(Error::Invalid(
                "polyomino end offsets must be strictly increasing",
            ));
        }
        ends.push(e);
        prev = e;
    }
    if ends.last().copied() != Some(cells_total as u32) {
        return Err(Error::Invalid(
            "polyomino end offsets must cover the cell arena exactly",
        ));
    }
    let cells_total = cells_total as usize;
    let mut cells_flat: Vec<CellIndex> = Vec::with_capacity(cells_total);
    for _ in 0..cells_total {
        let i = c.u32()?;
        let j = c.u32()?;
        if i > nx || j > ny {
            return Err(Error::Invalid("polyomino member cell outside the grid"));
        }
        cells_flat.push((i, j));
    }
    let map_len = c.count(4)?;
    if map_len != cell_count {
        return Err(Error::Invalid(
            "cell-to-polyomino map must cover every cell",
        ));
    }
    let mut map = Vec::with_capacity(map_len);
    for _ in 0..map_len {
        let p = c.u32()?;
        if p as usize >= polys {
            return Err(Error::Invalid(
                "cell-to-polyomino map references a missing polyomino",
            ));
        }
        map.push(p);
    }
    c.finish()?;
    // Partition exactness: polyomino k must own exactly the cells the
    // inverse map assigns to it — one O(cells) pass closes the loop.
    let mut start = 0usize;
    for (k, &end) in ends.iter().enumerate() {
        for &cell in &cells_flat[start..end as usize] {
            if map[grid.linear_index(cell)] as usize != k {
                return Err(Error::Invalid(
                    "polyomino membership disagrees with the cell-to-polyomino map",
                ));
            }
        }
        start = end as usize;
    }
    Ok(MergedDiagram::from_csr(results, ends, cells_flat, map))
}

fn decode_lines(buf: &[u8]) -> Result<Vec<Coord>, Error> {
    let mut c = Cursor::new(buf);
    let count = c.count(8)?;
    let mut lines = Vec::with_capacity(count);
    for _ in 0..count {
        let v = c.i64()?;
        if v.abs() > 2 * MAX_COORD {
            return Err(Error::Invalid("bisector line outside the doubled domain"));
        }
        if lines.last().is_some_and(|&prev| v <= prev) {
            return Err(Error::Invalid("bisector lines must be strictly increasing"));
        }
        lines.push(v);
    }
    c.finish()?;
    Ok(lines)
}

fn decode_handles(buf: &[u8], n_points: usize) -> Result<Vec<Handle>, Error> {
    let mut c = Cursor::new(buf);
    let count = c.count(8)?;
    if count != n_points {
        return Err(Error::Invalid("handle count must match the dataset size"));
    }
    let mut handles = Vec::with_capacity(count);
    for _ in 0..count {
        handles.push(Handle(c.u64()?));
    }
    c.finish()?;
    let mut sorted = handles.clone();
    sorted.sort_unstable();
    if sorted.windows(2).any(|w| w[0] == w[1]) {
        return Err(Error::Invalid("handles must be unique"));
    }
    Ok(handles)
}

/// Decodes a container produced by [`encode_index`], revalidating every
/// layer (see the module docs for the exact order). On success the
/// returned index answers queries immediately — no diagram is rebuilt,
/// only the `O(n log n)` cell grid is re-derived from the dataset.
pub fn decode_index(bytes: &[u8]) -> Result<LoadedSnapshot, Error> {
    let _span = crate::span!("container.decode", bytes.len() as u64);
    let _mem = crate::telemetry::mem::phase(crate::telemetry::mem::MemPhase::ContainerDecode);
    crate::counter!("container.decodes").add(1);
    let (flags, dir) = validate_envelope(bytes)?;
    if flags & !KNOWN_FLAGS != 0 {
        return Err(Error::Invalid("unknown flag bits set"));
    }
    let mut expected = vec![SEC_DATASET, SEC_QUAD_RESULTS, SEC_QUAD_CELLS, SEC_MERGED];
    if flags & FLAG_GLOBAL != 0 {
        expected.extend([SEC_GLOBAL_RESULTS, SEC_GLOBAL_CELLS]);
    }
    if flags & FLAG_DYNAMIC != 0 {
        expected.extend([
            SEC_DYN_XLINES,
            SEC_DYN_YLINES,
            SEC_DYN_RESULTS,
            SEC_DYN_CELLS,
        ]);
    }
    if flags & FLAG_HANDLES != 0 {
        expected.push(SEC_HANDLES);
    }
    let actual: Vec<u32> = dir.iter().map(|e| e.id).collect();
    if actual != expected {
        return Err(Error::Invalid(
            "section list does not match the header flags",
        ));
    }
    let payload = |id: u32| -> &[u8] {
        dir.iter()
            .find(|e| e.id == id)
            .map(|e| &bytes[e.offset as usize..(e.offset + e.length) as usize])
            .expect("section presence was validated against the flags")
    };

    let dataset = decode_dataset(payload(SEC_DATASET))?;
    let n = dataset.len();
    let grid = CellGrid::new(&dataset);

    let quad_results = decode_interner(payload(SEC_QUAD_RESULTS), n)?;
    let quad_cells = decode_cells(
        payload(SEC_QUAD_CELLS),
        grid.cell_count(),
        quad_results.len(),
    )?;
    let quadrant = CellDiagram::from_parts(grid.clone(), quad_results, quad_cells);
    let merged = decode_merged(payload(SEC_MERGED), &quadrant)?;

    let global = if flags & FLAG_GLOBAL != 0 {
        let results = decode_interner(payload(SEC_GLOBAL_RESULTS), n)?;
        let cells = decode_cells(payload(SEC_GLOBAL_CELLS), grid.cell_count(), results.len())?;
        Some(CellDiagram::from_parts(grid, results, cells))
    } else {
        None
    };

    let dynamic = if flags & FLAG_DYNAMIC != 0 {
        let xlines = decode_lines(payload(SEC_DYN_XLINES))?;
        let ylines = decode_lines(payload(SEC_DYN_YLINES))?;
        let results = decode_interner(payload(SEC_DYN_RESULTS), n)?;
        let subcells = (xlines.len() + 1)
            .checked_mul(ylines.len() + 1)
            .ok_or(Error::Invalid("subcell count overflows the address space"))?;
        let cells = decode_cells(payload(SEC_DYN_CELLS), subcells, results.len())?;
        Some(SubcellDiagram::from_lines(xlines, ylines, results, cells))
    } else {
        None
    };

    let handles = if flags & FLAG_HANDLES != 0 {
        decode_handles(payload(SEC_HANDLES), n)?
    } else {
        Vec::new()
    };

    let index = SkylineIndex::from_loaded_parts(dataset, quadrant, merged, global, dynamic);
    Ok(LoadedSnapshot { index, handles })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hotel_index(global: bool, dynamic: bool) -> SkylineIndex {
        let ds = crate::test_data::hotel_dataset();
        SkylineIndex::builder()
            .with_global(global)
            .with_dynamic(dynamic)
            .build(&ds)
    }

    fn handles_for(index: &SkylineIndex) -> Vec<Handle> {
        (0..index.dataset().len() as u64).map(Handle).collect()
    }

    #[test]
    fn roundtrip_quadrant_only() {
        let index = hotel_index(false, false);
        let bytes = encode_index(&index, &[]);
        let loaded = decode_index(&bytes).unwrap();
        assert!(loaded
            .index
            .quadrant_diagram()
            .same_results(index.quadrant_diagram()));
        assert_eq!(loaded.index.polyominoes().len(), index.polyominoes().len());
        assert!(loaded.index.global_diagram().is_none());
        assert!(loaded.index.dynamic_diagram().is_none());
        assert!(loaded.handles.is_empty());
    }

    #[test]
    fn roundtrip_full() {
        let index = hotel_index(true, true);
        let handles = handles_for(&index);
        let bytes = encode_index(&index, &handles);
        let loaded = decode_index(&bytes).unwrap();
        assert!(loaded
            .index
            .quadrant_diagram()
            .same_results(index.quadrant_diagram()));
        assert!(loaded
            .index
            .global_diagram()
            .unwrap()
            .same_results(index.global_diagram().unwrap()));
        assert!(loaded
            .index
            .dynamic_diagram()
            .unwrap()
            .same_results(index.dynamic_diagram().unwrap()));
        assert_eq!(loaded.handles, handles);
        // Loaded safe zones answer identically too.
        let q = crate::geometry::Point::new(14, 81);
        assert_eq!(loaded.index.safe_zone(q).cells, index.safe_zone(q).cells);
    }

    #[test]
    fn encoding_is_deterministic() {
        let index = hotel_index(true, true);
        let handles = handles_for(&index);
        assert_eq!(
            encode_index(&index, &handles),
            encode_index(&index, &handles)
        );
    }

    #[test]
    fn sections_lists_the_directory() {
        let index = hotel_index(true, false);
        let bytes = encode_index(&index, &handles_for(&index));
        let dir = sections(&bytes).unwrap();
        let ids: Vec<u32> = dir.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6, 11]);
        assert_eq!(dir[0].name, "dataset");
        let total: u64 = dir.iter().map(|s| s.length).sum();
        assert_eq!(dir[0].offset, (HEADER_LEN + 7 * DIR_ENTRY_LEN + 8) as u64);
        assert_eq!(dir[0].offset + total, bytes.len() as u64);
    }

    #[test]
    fn typed_rejections() {
        let index = hotel_index(false, false);
        let bytes = encode_index(&index, &[]);

        assert!(matches!(decode_index(&bytes[..8]), Err(Error::Truncated)));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(decode_index(&bad), Err(Error::BadMagic)));

        let mut bumped = bytes.clone();
        bumped[4] = 2; // major = 2
        assert!(matches!(decode_index(&bumped), Err(Error::BadVersion(2))));

        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(matches!(
            decode_index(&flipped),
            Err(Error::SectionChecksumMismatch(_))
        ));

        let mut header_flip = bytes.clone();
        header_flip[9] ^= 0x80; // flags byte: covered by the header checksum
        assert!(matches!(
            decode_index(&header_flip),
            Err(Error::HeaderChecksumMismatch)
        ));

        let mut junk = bytes.clone();
        junk.extend_from_slice(&[0xAB; 3]);
        assert!(matches!(decode_index(&junk), Err(Error::TrailingBytes(3))));

        assert!(decode_index(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn error_display_is_stable() {
        assert_eq!(
            Error::BadMagic.to_string(),
            "not a skyline snapshot container"
        );
        assert_eq!(
            Error::BadVersion(7).to_string(),
            "unsupported container major version 7"
        );
        assert_eq!(
            Error::SectionChecksumMismatch(3).to_string(),
            "checksum mismatch in section 3"
        );
        assert_eq!(
            Error::TrailingBytes(2).to_string(),
            "2 trailing bytes after the last section"
        );
        assert!(Error::Invalid("x")
            .to_string()
            .contains("invalid container"));
        // The error type integrates with std error handling.
        let boxed: Box<dyn std::error::Error> = Box::new(Error::Truncated);
        assert!(!boxed.to_string().is_empty());
    }

    #[test]
    fn degenerate_datasets_roundtrip() {
        for coords in [
            vec![(5, 5)],                         // n = 1
            vec![(3, 3), (3, 3), (3, 3)],         // duplicates
            vec![(1, 7), (2, 7), (3, 7), (4, 7)], // collinear
        ] {
            let ds = Dataset::from_coords(coords).unwrap();
            let index = SkylineIndex::builder()
                .with_global(true)
                .with_dynamic(true)
                .build(&ds);
            let loaded = decode_index(&encode_index(&index, &[])).unwrap();
            assert!(loaded
                .index
                .quadrant_diagram()
                .same_results(index.quadrant_diagram()));
            assert!(loaded
                .index
                .dynamic_diagram()
                .unwrap()
                .same_results(index.dynamic_diagram().unwrap()));
        }
    }
}
