//! Boundary extraction for skyline polyominoes: the vertex walks of the
//! paper's Algorithm 4 ("the sequence of vertices for the skymino
//! corresponding to g1 is g1, g2, g3, g4, g5, g6", Example 5), generalized
//! to arbitrary cell sets.
//!
//! A polyomino is a union of grid cells; its boundary is a set of closed
//! rectilinear loops on the grid-line lattice — one outer loop, plus one
//! loop per hole (holes cannot arise from the merge of a *valid* skyline
//! diagram, but the tracer is total so it can serve any cell set).
//! Unbounded polyominoes (touching the outermost slabs) are clipped to a
//! caller-supplied bounding box, defaulting to one unit beyond the data's
//! grid lines.
//!
//! Loops are returned with collinear vertices elided, oriented so that the
//! polyomino interior lies on the *left* of the walk direction (outer
//! loops counterclockwise in standard orientation, holes clockwise).

use std::collections::HashMap;

use crate::geometry::conv::lattice_index;
use crate::geometry::{CellGrid, CellIndex, Coord, Point};

/// Clip window for unbounded polyominoes, in data coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClipBox {
    /// Left edge of the clip window.
    pub x_min: Coord,
    /// Right edge.
    pub x_max: Coord,
    /// Bottom edge.
    pub y_min: Coord,
    /// Top edge.
    pub y_max: Coord,
}

impl ClipBox {
    /// One unit beyond the grid's extreme lines — the default window.
    pub fn around(grid: &CellGrid) -> Self {
        let xs = grid.x_lines();
        let ys = grid.y_lines();
        ClipBox {
            x_min: xs[0] - 1,
            x_max: xs[xs.len() - 1] + 1,
            y_min: ys[0] - 1,
            y_max: ys[ys.len() - 1] + 1,
        }
    }
}

/// Walk direction on the vertex lattice.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Dir {
    East,
    North,
    West,
    South,
}

impl Dir {
    fn step(self, (i, j): (i64, i64)) -> (i64, i64) {
        match self {
            Dir::East => (i + 1, j),
            Dir::North => (i, j + 1),
            Dir::West => (i - 1, j),
            Dir::South => (i, j - 1),
        }
    }

    /// Candidate outgoing directions after arriving with heading `self`,
    /// preferring the tightest left turn — this resolves checkerboard
    /// vertices so each loop hugs its own region.
    fn turn_preference(self) -> [Dir; 3] {
        match self {
            Dir::East => [Dir::North, Dir::East, Dir::South],
            Dir::North => [Dir::West, Dir::North, Dir::East],
            Dir::West => [Dir::South, Dir::West, Dir::North],
            Dir::South => [Dir::East, Dir::South, Dir::West],
        }
    }
}

/// Extracts the boundary loops of a set of cells, as closed vertex chains
/// in data coordinates (the first vertex is not repeated at the end).
pub fn boundary_loops(grid: &CellGrid, cells: &[CellIndex], clip: ClipBox) -> Vec<Vec<Point>> {
    let in_set: std::collections::HashSet<CellIndex> = cells.iter().copied().collect();
    let occupied = |i: i64, j: i64| -> bool {
        // Coordinates outside u32 (including negatives) cannot be grid
        // cells; TryFrom makes that a lookup miss rather than a truncating
        // cast that could alias a real cell.
        match (u32::try_from(i), u32::try_from(j)) {
            (Ok(i), Ok(j)) => in_set.contains(&(i, j)),
            _ => false,
        }
    };

    // Directed boundary edges, interior on the left, keyed by start vertex.
    // Cell (i, j) spans lattice vertices (i, j)..(i+1, j+1).
    let mut edges: HashMap<(i64, i64), Vec<Dir>> = HashMap::new();
    let mut push = |from: (i64, i64), dir: Dir| edges.entry(from).or_default().push(dir);
    for &(ci, cj) in cells.iter() {
        let (i, j) = (i64::from(ci), i64::from(cj));
        if !occupied(i, j - 1) {
            push((i, j), Dir::East); // bottom edge, interior above
        }
        if !occupied(i, j + 1) {
            push((i + 1, j + 1), Dir::West); // top edge, interior below
        }
        if !occupied(i - 1, j) {
            push((i, j + 1), Dir::South); // left edge, interior right
        }
        if !occupied(i + 1, j) {
            push((i + 1, j), Dir::North); // right edge, interior left
        }
    }

    let mut loops = Vec::new();
    // Deterministic order: iterate starts sorted.
    let mut starts: Vec<(i64, i64)> = edges.keys().copied().collect();
    starts.sort_unstable();
    for start in starts {
        while let Some(first_dir) = edges.get_mut(&start).and_then(Vec::pop) {
            let mut walk: Vec<((i64, i64), Dir)> = vec![(start, first_dir)];
            let mut at = first_dir.step(start);
            let mut heading = first_dir;
            while at != start {
                let out = edges
                    .get_mut(&at)
                    .expect("boundary edges form closed loops");
                let dir = *heading
                    .turn_preference()
                    .iter()
                    .find(|d| out.contains(d))
                    .expect("boundary edges form closed loops");
                out.retain(|&d| d != dir);
                walk.push((at, dir));
                at = dir.step(at);
                heading = dir;
            }
            loops.push(simplify(grid, walk, clip));
        }
    }
    loops
}

/// Drops collinear intermediate vertices and maps lattice indices to data
/// coordinates (clipping boundary slabs).
fn simplify(grid: &CellGrid, walk: Vec<((i64, i64), Dir)>, clip: ClipBox) -> Vec<Point> {
    let xs = grid.x_lines();
    let ys = grid.y_lines();
    let coord_x = |i: i64| -> Coord {
        if i <= 0 {
            clip.x_min
        } else if lattice_index(i) > xs.len() {
            clip.x_max
        } else {
            xs[lattice_index(i) - 1]
        }
    };
    let coord_y = |j: i64| -> Coord {
        if j <= 0 {
            clip.y_min
        } else if lattice_index(j) > ys.len() {
            clip.y_max
        } else {
            ys[lattice_index(j) - 1]
        }
    };
    let n = walk.len();
    let mut out = Vec::new();
    for k in 0..n {
        let prev_dir = walk[(k + n - 1) % n].1;
        let (vertex, dir) = walk[k];
        if dir != prev_dir {
            out.push(Point::new(coord_x(vertex.0), coord_y(vertex.1)));
        }
    }
    out
}

/// Signed area (shoelace, doubled) of a loop; positive for counterclockwise.
pub fn signed_area_doubled(vertices: &[Point]) -> i64 {
    let n = vertices.len();
    (0..n)
        .map(|k| {
            let a = vertices[k];
            let b = vertices[(k + 1) % n];
            a.x * b.y - b.x * a.y
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Dataset;

    /// 3x3 cell grid from two points at (10, 10) and (20, 20).
    fn grid() -> CellGrid {
        CellGrid::new(&Dataset::from_coords([(10, 10), (20, 20)]).unwrap())
    }

    #[test]
    fn single_bounded_cell() {
        let g = grid();
        let clip = ClipBox::around(&g);
        let loops = boundary_loops(&g, &[(1, 1)], clip);
        assert_eq!(loops.len(), 1);
        let mut loop0 = loops[0].clone();
        // Cell (1,1) spans x in (10, 20), y in (10, 20).
        loop0.sort_unstable();
        assert_eq!(
            loop0,
            vec![
                Point::new(10, 10),
                Point::new(10, 20),
                Point::new(20, 10),
                Point::new(20, 20)
            ]
        );
        assert!(signed_area_doubled(&loops[0]) > 0, "outer loop is CCW");
    }

    #[test]
    fn l_shape_has_six_vertices() {
        let g = grid();
        let clip = ClipBox::around(&g);
        // L-shape: the staircase polyomino of the paper's Example 5.
        let loops = boundary_loops(&g, &[(0, 0), (1, 0), (0, 1)], clip);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].len(), 6);
        // Areas: (0,0) clips to 1x1, (1,0) to 10x1, (0,1) to 1x10 -> 21.
        assert_eq!(signed_area_doubled(&loops[0]), 2 * 21);
    }

    #[test]
    fn unbounded_region_is_clipped() {
        let g = grid();
        let clip = ClipBox::around(&g);
        // Top-right cell extends to infinity; clip at +1 beyond lines.
        let loops = boundary_loops(&g, &[(2, 2)], clip);
        assert_eq!(loops.len(), 1);
        let mut v = loops[0].clone();
        v.sort_unstable();
        assert_eq!(
            v,
            vec![
                Point::new(20, 20),
                Point::new(20, 21),
                Point::new(21, 20),
                Point::new(21, 21)
            ]
        );
    }

    #[test]
    fn donut_yields_outer_and_hole_loops() {
        // A 3x3 ring of cells around a hole needs a larger grid: use 4
        // points -> 5x5 cells.
        let ds = Dataset::from_coords([(10, 10), (20, 20), (30, 30), (40, 40)]).unwrap();
        let g = CellGrid::new(&ds);
        let ring: Vec<CellIndex> = vec![
            (1, 1),
            (2, 1),
            (3, 1),
            (1, 2),
            (3, 2),
            (1, 3),
            (2, 3),
            (3, 3),
        ];
        let loops = boundary_loops(&g, &ring, ClipBox::around(&g));
        assert_eq!(loops.len(), 2);
        let outer = loops.iter().find(|l| signed_area_doubled(l) > 0).unwrap();
        let hole = loops.iter().find(|l| signed_area_doubled(l) < 0).unwrap();
        assert_eq!(outer.len(), 4);
        assert_eq!(hole.len(), 4);
    }

    #[test]
    fn checkerboard_touch_produces_two_separate_loops() {
        // Two cells sharing only a corner: each gets its own loop, and the
        // left-turn preference keeps them disjoint.
        let g = grid();
        let loops = boundary_loops(&g, &[(0, 0), (1, 1)], ClipBox::around(&g));
        assert_eq!(loops.len(), 2);
        for l in &loops {
            assert_eq!(l.len(), 4);
            assert!(signed_area_doubled(l) > 0);
        }
    }

    #[test]
    fn total_boundary_area_matches_cells() {
        // Signed areas of all loops of a polyomino sum to its cell area.
        let g = grid();
        let cells = vec![(0, 0), (1, 0), (0, 1), (1, 1)];
        let loops = boundary_loops(&g, &cells, ClipBox::around(&g));
        assert_eq!(loops.len(), 1);
        // Cells (0,0),(1,0),(0,1),(1,1) clip to [9,20]x[9,20] = 11x11... the
        // boundary cells span clip to the first line: x in [9, 20].
        assert_eq!(signed_area_doubled(&loops[0]), 2 * 11 * 11);
    }
}
