//! The cell-level skyline diagram: one interned result per skyline cell.
//!
//! This is the common output format of the baseline, DSG, and scanning
//! engines for quadrant/global skylines; polyominoes are obtained from it by
//! [`crate::diagram::merge`]. Results are interned (see
//! [`crate::result_set`]) so the dense per-cell array holds one `u32` each.

use crate::geometry::{CellGrid, CellIndex, Point, PointId};
use crate::result_set::{ResultId, ResultInterner};

/// A skyline diagram at cell granularity.
#[derive(Clone, Debug)]
#[must_use]
pub struct CellDiagram {
    grid: CellGrid,
    results: ResultInterner,
    /// Row-major, `grid.cell_count()` entries.
    cells: Vec<ResultId>,
}

impl CellDiagram {
    /// Heap bytes owned by the diagram: grid, result arena, and the
    /// per-cell result-id table.
    pub fn heap_bytes(&self) -> usize {
        self.grid.heap_bytes()
            + self.results.heap_bytes()
            + crate::telemetry::mem::vec_heap_bytes(&self.cells)
    }

    /// Assembles a diagram from its parts. Internal to the crate: engines
    /// construct diagrams, users query them.
    pub(crate) fn from_parts(
        grid: CellGrid,
        results: ResultInterner,
        cells: Vec<ResultId>,
    ) -> Self {
        debug_assert_eq!(cells.len(), grid.cell_count());
        CellDiagram {
            grid,
            results,
            cells,
        }
    }

    /// The underlying cell grid.
    #[inline]
    pub fn grid(&self) -> &CellGrid {
        &self.grid
    }

    /// The interned result of a cell.
    #[inline]
    pub fn result_id(&self, cell: CellIndex) -> ResultId {
        self.cells[self.grid.linear_index(cell)]
    }

    /// The skyline result of a cell, as sorted point ids.
    #[inline]
    pub fn result(&self, cell: CellIndex) -> &[PointId] {
        self.results.get(self.result_id(cell))
    }

    /// The skyline result for an arbitrary query point (`O(log n)` point
    /// location). Queries exactly on a grid line get the greater-side cell's
    /// result, consistently with the strict quadrant convention in
    /// [`crate::query`].
    pub fn query(&self, q: Point) -> &[PointId] {
        self.result(self.grid.cell_of(q))
    }

    /// The cache key of a query point: the linear (row-major) index of the
    /// cell containing `q`.
    ///
    /// By the diagram invariant, every query point with the same key has the
    /// identical skyline result — this is what makes a result cache keyed on
    /// `cell_key` provably exact (see `skyline_serve`). Keys are dense in
    /// `0..grid().cell_count()`.
    #[inline]
    pub fn cell_key(&self, q: Point) -> usize {
        self.grid.linear_index(self.grid.cell_of(q))
    }

    /// The interner holding the distinct results.
    #[inline]
    pub fn results(&self) -> &ResultInterner {
        &self.results
    }

    /// Row-major result ids for all cells.
    #[inline]
    pub fn cell_results(&self) -> &[ResultId] {
        &self.cells
    }

    /// True iff two diagrams assign the same result to every cell (the
    /// cross-validation predicate for the four construction algorithms;
    /// interner ids may differ, contents may not).
    pub fn same_results(&self, other: &CellDiagram) -> bool {
        if self.grid.nx() != other.grid.nx()
            || self.grid.ny() != other.grid.ny()
            || self.grid.x_lines() != other.grid.x_lines()
            || self.grid.y_lines() != other.grid.y_lines()
        {
            return false;
        }
        self.cells
            .iter()
            .zip(&other.cells)
            .all(|(&a, &b)| self.results.get(a) == other.results.get(b))
    }

    /// Summary statistics for the E5 experiment table.
    ///
    /// The computation lives in [`crate::analysis`]: it averages in floating
    /// point, and the diagram layer stays integer-exact (`cargo xtask lint`
    /// rule `no-float`).
    pub fn stats(&self) -> crate::analysis::DiagramStats {
        crate::analysis::diagram_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Dataset;

    fn tiny_diagram() -> CellDiagram {
        // Two points -> 3x3 cells; fill with hand-made results.
        let ds = Dataset::from_coords([(0, 0), (10, 10)]).unwrap();
        let grid = CellGrid::new(&ds);
        let mut results = ResultInterner::new();
        let both = results.intern_sorted(vec![PointId(0), PointId(1)]);
        let one = results.intern_sorted(vec![PointId(1)]);
        let empty = results.empty();
        // Row-major from (0,0): bottom row sees both, middle sees p1, rest empty.
        let cells = vec![both, one, empty, one, one, empty, empty, empty, empty];
        CellDiagram::from_parts(grid, results, cells)
    }

    #[test]
    fn lookup_by_cell_and_query() {
        let d = tiny_diagram();
        assert_eq!(d.result((0, 0)), &[PointId(0), PointId(1)]);
        assert_eq!(d.result((1, 1)), &[PointId(1)]);
        assert_eq!(d.query(Point::new(-5, -5)), &[PointId(0), PointId(1)]);
        assert_eq!(d.query(Point::new(3, 4)), &[PointId(1)]);
        assert!(d.query(Point::new(11, 11)).is_empty());
        assert_eq!(d.cell_results().len(), d.grid().cell_count());
    }

    #[test]
    fn same_results_ignores_interner_ids() {
        let a = tiny_diagram();
        // Rebuild with a different interning order.
        let ds = Dataset::from_coords([(0, 0), (10, 10)]).unwrap();
        let grid = CellGrid::new(&ds);
        let mut results = ResultInterner::new();
        let one = results.intern_sorted(vec![PointId(1)]);
        let both = results.intern_sorted(vec![PointId(0), PointId(1)]);
        let empty = results.empty();
        let cells = vec![both, one, empty, one, one, empty, empty, empty, empty];
        let b = CellDiagram::from_parts(grid, results, cells);
        assert!(a.same_results(&b));
    }

    #[test]
    fn same_results_detects_differences() {
        let a = tiny_diagram();
        let ds = Dataset::from_coords([(0, 0), (10, 10)]).unwrap();
        let grid = CellGrid::new(&ds);
        let mut results = ResultInterner::new();
        let both = results.intern_sorted(vec![PointId(0), PointId(1)]);
        let empty = results.empty();
        let cells = vec![both, empty, empty, empty, empty, empty, empty, empty, empty];
        let b = CellDiagram::from_parts(grid, results, cells);
        assert!(!a.same_results(&b));

        // Different grids are never equal.
        let ds2 = Dataset::from_coords([(0, 0), (11, 10)]).unwrap();
        let grid2 = CellGrid::new(&ds2);
        let r2 = ResultInterner::new();
        let e2 = r2.empty();
        let c = CellDiagram::from_parts(grid2, r2.clone(), vec![e2; 9]);
        assert!(!a.same_results(&c));
    }

    #[test]
    fn stats() {
        let d = tiny_diagram();
        let s = d.stats();
        assert_eq!(s.cell_count, 9);
        assert_eq!(s.distinct_results, 3);
        assert_eq!(s.interned_ids, 3); // {p0,p1} + {p1}
        assert_eq!(s.max_result_len, 2);
        assert!((s.avg_result_len - 5.0 / 9.0).abs() < 1e-12);
    }
}
