//! Structured diagram comparison: where `same_results` answers yes/no,
//! [`diff`] explains *where* and *how* two diagrams disagree — the
//! debugging companion to the cross-validation suites and the
//! `fuzz_diff` harness.

use crate::diagram::CellDiagram;
use crate::geometry::{CellIndex, PointId};

/// One differing cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellDifference {
    /// The cell index.
    pub cell: CellIndex,
    /// Ids present in the left diagram only.
    pub only_left: Vec<PointId>,
    /// Ids present in the right diagram only.
    pub only_right: Vec<PointId>,
}

/// Outcome of a diagram comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiagramDiff {
    /// Same grid, same result in every cell.
    Identical,
    /// The grids themselves differ (different line sets); per-cell
    /// comparison is meaningless.
    GridMismatch,
    /// Same grid, differing results; at most `limit` differences listed.
    Differs {
        /// Total number of differing cells.
        total: usize,
        /// The first differences, in row-major order.
        samples: Vec<CellDifference>,
    },
}

/// Compares two diagrams cell by cell, collecting up to `limit` samples.
pub fn diff(left: &CellDiagram, right: &CellDiagram, limit: usize) -> DiagramDiff {
    if left.grid().x_lines() != right.grid().x_lines()
        || left.grid().y_lines() != right.grid().y_lines()
    {
        return DiagramDiff::GridMismatch;
    }
    let mut total = 0usize;
    let mut samples = Vec::new();
    for cell in left.grid().cells() {
        let a = left.result(cell);
        let b = right.result(cell);
        if a == b {
            continue;
        }
        total += 1;
        if samples.len() < limit {
            samples.push(CellDifference {
                cell,
                only_left: a.iter().filter(|id| !b.contains(id)).copied().collect(),
                only_right: b.iter().filter(|id| !a.contains(id)).copied().collect(),
            });
        }
    }
    if total == 0 {
        DiagramDiff::Identical
    } else {
        DiagramDiff::Differs { total, samples }
    }
}

impl std::fmt::Display for DiagramDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiagramDiff::Identical => write!(f, "diagrams are identical"),
            DiagramDiff::GridMismatch => write!(f, "grids differ"),
            DiagramDiff::Differs { total, samples } => {
                writeln!(f, "{total} differing cells; first {}:", samples.len())?;
                for s in samples {
                    writeln!(
                        f,
                        "  cell {:?}: left-only {:?}, right-only {:?}",
                        s.cell, s.only_left, s.only_right
                    )?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrant::QuadrantEngine;
    use crate::skyband;

    #[test]
    fn identical_diagrams() {
        let ds = crate::test_data::hotel_dataset();
        let a = QuadrantEngine::Baseline.build(&ds);
        let b = QuadrantEngine::Sweeping.build(&ds);
        assert_eq!(diff(&a, &b, 5), DiagramDiff::Identical);
        assert_eq!(diff(&a, &b, 5).to_string(), "diagrams are identical");
    }

    #[test]
    fn different_semantics_differ_meaningfully() {
        // Skyline diagram vs 2-skyband diagram of the same data: the
        // skyband is a superset everywhere, so only_left is always empty.
        let ds = crate::test_data::lcg_dataset(15, 40, 3);
        let skyline = QuadrantEngine::Baseline.build(&ds);
        let band = skyband::build_baseline(&ds, 2);
        match diff(&skyline, &band, 10) {
            DiagramDiff::Differs { total, samples } => {
                assert!(total > 0);
                for s in &samples {
                    assert!(s.only_left.is_empty(), "skyline ⊆ skyband at {:?}", s.cell);
                    assert!(!s.only_right.is_empty());
                }
            }
            other => panic!("expected differences, found {other:?}"),
        }
    }

    #[test]
    fn grid_mismatch_detected() {
        let a = QuadrantEngine::Baseline.build(&crate::test_data::hotel_dataset());
        let b = QuadrantEngine::Baseline.build(&crate::test_data::lcg_dataset(5, 10, 1));
        assert_eq!(diff(&a, &b, 5), DiagramDiff::GridMismatch);
        assert_eq!(diff(&a, &b, 5).to_string(), "grids differ");
    }

    #[test]
    fn single_point_dataset_diffs() {
        // Quadrant vs global diagrams of a single point share the 2x2 grid
        // but disagree everywhere except the lower-left cell: globally the
        // point is the skyline in every quadrant, while the open first
        // quadrant only sees it from below-left.
        let ds = crate::geometry::Dataset::from_coords([(7, 3)]).unwrap();
        let q = QuadrantEngine::Sweeping.build(&ds);
        let g = crate::global::build(&ds, QuadrantEngine::Sweeping);
        match diff(&q, &g, 10) {
            DiagramDiff::Differs { total, samples } => {
                assert_eq!(total, 3);
                for s in &samples {
                    assert_ne!(s.cell, (0, 0));
                    assert!(s.only_left.is_empty());
                    assert_eq!(s.only_right, vec![PointId(0)]);
                }
            }
            other => panic!("expected differences, found {other:?}"),
        }
        // Engines agree with themselves on the degenerate input.
        let q2 = QuadrantEngine::Baseline.build(&ds);
        assert_eq!(diff(&q, &q2, 10), DiagramDiff::Identical);
    }

    #[test]
    fn fully_tied_coordinates_diff() {
        // All points identical: every engine must produce the identical
        // degenerate diagram, and the 2-skyband equals the skyline (there
        // is no second layer to add — every point is in layer one).
        let ds = crate::geometry::Dataset::from_coords([(5, 5); 4]).unwrap();
        let a = QuadrantEngine::Baseline.build(&ds);
        for engine in QuadrantEngine::ALL {
            assert_eq!(diff(&a, &engine.build(&ds), 5), DiagramDiff::Identical);
        }
        assert_eq!(
            diff(&a, &skyband::build_baseline(&ds, 2), 5),
            DiagramDiff::Identical
        );
    }

    #[test]
    fn zero_limit_counts_without_sampling() {
        let ds = crate::test_data::lcg_dataset(15, 40, 3);
        let skyline = QuadrantEngine::Baseline.build(&ds);
        let band = skyband::build_baseline(&ds, 2);
        match diff(&skyline, &band, 0) {
            DiagramDiff::Differs { total, samples } => {
                assert!(total > 0);
                assert!(samples.is_empty());
            }
            other => panic!("expected differences, found {other:?}"),
        }
    }

    #[test]
    fn on_line_query_cells_diff_like_any_other_cell() {
        // A dataset whose second point sits exactly on the first point's
        // grid lines' crossing (duplicate coordinate in one axis): the diff
        // between skyline and 2-skyband localizes to real cells even with
        // boundary-degenerate geometry.
        let ds = crate::geometry::Dataset::from_coords([(4, 9), (4, 2), (8, 9)]).unwrap();
        let skyline = QuadrantEngine::Sweeping.build(&ds);
        let band = skyband::build_baseline(&ds, 2);
        if let DiagramDiff::Differs { samples, .. } = diff(&skyline, &band, 100) {
            for s in &samples {
                // Every reported difference must be a strict skyband
                // superset, even in cells bordered by the tied lines.
                assert!(s.only_left.is_empty(), "at {:?}", s.cell);
                assert!(!s.only_right.is_empty(), "at {:?}", s.cell);
            }
        }
    }

    #[test]
    fn sample_limit_respected() {
        let ds = crate::test_data::lcg_dataset(15, 40, 3);
        let skyline = QuadrantEngine::Baseline.build(&ds);
        let band = skyband::build_baseline(&ds, 3);
        if let DiagramDiff::Differs { total, samples } = diff(&skyline, &band, 2) {
            assert!(total >= samples.len());
            assert!(samples.len() <= 2);
            let rendered = diff(&skyline, &band, 2).to_string();
            assert!(rendered.contains("differing cells"));
        } else {
            panic!("expected differences");
        }
    }
}
