//! Merging skyline cells into skyline polyominoes.
//!
//! The paper merges neighboring cells that share a skyline result
//! ("for each skyline cell, we search its upper and right cells and combine
//! those cells if they share the same skyline", `O(n²)` total). With interned
//! results the comparison is a `u32` equality; connected components are
//! extracted with a union–find over the grid's 4-adjacency, and a flood-fill
//! alternative is kept for the E8d merging ablation.
//!
//! Component collection is a two-pass counting build: one labelling pass
//! assigns dense polyomino ids and per-polyomino cell counts, then a scatter
//! pass places every cell directly into the [`MergedDiagram`] CSR arena — no
//! per-polyomino `Vec` ever exists.

use crate::diagram::cell_diagram::CellDiagram;
use crate::diagram::polyomino::MergedDiagram;
use crate::geometry::conv::{narrow, widen};

/// Union–find over linear cell indices.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..narrow(n)).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[widen(x)] != x {
            // Path halving.
            let grand = self.parent[widen(self.parent[widen(x)])];
            self.parent[widen(x)] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[widen(rb)] = ra;
        }
    }
}

/// Merges a cell diagram into its polyomino partition using union–find.
pub fn merge(diagram: &CellDiagram) -> MergedDiagram {
    let grid = diagram.grid();
    let width = widen(grid.nx()) + 1;
    merge_grid(width, diagram.cell_results(), |idx| {
        (narrow(idx % width), narrow(idx / width))
    })
}

/// Merges a dynamic subcell diagram into its polyomino partition (the
/// paper's Section-V merging step). Subcell indices play the role of cell
/// indices in the output.
pub fn merge_subcells(diagram: &crate::dynamic::SubcellDiagram) -> MergedDiagram {
    let width = widen(diagram.grid().mx()) + 1;
    merge_grid(width, diagram.cell_results(), |idx| {
        (narrow(idx % width), narrow(idx / width))
    })
}

/// Shared union–find merge over any row-major result grid.
fn merge_grid(
    width: usize,
    cells: &[crate::result_set::ResultId],
    index_of: impl Fn(usize) -> (u32, u32),
) -> MergedDiagram {
    let height = cells.len() / width;
    debug_assert_eq!(width * height, cells.len());

    let mut uf = UnionFind::new(cells.len());
    for j in 0..height {
        for i in 0..width {
            let idx = j * width + i;
            // Union with the right and upper neighbor when results match —
            // exactly the paper's merging rule.
            if i + 1 < width && cells[idx] == cells[idx + 1] {
                uf.union(narrow(idx), narrow(idx + 1));
            }
            if j + 1 < height && cells[idx] == cells[idx + width] {
                uf.union(narrow(idx), narrow(idx + width));
            }
        }
    }

    collect_components_grid(cells, index_of, |idx| uf.find(narrow(idx)))
}

/// Flood-fill merging, kept as the ablation/back-to-back check for
/// [`merge`]. Produces identical polyominoes (up to ordering, which both
/// functions normalize to first-cell row-major order).
pub fn merge_flood_fill(diagram: &CellDiagram) -> MergedDiagram {
    let grid = diagram.grid();
    let width = widen(grid.nx()) + 1;
    let height = widen(grid.ny()) + 1;
    let cells = diagram.cell_results();

    let mut label = vec![u32::MAX; cells.len()];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for start in 0..cells.len() {
        if label[start] != u32::MAX {
            continue;
        }
        let lab = next;
        next += 1;
        label[start] = lab;
        stack.push(start);
        while let Some(idx) = stack.pop() {
            let (i, j) = (idx % width, idx / width);
            let mut visit = |nb: usize| {
                if label[nb] == u32::MAX && cells[nb] == cells[idx] {
                    label[nb] = lab;
                    stack.push(nb);
                }
            };
            if i + 1 < width {
                visit(idx + 1);
            }
            if i > 0 {
                visit(idx - 1);
            }
            if j + 1 < height {
                visit(idx + width);
            }
            if j > 0 {
                visit(idx - width);
            }
        }
    }

    collect_components(diagram, |idx| label[idx])
}

/// Groups cells by component representative into polyominoes ordered by
/// their first (row-major) cell.
fn collect_components(
    diagram: &CellDiagram,
    component_of: impl FnMut(usize) -> u32,
) -> MergedDiagram {
    let grid = diagram.grid();
    collect_components_grid(
        diagram.cell_results(),
        |idx| grid.cell_from_linear(idx),
        component_of,
    )
}

/// Two-pass counting build of the polyomino CSR arena.
///
/// Pass 1 walks cells row-major, assigning each new component the next dense
/// polyomino id and counting its cells. The counts then prefix-sum into the
/// `ends` table, and pass 2 scatters every cell index into its polyomino's
/// slot of the flat cell array via a per-polyomino write cursor. Row-major
/// visit order makes both the polyomino order and the within-polyomino cell
/// order row-major, matching the old per-`Vec` push order exactly.
fn collect_components_grid(
    cells: &[crate::result_set::ResultId],
    index_of: impl Fn(usize) -> (u32, u32),
    mut component_of: impl FnMut(usize) -> u32,
) -> MergedDiagram {
    let mut poly_index: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let mut results: Vec<crate::result_set::ResultId> = Vec::new();
    let mut counts: Vec<u32> = Vec::new();
    let mut cell_to_polyomino = vec![0u32; cells.len()];

    for (idx, &result) in cells.iter().enumerate() {
        let rep = component_of(idx);
        let poly = *poly_index.entry(rep).or_insert_with(|| {
            results.push(result);
            counts.push(0);
            narrow(results.len() - 1)
        });
        counts[widen(poly)] += 1;
        cell_to_polyomino[idx] = poly;
    }

    // counts -> exclusive end offsets, in place.
    let mut ends = counts;
    let mut running = 0u32;
    for e in ends.iter_mut() {
        running += *e;
        *e = running;
    }

    // Scatter cells into the arena; `cursor[p]` is polyomino p's next slot.
    let mut cursor: Vec<u32> = Vec::with_capacity(ends.len());
    let mut start = 0u32;
    for &e in &ends {
        cursor.push(start);
        start = e;
    }
    let mut cells_flat = vec![(0u32, 0u32); cells.len()];
    for (idx, &poly) in cell_to_polyomino.iter().enumerate() {
        let slot = widen(cursor[widen(poly)]);
        cells_flat[slot] = index_of(idx);
        cursor[widen(poly)] += 1;
    }

    MergedDiagram::from_csr(results, ends, cells_flat, cell_to_polyomino)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{CellGrid, Dataset, PointId};
    use crate::result_set::ResultInterner;

    /// 3x3 cell diagram with an L-shaped region, a separate singleton with
    /// the same result (must NOT merge: not adjacent), and empties.
    fn fixture() -> CellDiagram {
        let ds = Dataset::from_coords([(0, 0), (10, 10)]).unwrap();
        let grid = CellGrid::new(&ds);
        let mut results = ResultInterner::new();
        let a = results.intern_sorted(vec![PointId(0)]);
        let b = results.intern_sorted(vec![PointId(1)]);
        let e = results.empty();
        // Layout (rows bottom to top):
        //   a a e
        //   a b e
        //   b e e
        let cells = vec![a, a, e, a, b, e, b, e, e];
        CellDiagram::from_parts(grid, results, cells)
    }

    #[test]
    fn union_find_merging() {
        let d = fixture();
        let merged = merge(&d);
        // Components: L-shaped a (3 cells), center b, top-left b, and the
        // e-region (right column + top row, connected around the corner).
        assert_eq!(merged.len(), 4);
        let l_shape = merged
            .iter()
            .find(|p| p.area() == 3 && d.results().get(p.result) == [PointId(0)])
            .expect("L-shaped polyomino");
        assert!(l_shape.is_connected());
        assert_eq!(l_shape.cells, [(0, 0), (1, 0), (0, 1)]);
        // The two b-cells are diagonal, hence distinct polyominoes.
        let b_polys: Vec<_> = merged
            .iter()
            .filter(|p| d.results().get(p.result) == [PointId(1)])
            .collect();
        assert_eq!(b_polys.len(), 2);
        assert!(!merged.is_empty());
    }

    #[test]
    fn flood_fill_agrees_with_union_find() {
        let d = fixture();
        let a = merge(&d);
        let b = merge_flood_fill(&d);
        assert_eq!(a, b);
    }

    #[test]
    fn cell_to_polyomino_is_consistent() {
        let d = fixture();
        let merged = merge(&d);
        for (idx, &p) in merged.cell_to_polyomino().iter().enumerate() {
            let poly = merged.polyomino(widen(p));
            assert!(poly.cells.contains(&d.grid().cell_from_linear(idx)));
            assert_eq!(poly.result, d.cell_results()[idx]);
            assert_eq!(merged.polyomino_of_cell(idx).result, d.cell_results()[idx]);
        }
    }

    #[test]
    fn subcell_merging_produces_connected_equal_result_regions() {
        let ds = Dataset::from_coords([(0, 0), (6, 10), (12, 4)]).unwrap();
        let d = crate::dynamic::DynamicEngine::Scanning.build(&ds);
        let merged = merge_subcells(&d);
        let total: usize = merged.iter().map(|p| p.area()).sum();
        assert_eq!(total, d.grid().subcell_count());
        assert!(merged.len() > 1);
        assert!(merged.len() <= d.grid().subcell_count());
        for poly in merged.iter() {
            assert!(poly.is_connected());
            for &sc in poly.cells {
                assert_eq!(d.result_id(sc), poly.result);
            }
        }
        // Maximality across subcell boundaries.
        let width = d.grid().mx() as usize + 1;
        for (idx, &p) in merged.cell_to_polyomino().iter().enumerate() {
            if idx % width + 1 < width {
                let right = merged.cell_to_polyomino()[idx + 1];
                if p != right {
                    assert_ne!(d.cell_results()[idx], d.cell_results()[idx + 1]);
                }
            }
        }
    }

    #[test]
    fn every_polyomino_is_connected_and_cells_partition() {
        let d = fixture();
        let merged = merge(&d);
        let total: usize = merged.iter().map(|p| p.area()).sum();
        assert_eq!(total, d.grid().cell_count());
        for p in merged.iter() {
            assert!(p.is_connected());
        }
    }

    #[test]
    fn single_point_dataset_merges_to_two_polyominoes() {
        // One point -> a 2x2 cell grid: the lower-left cell sees the point,
        // the three remaining cells are empty and form one connected L.
        let ds = Dataset::from_coords([(7, 3)]).unwrap();
        let d = crate::quadrant::QuadrantEngine::Sweeping.build(&ds);
        let merged = merge(&d);
        assert_eq!(merged.len(), 2);
        let occupied = merged
            .iter()
            .find(|p| d.results().get(p.result) == [PointId(0)])
            .expect("the point's own region exists");
        assert_eq!(occupied.cells, [(0, 0)]);
        crate::invariants::validate_merged_cells(&d, &merged).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(merged, merge_flood_fill(&d));

        // The dynamic diagram of a single point is everywhere {p0}: one
        // polyomino covering all four subcells.
        let sd = crate::dynamic::DynamicEngine::Scanning.build(&ds);
        let smerged = merge_subcells(&sd);
        assert_eq!(smerged.len(), 1);
        assert_eq!(smerged.polyomino(0).area(), sd.grid().subcell_count());
        crate::invariants::validate_merged_subcells(&sd, &smerged)
            .unwrap_or_else(|v| panic!("{v}"));
    }

    #[test]
    fn fully_tied_coordinates_collapse_to_one_line_per_axis() {
        // Four copies of the same point: the grid degenerates to a single
        // line per axis, ties everywhere. No point dominates an identical
        // copy, so the lower-left cell's skyline is all four ids.
        let ds = Dataset::from_coords([(5, 5); 4]).unwrap();
        let d = crate::quadrant::QuadrantEngine::Sweeping.build(&ds);
        assert_eq!(d.grid().cell_count(), 4);
        let all: Vec<PointId> = (0..4).map(PointId).collect();
        assert_eq!(d.result((0, 0)), all.as_slice());
        let merged = merge(&d);
        // {all four} in the lower-left cell, empty in the other three.
        assert_eq!(merged.len(), 2);
        crate::invariants::validate_merged_cells(&d, &merged).unwrap_or_else(|v| panic!("{v}"));

        // Dynamically all four points are always equidistant, hence always
        // all in the skyline: the merge is a single polyomino.
        let sd = crate::dynamic::DynamicEngine::Baseline.build(&ds);
        let smerged = merge_subcells(&sd);
        assert_eq!(smerged.len(), 1);
        assert_eq!(
            sd.results().get(smerged.polyomino(0).result),
            all.as_slice()
        );
        crate::invariants::validate_merged_subcells(&sd, &smerged)
            .unwrap_or_else(|v| panic!("{v}"));
    }

    #[test]
    fn on_line_queries_locate_the_greater_side_polyomino() {
        // Queries exactly on a grid line (here: exactly at p8 = (13, 83) of
        // the hotel data) resolve to the greater-side cell; the polyomino
        // point-location must agree with both the cell lookup and the
        // open-quadrant from-scratch oracle, which excludes p8 itself.
        let ds = crate::test_data::hotel_dataset();
        let d = crate::quadrant::QuadrantEngine::Sweeping.build(&ds);
        let merged = merge(&d);
        let q = crate::geometry::Point::new(13, 83);
        let cell = d.grid().cell_of(q);
        let poly = merged.polyomino_of_cell(d.grid().linear_index(cell));
        assert_eq!(d.results().get(poly.result), d.query(q));
        assert_eq!(
            d.query(q),
            crate::query::quadrant_skyline(&ds, q).as_slice()
        );
        assert!(
            !d.query(q).contains(&PointId(7)),
            "open quadrant: a point on the query's axis is not in the skyline"
        );
    }
}
