//! Skyline diagram structures: cell-level diagrams, polyominoes, and the
//! merge step that turns the former into the latter.

pub mod boundary;
mod cell_diagram;
pub mod diff;
pub mod merge;
mod polyomino;

pub use boundary::{boundary_loops, ClipBox};
pub use cell_diagram::CellDiagram;
// Re-exported from `analysis` (where the float-averaging computation lives)
// so existing `diagram::DiagramStats` imports keep working.
pub use crate::analysis::DiagramStats;
pub use diff::{diff, DiagramDiff};
pub use polyomino::{LabelledPolyomino, MergedDiagram, PolyominoRef};
