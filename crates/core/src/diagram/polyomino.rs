//! Skyline polyominoes (Definition 4): maximal connected unions of cells
//! sharing one skyline result.

use crate::geometry::{CellIndex, PointId};
use crate::result_set::ResultId;

/// One skyline polyomino of a merged diagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Polyomino {
    /// The interned skyline result shared by every query point inside.
    pub result: ResultId,
    /// The member cells, sorted row-major (by `(j, i)`).
    pub cells: Vec<CellIndex>,
}

impl Polyomino {
    /// Number of member cells — the polyomino's area in cell units.
    #[inline]
    pub fn area(&self) -> usize {
        self.cells.len()
    }

    /// Bounding box over cell indices: `(min_i, min_j, max_i, max_j)`.
    pub fn bounding_box(&self) -> (u32, u32, u32, u32) {
        let mut it = self.cells.iter();
        let &(i0, j0) = it.next().expect("polyomino has at least one cell");
        it.fold((i0, j0, i0, j0), |(a, b, c, d), &(i, j)| {
            (a.min(i), b.min(j), c.max(i), d.max(j))
        })
    }

    /// True iff the polyomino's cells form one 4-connected component —
    /// sanity predicate used by property tests.
    pub fn is_connected(&self) -> bool {
        if self.cells.is_empty() {
            return false;
        }
        let set: std::collections::HashSet<CellIndex> = self.cells.iter().copied().collect();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![self.cells[0]];
        seen.insert(self.cells[0]);
        while let Some((i, j)) = stack.pop() {
            let neighbors = [
                (i.wrapping_add(1), j),
                (i.wrapping_sub(1), j),
                (i, j.wrapping_add(1)),
                (i, j.wrapping_sub(1)),
            ];
            for nb in neighbors {
                if set.contains(&nb) && seen.insert(nb) {
                    stack.push(nb);
                }
            }
        }
        seen.len() == set.len()
    }
}

/// A fully merged skyline diagram: the polyomino partition of the plane plus
/// a cell → polyomino index for point location.
#[derive(Clone, Debug)]
#[must_use]
pub struct MergedDiagram {
    /// All polyominoes.
    pub polyominoes: Vec<Polyomino>,
    /// For each cell (row-major, same layout as the source
    /// [`CellDiagram`](crate::diagram::CellDiagram)): index into
    /// `polyominoes`.
    pub cell_to_polyomino: Vec<u32>,
}

impl MergedDiagram {
    /// Number of polyominoes — the diagram's complexity measure reported in
    /// the E5 statistics.
    #[inline]
    pub fn len(&self) -> usize {
        self.polyominoes.len()
    }

    /// True iff there are no polyominoes (never, for a valid diagram).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.polyominoes.is_empty()
    }

    /// The polyomino containing a cell.
    #[inline]
    pub fn polyomino_of_cell(&self, linear_cell: usize) -> &Polyomino {
        &self.polyominoes[self.polyomino_id_of_cell(linear_cell)]
    }

    /// The index (into [`MergedDiagram::polyominoes`]) of the polyomino
    /// containing a cell.
    ///
    /// This is the coarsest exact cache key for quadrant lookups: every
    /// query point anywhere in the polyomino has the identical result, so
    /// caching by polyomino id shares one entry across all of its cells.
    /// Ids are dense in `0..len()`.
    #[inline]
    pub fn polyomino_id_of_cell(&self, linear_cell: usize) -> usize {
        crate::geometry::conv::widen(self.cell_to_polyomino[linear_cell])
    }

    /// All polyominoes whose result contains the given point — the
    /// *influence region* of `p`: the set of query locations for which `p`
    /// is a skyline answer. Resolution goes through the owning diagram's
    /// interner, supplied as `resolve`.
    pub fn regions_containing<'a>(
        &'a self,
        p: crate::geometry::PointId,
        resolve: impl Fn(crate::result_set::ResultId) -> &'a [crate::geometry::PointId] + 'a,
    ) -> impl Iterator<Item = &'a Polyomino> + 'a {
        self.polyominoes
            .iter()
            .filter(move |poly| resolve(poly.result).binary_search(&p).is_ok())
    }
}

/// A labelled result set for display: pairs the polyomino with the actual
/// skyline point ids (resolved through the diagram's interner).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelledPolyomino<'a> {
    /// The polyomino geometry.
    pub polyomino: &'a Polyomino,
    /// The shared skyline result.
    pub skyline: &'a [PointId],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_bbox() {
        let p = Polyomino {
            result: ResultId(1),
            cells: vec![(1, 1), (2, 1), (2, 2)],
        };
        assert_eq!(p.area(), 3);
        assert_eq!(p.bounding_box(), (1, 1, 2, 2));
        assert!(p.is_connected());
    }

    #[test]
    fn disconnected_detected() {
        let p = Polyomino {
            result: ResultId(1),
            cells: vec![(0, 0), (2, 2)],
        };
        assert!(!p.is_connected());
        // Diagonal adjacency does not count as connected.
        let q = Polyomino {
            result: ResultId(1),
            cells: vec![(0, 0), (1, 1)],
        };
        assert!(!q.is_connected());
    }

    #[test]
    fn empty_polyomino_is_not_connected() {
        let p = Polyomino {
            result: ResultId(0),
            cells: vec![],
        };
        assert!(!p.is_connected());
    }

    #[test]
    fn influence_regions_cover_exactly_the_containing_results() {
        use crate::diagram::merge::merge;
        use crate::geometry::{Dataset, PointId};
        use crate::quadrant::QuadrantEngine;

        let ds = Dataset::from_coords([(2, 9), (5, 4), (9, 1)]).unwrap();
        let d = QuadrantEngine::Sweeping.build(&ds);
        let merged = merge(&d);
        for (id, _) in ds.iter() {
            let regions: Vec<_> = merged
                .regions_containing(id, |rid| d.results().get(rid))
                .collect();
            // Every region's result actually contains the point; total
            // cell coverage equals a direct scan over all cells.
            let covered: usize = regions.iter().map(|p| p.area()).sum();
            let expected = d
                .cell_results()
                .iter()
                .filter(|&&rid| d.results().get(rid).binary_search(&id).is_ok())
                .count();
            assert_eq!(covered, expected, "{id}");
            assert!(
                !regions.is_empty(),
                "every point is skyline somewhere (e.g. just below-left of it)"
            );
        }
        // A bogus id is in no region.
        assert_eq!(
            merged
                .regions_containing(PointId(99), |rid| d.results().get(rid))
                .count(),
            0
        );
    }
}
