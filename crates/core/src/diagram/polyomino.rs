//! Skyline polyominoes (Definition 4): maximal connected unions of cells
//! sharing one skyline result.
//!
//! Storage is a struct-of-arrays CSR arena: one flat `CellIndex` array with
//! per-polyomino end offsets, plus a parallel result-id array. Polyominoes
//! are *views* ([`PolyominoRef`]) borrowing slices out of the arena — there
//! is no per-polyomino heap allocation, so merging `O(n²)` cells touches
//! three flat arrays instead of chasing one `Vec` per region.

use crate::geometry::{CellIndex, PointId};
use crate::result_set::ResultId;

/// A view of one skyline polyomino borrowed from a [`MergedDiagram`] arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PolyominoRef<'a> {
    /// The interned skyline result shared by every query point inside.
    pub result: ResultId,
    /// The member cells, sorted row-major (by `(j, i)`).
    pub cells: &'a [CellIndex],
}

impl PolyominoRef<'_> {
    /// Number of member cells — the polyomino's area in cell units.
    #[inline]
    pub fn area(&self) -> usize {
        self.cells.len()
    }

    /// Bounding box over cell indices: `(min_i, min_j, max_i, max_j)`.
    pub fn bounding_box(&self) -> (u32, u32, u32, u32) {
        let mut it = self.cells.iter();
        let &(i0, j0) = it.next().expect("polyomino has at least one cell");
        it.fold((i0, j0, i0, j0), |(a, b, c, d), &(i, j)| {
            (a.min(i), b.min(j), c.max(i), d.max(j))
        })
    }

    /// True iff the polyomino's cells form one 4-connected component —
    /// sanity predicate used by property tests.
    pub fn is_connected(&self) -> bool {
        if self.cells.is_empty() {
            return false;
        }
        let set: std::collections::HashSet<CellIndex> = self.cells.iter().copied().collect();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![self.cells[0]];
        seen.insert(self.cells[0]);
        while let Some((i, j)) = stack.pop() {
            let neighbors = [
                (i.wrapping_add(1), j),
                (i.wrapping_sub(1), j),
                (i, j.wrapping_add(1)),
                (i, j.wrapping_sub(1)),
            ];
            for nb in neighbors {
                if set.contains(&nb) && seen.insert(nb) {
                    stack.push(nb);
                }
            }
        }
        seen.len() == set.len()
    }
}

/// A fully merged skyline diagram: the polyomino partition of the plane plus
/// a cell → polyomino index for point location, stored as flat CSR arrays.
#[derive(Clone, Debug, PartialEq, Eq)]
#[must_use]
pub struct MergedDiagram {
    /// Per-polyomino interned result, indexed by polyomino id.
    results: Vec<ResultId>,
    /// Exclusive end offsets into `cells_flat`; polyomino `k` owns
    /// `cells_flat[ends[k - 1]..ends[k]]` (with `ends[-1] = 0`).
    ends: Vec<u32>,
    /// All member cells, grouped by polyomino, row-major within each group.
    cells_flat: Vec<CellIndex>,
    /// For each cell (row-major, same layout as the source
    /// [`CellDiagram`](crate::diagram::CellDiagram)): polyomino id.
    cell_to_polyomino: Vec<u32>,
}

impl MergedDiagram {
    /// Heap bytes owned by the partition's four CSR arrays.
    pub fn heap_bytes(&self) -> usize {
        use crate::telemetry::mem::vec_heap_bytes;
        vec_heap_bytes(&self.results)
            + vec_heap_bytes(&self.ends)
            + vec_heap_bytes(&self.cells_flat)
            + vec_heap_bytes(&self.cell_to_polyomino)
    }

    /// Assembles a merged diagram from its CSR arrays. `ends` must be
    /// non-decreasing, cover `cells_flat` exactly, and pair one result per
    /// polyomino; `cell_to_polyomino` entries must be valid ids.
    pub fn from_csr(
        results: Vec<ResultId>,
        ends: Vec<u32>,
        cells_flat: Vec<CellIndex>,
        cell_to_polyomino: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(results.len(), ends.len());
        debug_assert!(ends.windows(2).all(|w| w[0] <= w[1]));
        debug_assert_eq!(
            ends.last().map_or(0, |&e| crate::geometry::conv::widen(e)),
            cells_flat.len()
        );
        debug_assert!(cell_to_polyomino
            .iter()
            .all(|&p| crate::geometry::conv::widen(p) < results.len()));
        MergedDiagram {
            results,
            ends,
            cells_flat,
            cell_to_polyomino,
        }
    }

    /// Number of polyominoes — the diagram's complexity measure reported in
    /// the E5 statistics.
    #[inline]
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True iff there are no polyominoes (never, for a valid diagram).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The polyomino with the given dense id.
    #[inline]
    pub fn polyomino(&self, id: usize) -> PolyominoRef<'_> {
        let start = if id == 0 {
            0
        } else {
            crate::geometry::conv::widen(self.ends[id - 1])
        };
        let end = crate::geometry::conv::widen(self.ends[id]);
        PolyominoRef {
            result: self.results[id],
            cells: &self.cells_flat[start..end],
        }
    }

    /// All polyominoes in dense-id order (first row-major cell order).
    pub fn iter(&self) -> impl ExactSizeIterator<Item = PolyominoRef<'_>> + '_ {
        (0..self.len()).map(|id| self.polyomino(id))
    }

    /// The polyomino containing a cell.
    #[inline]
    pub fn polyomino_of_cell(&self, linear_cell: usize) -> PolyominoRef<'_> {
        self.polyomino(self.polyomino_id_of_cell(linear_cell))
    }

    /// The index (dense in `0..len()`) of the polyomino containing a cell.
    ///
    /// This is the coarsest exact cache key for quadrant lookups: every
    /// query point anywhere in the polyomino has the identical result, so
    /// caching by polyomino id shares one entry across all of its cells.
    #[inline]
    pub fn polyomino_id_of_cell(&self, linear_cell: usize) -> usize {
        crate::geometry::conv::widen(self.cell_to_polyomino[linear_cell])
    }

    /// The raw cell → polyomino-id map (row-major, source-diagram layout).
    #[inline]
    pub fn cell_to_polyomino(&self) -> &[u32] {
        &self.cell_to_polyomino
    }

    /// Per-polyomino interned results — the CSR arena written verbatim into
    /// snapshot containers (`crate::container`).
    #[inline]
    pub fn polyomino_results(&self) -> &[ResultId] {
        &self.results
    }

    /// Exclusive per-polyomino end offsets into [`cells_flat`](Self::cells_flat).
    #[inline]
    pub fn polyomino_ends(&self) -> &[u32] {
        &self.ends
    }

    /// The flat member-cell arena, grouped by polyomino.
    #[inline]
    pub fn cells_flat(&self) -> &[CellIndex] {
        &self.cells_flat
    }

    /// All polyominoes whose result contains the given point — the
    /// *influence region* of `p`: the set of query locations for which `p`
    /// is a skyline answer. Resolution goes through the owning diagram's
    /// interner, supplied as `resolve`.
    pub fn regions_containing<'a>(
        &'a self,
        p: crate::geometry::PointId,
        resolve: impl Fn(crate::result_set::ResultId) -> &'a [crate::geometry::PointId] + 'a,
    ) -> impl Iterator<Item = PolyominoRef<'a>> + 'a {
        self.iter()
            .filter(move |poly| resolve(poly.result).binary_search(&p).is_ok())
    }
}

/// A labelled result set for display: pairs the polyomino with the actual
/// skyline point ids (resolved through the diagram's interner).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabelledPolyomino<'a> {
    /// The polyomino geometry.
    pub polyomino: PolyominoRef<'a>,
    /// The shared skyline result.
    pub skyline: &'a [PointId],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_bbox() {
        let cells = [(1, 1), (2, 1), (2, 2)];
        let p = PolyominoRef {
            result: ResultId(1),
            cells: &cells,
        };
        assert_eq!(p.area(), 3);
        assert_eq!(p.bounding_box(), (1, 1, 2, 2));
        assert!(p.is_connected());
    }

    #[test]
    fn disconnected_detected() {
        let p = PolyominoRef {
            result: ResultId(1),
            cells: &[(0, 0), (2, 2)],
        };
        assert!(!p.is_connected());
        // Diagonal adjacency does not count as connected.
        let q = PolyominoRef {
            result: ResultId(1),
            cells: &[(0, 0), (1, 1)],
        };
        assert!(!q.is_connected());
    }

    #[test]
    fn empty_polyomino_is_not_connected() {
        let p = PolyominoRef {
            result: ResultId(0),
            cells: &[],
        };
        assert!(!p.is_connected());
    }

    #[test]
    fn csr_accessors_slice_the_arena() {
        let d = MergedDiagram::from_csr(
            vec![ResultId(3), ResultId(0)],
            vec![2, 3],
            vec![(0, 0), (1, 0), (0, 1)],
            vec![0, 0, 1],
        );
        assert_eq!(d.len(), 2);
        assert_eq!(d.polyomino(0).cells, [(0, 0), (1, 0)]);
        assert_eq!(d.polyomino(1).cells, [(0, 1)]);
        assert_eq!(d.polyomino(1).result, ResultId(0));
        assert_eq!(d.polyomino_of_cell(2), d.polyomino(1));
        assert_eq!(d.iter().count(), 2);
        assert_eq!(d.iter().map(|p| p.area()).sum::<usize>(), 3);
    }

    #[test]
    fn influence_regions_cover_exactly_the_containing_results() {
        use crate::diagram::merge::merge;
        use crate::geometry::{Dataset, PointId};
        use crate::quadrant::QuadrantEngine;

        let ds = Dataset::from_coords([(2, 9), (5, 4), (9, 1)]).unwrap();
        let d = QuadrantEngine::Sweeping.build(&ds);
        let merged = merge(&d);
        for (id, _) in ds.iter() {
            let regions: Vec<_> = merged
                .regions_containing(id, |rid| d.results().get(rid))
                .collect();
            // Every region's result actually contains the point; total
            // cell coverage equals a direct scan over all cells.
            let covered: usize = regions.iter().map(|p| p.area()).sum();
            let expected = d
                .cell_results()
                .iter()
                .filter(|&&rid| d.results().get(rid).binary_search(&id).is_ok())
                .count();
            assert_eq!(covered, expected, "{id}");
            assert!(
                !regions.is_empty(),
                "every point is skyline somewhere (e.g. just below-left of it)"
            );
        }
        // A bogus id is in no region.
        assert_eq!(
            merged
                .regions_containing(PointId(99), |rid| d.results().get(rid))
                .count(),
            0
        );
    }
}
