//! Dominance relations for the three skyline query semantics.
//!
//! All skylines in this crate are *minimization* skylines: smaller is better
//! in every dimension, matching the paper's hotel example (lower price,
//! shorter distance). `p` dominates `p'` when `p[i] <= p'[i]` for all `i` and
//! `p[i] < p'[i]` for at least one `i` (Definition 1).
//!
//! For query-relative semantics:
//! - **dynamic** dominance (Definition 2) compares `|p[i] - q[i]|`,
//! - **global/quadrant** dominance (Definition 3) is dynamic dominance
//!   restricted to points in the same open quadrant of `q`; points exactly on
//!   one of `q`'s axes are in no quadrant under this crate's strict
//!   convention (a measure-zero choice, documented in [`crate::query`]).

use crate::geometry::{Coord, Point, PointD};

/// Ordinary minimization dominance in the plane (Definition 1).
#[inline]
pub fn dominates(p: Point, q: Point) -> bool {
    p.x <= q.x && p.y <= q.y && (p.x < q.x || p.y < q.y)
}

/// Ordinary minimization dominance in d dimensions (Definition 1).
pub fn dominates_d(p: &PointD, q: &PointD) -> bool {
    debug_assert_eq!(p.dims(), q.dims());
    let mut strict = false;
    for (a, b) in p.coords().iter().zip(q.coords()) {
        if a > b {
            return false;
        }
        strict |= a < b;
    }
    strict
}

/// Dominance on coordinate slices; used where points live in scratch buffers.
pub fn dominates_coords(p: &[Coord], q: &[Coord]) -> bool {
    debug_assert_eq!(p.len(), q.len());
    let mut strict = false;
    for (a, b) in p.iter().zip(q) {
        if a > b {
            return false;
        }
        strict |= a < b;
    }
    strict
}

/// Dynamic dominance with respect to a query point (Definition 2):
/// `p` dominates `p'` iff `|p - q|` dominates `|p' - q|` componentwise.
#[inline]
pub fn dominates_dynamic(p: Point, other: Point, q: Point) -> bool {
    let pd = ((p.x - q.x).abs(), (p.y - q.y).abs());
    let od = ((other.x - q.x).abs(), (other.y - q.y).abs());
    pd.0 <= od.0 && pd.1 <= od.1 && (pd.0 < od.0 || pd.1 < od.1)
}

/// Dynamic dominance in d dimensions (Definition 2).
pub fn dominates_dynamic_d(p: &PointD, other: &PointD, q: &PointD) -> bool {
    debug_assert_eq!(p.dims(), q.dims());
    let mut strict = false;
    for i in 0..p.dims() {
        let a = (p.coord(i) - q.coord(i)).abs();
        let b = (other.coord(i) - q.coord(i)).abs();
        if a > b {
            return false;
        }
        strict |= a < b;
    }
    strict
}

/// The open quadrant of `q` that `p` lies in, numbered as in the paper:
/// 1 = upper-right (`p.x > q.x`, `p.y > q.y`), 2 = upper-left, 3 = lower-left,
/// 4 = lower-right. Returns `None` when `p` lies on one of `q`'s axes.
pub fn quadrant_of(p: Point, q: Point) -> Option<u8> {
    if p.x == q.x || p.y == q.y {
        return None;
    }
    Some(match (p.x > q.x, p.y > q.y) {
        (true, true) => 1,
        (false, true) => 2,
        (false, false) => 3,
        (true, false) => 4,
    })
}

/// The open orthant of `q` that `p` lies in, as a bitmask over dimensions
/// (bit `i` set ⟺ `p[i] > q[i]`). Returns `None` when `p` lies on an axis
/// hyperplane of `q`. The first orthant of the paper is mask `(1 << d) - 1`.
pub fn orthant_of(p: &PointD, q: &PointD) -> Option<u32> {
    debug_assert_eq!(p.dims(), q.dims());
    let mut mask = 0u32;
    for i in 0..p.dims() {
        if p.coord(i) == q.coord(i) {
            return None;
        }
        if p.coord(i) > q.coord(i) {
            mask |= 1 << i;
        }
    }
    Some(mask)
}

/// Global dominance (Definition 3): dynamic dominance restricted to points in
/// the same open quadrant of the query point. Returns `false` when the two
/// points are in different quadrants or either lies on an axis of `q`.
pub fn dominates_global(p: Point, other: Point, q: Point) -> bool {
    match (quadrant_of(p, q), quadrant_of(other, q)) {
        (Some(a), Some(b)) if a == b => dominates_dynamic(p, other, q),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_dominance() {
        assert!(dominates(Point::new(1, 1), Point::new(2, 2)));
        assert!(dominates(Point::new(1, 2), Point::new(1, 3)));
        assert!(!dominates(Point::new(1, 3), Point::new(2, 2)));
        // Equal points do not dominate each other.
        assert!(!dominates(Point::new(1, 1), Point::new(1, 1)));
    }

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric() {
        let pts = [
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(0, 1),
            Point::new(1, 1),
        ];
        for &a in &pts {
            assert!(!dominates(a, a));
            for &b in &pts {
                assert!(!(dominates(a, b) && dominates(b, a)));
            }
        }
    }

    #[test]
    fn d_dimensional_matches_planar() {
        let cases = [
            ((1, 1), (2, 2)),
            ((1, 3), (2, 2)),
            ((5, 5), (5, 5)),
            ((0, 7), (0, 9)),
        ];
        for ((ax, ay), (bx, by)) in cases {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            assert_eq!(dominates(a, b), dominates_d(&a.into(), &b.into()));
            assert_eq!(dominates(a, b), dominates_coords(&[ax, ay], &[bx, by]));
        }
    }

    #[test]
    fn dynamic_dominance_example_from_paper() {
        // Figure 1: q = (10, 80); p6 = (9, 78) maps near the origin and
        // dominates p1 = (1, 90) whose mapped point is (9, 10) vs (1, 2).
        let q = Point::new(10, 80);
        let p6 = Point::new(9, 78);
        let p1 = Point::new(1, 90);
        assert!(dominates_dynamic(p6, p1, q));
        assert!(!dominates_dynamic(p1, p6, q));
    }

    #[test]
    fn dynamic_dominance_crosses_quadrants() {
        let q = Point::new(0, 0);
        // (1, 1) in Q1 dominates (-2, -2) in Q3 dynamically.
        assert!(dominates_dynamic(Point::new(1, 1), Point::new(-2, -2), q));
        // ... but not globally (different quadrants).
        assert!(!dominates_global(Point::new(1, 1), Point::new(-2, -2), q));
    }

    #[test]
    fn dynamic_d_matches_planar_dynamic() {
        let q = Point::new(3, -4);
        let a = Point::new(5, -1);
        let b = Point::new(0, -9);
        assert_eq!(
            dominates_dynamic(a, b, q),
            dominates_dynamic_d(&a.into(), &b.into(), &q.into())
        );
    }

    #[test]
    fn quadrants() {
        let q = Point::new(10, 10);
        assert_eq!(quadrant_of(Point::new(11, 11), q), Some(1));
        assert_eq!(quadrant_of(Point::new(9, 11), q), Some(2));
        assert_eq!(quadrant_of(Point::new(9, 9), q), Some(3));
        assert_eq!(quadrant_of(Point::new(11, 9), q), Some(4));
        assert_eq!(quadrant_of(Point::new(10, 11), q), None);
        assert_eq!(quadrant_of(Point::new(11, 10), q), None);
    }

    #[test]
    fn orthants() {
        let q = PointD::new(vec![0, 0, 0]);
        assert_eq!(orthant_of(&PointD::new(vec![1, 1, 1]), &q), Some(0b111));
        assert_eq!(orthant_of(&PointD::new(vec![-1, 1, -1]), &q), Some(0b010));
        assert_eq!(orthant_of(&PointD::new(vec![0, 1, 1]), &q), None);
    }

    #[test]
    fn global_dominance_within_quadrant() {
        let q = Point::new(0, 0);
        // Both in Q1; (1, 1) dominates (2, 2) with respect to q.
        assert!(dominates_global(Point::new(1, 1), Point::new(2, 2), q));
        // Q2: (-1, 1) dominates (-2, 2).
        assert!(dominates_global(Point::new(-1, 1), Point::new(-2, 2), q));
        // Axis points participate in no quadrant.
        assert!(!dominates_global(Point::new(0, 1), Point::new(0, 2), q));
    }
}
