//! The directed skyline graph (DSG), adapted from \[15\] as the paper
//! describes: only *direct* dominance links are kept.
//!
//! Nodes are the dataset's points; there is an edge `p → c` iff `p` dominates
//! `c` and no third point `q` satisfies `p ≻ q ≻ c` — i.e. the graph is the
//! transitive reduction of the dominance DAG. A point's direct parents are
//! exactly the maximal elements of its dominator set, which in the plane is a
//! maxima (upper-right staircase) computation per point.
//!
//! The incremental diagram algorithm (Section IV-B) relies on one property,
//! proved here and asserted by tests: after deleting any *dominator-closed*
//! set `R` (if `r ∈ R` and `a ≻ r` then `a ∈ R` — which holds for the sets of
//! points left behind by a rightward/upward grid-line crossing), a surviving
//! point is undominated among survivors iff all of its direct parents were
//! deleted. (If a surviving ancestor `a ≻ c` exists, walk a transitive-
//! reduction path from `a` to `c`; the last hop's parent `w` satisfies
//! `a ≻ w` or `a = w`, so `w ∈ R` would force `a ∈ R` — hence `w` survives
//! and `c` has a surviving direct parent.)

use crate::dominance::{dominates, dominates_d};
use crate::geometry::{Coord, Dataset, DatasetD, PointId};
use crate::skyline::layers;
use crate::skyline::sort_sweep::maxima_xy;

/// The directed skyline graph of a dataset.
#[derive(Clone, Debug)]
pub struct DirectedSkylineGraph {
    /// Direct parents (dominators with no interposed dominator) per point.
    parents: Vec<Vec<PointId>>,
    /// Direct children per point — the reverse adjacency of `parents`.
    children: Vec<Vec<PointId>>,
    /// Skyline layers; `layers[0]` is the dataset's skyline.
    layers: Vec<Vec<PointId>>,
}

impl DirectedSkylineGraph {
    /// Builds the DSG of a planar dataset.
    ///
    /// Direct parents of each point are the maxima of its dominator set,
    /// computed with a sort-and-scan per point: `O(n² log n)` total, with the
    /// `O(n²)` total link bound of the paper.
    pub fn new_2d(dataset: &Dataset) -> Self {
        let n = dataset.len();
        let layers = layers::layers_2d(dataset);
        let mut parents: Vec<Vec<PointId>> = vec![Vec::new(); n];
        let mut children: Vec<Vec<PointId>> = vec![Vec::new(); n];

        let mut dominators: Vec<(Coord, Coord, PointId)> = Vec::new();
        for (c, pc) in dataset.iter() {
            dominators.clear();
            for (p, pp) in dataset.iter() {
                if dominates(pp, pc) {
                    dominators.push((pp.x, pp.y, p));
                }
            }
            let direct = maxima_xy(&mut dominators);
            for &p in &direct {
                children[p.index()].push(c);
            }
            parents[c.index()] = direct;
        }
        for ch in &mut children {
            ch.sort_unstable();
        }
        DirectedSkylineGraph {
            parents,
            children,
            layers,
        }
    }

    /// Builds the DSG of a d-dimensional dataset. Direct parents are the
    /// dominators not dominated by another dominator, found with BNL-style
    /// maxima per point.
    pub fn new_d(dataset: &DatasetD) -> Self {
        let n = dataset.len();
        let layers = layers::layers_d(dataset);
        let mut parents: Vec<Vec<PointId>> = vec![Vec::new(); n];
        let mut children: Vec<Vec<PointId>> = vec![Vec::new(); n];

        for (c, pc) in dataset.iter() {
            let doms: Vec<PointId> = dataset
                .iter()
                .filter(|(_, pp)| dominates_d(pp, pc))
                .map(|(p, _)| p)
                .collect();
            let direct: Vec<PointId> = doms
                .iter()
                .copied()
                .filter(|&p| {
                    !doms
                        .iter()
                        .any(|&q| dominates_d(dataset.point(p), dataset.point(q)))
                })
                .collect();
            for &p in &direct {
                children[p.index()].push(c);
            }
            parents[c.index()] = direct;
        }
        for ch in &mut children {
            ch.sort_unstable();
        }
        DirectedSkylineGraph {
            parents,
            children,
            layers,
        }
    }

    /// Number of points (nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True iff the graph has no nodes (never, for a valid dataset).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Direct parents of a point (its maximal dominators).
    #[inline]
    pub fn parents(&self, id: PointId) -> &[PointId] {
        &self.parents[id.index()]
    }

    /// Direct children of a point.
    #[inline]
    pub fn children(&self, id: PointId) -> &[PointId] {
        &self.children[id.index()]
    }

    /// Skyline layers; `layers()[0]` is the dataset's skyline.
    #[inline]
    #[must_use]
    pub fn layers(&self) -> &[Vec<PointId>] {
        &self.layers
    }

    /// Total number of direct links, `O(n²)` worst case.
    pub fn link_count(&self) -> usize {
        self.parents.iter().map(Vec::len).sum()
    }

    /// Per-point direct-parent counts — the seed state for the incremental
    /// deletion pass of the diagram algorithm.
    pub fn parent_counts(&self) -> Vec<u32> {
        self.parents.iter().map(|p| p.len() as u32).collect()
    }
}

/// Incremental deletion state over a [`DirectedSkylineGraph`]: which points
/// are still present, how many direct parents each retains, and the current
/// skyline membership. This is the engine room of the DSG diagram algorithms
/// (planar and high-dimensional): grid-line crossings delete
/// dominator-closed sets, and a child whose last parent is deleted is
/// promoted into the skyline (see module docs for why parent-counting is
/// sound under dominator-closed deletion).
#[derive(Clone, Debug)]
pub struct DeletionSweep {
    present: Vec<bool>,
    parents_left: Vec<u32>,
    in_skyline: Vec<bool>,
    skyline_size: usize,
}

impl DeletionSweep {
    /// Initial state: everything present, skyline = first layer.
    pub fn new(dsg: &DirectedSkylineGraph) -> Self {
        let n = dsg.len();
        let mut in_skyline = vec![false; n];
        for &id in &dsg.layers()[0] {
            in_skyline[id.index()] = true;
        }
        DeletionSweep {
            present: vec![true; n],
            parents_left: dsg.parent_counts(),
            in_skyline,
            skyline_size: dsg.layers()[0].len(),
        }
    }

    /// Deletes every listed point that is still present and promotes
    /// children left with no surviving parent, exactly as in the paper's
    /// Algorithm 2. The caller must only delete dominator-closed sets over
    /// the whole deletion history (grid-line crossings guarantee this).
    pub fn remove_points(&mut self, dsg: &DirectedSkylineGraph, points: &[PointId]) {
        for &p in points {
            if !self.present[p.index()] {
                continue;
            }
            self.present[p.index()] = false;
            if self.in_skyline[p.index()] {
                self.in_skyline[p.index()] = false;
                self.skyline_size -= 1;
            }
            for &c in dsg.children(p) {
                let left = &mut self.parents_left[c.index()];
                *left -= 1;
                if *left == 0 && self.present[c.index()] && !self.in_skyline[c.index()] {
                    self.in_skyline[c.index()] = true;
                    self.skyline_size += 1;
                }
            }
        }
    }

    /// Current skyline as sorted ids.
    #[must_use]
    pub fn skyline_ids(&self) -> Vec<PointId> {
        let mut ids = Vec::with_capacity(self.skyline_size);
        for (idx, &is_sky) in self.in_skyline.iter().enumerate() {
            if is_sky {
                ids.push(PointId(idx as u32));
            }
        }
        ids
    }

    /// Current skyline size, maintained incrementally.
    #[inline]
    pub fn skyline_size(&self) -> usize {
        self.skyline_size
    }
}

/// Naive transitive-reduction construction, retained as the test oracle for
/// both DSG constructors: `p` is a direct parent of `c` iff `p ≻ c` and no
/// `q` has `p ≻ q ≻ c`.
#[cfg(test)]
pub(crate) fn direct_parents_naive(dataset: &Dataset, c: PointId) -> Vec<PointId> {
    let pc = dataset.point(c);
    let mut out: Vec<PointId> = dataset
        .iter()
        .filter(|&(p, pp)| {
            p != c
                && dominates(pp, pc)
                && !dataset
                    .iter()
                    .any(|(_, pq)| dominates(pp, pq) && dominates(pq, pc))
        })
        .map(|(p, _)| p)
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hotel() -> Dataset {
        Dataset::from_coords([
            (1, 92),
            (3, 96),
            (12, 86),
            (5, 94),
            (15, 85),
            (8, 78),
            (16, 83),
            (13, 83),
            (6, 93),
            (21, 82),
            (11, 9),
        ])
        .unwrap()
    }

    #[test]
    fn matches_naive_transitive_reduction() {
        let ds = hotel();
        let dsg = DirectedSkylineGraph::new_2d(&ds);
        for id in ds.ids() {
            let mut got = dsg.parents(id).to_vec();
            got.sort_unstable();
            assert_eq!(got, direct_parents_naive(&ds, id), "parents of {id}");
        }
    }

    #[test]
    fn d_dimensional_matches_planar() {
        let ds = hotel();
        let dsg2 = DirectedSkylineGraph::new_2d(&ds);
        let dsgd = DirectedSkylineGraph::new_d(&ds.to_dataset_d());
        for id in ds.ids() {
            let mut a = dsg2.parents(id).to_vec();
            a.sort_unstable();
            let mut b = dsgd.parents(id).to_vec();
            b.sort_unstable();
            assert_eq!(a, b);
            assert_eq!(dsg2.children(id), dsgd.children(id));
        }
        assert_eq!(dsg2.link_count(), dsgd.link_count());
    }

    #[test]
    fn skyline_points_have_no_parents() {
        let ds = hotel();
        let dsg = DirectedSkylineGraph::new_2d(&ds);
        for &id in &dsg.layers()[0] {
            assert!(dsg.parents(id).is_empty());
        }
        assert!(!dsg.is_empty());
        assert_eq!(dsg.len(), ds.len());
    }

    #[test]
    fn children_are_reverse_of_parents() {
        let ds = hotel();
        let dsg = DirectedSkylineGraph::new_2d(&ds);
        for c in ds.ids() {
            for &p in dsg.parents(c) {
                assert!(dsg.children(p).contains(&c));
            }
        }
        let forward: usize = (0..ds.len() as u32)
            .map(|i| dsg.parents(PointId(i)).len())
            .sum();
        assert_eq!(forward, dsg.link_count());
    }

    #[test]
    fn duplicate_points_share_parents_without_linking_to_each_other() {
        let ds = Dataset::from_coords([(0, 0), (5, 5), (5, 5)]).unwrap();
        let dsg = DirectedSkylineGraph::new_2d(&ds);
        // Equal points do not dominate each other; both hang off (0, 0).
        assert_eq!(dsg.parents(PointId(1)), &[PointId(0)]);
        assert_eq!(dsg.parents(PointId(2)), &[PointId(0)]);
        assert_eq!(dsg.children(PointId(0)), &[PointId(1), PointId(2)]);
    }

    #[test]
    fn chain_has_single_links() {
        let ds = Dataset::from_coords([(0, 0), (1, 1), (2, 2), (3, 3)]).unwrap();
        let dsg = DirectedSkylineGraph::new_2d(&ds);
        assert_eq!(dsg.link_count(), 3);
        assert_eq!(dsg.parents(PointId(3)), &[PointId(2)]);
        assert_eq!(dsg.layers().len(), 4);
    }
}
