//! The baseline dynamic-diagram algorithm (paper Algorithm 5).
//!
//! For each of the `O(n⁴)` skyline subcells: map every point by its absolute
//! coordinate distance to an interior sample of the subcell and compute the
//! skyline of the mapped points. `O(n⁵)` worst case (`O(n log n)` per
//! subcell here; the paper's `O(n)` variant presorts, but the mapped x-order
//! changes per subcell column anyway, and the sort is not the bottleneck).

use crate::dynamic::{dynamic_minima_at_sample, SubcellDiagram, SubcellGrid};
use crate::geometry::{Dataset, PointId};
use crate::parallel::{self, ParallelConfig};
use crate::result_set::{ResultInterner, ResultRuns};

/// Builds the dynamic skyline diagram with the baseline per-subcell scan,
/// using the process-wide parallel configuration (`SKYLINE_THREADS`).
pub fn build(dataset: &Dataset) -> SubcellDiagram {
    build_with(dataset, &ParallelConfig::from_env())
}

/// Builds the baseline dynamic diagram with an explicit parallel
/// configuration. Subcell rows are independent (every subcell is solved
/// from scratch); workers return run-collapsed raw results and the caller
/// interns them in row-major order, so every thread count produces an
/// identical diagram.
pub fn build_with(dataset: &Dataset, cfg: &ParallelConfig) -> SubcellDiagram {
    let grid = SubcellGrid::new_with(dataset, cfg);
    let width = grid.mx() as usize + 1;
    let height = grid.my() as usize + 1;
    let all: Vec<PointId> = dataset.ids().collect();

    let _bands = crate::span!("dynamic.baseline.bands", height as u64);
    crate::counter!("dynamic.subcell_rows").add(height as u64);
    let rows: Vec<ResultRuns> = parallel::map_indexed(cfg, height, |j| {
        let mut scratch = Vec::with_capacity(dataset.len());
        let mut runs = ResultRuns::new();
        for i in 0..width as u32 {
            let sample = grid.sample_x4((i, j as u32));
            let sky = dynamic_minima_at_sample(dataset, all.iter().copied(), sample, &mut scratch);
            runs.push(&sky);
        }
        runs
    });

    let mut results = ResultInterner::new();
    let mut cells = Vec::with_capacity(width * height);
    for row in &rows {
        row.intern_into(&mut results, &mut cells);
    }
    SubcellDiagram::from_parts(grid, results, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::dynamic_skyline_naive;

    #[test]
    fn every_subcell_matches_the_naive_oracle() {
        let ds = crate::test_data::lcg_dataset(8, 40, 1);
        let d = build(&ds);
        // Oracle in quadrupled coordinates at each subcell sample.
        let scaled = Dataset::from_coords(ds.points().iter().map(|p| (4 * p.x, 4 * p.y))).unwrap();
        for sc in d.grid().subcells() {
            let sample = d.grid().sample_x4(sc);
            assert_eq!(
                d.result(sc),
                dynamic_skyline_naive(&scaled, sample).as_slice(),
                "subcell {sc:?}"
            );
        }
    }

    #[test]
    fn far_away_subcells_have_singleton_extremes() {
        // Far beyond all points in both axes, the dynamic skyline is the
        // skyline toward that corner; for the top-right it is the maxima.
        let ds = Dataset::from_coords([(0, 0), (10, 10)]).unwrap();
        let d = build(&ds);
        let top_right = (d.grid().mx(), d.grid().my());
        assert_eq!(d.result(top_right), &[PointId(1)]);
        assert_eq!(d.result((0, 0)), &[PointId(0)]);
    }

    #[test]
    fn duplicate_points_always_tie() {
        let ds = Dataset::from_coords([(5, 5), (5, 5)]).unwrap();
        let d = build(&ds);
        for sc in d.grid().subcells() {
            assert_eq!(d.result(sc), &[PointId(0), PointId(1)], "subcell {sc:?}");
        }
    }

    #[test]
    fn midpoint_region_sees_both_of_two_points() {
        // Between two points (inside the bisector band in both axes), each
        // is closer in one dimension: both are dynamic skyline.
        let ds = Dataset::from_coords([(0, 0), (10, 10)]).unwrap();
        let d = build(&ds);
        // Query (4, 6): |0-4| = 4 < 6, |10-4| = 6; y mirrored.
        assert_eq!(
            d.query(crate::geometry::Point::new(4, 6)),
            &[PointId(0), PointId(1)]
        );
    }
}
