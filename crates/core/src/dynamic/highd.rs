//! High-dimensional dynamic skyline diagrams — Section V's algorithms
//! "can be extended to high dimensions similar to the skyline diagram of
//! quadrant/global skyline"; this module is that extension for the
//! baseline and subset engines.
//!
//! Per dimension, the subcell hyperplanes are the pairwise midpoints and
//! the point coordinates (`O(n²)` values, stored doubled for exactness),
//! giving `O(n^{2d})` hyper-subcells with constant dynamic skyline. The
//! subset engine draws its per-subcell candidates from the *d-dimensional
//! global skyline* of the enclosing hyper-cell, built by running a
//! high-dimensional quadrant engine on all `2^d` reflections — the same
//! subset relation as in the plane, dimension-free.
//!
//! Feasible scale: `d = 3` up to roughly a dozen points (the structure is
//! `O(n⁶)` cells); the value is completeness and cross-validation, not
//! throughput.

use std::collections::BTreeMap;

use crate::dominance::dominates_coords;
use crate::geometry::{Coord, DatasetD, PointD, PointId};
use crate::highd::HighDEngine;
use crate::result_set::{ResultId, ResultInterner};

/// The subcell hyper-grid for d-dimensional dynamic skylines.
#[derive(Clone, Debug)]
pub struct SubcellGridD {
    /// Per dimension: sorted distinct line positions (doubled coordinates).
    lines: Vec<Vec<Coord>>,
    widths: Vec<usize>,
}

impl SubcellGridD {
    /// Builds the grid: `O(d·n² log n)`.
    pub fn new(dataset: &DatasetD) -> Self {
        let dims = dataset.dims();
        let mut lines = Vec::with_capacity(dims);
        for k in 0..dims {
            let vals: Vec<Coord> = dataset.points().iter().map(|p| p.coord(k)).collect();
            let mut set = BTreeMap::new();
            for (i, &a) in vals.iter().enumerate() {
                for &b in &vals[i..] {
                    set.insert(a + b, ());
                }
            }
            lines.push(set.into_keys().collect());
        }
        let widths = lines.iter().map(|l: &Vec<Coord>| l.len() + 1).collect();
        SubcellGridD { lines, widths }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.lines.len()
    }

    /// Subcell count per dimension.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// Total hyper-subcells.
    pub fn subcell_count(&self) -> usize {
        self.widths.iter().product()
    }

    /// Line positions of one dimension (doubled coordinates).
    pub fn lines(&self, dim: usize) -> &[Coord] {
        &self.lines[dim]
    }

    /// Interior sample of a subcell, in quadrupled coordinates.
    pub fn sample_x4(&self, subcell: &[u32]) -> PointD {
        PointD::new(
            (0..self.dims())
                .map(|k| crate::geometry::slab_sample_doubled(&self.lines[k], subcell[k]))
                .collect(),
        )
    }

    /// The subcell containing a query (original coordinates); on-line
    /// queries resolve to the greater side.
    pub fn subcell_of(&self, q: &PointD) -> Vec<u32> {
        (0..self.dims())
            .map(|k| self.lines[k].partition_point(|&v| v <= 2 * q.coord(k)) as u32)
            .collect()
    }

    fn linear_index(&self, subcell: &[u32]) -> usize {
        let mut idx = 0usize;
        let mut stride = 1usize;
        for (&c, &w) in subcell.iter().zip(&self.widths) {
            idx += c as usize * stride;
            stride *= w;
        }
        idx
    }
}

/// A d-dimensional dynamic skyline diagram.
#[derive(Clone, Debug)]
#[must_use]
pub struct SubcellDiagramD {
    grid: SubcellGridD,
    results: ResultInterner,
    cells: Vec<ResultId>,
}

impl SubcellDiagramD {
    /// The underlying grid.
    pub fn grid(&self) -> &SubcellGridD {
        &self.grid
    }

    /// The dynamic skyline of a subcell.
    pub fn result(&self, subcell: &[u32]) -> &[PointId] {
        self.results
            .get(self.cells[self.grid.linear_index(subcell)])
    }

    /// The dynamic skyline for an arbitrary query point (exact off subcell
    /// hyperplanes, greater-side convention on them).
    pub fn query(&self, q: &PointD) -> &[PointId] {
        self.result(&self.grid.subcell_of(q))
    }

    /// True iff two diagrams assign the same result everywhere.
    pub fn same_results(&self, other: &SubcellDiagramD) -> bool {
        self.grid.widths == other.grid.widths
            && (0..self.grid.dims()).all(|k| self.grid.lines(k) == other.grid.lines(k))
            && self
                .cells
                .iter()
                .zip(&other.cells)
                .all(|(&a, &b)| self.results.get(a) == other.results.get(b))
    }
}

/// Dynamic minima of `candidates` relative to a quadrupled-coordinate
/// sample.
fn dynamic_minima(
    dataset: &DatasetD,
    candidates: &[PointId],
    sample: &PointD,
    mapped: &mut Vec<Vec<Coord>>,
) -> Vec<PointId> {
    let dims = dataset.dims();
    mapped.clear();
    for &id in candidates {
        let p = dataset.point(id);
        mapped.push(
            (0..dims)
                .map(|k| (4 * p.coord(k) - sample.coord(k)).abs())
                .collect(),
        );
    }
    let mut out: Vec<PointId> = candidates
        .iter()
        .enumerate()
        .filter(|&(i, _)| {
            !mapped
                .iter()
                .any(|other| dominates_coords(other, &mapped[i]))
        })
        .map(|(_, &id)| id)
        .collect();
    out.sort_unstable();
    out
}

/// Baseline: one mapped-skyline computation per hyper-subcell.
pub fn build_baseline(dataset: &DatasetD) -> SubcellDiagramD {
    let grid = SubcellGridD::new(dataset);
    let all: Vec<PointId> = (0..dataset.len() as u32).map(PointId).collect();
    build_with_candidates(dataset, grid, |_| &all)
}

/// Subset: per-subcell candidates from the d-dimensional global skyline of
/// the enclosing hyper-cell (built once via [`crate::highd::global`]).
pub fn build_subset(dataset: &DatasetD) -> SubcellDiagramD {
    let grid = SubcellGridD::new(dataset);
    let dims = dataset.dims();
    let global = crate::highd::global::build(dataset, HighDEngine::DirectedSkylineGraph);

    let global_of = move |sample: &PointD| -> Vec<PointId> {
        // Locate the enclosing hyper-cell (sample is in quadrupled space,
        // cell lines in raw coordinates).
        let cell: Vec<u32> = (0..dims)
            .map(|k| {
                global
                    .grid()
                    .lines(k)
                    .partition_point(|&v| 4 * v < sample.coord(k)) as u32
            })
            .collect();
        global.result(&cell).to_vec()
    };

    build_with_candidates_owned(dataset, grid, global_of)
}

fn build_with_candidates<'a>(
    dataset: &DatasetD,
    grid: SubcellGridD,
    candidates_of: impl Fn(&PointD) -> &'a [PointId],
) -> SubcellDiagramD {
    build_with_candidates_owned(dataset, grid, move |s| candidates_of(s).to_vec())
}

fn build_with_candidates_owned(
    dataset: &DatasetD,
    grid: SubcellGridD,
    mut candidates_of: impl FnMut(&PointD) -> Vec<PointId>,
) -> SubcellDiagramD {
    let dims = grid.dims();
    let total = grid.subcell_count();
    let mut results = ResultInterner::new();
    let mut cells = Vec::with_capacity(total);
    let mut mapped = Vec::new();

    let mut subcell = vec![0u32; dims];
    for idx in 0..total {
        if idx > 0 {
            for (c, &w) in subcell.iter_mut().zip(grid.widths()) {
                *c += 1;
                if (*c as usize) < w {
                    break;
                }
                *c = 0;
            }
        }
        let sample = grid.sample_x4(&subcell);
        let candidates = candidates_of(&sample);
        let sky = dynamic_minima(dataset, &candidates, &sample, &mut mapped);
        cells.push(results.intern_sorted(sky));
    }

    SubcellDiagramD {
        grid,
        results,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::dominates_dynamic_d;

    fn lcg(n: usize, d: usize, domain: i64, seed: u64) -> DatasetD {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % domain as u64) as i64
        };
        DatasetD::from_rows((0..n).map(|_| (0..d).map(|_| next()).collect::<Vec<_>>())).unwrap()
    }

    fn naive_dynamic(dataset: &DatasetD, q: &PointD) -> Vec<PointId> {
        let mut out: Vec<PointId> = dataset
            .iter()
            .filter(|(_, p)| !dataset.iter().any(|(_, o)| dominates_dynamic_d(o, p, q)))
            .map(|(id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn baseline_matches_naive_at_samples_3d() {
        let ds = lcg(5, 3, 20, 1);
        let d = build_baseline(&ds);
        let scaled = DatasetD::new(
            ds.points()
                .iter()
                .map(|p| PointD::new(p.coords().iter().map(|&c| 4 * c).collect()))
                .collect(),
        )
        .unwrap();
        // Check a sample of subcells (the full grid is large even at n=5).
        let total = d.grid().subcell_count();
        let mut idx = 0usize;
        while idx < total {
            let mut subcell = vec![0u32; 3];
            let mut rem = idx;
            for (c, &w) in subcell.iter_mut().zip(d.grid().widths()) {
                *c = (rem % w) as u32;
                rem /= w;
            }
            let sample = d.grid().sample_x4(&subcell);
            assert_eq!(
                d.result(&subcell),
                naive_dynamic(&scaled, &sample).as_slice(),
                "subcell {subcell:?}"
            );
            idx += 37; // stride through the grid
        }
    }

    #[test]
    fn subset_matches_baseline_3d() {
        for seed in 0..3 {
            let ds = lcg(5, 3, 15, seed);
            assert!(
                build_subset(&ds).same_results(&build_baseline(&ds)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn subset_matches_baseline_3d_with_ties() {
        let ds = lcg(5, 3, 3, 9);
        assert!(build_subset(&ds).same_results(&build_baseline(&ds)));
    }

    #[test]
    fn d2_matches_planar_dynamic_diagram() {
        let planar = crate::test_data::lcg_dataset(6, 20, 3);
        let lifted = planar.to_dataset_d();
        let hd = build_baseline(&lifted);
        let flat = crate::dynamic::DynamicEngine::Baseline.build(&planar);
        for sc in flat.grid().subcells() {
            assert_eq!(hd.result(&[sc.0, sc.1]), flat.result(sc), "{sc:?}");
        }
    }

    #[test]
    fn query_uses_greater_side_convention() {
        let ds = lcg(4, 3, 10, 5);
        let d = build_baseline(&ds);
        let q = PointD::new(vec![3, 3, 3]);
        let sc = d.grid().subcell_of(&q);
        assert_eq!(d.query(&q), d.result(&sc));
    }
}
