//! Skyline-diagram construction for **dynamic** skyline queries
//! (Section V of the paper): three engines with identical output, over the
//! skyline-subcell grid of [`SubcellGrid`].
//!
//! | Engine | Paper § | Complexity | Notes |
//! |---|---|---|---|
//! | [`baseline`] | V-A | `O(n⁵)` | per-subcell map + skyline |
//! | [`subset`] | V-B | `O(n⁵)` worst, ~`O(n⁴ log n)` | candidates from the global diagram |
//! | [`scanning`] | V-C | ~`O(n⁴·k)` | incremental across bisector lines |

pub mod baseline;
pub mod highd;
pub mod scanning;
mod subcell;
pub mod subset;

pub use subcell::{SubcellGrid, SubcellIndex};

use crate::geometry::{Coord, Dataset, Point, PointId};
use crate::quadrant::QuadrantEngine;
use crate::result_set::{ResultId, ResultInterner};
use crate::skyline::sort_sweep::minima_xy;

/// A dynamic skyline diagram at subcell granularity.
#[derive(Clone, Debug)]
#[must_use]
pub struct SubcellDiagram {
    grid: SubcellGrid,
    results: ResultInterner,
    /// Row-major, `grid.subcell_count()` entries.
    cells: Vec<ResultId>,
}

impl SubcellDiagram {
    /// Heap bytes owned by the diagram: subcell grid, result arena, and
    /// the per-subcell result-id table.
    pub fn heap_bytes(&self) -> usize {
        self.grid.heap_bytes()
            + self.results.heap_bytes()
            + crate::telemetry::mem::vec_heap_bytes(&self.cells)
    }

    /// Reassembles a diagram from raw parts (deserialization path).
    pub(crate) fn from_lines(
        xlines: Vec<Coord>,
        ylines: Vec<Coord>,
        results: ResultInterner,
        cells: Vec<ResultId>,
    ) -> Self {
        SubcellDiagram::from_parts(SubcellGrid::from_lines(xlines, ylines), results, cells)
    }

    pub(crate) fn from_parts(
        grid: SubcellGrid,
        results: ResultInterner,
        cells: Vec<ResultId>,
    ) -> Self {
        debug_assert_eq!(cells.len(), grid.subcell_count());
        SubcellDiagram {
            grid,
            results,
            cells,
        }
    }

    /// The underlying subcell grid.
    #[inline]
    pub fn grid(&self) -> &SubcellGrid {
        &self.grid
    }

    /// The interned result of a subcell.
    #[inline]
    pub fn result_id(&self, sc: SubcellIndex) -> ResultId {
        self.cells[self.grid.linear_index(sc)]
    }

    /// The dynamic skyline of a subcell, as sorted point ids.
    #[inline]
    pub fn result(&self, sc: SubcellIndex) -> &[PointId] {
        self.results.get(self.result_id(sc))
    }

    /// The dynamic skyline for an arbitrary query point (`O(log n)` point
    /// location). Exact for queries strictly inside a subcell; queries
    /// exactly on a subcell line receive the greater-side subcell's result,
    /// which may differ from the on-line answer where bisector comparisons
    /// tie (use [`crate::query::dynamic_skyline`] when that matters).
    pub fn query(&self, q: Point) -> &[PointId] {
        self.result(self.grid.subcell_of(q))
    }

    /// The cache key of a query point: the linear (row-major) index of the
    /// subcell containing `q`. Every query point with the same key receives
    /// the identical diagram lookup, so a result cache keyed on
    /// `subcell_key` is exact for diagram answers (see `skyline_serve`).
    /// Keys are dense in `0..grid().subcell_count()`.
    #[inline]
    pub fn subcell_key(&self, q: Point) -> usize {
        self.grid.linear_index(self.grid.subcell_of(q))
    }

    /// The interner holding the distinct results.
    #[inline]
    pub fn results(&self) -> &ResultInterner {
        &self.results
    }

    /// Row-major result ids of all subcells.
    #[inline]
    pub fn cell_results(&self) -> &[ResultId] {
        &self.cells
    }

    /// True iff two diagrams assign the same result to every subcell.
    pub fn same_results(&self, other: &SubcellDiagram) -> bool {
        self.grid.x_lines() == other.grid.x_lines()
            && self.grid.y_lines() == other.grid.y_lines()
            && self
                .cells
                .iter()
                .zip(&other.cells)
                .all(|(&a, &b)| self.results.get(a) == other.results.get(b))
    }

    /// Number of distinct results across subcells.
    pub fn distinct_results(&self) -> usize {
        let set: std::collections::HashSet<ResultId> = self.cells.iter().copied().collect();
        set.len()
    }
}

/// Selector for the dynamic-diagram engines.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DynamicEngine {
    /// Per-subcell map + skyline (paper Algorithm 5).
    Baseline,
    /// Global-skyline candidate subset (paper Algorithm 6).
    Subset,
    /// Incremental bisector scanning (paper Algorithm 7). The default.
    #[default]
    Scanning,
}

impl DynamicEngine {
    /// All engines, for exhaustive cross-validation and benches.
    pub const ALL: [DynamicEngine; 3] = [
        DynamicEngine::Baseline,
        DynamicEngine::Subset,
        DynamicEngine::Scanning,
    ];

    /// Short stable name, used in bench ids and experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            DynamicEngine::Baseline => "baseline",
            DynamicEngine::Subset => "subset",
            DynamicEngine::Scanning => "scanning",
        }
    }

    /// Builds the dynamic skyline diagram with this engine. The subset
    /// engine internally builds a global diagram with
    /// [`QuadrantEngine::Sweeping`].
    ///
    /// ```
    /// use skyline_core::dynamic::DynamicEngine;
    /// use skyline_core::geometry::{Dataset, Point, PointId};
    ///
    /// let ds = Dataset::from_coords([(0, 0), (10, 10)])?;
    /// let diagram = DynamicEngine::Scanning.build(&ds);
    /// // Next to the first point, only it is in the dynamic skyline.
    /// assert_eq!(diagram.query(Point::new(1, 1)), &[PointId(0)]);
    /// // Between the two (closer in one axis each), both are.
    /// assert_eq!(diagram.query(Point::new(4, 6)).len(), 2);
    /// # Ok::<(), skyline_core::Error>(())
    /// ```
    pub fn build(self, dataset: &Dataset) -> SubcellDiagram {
        self.build_with(dataset, &crate::parallel::ParallelConfig::from_env())
    }

    /// Builds the dynamic skyline diagram with this engine and an explicit
    /// parallel configuration: subcell rows are independent in all three
    /// engines and run as row bands.
    pub fn build_with(
        self,
        dataset: &Dataset,
        cfg: &crate::parallel::ParallelConfig,
    ) -> SubcellDiagram {
        // Per-engine span names; literal counter key (see `counter!` docs on
        // per-site caching).
        let span_name = match self {
            DynamicEngine::Baseline => "dynamic.build.baseline",
            DynamicEngine::Subset => "dynamic.build.subset",
            DynamicEngine::Scanning => "dynamic.build.scanning",
        };
        let _build = crate::span!(span_name, dataset.len() as u64);
        let _mem = crate::telemetry::mem::phase(crate::telemetry::mem::MemPhase::DynamicBuild);
        crate::counter!("dynamic.builds").add(1);
        let diagram = match self {
            DynamicEngine::Baseline => baseline::build_with(dataset, cfg),
            DynamicEngine::Subset => subset::build_with(dataset, QuadrantEngine::Sweeping, cfg),
            DynamicEngine::Scanning => scanning::build_with(dataset, cfg),
        };
        // Debug builds spot-check the output against the from-scratch oracle
        // (see `crate::invariants`); release builds pay nothing.
        #[cfg(debug_assertions)]
        if let Err(violation) = crate::invariants::validate_subcell_diagram(
            dataset,
            &diagram,
            crate::invariants::DEBUG_SAMPLE_BUDGET,
        ) {
            debug_assert!(false, "{} engine: {violation}", self.name());
        }
        diagram
    }
}

/// Dynamic skyline of `candidates` relative to a subcell sample in
/// quadrupled coordinates: minima of `(|4·p.x − s.x|, |4·p.y − s.y|)`.
/// The shared kernel of all three engines.
pub(crate) fn dynamic_minima_at_sample(
    dataset: &Dataset,
    candidates: impl IntoIterator<Item = PointId>,
    sample_x4: Point,
    scratch: &mut Vec<(Coord, Coord, PointId)>,
) -> Vec<PointId> {
    scratch.clear();
    scratch.extend(candidates.into_iter().map(|id| {
        let p = dataset.point(id);
        (
            (4 * p.x - sample_x4.x).abs(),
            (4 * p.y - sample_x4.y).abs(),
            id,
        )
    }));
    minima_xy(scratch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            DynamicEngine::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), DynamicEngine::ALL.len());
    }

    #[test]
    fn default_engine_is_scanning() {
        assert_eq!(DynamicEngine::default(), DynamicEngine::Scanning);
    }

    #[test]
    fn all_engines_agree_on_small_data() {
        let ds = crate::test_data::lcg_dataset(12, 30, 5);
        let reference = DynamicEngine::Baseline.build(&ds);
        for engine in DynamicEngine::ALL {
            assert!(
                engine.build(&ds).same_results(&reference),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn paper_dynamic_query_boundary_convention() {
        // q = (10, 80) lies exactly on bisector lines of the hotel
        // reconstruction (e.g. the x-bisector of p4 and p5 and the
        // y-bisector of p6 and p10), so the diagram resolves it to the
        // greater-side subcell: the lookup must equal the from-scratch
        // dynamic skyline of a query nudged by +ε in both axes, computed
        // exactly in quadrupled coordinates (4q + 1).
        let ds = crate::test_data::hotel_dataset();
        let d = DynamicEngine::Scanning.build(&ds);
        let scaled = Dataset::from_coords(ds.points().iter().map(|p| (4 * p.x, 4 * p.y))).unwrap();
        let nudged = crate::query::dynamic_skyline(&scaled, Point::new(41, 321));
        assert_eq!(d.query(Point::new(10, 80)), nudged.as_slice());
        // The exact on-boundary answer is the paper's {p6, p11}, available
        // through the from-scratch query.
        assert_eq!(
            crate::query::dynamic_skyline(&ds, Point::new(10, 80)),
            vec![PointId(5), PointId(10)]
        );
    }
}
