//! The scanning dynamic-diagram algorithm (paper Algorithm 7).
//!
//! Crossing one subcell line can only flip dominance comparisons between
//! points whose pair-bisector (or own grid line) lies on that line — the
//! line's *contributors* recorded by
//! [`SubcellGrid`]. Hence the new subcell's
//! dynamic skyline is the dynamic skyline of
//! `previous result ∪ contributors`, evaluated at the new subcell:
//!
//! - a non-contributor keeps its dominator set, so it can only be in the new
//!   skyline if it was in the old one;
//! - a candidate dominated in the full point set is dominated by a
//!   candidate: its dominator is either an old skyline point, or dominated
//!   by one whose dominance carries over (the pair not being contributors
//!   means their comparison did not flip) and transfers by transitivity.
//!
//! The first subcell is computed from scratch; the first column is advanced
//! upward, and every row is then swept left to right. Per-step cost is the
//! candidate-set size, `O(result + contributors)` — the `O(n⁴ log n)`-class
//! bound of the paper against the baseline's `O(n⁵)`.

use crate::dynamic::{dynamic_minima_at_sample, SubcellDiagram, SubcellGrid};
use crate::geometry::{Dataset, PointId};
use crate::parallel::{self, ParallelConfig};
use crate::result_set::{ResultInterner, ResultRuns};

/// Builds the dynamic skyline diagram with the incremental scan, using the
/// process-wide parallel configuration (`SKYLINE_THREADS`).
pub fn build(dataset: &Dataset) -> SubcellDiagram {
    build_with(dataset, &ParallelConfig::from_env())
}

/// Builds the scanning dynamic diagram with an explicit parallel
/// configuration.
///
/// The incremental chain only couples rows through their column-0 seeds,
/// so the parallel decomposition advances the cheap column-0 chain upward
/// sequentially and then sweeps each row rightward independently. Workers
/// return run-collapsed raw results; the caller interns them in row-major
/// order, so every thread count produces an identical diagram.
pub fn build_with(dataset: &Dataset, cfg: &ParallelConfig) -> SubcellDiagram {
    let grid = SubcellGrid::new_with(dataset, cfg);
    let width = grid.mx() as usize + 1;
    let height = grid.my() as usize + 1;
    let mut scratch = Vec::with_capacity(dataset.len());
    let mut candidates: Vec<PointId> = Vec::with_capacity(dataset.len());

    // Column-0 chain: seed subcell (0, 0) from scratch, then advance upward
    // across each horizontal line. One state per row.
    let seed_span = crate::span!("dynamic.scanning.seeds", height as u64);
    let mut seeds: Vec<Vec<PointId>> = Vec::with_capacity(height);
    seeds.push(dynamic_minima_at_sample(
        dataset,
        dataset.ids(),
        grid.sample_x4((0, 0)),
        &mut scratch,
    ));
    for j in 1..height as u32 {
        candidates.clear();
        candidates.extend_from_slice(&seeds[j as usize - 1]);
        candidates.extend_from_slice(grid.y_contributors(j - 1));
        candidates.sort_unstable();
        candidates.dedup();
        let seed = dynamic_minima_at_sample(
            dataset,
            candidates.iter().copied(),
            grid.sample_x4((0, j)),
            &mut scratch,
        );
        seeds.push(seed);
    }

    drop(seed_span);

    // Sweep every row rightward across each vertical line, independently.
    let _bands = crate::span!("dynamic.scanning.bands", height as u64);
    crate::counter!("dynamic.subcell_rows").add(height as u64);
    let rows: Vec<ResultRuns> = parallel::map_indexed(cfg, height, |j| {
        let mut scratch = Vec::with_capacity(dataset.len());
        let mut candidates: Vec<PointId> = Vec::with_capacity(dataset.len());
        let mut runs = ResultRuns::new();
        let mut row = seeds[j].clone();
        runs.push(&row);
        for i in 1..width as u32 {
            candidates.clear();
            candidates.extend_from_slice(&row);
            candidates.extend_from_slice(grid.x_contributors(i - 1));
            candidates.sort_unstable();
            candidates.dedup();
            row = dynamic_minima_at_sample(
                dataset,
                candidates.iter().copied(),
                grid.sample_x4((i, j as u32)),
                &mut scratch,
            );
            runs.push(&row);
        }
        runs
    });

    let mut results = ResultInterner::new();
    let mut cells = Vec::with_capacity(width * height);
    for row in &rows {
        row.intern_into(&mut results, &mut cells);
    }
    SubcellDiagram::from_parts(grid, results, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::baseline;

    #[test]
    fn matches_baseline_on_random_data() {
        for seed in 0..4 {
            let ds = crate::test_data::lcg_dataset(10, 60, seed);
            assert!(
                build(&ds).same_results(&baseline::build(&ds)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_baseline_under_heavy_ties() {
        for seed in 0..4 {
            let ds = crate::test_data::lcg_dataset(10, 5, 90 + seed);
            assert!(
                build(&ds).same_results(&baseline::build(&ds)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_baseline_on_hotel_example() {
        let ds = crate::test_data::hotel_dataset();
        assert!(build(&ds).same_results(&baseline::build(&ds)));
    }

    #[test]
    fn duplicates_and_collinear_points() {
        let ds = Dataset::from_coords([(2, 2), (2, 2), (2, 8), (6, 2)]).unwrap();
        assert!(build(&ds).same_results(&baseline::build(&ds)));
    }

    #[test]
    fn single_point_has_one_region() {
        let ds = Dataset::from_coords([(7, 7)]).unwrap();
        let d = build(&ds);
        // One point: every subcell's dynamic skyline is that point.
        for sc in d.grid().subcells() {
            assert_eq!(d.result(sc), &[PointId(0)]);
        }
    }
}
