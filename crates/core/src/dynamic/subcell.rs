//! The skyline-subcell grid for dynamic skylines (Definition 7).
//!
//! For dynamic skylines the grid lines through each point are not enough:
//! the dominance between two points `a`, `b` relative to a query `q` flips
//! when `q` crosses the perpendicular bisector of `a` and `b` in either
//! dimension. Drawing the per-point grid lines *and* the per-pair bisector
//! lines yields `O(n²)` lines per dimension and `O(n⁴)` *skyline subcells*
//! with constant dynamic skyline — `O(min(s², n⁴))` under a bounded domain,
//! because coincident bisectors collapse.
//!
//! # Exact arithmetic
//!
//! All line positions are stored in **doubled** coordinates so the midpoint
//! `(a.x + b.x) / 2` is the exact integer `a.x + b.x`; a point's own line is
//! `2·p.x`. Interior sample points are taken in **quadrupled** coordinates
//! (`2·line ± 1` or `line_left + line_right`), which is why dataset
//! construction bounds raw coordinates at [`MAX_COORD`](crate::geometry::MAX_COORD).

use std::collections::BTreeMap;

use crate::geometry::{slab_sample_doubled, Coord, Dataset, Point, PointId};
use crate::parallel::{self, ParallelConfig};

/// Index of a skyline subcell: `(x-slab, y-slab)`.
pub type SubcellIndex = (u32, u32);

/// The grid of skyline subcells induced by a dataset.
#[derive(Clone, Debug)]
pub struct SubcellGrid {
    /// Sorted distinct vertical line positions, in doubled coordinates:
    /// `{2·p.x} ∪ {a.x + b.x}`.
    xlines: Vec<Coord>,
    /// Sorted distinct horizontal line positions, in doubled coordinates.
    ylines: Vec<Coord>,
    /// Per vertical line: the points whose pairwise x-relation can flip
    /// there (both members of every pair whose bisector is the line, plus
    /// any point whose own doubled coordinate is the line). Sorted ids.
    x_contributors: Vec<Vec<PointId>>,
    /// Per horizontal line: same, for y.
    y_contributors: Vec<Vec<PointId>>,
}

fn build_axis(
    values: impl Iterator<Item = (Coord, PointId)>,
    cfg: &ParallelConfig,
) -> (Vec<Coord>, Vec<Vec<PointId>>) {
    let pts: Vec<(Coord, PointId)> = values.collect();
    // The O(n²) bisector pair loop, banded over the first pair member. Each
    // band collects its own line → contributors map; merging is order-free
    // because the final per-line lists are sorted and deduped, so the result
    // is identical for every thread count.
    let bands: Vec<BTreeMap<Coord, Vec<PointId>>> = parallel::map_indexed(cfg, pts.len(), |i| {
        let (a, ida) = pts[i];
        let mut local: BTreeMap<Coord, Vec<PointId>> = BTreeMap::new();
        for &(b, idb) in &pts[i..] {
            // a == b covers the point's own grid line 2·p.x.
            let entry = local.entry(a + b).or_default();
            entry.push(ida);
            entry.push(idb);
        }
        local
    });
    let mut lines: BTreeMap<Coord, Vec<PointId>> = BTreeMap::new();
    for band in bands {
        for (pos, mut ids) in band {
            lines.entry(pos).or_default().append(&mut ids);
        }
    }
    let mut positions = Vec::with_capacity(lines.len());
    let mut contributors = Vec::with_capacity(lines.len());
    for (pos, mut ids) in lines {
        ids.sort_unstable();
        ids.dedup();
        positions.push(pos);
        contributors.push(ids);
    }
    (positions, contributors)
}

impl SubcellGrid {
    /// Heap bytes owned by the grid: the line tables plus the contributor
    /// lists (spine vectors and every per-line buffer).
    pub fn heap_bytes(&self) -> usize {
        use crate::telemetry::mem::vec_heap_bytes;
        vec_heap_bytes(&self.xlines)
            + vec_heap_bytes(&self.ylines)
            + vec_heap_bytes(&self.x_contributors)
            + vec_heap_bytes(&self.y_contributors)
            + self
                .x_contributors
                .iter()
                .map(vec_heap_bytes)
                .sum::<usize>()
            + self
                .y_contributors
                .iter()
                .map(vec_heap_bytes)
                .sum::<usize>()
    }

    /// Reassembles a grid from raw line positions (deserialization path).
    /// Contributor lists are left empty: a decoded grid supports point
    /// location and queries, but cannot seed the incremental scanning
    /// engine (which is a construction-time concern only).
    pub(crate) fn from_lines(xlines: Vec<Coord>, ylines: Vec<Coord>) -> Self {
        let x_contributors = vec![Vec::new(); xlines.len()];
        let y_contributors = vec![Vec::new(); ylines.len()];
        SubcellGrid {
            xlines,
            ylines,
            x_contributors,
            y_contributors,
        }
    }

    /// Builds the subcell grid for a dataset: `O(n²)` line positions per
    /// dimension, `O(n² log n)` construction, using the process-wide
    /// parallel configuration (`SKYLINE_THREADS`).
    pub fn new(dataset: &Dataset) -> Self {
        SubcellGrid::new_with(dataset, &ParallelConfig::from_env())
    }

    /// Builds the subcell grid with an explicit parallel configuration: the
    /// bisector pair loop is banded across workers, with identical output
    /// at every thread count.
    pub fn new_with(dataset: &Dataset, cfg: &ParallelConfig) -> Self {
        let _grid = crate::span!("dynamic.subcell_grid", dataset.len() as u64);
        let (xlines, x_contributors) = build_axis(dataset.iter().map(|(id, p)| (p.x, id)), cfg);
        let (ylines, y_contributors) = build_axis(dataset.iter().map(|(id, p)| (p.y, id)), cfg);
        SubcellGrid {
            xlines,
            ylines,
            x_contributors,
            y_contributors,
        }
    }

    /// Number of distinct vertical lines.
    #[inline]
    pub fn mx(&self) -> u32 {
        self.xlines.len() as u32
    }

    /// Number of distinct horizontal lines.
    #[inline]
    pub fn my(&self) -> u32 {
        self.ylines.len() as u32
    }

    /// Number of subcells: `(mx + 1) * (my + 1)`.
    #[inline]
    pub fn subcell_count(&self) -> usize {
        (self.xlines.len() + 1) * (self.ylines.len() + 1)
    }

    /// The vertical line positions (doubled coordinates).
    #[inline]
    pub fn x_lines(&self) -> &[Coord] {
        &self.xlines
    }

    /// The horizontal line positions (doubled coordinates).
    #[inline]
    pub fn y_lines(&self) -> &[Coord] {
        &self.ylines
    }

    /// Contributors of vertical line `i` (see struct docs).
    #[inline]
    pub fn x_contributors(&self, i: u32) -> &[PointId] {
        &self.x_contributors[i as usize]
    }

    /// Contributors of horizontal line `j`.
    #[inline]
    pub fn y_contributors(&self, j: u32) -> &[PointId] {
        &self.y_contributors[j as usize]
    }

    /// The subcell containing a query point (original coordinates). Queries
    /// exactly on a line are assigned to the greater side, mirroring
    /// [`CellGrid::cell_of`](crate::geometry::CellGrid::cell_of).
    pub fn subcell_of(&self, q: Point) -> SubcellIndex {
        let i = self.xlines.partition_point(|&x| x <= 2 * q.x) as u32;
        let j = self.ylines.partition_point(|&y| y <= 2 * q.y) as u32;
        (i, j)
    }

    /// An interior sample of a subcell, in **quadrupled** coordinates.
    /// Comparisons against data points must quadruple them too.
    pub fn sample_x4(&self, (i, j): SubcellIndex) -> Point {
        Point::new(
            slab_sample_doubled(&self.xlines, i),
            slab_sample_doubled(&self.ylines, j),
        )
    }

    /// Row-major linear index of a subcell.
    #[inline]
    pub fn linear_index(&self, (i, j): SubcellIndex) -> usize {
        j as usize * (self.xlines.len() + 1) + i as usize
    }

    /// Inverse of [`SubcellGrid::linear_index`].
    #[inline]
    pub fn subcell_from_linear(&self, idx: usize) -> SubcellIndex {
        let width = self.xlines.len() + 1;
        ((idx % width) as u32, (idx / width) as u32)
    }

    /// Iterates over all subcell indices in row-major order.
    pub fn subcells(&self) -> impl Iterator<Item = SubcellIndex> + '_ {
        let width = self.xlines.len() as u32 + 1;
        let height = self.ylines.len() as u32 + 1;
        (0..height).flat_map(move |j| (0..width).map(move |i| (i, j)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_line_counts() {
        // Two points in general position: lines at 2a, a+b, 2b per axis.
        let ds = Dataset::from_coords([(0, 0), (4, 10)]).unwrap();
        let g = SubcellGrid::new(&ds);
        assert_eq!(g.x_lines(), &[0, 4, 8]);
        assert_eq!(g.y_lines(), &[0, 10, 20]);
        assert_eq!(g.subcell_count(), 16);
        assert_eq!(g.mx(), 3);
        assert_eq!(g.my(), 3);
    }

    #[test]
    fn coincident_bisectors_collapse() {
        // Points at x = 0, 2, 4: bisector of (0, 4) coincides with the grid
        // line of 2 (doubled value 4): contributors merge.
        let ds = Dataset::from_coords([(0, 0), (2, 5), (4, 9)]).unwrap();
        let g = SubcellGrid::new(&ds);
        assert_eq!(g.x_lines(), &[0, 2, 4, 6, 8]);
        // Line at doubled 4: own line of p1 (2*2) and bisector of (p0, p2).
        let idx = g.x_lines().iter().position(|&v| v == 4).unwrap() as u32;
        assert_eq!(g.x_contributors(idx), &[PointId(0), PointId(1), PointId(2)]);
    }

    #[test]
    fn contributor_lines_cover_all_pairs() {
        let ds = Dataset::from_coords([(1, 7), (5, 3), (9, 11)]).unwrap();
        let g = SubcellGrid::new(&ds);
        // Every unordered pair's bisector must appear with both members.
        for (a, pa) in ds.iter() {
            for (b, pb) in ds.iter() {
                let pos = pa.x + pb.x;
                let i = g.x_lines().binary_search(&pos).expect("line exists") as u32;
                assert!(g.x_contributors(i).contains(&a));
                assert!(g.x_contributors(i).contains(&b));
            }
        }
    }

    #[test]
    fn subcell_of_boundary_convention() {
        let ds = Dataset::from_coords([(0, 0), (4, 4)]).unwrap();
        let g = SubcellGrid::new(&ds);
        // Lines at doubled {0, 4, 8} = original {0, 2, 4}.
        assert_eq!(g.subcell_of(Point::new(-1, -1)), (0, 0));
        assert_eq!(g.subcell_of(Point::new(0, 0)), (1, 1));
        assert_eq!(g.subcell_of(Point::new(1, 3)), (1, 2));
        assert_eq!(g.subcell_of(Point::new(2, 2)), (2, 2));
        assert_eq!(g.subcell_of(Point::new(5, 5)), (3, 3));
    }

    #[test]
    fn samples_are_strictly_interior() {
        let ds = Dataset::from_coords([(0, 3), (7, 5), (2, 9)]).unwrap();
        let g = SubcellGrid::new(&ds);
        for sc in g.subcells() {
            let s = g.sample_x4(sc);
            let i = g.x_lines().partition_point(|&x| 2 * x < s.x) as u32;
            let j = g.y_lines().partition_point(|&y| 2 * y < s.y) as u32;
            assert_eq!((i, j), sc, "sample {s} of subcell {sc:?}");
            // Never exactly on a line.
            assert!(g.x_lines().iter().all(|&x| 2 * x != s.x));
            assert!(g.y_lines().iter().all(|&y| 2 * y != s.y));
        }
    }

    #[test]
    fn thread_counts_build_identical_grids() {
        let ds = crate::test_data::lcg_dataset(14, 20, 31);
        let reference = SubcellGrid::new_with(&ds, &ParallelConfig::sequential());
        for threads in [1, 2, 3, 8] {
            let g = SubcellGrid::new_with(&ds, &ParallelConfig::with_threads(threads));
            assert_eq!(g.x_lines(), reference.x_lines(), "threads = {threads}");
            assert_eq!(g.y_lines(), reference.y_lines(), "threads = {threads}");
            for i in 0..g.mx() {
                assert_eq!(g.x_contributors(i), reference.x_contributors(i));
            }
            for j in 0..g.my() {
                assert_eq!(g.y_contributors(j), reference.y_contributors(j));
            }
        }
    }

    #[test]
    fn linear_roundtrip() {
        let ds = Dataset::from_coords([(0, 0), (3, 8)]).unwrap();
        let g = SubcellGrid::new(&ds);
        for (k, sc) in g.subcells().enumerate() {
            assert_eq!(g.linear_index(sc), k);
            assert_eq!(g.subcell_from_linear(k), sc);
        }
    }
}
