//! The subset dynamic-diagram algorithm (paper Algorithm 6).
//!
//! The dynamic skyline of any query is a subset of its global skyline
//! (mapped points can only gain dominators across quadrants). Every subcell
//! lies inside exactly one skyline cell — the cell grid's lines are a subset
//! of the subcell grid's — so the global diagram's per-cell result is a
//! sound candidate set: instead of scanning all `n` points per subcell,
//! only the `O(log n)`-on-average global skyline is scanned. Worst case
//! stays `O(n⁵)`, practice improves by one to two orders of magnitude
//! (experiment E3).

use crate::dynamic::{dynamic_minima_at_sample, SubcellDiagram, SubcellGrid};
use crate::geometry::{CellGrid, Dataset};
use crate::parallel::{self, ParallelConfig};
use crate::quadrant::QuadrantEngine;
use crate::result_set::{ResultInterner, ResultRuns};

/// Builds the dynamic skyline diagram from global-skyline candidate sets.
/// `engine` selects the quadrant engine used for the global diagram. Uses
/// the process-wide parallel configuration (`SKYLINE_THREADS`).
pub fn build(dataset: &Dataset, engine: QuadrantEngine) -> SubcellDiagram {
    build_with(dataset, engine, &ParallelConfig::from_env())
}

/// Builds the subset dynamic diagram with an explicit parallel
/// configuration: the global diagram build, the subcell grid's bisector
/// loop, and the per-subcell candidate scans all parallelize; output is
/// identical at every thread count.
pub fn build_with(
    dataset: &Dataset,
    engine: QuadrantEngine,
    cfg: &ParallelConfig,
) -> SubcellDiagram {
    let global = crate::global::build_with(dataset, engine, cfg);
    build_with_global_cfg(dataset, &global, cfg)
}

/// Variant taking a prebuilt global diagram (used by the E8c ablation to
/// separate the global-diagram cost from the per-subcell cost).
pub fn build_with_global(
    dataset: &Dataset,
    global: &crate::diagram::CellDiagram,
) -> SubcellDiagram {
    build_with_global_cfg(dataset, global, &ParallelConfig::from_env())
}

/// The per-subcell candidate scans, row-banded: every subcell row is
/// independent, so workers return run-collapsed raw results and the caller
/// interns them in row-major order.
pub fn build_with_global_cfg(
    dataset: &Dataset,
    global: &crate::diagram::CellDiagram,
    cfg: &ParallelConfig,
) -> SubcellDiagram {
    let grid = SubcellGrid::new_with(dataset, cfg);
    let cell_grid: &CellGrid = global.grid();
    let width = grid.mx() as usize + 1;
    let height = grid.my() as usize + 1;

    // Map each subcell slab to its containing cell slab once per axis:
    // subcell sample coordinates are in quadrupled space, cell lines in raw.
    let cell_x_of: Vec<u32> = (0..=grid.mx())
        .map(|i| {
            let s = grid.sample_x4((i, 0)).x;
            cell_grid.x_lines().partition_point(|&x| 4 * x < s) as u32
        })
        .collect();
    let cell_y_of: Vec<u32> = (0..=grid.my())
        .map(|j| {
            let s = grid.sample_x4((0, j)).y;
            cell_grid.y_lines().partition_point(|&y| 4 * y < s) as u32
        })
        .collect();

    let _bands = crate::span!("dynamic.subset.bands", height as u64);
    crate::counter!("dynamic.subcell_rows").add(height as u64);
    let rows: Vec<ResultRuns> = parallel::map_indexed(cfg, height, |j| {
        let mut scratch = Vec::with_capacity(dataset.len());
        let mut runs = ResultRuns::new();
        for i in 0..width as u32 {
            let sample = grid.sample_x4((i, j as u32));
            let candidates = global.result((cell_x_of[i as usize], cell_y_of[j]));
            let sky =
                dynamic_minima_at_sample(dataset, candidates.iter().copied(), sample, &mut scratch);
            runs.push(&sky);
        }
        runs
    });

    let mut results = ResultInterner::new();
    let mut cells = Vec::with_capacity(width * height);
    for row in &rows {
        row.intern_into(&mut results, &mut cells);
    }
    SubcellDiagram::from_parts(grid, results, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::baseline;

    #[test]
    fn matches_baseline_on_random_data() {
        for seed in 0..4 {
            let ds = crate::test_data::lcg_dataset(10, 60, seed);
            assert!(
                build(&ds, QuadrantEngine::Baseline).same_results(&baseline::build(&ds)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_baseline_under_heavy_ties() {
        for seed in 0..4 {
            let ds = crate::test_data::lcg_dataset(10, 5, 50 + seed);
            assert!(
                build(&ds, QuadrantEngine::Baseline).same_results(&baseline::build(&ds)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_baseline_on_hotel_example() {
        let ds = crate::test_data::hotel_dataset();
        assert!(build(&ds, QuadrantEngine::Sweeping).same_results(&baseline::build(&ds)));
    }

    #[test]
    fn quadrant_engine_choice_does_not_matter() {
        let ds = crate::test_data::lcg_dataset(9, 25, 77);
        let reference = build(&ds, QuadrantEngine::Baseline);
        for engine in QuadrantEngine::ALL {
            assert!(
                build(&ds, engine).same_results(&reference),
                "{}",
                engine.name()
            );
        }
    }
}
