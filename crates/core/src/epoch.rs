//! Epoch-swapped snapshot publication: the lock-free hand-off between one
//! writer building immutable values and any number of concurrent readers.
//!
//! The serving layer (`skyline_serve`) publishes each rebuilt diagram
//! snapshot as a new *epoch*. Readers must never block on the writer, and a
//! batch of lookups must always be answered from one consistent epoch, so
//! the hand-off is an append-only chain of nodes linked by write-once
//! next-pointers (`NextCell`: a `OnceLock` slot plus an explicit
//! release/acquire `ready` flag, both from [`crate::sync`]):
//!
//! ```text
//! epoch 0 ──next──▶ epoch 1 ──next──▶ epoch 2   ◀── publisher tail
//!    ▲                  ▲
//!    reader A           reader B
//! ```
//!
//! * The single [`EpochPublisher`] holds the tail and appends by setting the
//!   tail's `next` cell exactly once (`&mut self` makes a second writer a
//!   compile error). Publication is one release-store; no reader is ever
//!   waited on.
//! * Each [`EpochReader`] owns an `Arc` cursor into the chain.
//!   [`EpochReader::refresh`] chases `next` pointers to the newest epoch —
//!   an amortized O(1) pointer walk with no locks, no spinning, and no
//!   allocation — and returns a shared handle to that epoch's value. The
//!   value stays valid for as long as the caller holds it, regardless of
//!   later publications.
//! * Memory is bounded by reader lag: nodes behind every cursor are freed
//!   automatically when the last cursor moves past them (the chain holds no
//!   root), so a chain only retains the epochs some reader can still see.
//!
//! The `no-lock-read-path` lint (`cargo xtask lint`) keeps `Mutex`/`RwLock`
//! out of this module: the read path must stay lock-free by construction.
//!
//! # Memory ordering
//!
//! Publication is carried by one release/acquire pair, written out
//! explicitly in `NextCell`: the writer fully constructs a node (epoch
//! number, `Arc`'d value, empty `next` cell), stores the pointer into the
//! cell's `OnceLock` slot, and *then* performs the release store of the
//! `ready` flag in [`EpochPublisher::publish`]; a reader whose acquire
//! load of `ready` in [`EpochReader::refresh`] observes `true` therefore
//! also observes every write that built the node the slot points to.
//! (`OnceLock::set` is itself a release store, so the flag is belt and
//! braces in a normal build — but keeping the pair explicit lets the
//! `skyline_sched` interleaving checker, Miri, and `cargo xtask
//! sched-mutate` verify the contract rather than trust `std`.) No other
//! fences are needed — `Arc`'s internal reference counting handles its
//! own ordering.
//!
//! Readers are *wait-free*, not merely lock-free: `refresh` performs one
//! acquire load per epoch published since its last call (a bounded walk
//! with no retry loop), and `current`/`epoch`/`is_stale` are a single
//! load each. A `OnceLock` is written at most once, so a reader can never
//! observe a half-initialised cell, spin on a contended one, or be forced
//! to retry: each `get` either returns the fully published successor or
//! `None`, and both answers are immediately final for that probe.
//!
//! # Observability
//!
//! With the `telemetry` feature on, the chain bumps two registry
//! counters: `epoch.publish` on every [`EpochPublisher::publish`] and
//! `epoch.retire` when a node is freed (its `Drop` runs). Steady state
//! for a serving loop is both advancing in lockstep; a growing gap means
//! some reader cursor is parked and pinning history.

use crate::sync::{Arc, AtomicBool, OnceLock, Ordering};

/// The write-once successor pointer of a [`Node`], with its release/acquire
/// publication contract spelled out as an explicit atomic pair.
///
/// `set` fills the `OnceLock` slot and then release-stores `ready = true`;
/// `get` acquire-loads `ready` and only then reads the slot. The explicit
/// flag is what the `skyline_sched` interleaving checker and `cargo xtask
/// sched-mutate` hook into: weakening the release store to `Relaxed` makes
/// the checker's happens-before analysis flag the reader's acquire load as
/// observing an unsynchronised publication.
#[derive(Debug, Default)]
struct NextCell<T> {
    ready: AtomicBool,
    slot: OnceLock<Arc<Node<T>>>,
}

impl<T> NextCell<T> {
    fn new() -> Self {
        NextCell {
            ready: AtomicBool::new(false),
            slot: OnceLock::new(),
        }
    }

    /// Publish the successor. Fails (returning the node) if already set.
    fn set(&self, node: Arc<Node<T>>) -> Result<(), Arc<Node<T>>> {
        self.slot.set(node)?;
        // sched-mutate: release-store — the publication edge under test.
        self.ready.store(true, Ordering::Release);
        Ok(())
    }

    /// The successor, if published.
    fn get(&self) -> Option<&Arc<Node<T>>> {
        if self.ready.load(Ordering::Acquire) {
            self.slot.get()
        } else {
            None
        }
    }

    /// Take the successor out. `&mut self` proves exclusivity (drop path),
    /// so no ordering is involved.
    fn take(&mut self) -> Option<Arc<Node<T>>> {
        self.slot.take()
    }
}

/// One link of the epoch chain: an immutable value plus the write-once
/// pointer to its successor.
#[derive(Debug)]
struct Node<T> {
    epoch: u64,
    value: Arc<T>,
    next: NextCell<T>,
}

impl<T> Drop for Node<T> {
    fn drop(&mut self) {
        crate::counter!("epoch.retire").add(1);
        // Unlink the successor chain iteratively. A reader dropped far
        // behind the tail may be the last holder of a long run of nodes;
        // the default recursive drop would then recurse once per epoch and
        // can overflow the stack.
        let mut next = self.next.take();
        while let Some(node) = next {
            match Arc::try_unwrap(node) {
                // Sole owner: steal its successor before it drops with an
                // empty `next` (no recursion).
                Ok(mut sole) => next = sole.next.take(),
                // Someone else (a reader or the publisher) still holds the
                // rest of the chain; it is responsible from here on.
                Err(_) => break,
            }
        }
    }
}

/// The writer half: appends new epochs to the chain.
///
/// There is exactly one publisher per chain and `publish` takes `&mut self`,
/// so single-writer discipline is enforced at compile time. Concurrent
/// serving layers wrap the publisher in their own write-side lock; readers
/// obtained from [`EpochPublisher::reader`] never touch that lock.
#[derive(Debug)]
pub struct EpochPublisher<T> {
    tail: Arc<Node<T>>,
}

impl<T> EpochPublisher<T> {
    /// Starts a chain at epoch 0 with the given initial value.
    pub fn new(initial: T) -> Self {
        EpochPublisher {
            tail: Arc::new(Node {
                epoch: 0,
                value: Arc::new(initial),
                next: NextCell::new(),
            }),
        }
    }

    /// Publishes `value` as the next epoch and returns its epoch number.
    ///
    /// This is the only mutation of the chain: one `NextCell::set` (slot
    /// store, then release flag store) makes the new node visible to every
    /// reader that subsequently chases `next`. Readers holding older epochs
    /// are unaffected.
    pub fn publish(&mut self, value: T) -> u64 {
        crate::counter!("epoch.publish").add(1);
        let node = Arc::new(Node {
            epoch: self.tail.epoch + 1,
            value: Arc::new(value),
            next: NextCell::new(),
        });
        let fresh = self.tail.next.set(Arc::clone(&node)).is_ok();
        assert!(
            fresh,
            "the publisher is the chain's only writer (publish takes &mut self), \
             so the tail's next cell cannot already be set"
        );
        self.tail = node;
        self.tail.epoch
    }

    /// The newest epoch number.
    pub fn epoch(&self) -> u64 {
        self.tail.epoch
    }

    /// A shared handle to the newest value.
    pub fn latest(&self) -> Arc<T> {
        Arc::clone(&self.tail.value)
    }

    /// A new reader cursor positioned at the newest epoch.
    pub fn reader(&self) -> EpochReader<T> {
        EpochReader {
            cursor: Arc::clone(&self.tail),
        }
    }
}

/// The reader half: a cursor into the epoch chain.
///
/// Cloning a reader clones the cursor position; each clone advances
/// independently. A reader (or any `Arc` it returned) keeps its epoch's
/// value alive, so long-lived readers should call [`EpochReader::refresh`]
/// regularly — a parked cursor pins every epoch published since it last
/// moved.
#[derive(Debug)]
pub struct EpochReader<T> {
    cursor: Arc<Node<T>>,
}

impl<T> Clone for EpochReader<T> {
    fn clone(&self) -> Self {
        EpochReader {
            cursor: Arc::clone(&self.cursor),
        }
    }
}

impl<T> EpochReader<T> {
    /// Advances to the newest published epoch and returns a shared handle
    /// to its value. Lock-free: a bounded pointer walk over the epochs
    /// published since the last refresh.
    pub fn refresh(&mut self) -> Arc<T> {
        // Step one node at a time so each superseded cursor Arc is dropped
        // individually while its successor is still referenced — the drop
        // can then never cascade down the chain.
        while let Some(next) = self.cursor.next.get() {
            self.cursor = Arc::clone(next);
        }
        Arc::clone(&self.cursor.value)
    }

    /// The value at the cursor's current epoch, without advancing. Use this
    /// to keep answering a batch from one consistent epoch while newer
    /// epochs are being published.
    pub fn current(&self) -> Arc<T> {
        Arc::clone(&self.cursor.value)
    }

    /// The epoch number at the cursor.
    pub fn epoch(&self) -> u64 {
        self.cursor.epoch
    }

    /// True iff a newer epoch has been published past this cursor.
    pub fn is_stale(&self) -> bool {
        self.cursor.next.get().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_refresh_advance_epochs() {
        let mut publisher = EpochPublisher::new(10u32);
        let mut reader = publisher.reader();
        assert_eq!(reader.epoch(), 0);
        assert_eq!(*reader.refresh(), 10);

        assert_eq!(publisher.publish(11), 1);
        assert_eq!(publisher.publish(12), 2);
        assert_eq!(publisher.epoch(), 2);
        assert_eq!(*publisher.latest(), 12);

        assert!(reader.is_stale());
        assert_eq!(*reader.current(), 10, "current() must not advance");
        assert_eq!(*reader.refresh(), 12);
        assert_eq!(reader.epoch(), 2);
        assert!(!reader.is_stale());
    }

    #[test]
    fn pinned_epoch_survives_later_publications() {
        let mut publisher = EpochPublisher::new(vec![1, 2, 3]);
        let mut reader = publisher.reader();
        let pinned = reader.refresh();
        publisher.publish(vec![4]);
        publisher.publish(vec![5]);
        // The pinned value is untouched by publications.
        assert_eq!(*pinned, vec![1, 2, 3]);
        assert_eq!(*reader.current(), vec![1, 2, 3]);
        assert_eq!(*reader.refresh(), vec![5]);
    }

    #[test]
    fn cloned_readers_advance_independently() {
        let mut publisher = EpochPublisher::new(0u64);
        let mut a = publisher.reader();
        let mut b = a.clone();
        publisher.publish(1);
        assert_eq!(*a.refresh(), 1);
        assert_eq!(b.epoch(), 0);
        assert_eq!(*b.refresh(), 1);
    }

    #[test]
    fn long_abandoned_chain_drops_without_overflow() {
        let mut publisher = EpochPublisher::new(0u64);
        let reader = publisher.reader(); // parked at epoch 0
        for i in 1..=200_000u64 {
            publisher.publish(i);
        }
        // Dropping the parked reader releases the whole retained chain; the
        // iterative Node::drop must not recurse 200k deep.
        drop(reader);
        assert_eq!(publisher.epoch(), 200_000);
    }

    #[test]
    fn concurrent_readers_see_monotonic_epochs() {
        use crate::parallel::{self, ParallelConfig};
        use std::sync::atomic::{AtomicBool, Ordering};

        let publisher = EpochPublisher::new(0u64);
        let template = publisher.reader();
        let done = AtomicBool::new(false);
        let publisher = std::sync::Mutex::new(publisher);

        // Role 0 publishes 500 epochs; roles 1..4 refresh concurrently and
        // check that observed epochs never go backwards and always match
        // the stored value.
        let checks = parallel::map_indexed(&ParallelConfig::with_threads(4), 4, |role| {
            if role == 0 {
                let mut p = publisher
                    .lock()
                    .expect("no other role ever locks the publisher");
                for i in 1..=500u64 {
                    p.publish(i);
                }
                done.store(true, Ordering::Release);
                0
            } else {
                let mut reader = template.clone();
                let mut last = 0u64;
                let mut observed = 0usize;
                loop {
                    let value = reader.refresh();
                    let epoch = reader.epoch();
                    assert!(epoch >= last, "epochs must be monotone per reader");
                    assert_eq!(*value, epoch, "value and epoch must be consistent");
                    last = epoch;
                    observed += 1;
                    if done.load(Ordering::Acquire) && !reader.is_stale() {
                        break;
                    }
                }
                observed
            }
        });
        assert!(checks.iter().sum::<usize>() > 0);
    }
}
