//! Error type for the skyline-core crate.

use std::fmt;

/// Errors produced by skyline-diagram construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The dataset contains no points. Every diagram needs at least one seed.
    EmptyDataset,
    /// A point had a different number of coordinates than the dataset
    /// dimensionality.
    DimensionMismatch {
        /// Dimensionality declared by the dataset.
        expected: usize,
        /// Dimensionality of the offending point.
        found: usize,
    },
    /// Dimensionality outside the supported range (2..=6 for the
    /// high-dimensional engines; exactly 2 for the planar engines).
    UnsupportedDimension(usize),
    /// A coordinate is too large in magnitude for exact bisector arithmetic
    /// (dynamic diagrams double every coordinate, and subcell interior
    /// samples quadruple them).
    CoordinateOverflow(i64),
    /// A query referenced a point id that does not exist in the dataset.
    UnknownPoint(u32),
    /// The algorithm requires general position (pairwise distinct
    /// coordinates per axis), which the dataset violates.
    RequiresGeneralPosition,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyDataset => write!(f, "dataset is empty"),
            Error::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            Error::UnsupportedDimension(d) => write!(f, "unsupported dimensionality {d}"),
            Error::CoordinateOverflow(c) => {
                write!(f, "coordinate {c} too large for exact bisector arithmetic")
            }
            Error::UnknownPoint(id) => write!(f, "unknown point id {id}"),
            Error::RequiresGeneralPosition => {
                write!(
                    f,
                    "algorithm requires pairwise distinct coordinates per axis"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(Error::EmptyDataset.to_string(), "dataset is empty");
        assert_eq!(
            Error::DimensionMismatch {
                expected: 2,
                found: 3
            }
            .to_string(),
            "dimension mismatch: expected 2, found 3"
        );
        assert!(Error::UnsupportedDimension(9).to_string().contains('9'));
        assert!(Error::CoordinateOverflow(1 << 62)
            .to_string()
            .contains("too large"));
        assert!(Error::UnknownPoint(7).to_string().contains('7'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<Error>();
    }
}
