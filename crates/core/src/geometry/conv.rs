//! Checked index conversions for the exact-arithmetic layers.
//!
//! `cargo xtask lint` bans numeric `as` casts in the geometry and diagram
//! modules (rule `no-as-cast`): `as` silently truncates, and cell/rank
//! indices cross between `u32` (the stored form, matching [`PointId`]) and
//! `usize` (slice indexing) constantly. These helpers make every crossing
//! either provably lossless or a loud panic naming the broken invariant.
//!
//! [`PointId`]: crate::geometry::PointId

/// Narrows a count or index to the `u32` stored form.
///
/// Ranks, cell coordinates, and polyomino ids are all bounded by the number
/// of points or grid lines, and point ids are `u32` by construction — so
/// this only fails on inputs far beyond the paper's `n ≤ 10⁶` regime, and
/// it fails loudly instead of wrapping.
#[inline]
pub(crate) fn narrow(i: usize) -> u32 {
    u32::try_from(i).expect("index is bounded by the u32 point/cell count and fits in u32")
}

/// Widens a stored `u32` index for slice indexing. Lossless on the 32- and
/// 64-bit targets this crate supports.
#[inline]
pub(crate) fn widen(i: u32) -> usize {
    usize::try_from(i).expect("u32 always fits in usize on the supported 32/64-bit targets")
}

/// Converts a signed lattice coordinate to a slice index. Callers check
/// non-negativity first (boundary walks step one unit past the grid on
/// purpose); a negative value here is a walk-logic bug, not bad input.
#[inline]
pub(crate) fn lattice_index(i: i64) -> usize {
    usize::try_from(i).expect("lattice coordinate is non-negative once clip checks passed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        assert_eq!(narrow(0), 0);
        assert_eq!(narrow(4_000_000_000), 4_000_000_000u32);
        assert_eq!(widen(u32::MAX), u32::MAX as usize);
        assert_eq!(lattice_index(7), 7);
    }

    #[test]
    #[should_panic(expected = "fits in u32")]
    fn narrow_rejects_oversized() {
        let _ = narrow(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn lattice_index_rejects_negative() {
        let _ = lattice_index(-1);
    }
}
