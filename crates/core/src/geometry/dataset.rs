//! Datasets: validated collections of seed points.

use crate::error::{Error, Result};
use crate::geometry::conv::narrow;
use crate::geometry::point::{Coord, Point, PointD, PointId, MAX_COORD};

/// A validated planar dataset: the `n` seed points the diagram is built over.
///
/// Construction rejects empty inputs and coordinates too large for exact
/// bisector arithmetic. Duplicate points are allowed — the paper's bounded
/// integer domains (`s < n`) force coordinate ties, and all engines in this
/// crate are tie-correct (see the `ties` integration tests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dataset {
    points: Vec<Point>,
}

impl Dataset {
    /// Heap bytes owned by the point buffer.
    pub fn heap_bytes(&self) -> usize {
        crate::telemetry::mem::vec_heap_bytes(&self.points)
    }

    /// Builds a dataset from points.
    ///
    /// # Errors
    /// [`Error::EmptyDataset`] if `points` is empty,
    /// [`Error::CoordinateOverflow`] if any coordinate exceeds
    /// [`MAX_COORD`] in magnitude.
    pub fn new(points: Vec<Point>) -> Result<Self> {
        if points.is_empty() {
            return Err(Error::EmptyDataset);
        }
        for p in &points {
            for c in [p.x, p.y] {
                if c.abs() > MAX_COORD {
                    return Err(Error::CoordinateOverflow(c));
                }
            }
        }
        Ok(Dataset { points })
    }

    /// Builds a dataset from `(x, y)` pairs.
    pub fn from_coords<I>(coords: I) -> Result<Self>
    where
        I: IntoIterator<Item = (Coord, Coord)>,
    {
        Dataset::new(coords.into_iter().map(Point::from).collect())
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// A dataset is never empty, but clippy insists the method exist.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The point with the given id.
    #[inline]
    pub fn point(&self, id: PointId) -> Point {
        self.points[id.index()]
    }

    /// The point with the given id, or an error for out-of-range ids.
    pub fn try_point(&self, id: PointId) -> Result<Point> {
        self.points
            .get(id.index())
            .copied()
            .ok_or(Error::UnknownPoint(id.0))
    }

    /// All points, indexable by `PointId::index`.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Iterator of `(id, point)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, Point)> + '_ {
        self.points
            .iter()
            .enumerate()
            .map(|(i, &p)| (PointId(narrow(i)), p))
    }

    /// Ids of all points, in order.
    pub fn ids(&self) -> impl Iterator<Item = PointId> {
        (0..narrow(self.points.len())).map(PointId)
    }

    /// Converts to a d-dimensional dataset (d = 2), for cross-validating the
    /// high-dimensional engines against the planar ones.
    pub fn to_dataset_d(&self) -> DatasetD {
        DatasetD::new(self.points.iter().map(|&p| PointD::from(p)).collect())
            .expect("planar dataset is always a valid 2-d dataset")
    }
}

/// A validated d-dimensional dataset for the high-dimensional engines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetD {
    points: Vec<PointD>,
    dims: usize,
}

impl DatasetD {
    /// Builds a d-dimensional dataset, validating dimensional consistency.
    ///
    /// # Errors
    /// [`Error::EmptyDataset`], [`Error::DimensionMismatch`],
    /// [`Error::UnsupportedDimension`] (d must be in `2..=6`), or
    /// [`Error::CoordinateOverflow`].
    pub fn new(points: Vec<PointD>) -> Result<Self> {
        let Some(first) = points.first() else {
            return Err(Error::EmptyDataset);
        };
        let dims = first.dims();
        if !(2..=6).contains(&dims) {
            return Err(Error::UnsupportedDimension(dims));
        }
        for p in &points {
            if p.dims() != dims {
                return Err(Error::DimensionMismatch {
                    expected: dims,
                    found: p.dims(),
                });
            }
            for &c in p.coords() {
                if c.abs() > MAX_COORD {
                    return Err(Error::CoordinateOverflow(c));
                }
            }
        }
        Ok(DatasetD { points, dims })
    }

    /// Builds a d-dimensional dataset from coordinate rows.
    pub fn from_rows<I, R>(rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[Coord]>,
    {
        DatasetD::new(
            rows.into_iter()
                .map(|r| PointD::new(r.as_ref().to_vec()))
                .collect(),
        )
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// A dataset is never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Dimensionality of every point.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The point with the given id.
    #[inline]
    pub fn point(&self, id: PointId) -> &PointD {
        &self.points[id.index()]
    }

    /// All points, indexable by `PointId::index`.
    #[inline]
    pub fn points(&self) -> &[PointD] {
        &self.points
    }

    /// Iterator of `(id, point)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &PointD)> + '_ {
        self.points
            .iter()
            .enumerate()
            .map(|(i, p)| (PointId(narrow(i)), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        assert_eq!(Dataset::new(vec![]), Err(Error::EmptyDataset));
        assert_eq!(DatasetD::new(vec![]), Err(Error::EmptyDataset));
    }

    #[test]
    fn rejects_overflow() {
        let res = Dataset::from_coords([(MAX_COORD + 1, 0)]);
        assert_eq!(res, Err(Error::CoordinateOverflow(MAX_COORD + 1)));
        let res = DatasetD::from_rows([[0, -(MAX_COORD + 1)]]);
        assert_eq!(res, Err(Error::CoordinateOverflow(-(MAX_COORD + 1))));
    }

    #[test]
    fn rejects_mixed_dimensions() {
        let res = DatasetD::new(vec![PointD::new(vec![1, 2]), PointD::new(vec![1, 2, 3])]);
        assert_eq!(
            res,
            Err(Error::DimensionMismatch {
                expected: 2,
                found: 3
            })
        );
    }

    #[test]
    fn rejects_unsupported_dims() {
        assert_eq!(
            DatasetD::new(vec![PointD::new(vec![1])]),
            Err(Error::UnsupportedDimension(1))
        );
        assert_eq!(
            DatasetD::new(vec![PointD::new(vec![0; 7])]),
            Err(Error::UnsupportedDimension(7))
        );
    }

    #[test]
    fn accessors_roundtrip() {
        let ds = Dataset::from_coords([(1, 2), (3, 4)]).unwrap();
        assert_eq!(ds.len(), 2);
        assert!(!ds.is_empty());
        assert_eq!(ds.point(PointId(1)), Point::new(3, 4));
        assert_eq!(ds.try_point(PointId(2)), Err(Error::UnknownPoint(2)));
        let collected: Vec<_> = ds.iter().collect();
        assert_eq!(collected[0], (PointId(0), Point::new(1, 2)));
        assert_eq!(ds.ids().count(), 2);
    }

    #[test]
    fn planar_to_d_conversion() {
        let ds = Dataset::from_coords([(1, 2), (3, 4)]).unwrap();
        let dd = ds.to_dataset_d();
        assert_eq!(dd.dims(), 2);
        assert_eq!(dd.point(PointId(0)).coords(), &[1, 2]);
        assert_eq!(dd.iter().count(), 2);
        assert!(!dd.is_empty());
    }

    #[test]
    fn duplicates_are_allowed() {
        let ds = Dataset::from_coords([(5, 5), (5, 5)]).unwrap();
        assert_eq!(ds.len(), 2);
    }
}
