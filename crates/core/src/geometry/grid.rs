//! The skyline-cell grid (Definition 6 of the paper).
//!
//! Drawing one horizontal and one vertical line through every point divides
//! the plane into *skyline cells*; every query point inside one open cell has
//! the same quadrant (and global) skyline result. With `nx` distinct x values
//! and `ny` distinct y values the grid has `(nx + 1) * (ny + 1)` cells — the
//! `O(min(s², n²))` bound the paper derives for bounded domains falls out of
//! the distinct-value compression performed here.
//!
//! # Indexing conventions
//!
//! Cell `(i, j)` is the open region `xs[i-1] < x < xs[i]`,
//! `ys[j-1] < y < ys[j]` with `xs[-1] = -∞` and `xs[nx] = +∞`. The points in
//! the (closed) first quadrant of every query inside cell `(i, j)` are exactly
//! those with `xrank >= i` and `yrank >= j`, where a point's rank is the index
//! of its coordinate among the sorted distinct values. Queries lying exactly
//! on a grid line are assigned to the cell on the greater side, which matches
//! the strict inequalities used by the from-scratch query functions in
//! [`crate::query`].

use std::collections::HashMap;

use crate::geometry::conv::{narrow, widen};
use crate::geometry::dataset::Dataset;
use crate::geometry::point::{Coord, Point, PointId};

/// Index of a skyline cell: `(x-slab, y-slab)`.
pub type CellIndex = (u32, u32);

/// The grid of skyline cells induced by a dataset.
#[derive(Clone, Debug)]
pub struct CellGrid {
    /// Sorted distinct x coordinates (the vertical grid lines).
    xs: Vec<Coord>,
    /// Sorted distinct y coordinates (the horizontal grid lines).
    ys: Vec<Coord>,
    /// Per point: rank of its x coordinate in `xs`.
    xrank: Vec<u32>,
    /// Per point: rank of its y coordinate in `ys`.
    yrank: Vec<u32>,
    /// Points living exactly at grid-line intersections, keyed by rank pair.
    /// Every point appears here (its own lines intersect at the point), so
    /// this doubles as a coordinate → ids map.
    at_corner: HashMap<(u32, u32), Vec<PointId>>,
    /// Point ids grouped by x rank.
    by_xrank: Vec<Vec<PointId>>,
    /// Point ids grouped by y rank.
    by_yrank: Vec<Vec<PointId>>,
}

fn sorted_distinct(mut values: Vec<Coord>) -> Vec<Coord> {
    values.sort_unstable();
    values.dedup();
    values
}

impl CellGrid {
    /// Heap bytes owned by the grid: line tables, rank tables, and the
    /// corner map (estimated) with its per-corner id vectors.
    pub fn heap_bytes(&self) -> usize {
        use crate::telemetry::mem::{map_heap_bytes, vec_heap_bytes};
        vec_heap_bytes(&self.xs)
            + vec_heap_bytes(&self.ys)
            + vec_heap_bytes(&self.xrank)
            + vec_heap_bytes(&self.yrank)
            + map_heap_bytes(&self.at_corner)
            + self.at_corner.values().map(vec_heap_bytes).sum::<usize>()
    }

    /// Builds the grid for a dataset.
    pub fn new(dataset: &Dataset) -> Self {
        let xs = sorted_distinct(dataset.points().iter().map(|p| p.x).collect());
        let ys = sorted_distinct(dataset.points().iter().map(|p| p.y).collect());

        let mut xrank = Vec::with_capacity(dataset.len());
        let mut yrank = Vec::with_capacity(dataset.len());
        let mut at_corner: HashMap<(u32, u32), Vec<PointId>> = HashMap::new();
        let mut by_xrank = vec![Vec::new(); xs.len()];
        let mut by_yrank = vec![Vec::new(); ys.len()];

        for (id, p) in dataset.iter() {
            let rx = narrow(
                xs.binary_search(&p.x)
                    .expect("every x came from the dataset"),
            );
            let ry = narrow(
                ys.binary_search(&p.y)
                    .expect("every y came from the dataset"),
            );
            xrank.push(rx);
            yrank.push(ry);
            at_corner.entry((rx, ry)).or_default().push(id);
            by_xrank[widen(rx)].push(id);
            by_yrank[widen(ry)].push(id);
        }

        CellGrid {
            xs,
            ys,
            xrank,
            yrank,
            at_corner,
            by_xrank,
            by_yrank,
        }
    }

    /// Number of distinct x coordinates (vertical grid lines).
    #[inline]
    pub fn nx(&self) -> u32 {
        narrow(self.xs.len())
    }

    /// Number of distinct y coordinates (horizontal grid lines).
    #[inline]
    pub fn ny(&self) -> u32 {
        narrow(self.ys.len())
    }

    /// Number of cells: `(nx + 1) * (ny + 1)`.
    #[inline]
    pub fn cell_count(&self) -> usize {
        (self.xs.len() + 1) * (self.ys.len() + 1)
    }

    /// The sorted distinct x coordinates.
    #[inline]
    pub fn x_lines(&self) -> &[Coord] {
        &self.xs
    }

    /// The sorted distinct y coordinates.
    #[inline]
    pub fn y_lines(&self) -> &[Coord] {
        &self.ys
    }

    /// x rank of a point.
    #[inline]
    pub fn xrank(&self, id: PointId) -> u32 {
        self.xrank[id.index()]
    }

    /// y rank of a point.
    #[inline]
    pub fn yrank(&self, id: PointId) -> u32 {
        self.yrank[id.index()]
    }

    /// Points whose x coordinate has the given rank.
    #[inline]
    pub fn points_with_xrank(&self, rank: u32) -> &[PointId] {
        &self.by_xrank[widen(rank)]
    }

    /// Points whose y coordinate has the given rank.
    #[inline]
    pub fn points_with_yrank(&self, rank: u32) -> &[PointId] {
        &self.by_yrank[widen(rank)]
    }

    /// Points located exactly at the grid intersection `(xs[i], ys[j])`.
    ///
    /// Used by the scanning algorithm: a cell whose upper-right corner hosts
    /// a point has that point (or those duplicate points) as its entire
    /// skyline. Returns an empty slice when the intersection is empty or the
    /// ranks are out of range.
    pub fn points_at_corner(&self, i: u32, j: u32) -> &[PointId] {
        self.at_corner.get(&(i, j)).map_or(&[], |v| v.as_slice())
    }

    /// The cell containing the query point. Queries exactly on a grid line
    /// are assigned to the greater-side cell (see module docs).
    pub fn cell_of(&self, q: Point) -> CellIndex {
        let i = narrow(self.xs.partition_point(|&x| x <= q.x));
        let j = narrow(self.ys.partition_point(|&y| y <= q.y));
        (i, j)
    }

    /// Linear (row-major) index of a cell, for dense per-cell storage.
    #[inline]
    pub fn linear_index(&self, (i, j): CellIndex) -> usize {
        widen(j) * (self.xs.len() + 1) + widen(i)
    }

    /// Inverse of [`CellGrid::linear_index`].
    #[inline]
    pub fn cell_from_linear(&self, idx: usize) -> CellIndex {
        let width = self.xs.len() + 1;
        (narrow(idx % width), narrow(idx / width))
    }

    /// Iterates over all cell indices in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = CellIndex> + '_ {
        let width = narrow(self.xs.len()) + 1;
        let height = narrow(self.ys.len()) + 1;
        (0..height).flat_map(move |j| (0..width).map(move |i| (i, j)))
    }

    /// The lower-left corner `g_{i,j}` of a cell, as used by the paper's
    /// Algorithm 1: candidates for the cell's quadrant skyline are points
    /// strictly greater than this corner in both coordinates. Returns `None`
    /// for cells on the lower or left boundary (whose corner is at -∞, i.e.
    /// every point with rank ≥ 0 qualifies automatically in that dimension).
    pub fn lower_left_corner(&self, (i, j): CellIndex) -> (Option<Coord>, Option<Coord>) {
        let cx = i.checked_sub(1).map(|k| self.xs[widen(k)]);
        let cy = j.checked_sub(1).map(|k| self.ys[widen(k)]);
        (cx, cy)
    }

    /// A representative interior query point for a cell, useful in tests and
    /// for cross-validating diagram lookups against from-scratch queries.
    ///
    /// Interior coordinates are midpoints *in doubled coordinates* so they
    /// remain exact integers; the returned point is in doubled space and the
    /// caller must compare against doubled data coordinates, or use
    /// [`CellGrid::representative_unscaled`] when slabs are wide enough.
    pub fn representative_doubled(&self, (i, j): CellIndex) -> Point {
        Point::new(
            slab_sample_doubled(&self.xs, i),
            slab_sample_doubled(&self.ys, j),
        )
    }

    /// A representative interior point in original coordinates, when one
    /// exists (slab boundaries at least 2 apart, or unbounded slabs).
    /// Returns `None` for unit-width slabs, where no integer interior exists.
    pub fn representative_unscaled(&self, (i, j): CellIndex) -> Option<Point> {
        Some(Point::new(
            slab_sample_unscaled(&self.xs, i)?,
            slab_sample_unscaled(&self.ys, j)?,
        ))
    }
}

/// Sample strictly inside slab `i` of `lines`, in doubled coordinates.
pub(crate) fn slab_sample_doubled(lines: &[Coord], i: u32) -> Coord {
    let i = widen(i);
    if i == 0 {
        2 * lines[0] - 1
    } else if i == lines.len() {
        2 * lines[lines.len() - 1] + 1
    } else {
        // Strictly between 2*lines[i-1] and 2*lines[i] because the distinct
        // boundaries differ by at least 1 in original space.
        lines[i - 1] + lines[i]
    }
}

fn slab_sample_unscaled(lines: &[Coord], i: u32) -> Option<Coord> {
    let i = widen(i);
    if i == 0 {
        Some(lines[0] - 1)
    } else if i == lines.len() {
        Some(lines[lines.len() - 1] + 1)
    } else if lines[i] - lines[i - 1] >= 2 {
        Some(lines[i - 1] + (lines[i] - lines[i - 1]) / 2)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> (Dataset, CellGrid) {
        // Points with an x tie and a y tie to exercise compression.
        let ds = Dataset::from_coords([(10, 5), (10, 20), (30, 20), (40, 1)]).unwrap();
        let g = CellGrid::new(&ds);
        (ds, g)
    }

    #[test]
    fn distinct_compression() {
        let (_, g) = grid();
        assert_eq!(g.x_lines(), &[10, 30, 40]);
        assert_eq!(g.y_lines(), &[1, 5, 20]);
        assert_eq!(g.nx(), 3);
        assert_eq!(g.ny(), 3);
        assert_eq!(g.cell_count(), 16);
    }

    #[test]
    fn ranks() {
        let (_, g) = grid();
        assert_eq!(g.xrank(PointId(0)), 0);
        assert_eq!(g.xrank(PointId(1)), 0);
        assert_eq!(g.xrank(PointId(3)), 2);
        assert_eq!(g.yrank(PointId(0)), 1);
        assert_eq!(g.yrank(PointId(3)), 0);
        assert_eq!(g.points_with_xrank(0), &[PointId(0), PointId(1)]);
        assert_eq!(g.points_with_yrank(2), &[PointId(1), PointId(2)]);
    }

    #[test]
    fn corner_lookup() {
        let (_, g) = grid();
        // (10, 20) has ranks (0, 2).
        assert_eq!(g.points_at_corner(0, 2), &[PointId(1)]);
        assert!(g.points_at_corner(1, 0).is_empty());
        assert!(g.points_at_corner(9, 9).is_empty());
    }

    #[test]
    fn cell_of_interior_and_boundary_queries() {
        let (_, g) = grid();
        assert_eq!(g.cell_of(Point::new(0, 0)), (0, 0));
        assert_eq!(g.cell_of(Point::new(15, 6)), (1, 2));
        // On-line queries go to the greater-side cell.
        assert_eq!(g.cell_of(Point::new(10, 5)), (1, 2));
        assert_eq!(g.cell_of(Point::new(40, 20)), (3, 3));
        assert_eq!(g.cell_of(Point::new(100, 100)), (3, 3));
    }

    #[test]
    fn linear_index_roundtrip() {
        let (_, g) = grid();
        for (k, cell) in g.cells().enumerate() {
            assert_eq!(g.linear_index(cell), k);
            assert_eq!(g.cell_from_linear(k), cell);
        }
        assert_eq!(g.cells().count(), g.cell_count());
    }

    #[test]
    fn lower_left_corners() {
        let (_, g) = grid();
        assert_eq!(g.lower_left_corner((0, 0)), (None, None));
        assert_eq!(g.lower_left_corner((1, 2)), (Some(10), Some(5)));
        assert_eq!(g.lower_left_corner((3, 3)), (Some(40), Some(20)));
    }

    #[test]
    fn representatives_are_interior() {
        let (_, g) = grid();
        for cell in g.cells() {
            let r = g.representative_doubled(cell);
            // Doubling the grid check: the representative must land back in
            // the same cell when compared against doubled lines.
            let i = g.x_lines().partition_point(|&x| 2 * x <= r.x) as u32;
            let j = g.y_lines().partition_point(|&y| 2 * y <= r.y) as u32;
            assert_eq!((i, j), cell);
            if let Some(u) = g.representative_unscaled(cell) {
                assert_eq!(g.cell_of(u), cell);
            }
        }
    }

    #[test]
    fn unit_slab_has_no_unscaled_representative() {
        let ds = Dataset::from_coords([(0, 0), (1, 1)]).unwrap();
        let g = CellGrid::new(&ds);
        assert_eq!(g.representative_unscaled((1, 1)), None);
        assert!(g.representative_unscaled((0, 0)).is_some());
        assert!(g.representative_unscaled((2, 2)).is_some());
    }
}
