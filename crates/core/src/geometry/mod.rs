//! Geometric primitives: points, datasets, and the skyline-cell grid.

pub(crate) mod conv;
mod dataset;
mod grid;
mod point;
pub mod transform;

pub use dataset::{Dataset, DatasetD};
pub use grid::{CellGrid, CellIndex};
pub use point::{Coord, Point, PointD, PointId, MAX_COORD};

pub(crate) use grid::slab_sample_doubled;
