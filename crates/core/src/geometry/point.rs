//! Planar and d-dimensional points in integer coordinate space.
//!
//! All coordinates are integers (`Coord = i64`). The paper's datasets live in
//! bounded integer domains (domain size `s` per dimension), and integer
//! coordinates keep every construction exact: the dynamic-skyline subcell
//! grid needs midpoints of coordinate pairs, which stay integral once all
//! inputs are doubled.

use std::fmt;

/// Scalar coordinate type used throughout the crate.
pub type Coord = i64;

/// Largest coordinate magnitude accepted by constructors that perform
/// bisector arithmetic. Doubling then quadrupling a coordinate of this
/// magnitude still fits comfortably in an `i64`.
pub const MAX_COORD: Coord = i64::MAX / 16;

/// Identifier of a point inside a [`Dataset`](crate::geometry::Dataset):
/// the index of the point in insertion order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PointId(pub u32);

impl PointId {
    /// Index usable for slicing into dataset-parallel arrays.
    #[inline]
    pub fn index(self) -> usize {
        crate::geometry::conv::widen(self.0)
    }
}

impl fmt::Display for PointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A point in the plane.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Point {
    /// First attribute (e.g. distance to downtown in the paper's example).
    pub x: Coord,
    /// Second attribute (e.g. price).
    pub y: Coord,
}

impl Point {
    /// Creates a point from its two coordinates.
    #[inline]
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// Coordinate along dimension `dim` (0 = x, 1 = y).
    ///
    /// # Panics
    /// Panics if `dim > 1`.
    #[inline]
    pub fn coord(&self, dim: usize) -> Coord {
        assert!(dim < 2, "planar point has no dimension {dim}");
        if dim == 0 {
            self.x
        } else {
            self.y
        }
    }
}

impl From<(Coord, Coord)> for Point {
    fn from((x, y): (Coord, Coord)) -> Self {
        Point::new(x, y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A point in d-dimensional space, used by the high-dimensional engines.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PointD {
    coords: Vec<Coord>,
}

impl PointD {
    /// Creates a d-dimensional point from its coordinates.
    pub fn new(coords: Vec<Coord>) -> Self {
        PointD { coords }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate along dimension `dim`.
    #[inline]
    pub fn coord(&self, dim: usize) -> Coord {
        self.coords[dim]
    }

    /// All coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }
}

impl From<Point> for PointD {
    fn from(p: Point) -> Self {
        PointD::new(vec![p.x, p.y])
    }
}

impl From<&[Coord]> for PointD {
    fn from(coords: &[Coord]) -> Self {
        PointD::new(coords.to_vec())
    }
}

impl fmt::Display for PointD {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_accessors() {
        let p = Point::new(3, -7);
        assert_eq!(p.coord(0), 3);
        assert_eq!(p.coord(1), -7);
        assert_eq!(p, Point::from((3, -7)));
        assert_eq!(p.to_string(), "(3, -7)");
    }

    #[test]
    #[should_panic(expected = "no dimension 2")]
    fn point_coord_out_of_range_panics() {
        let _ = Point::new(0, 0).coord(2);
    }

    #[test]
    fn point_ordering_is_lexicographic() {
        assert!(Point::new(1, 9) < Point::new(2, 0));
        assert!(Point::new(1, 1) < Point::new(1, 2));
    }

    #[test]
    fn point_id_display_and_index() {
        assert_eq!(PointId(4).to_string(), "p4");
        assert_eq!(PointId(4).index(), 4);
    }

    #[test]
    fn point_d_roundtrip() {
        let p = PointD::new(vec![1, 2, 3]);
        assert_eq!(p.dims(), 3);
        assert_eq!(p.coord(2), 3);
        assert_eq!(p.coords(), &[1, 2, 3]);
        assert_eq!(p.to_string(), "(1, 2, 3)");
        assert_eq!(PointD::from(Point::new(1, 2)), PointD::new(vec![1, 2]));
    }
}
