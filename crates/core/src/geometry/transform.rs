//! Dataset transforms for preparing real-world tables.
//!
//! Skylines here always minimize; a "larger is better" attribute must be
//! inverted first, and data from arbitrary ranges may need translation or
//! scaling. All transforms are exact integer maps, and the important ones
//! come with the invariant that matters: **translation and positive
//! scaling preserve skyline results id-for-id; axis inversion reverses the
//! preference of that attribute** (asserted by tests and the
//! translation-invariance proptest).

use crate::error::{Error, Result};
use crate::geometry::{Coord, Dataset, Point, MAX_COORD};

/// Translates every point by `(dx, dy)`.
pub fn translate(dataset: &Dataset, dx: Coord, dy: Coord) -> Result<Dataset> {
    Dataset::from_coords(
        dataset
            .points()
            .iter()
            .map(|p| (p.x.saturating_add(dx), p.y.saturating_add(dy))),
    )
}

/// Scales every coordinate by a positive factor.
pub fn scale(dataset: &Dataset, factor: Coord) -> Result<Dataset> {
    if factor <= 0 {
        return Err(Error::CoordinateOverflow(factor));
    }
    Dataset::from_coords(
        dataset
            .points()
            .iter()
            .map(|p| (p.x.saturating_mul(factor), p.y.saturating_mul(factor))),
    )
}

/// Axis selector for [`invert_axis`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Axis {
    /// The first attribute.
    X,
    /// The second attribute.
    Y,
}

/// Inverts one attribute's preference (`v ↦ max(v) - v` over that axis),
/// turning "larger is better" into the minimization convention while
/// keeping coordinates non-negative when they started non-negative.
pub fn invert_axis(dataset: &Dataset, axis: Axis) -> Result<Dataset> {
    let max = dataset
        .points()
        .iter()
        .map(|p| match axis {
            Axis::X => p.x,
            Axis::Y => p.y,
        })
        .max()
        .expect("datasets are nonempty");
    Dataset::from_coords(dataset.points().iter().map(|p| match axis {
        Axis::X => (max - p.x, p.y),
        Axis::Y => (p.x, max - p.y),
    }))
}

/// Shifts the dataset so both attributes start at 0 — the paper's
/// non-negative domain convention, required by nothing in this workspace
/// but convenient for rendering and CSV diffs.
pub fn normalize_origin(dataset: &Dataset) -> Result<Dataset> {
    let min_x = dataset
        .points()
        .iter()
        .map(|p| p.x)
        .min()
        .expect("datasets are never empty");
    let min_y = dataset
        .points()
        .iter()
        .map(|p| p.y)
        .min()
        .expect("datasets are never empty");
    translate(dataset, -min_x, -min_y)
}

/// Remaps coordinates onto `[0, domain)` per axis by rank (order-
/// preserving): the cheapest way to bound the coordinate magnitude of a
/// wild real-world table without changing any dominance relation —
/// dominance depends only on per-axis order, which ranks preserve
/// exactly (including ties).
pub fn rank_compress(dataset: &Dataset) -> Result<Dataset> {
    let grid = crate::geometry::CellGrid::new(dataset);
    Dataset::new(
        dataset
            .ids()
            .map(|id| Point::new(grid.xrank(id) as Coord, grid.yrank(id) as Coord))
            .collect(),
    )
}

/// Validates that every coordinate stays within the exact-arithmetic bound
/// after a user-provided transform; a convenience re-export of the
/// constructor's own check for pipelines that build points manually.
pub fn check_bounds(points: &[Point]) -> Result<()> {
    for p in points {
        for c in [p.x, p.y] {
            if c.abs() > MAX_COORD {
                return Err(Error::CoordinateOverflow(c));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{dynamic_skyline, quadrant_skyline};
    use crate::skyline::sort_sweep::skyline_2d;

    fn sample() -> Dataset {
        crate::test_data::hotel_dataset()
    }

    #[test]
    fn translation_preserves_all_query_semantics() {
        let ds = sample();
        let moved = translate(&ds, -37, 1009).unwrap();
        let q = Point::new(10, 80);
        let q_moved = Point::new(10 - 37, 80 + 1009);
        assert_eq!(quadrant_skyline(&ds, q), quadrant_skyline(&moved, q_moved));
        assert_eq!(dynamic_skyline(&ds, q), dynamic_skyline(&moved, q_moved));
        assert_eq!(skyline_2d(&ds), skyline_2d(&moved));
    }

    #[test]
    fn scaling_preserves_skylines() {
        let ds = sample();
        let scaled = scale(&ds, 7).unwrap();
        assert_eq!(skyline_2d(&ds), skyline_2d(&scaled));
        assert!(scale(&ds, 0).is_err());
        assert!(scale(&ds, -2).is_err());
    }

    #[test]
    fn inversion_turns_maxima_into_minima() {
        // Under "larger x is better", the best-x point must enter the
        // skyline after inverting X.
        let ds = Dataset::from_coords([(1, 5), (9, 5), (5, 1)]).unwrap();
        let inverted = invert_axis(&ds, Axis::X).unwrap();
        let sky = skyline_2d(&inverted);
        assert!(
            sky.contains(&crate::geometry::PointId(1)),
            "max-x point is now skyline"
        );
        // Double inversion is the identity up to translation: skylines match.
        let back = invert_axis(&inverted, Axis::X).unwrap();
        assert_eq!(skyline_2d(&back), skyline_2d(&ds));
        // Y inversion likewise.
        let flipped = invert_axis(&ds, Axis::Y).unwrap();
        assert_eq!(flipped.point(crate::geometry::PointId(2)).y, 4);
    }

    #[test]
    fn normalize_origin_zeroes_the_minima() {
        let ds = Dataset::from_coords([(-5, 100), (3, 90)]).unwrap();
        let n = normalize_origin(&ds).unwrap();
        assert_eq!(n.points().iter().map(|p| p.x).min(), Some(0));
        assert_eq!(n.points().iter().map(|p| p.y).min(), Some(0));
        assert_eq!(skyline_2d(&ds), skyline_2d(&n));
    }

    #[test]
    fn rank_compression_preserves_diagrams_structurally() {
        use crate::quadrant::QuadrantEngine;
        let ds = crate::test_data::lcg_dataset(25, 1_000_000, 3);
        let compressed = rank_compress(&ds).unwrap();
        // Same skyline ids, same per-cell results (cell grids are
        // isomorphic because ranks are preserved).
        assert_eq!(skyline_2d(&ds), skyline_2d(&compressed));
        let a = QuadrantEngine::Baseline.build(&ds);
        let b = QuadrantEngine::Baseline.build(&compressed);
        assert_eq!(a.grid().nx(), b.grid().nx());
        for cell in a.grid().cells() {
            assert_eq!(a.result(cell), b.result(cell), "{cell:?}");
        }
    }

    #[test]
    fn bounds_checking() {
        assert!(check_bounds(&[Point::new(0, MAX_COORD)]).is_ok());
        assert!(check_bounds(&[Point::new(0, MAX_COORD + 1)]).is_err());
    }
}
