//! Skyline diagram for **global** skyline queries.
//!
//! "Global skyline can be simply computed by taking a union of all quadrant
//! skylines" (paper, Section IV): the global diagram shares the quadrant
//! diagram's cell grid, and each cell's result is the union of the four
//! per-quadrant results. This module runs a chosen quadrant engine on the
//! four axis reflections of the dataset and unions the per-cell results,
//! so every quadrant engine doubles as a global engine.

use crate::diagram::CellDiagram;
use crate::geometry::{CellGrid, Dataset, PointId};
use crate::quadrant::QuadrantEngine;
use crate::result_set::{union_sorted, ResultInterner};

/// Builds the global skyline diagram using the given quadrant engine for
/// each of the four reflections.
pub fn build(dataset: &Dataset, engine: QuadrantEngine) -> CellDiagram {
    let grid = CellGrid::new(dataset);
    let width = grid.nx() as usize + 1;
    let height = grid.ny() as usize + 1;

    // Reflections: (flip_x, flip_y) selects the quadrant being reduced to
    // the first: Q1 = (false, false), Q2 = (true, false), Q3 = (true, true),
    // Q4 = (false, true).
    let reflections = [(false, false), (true, false), (true, true), (false, true)];

    let mut results = ResultInterner::new();
    let mut union_acc: Vec<Vec<PointId>> = vec![Vec::new(); width * height];
    let mut scratch = Vec::new();

    for (flip_x, flip_y) in reflections {
        let reflected = Dataset::from_coords(dataset.points().iter().map(|p| {
            (
                if flip_x { -p.x } else { p.x },
                if flip_y { -p.y } else { p.y },
            )
        }))
        .expect("reflection preserves validity");
        let quadrant_diagram = engine.build(&reflected);

        for j in 0..height as u32 {
            for i in 0..width as u32 {
                // Cell (i, j) of the original grid corresponds to the
                // reflected cell with flipped slab indices.
                let ri = if flip_x { grid.nx() - i } else { i };
                let rj = if flip_y { grid.ny() - j } else { j };
                let part = quadrant_diagram.result((ri, rj));
                if part.is_empty() {
                    continue;
                }
                let acc = &mut union_acc[j as usize * width + i as usize];
                union_sorted(acc, part, &mut scratch);
                std::mem::swap(acc, &mut scratch);
            }
        }
    }

    let cells = union_acc
        .into_iter()
        .map(|ids| results.intern_sorted(ids))
        .collect();
    let diagram = CellDiagram::from_parts(grid, results, cells);
    // Debug builds spot-check the output against the from-scratch oracle and
    // the Definition 2 union (see `crate::invariants`); release builds pay
    // nothing.
    #[cfg(debug_assertions)]
    if let Err(violation) = crate::invariants::validate_cell_diagram(
        dataset,
        &diagram,
        crate::invariants::CellSemantics::Global,
        crate::invariants::DEBUG_SAMPLE_BUDGET,
    ) {
        debug_assert!(
            false,
            "global diagram ({} engine): {violation}",
            engine.name()
        );
    }
    diagram
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{global_skyline, global_skyline_naive};

    #[test]
    fn matches_from_scratch_queries_on_hotel_example() {
        let ds = crate::test_data::hotel_dataset();
        let d = build(&ds, QuadrantEngine::Baseline);
        for cell in d.grid().cells() {
            // Compare in doubled coordinates so every cell has an exact
            // interior representative.
            let doubled =
                Dataset::from_coords(ds.points().iter().map(|p| (2 * p.x, 2 * p.y))).unwrap();
            let q = d.grid().representative_doubled(cell);
            assert_eq!(
                d.result(cell),
                global_skyline(&doubled, q).as_slice(),
                "cell {cell:?}"
            );
        }
    }

    #[test]
    fn paper_global_result() {
        // For q = (10, 80): {p1, p3, p6, p8, p9, p10, p11}.
        let ds = crate::test_data::hotel_dataset();
        let d = build(&ds, QuadrantEngine::Sweeping);
        assert_eq!(
            d.query(crate::geometry::Point::new(10, 80)),
            global_skyline_naive(&ds, crate::geometry::Point::new(10, 80)).as_slice()
        );
    }

    #[test]
    fn all_engines_agree_on_global() {
        let ds = crate::test_data::lcg_dataset(30, 40, 11);
        let reference = build(&ds, QuadrantEngine::Baseline);
        for engine in QuadrantEngine::ALL {
            assert!(
                build(&ds, engine).same_results(&reference),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn global_contains_quadrant_everywhere() {
        let ds = crate::test_data::lcg_dataset(25, 100, 3);
        let global = build(&ds, QuadrantEngine::Baseline);
        let quadrant = QuadrantEngine::Baseline.build(&ds);
        for cell in global.grid().cells() {
            let g = global.result(cell);
            for id in quadrant.result(cell) {
                assert!(g.contains(id), "quadrant point {id} missing at {cell:?}");
            }
        }
    }
}
