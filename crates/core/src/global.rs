//! Skyline diagram for **global** skyline queries.
//!
//! "Global skyline can be simply computed by taking a union of all quadrant
//! skylines" (paper, Section IV): the global diagram shares the quadrant
//! diagram's cell grid, and each cell's result is the union of the four
//! per-quadrant results. This module runs a chosen quadrant engine on the
//! four axis reflections of the dataset and unions the per-cell results,
//! so every quadrant engine doubles as a global engine.
//!
//! The union phase re-encodes each per-quadrant interner as a flat bitset
//! arena once (`global.encode` span) and then takes every cell union
//! word-parallel — `union4_words` is one `OR` pass
//! per 64 points, independent of the skyline sizes — against a
//! [`BitsetInterner`] that converts to the sorted-id
//! representation id-for-id at the end.
//!
//! # Parallel engine
//!
//! The four reflected quadrant builds are independent (the per-orthant
//! fan-out of Definition 2) and run through [`crate::parallel`]; the union
//! phase is then row-banded: each row worker walks its cells, reuses the
//! previous cell's union whenever the 4-tuple of per-quadrant result ids is
//! unchanged (unions only change where a grid line carries a point), and
//! hands back collapsed [`BitRuns`]. The sequential
//! stitch interns the runs in row-major order, which both dedups storage
//! and keeps the output identical for every thread count. `threads = 0`
//! runs a full-grid accumulation loop as the deterministic reference path.

use crate::diagram::CellDiagram;
use crate::geometry::{CellGrid, Dataset};
use crate::parallel::{self, ParallelConfig};
use crate::quadrant::QuadrantEngine;
use crate::result_set::{
    encode_results, union4_words, words_for, BitRuns, BitsetInterner, ResultId,
};

/// Reflections: `(flip_x, flip_y)` selects the quadrant being reduced to
/// the first: Q1 = (false, false), Q2 = (true, false), Q3 = (true, true),
/// Q4 = (false, true).
const REFLECTIONS: [(bool, bool); 4] = [(false, false), (true, false), (true, true), (false, true)];

/// Builds the global skyline diagram using the given quadrant engine for
/// each of the four reflections, with the process-wide parallel
/// configuration (`SKYLINE_THREADS`).
pub fn build(dataset: &Dataset, engine: QuadrantEngine) -> CellDiagram {
    build_with(dataset, engine, &ParallelConfig::from_env())
}

/// Builds the global skyline diagram with an explicit parallel
/// configuration. `threads = 0` is the sequential reference path; all
/// configurations produce identical diagrams (differentially tested).
pub fn build_with(dataset: &Dataset, engine: QuadrantEngine, cfg: &ParallelConfig) -> CellDiagram {
    let _build = crate::span!("global.build", dataset.len() as u64);
    let _mem = crate::telemetry::mem::phase(crate::telemetry::mem::MemPhase::GlobalBuild);
    crate::counter!("global.builds").add(1);
    let diagram = if cfg.is_sequential() {
        build_sequential(dataset, engine)
    } else {
        build_parallel(dataset, engine, cfg)
    };
    // Debug builds spot-check the output against the from-scratch oracle and
    // the Definition 2 union (see `crate::invariants`); release builds pay
    // nothing.
    #[cfg(debug_assertions)]
    if let Err(violation) = crate::invariants::validate_cell_diagram(
        dataset,
        &diagram,
        crate::invariants::CellSemantics::Global,
        crate::invariants::DEBUG_SAMPLE_BUDGET,
    ) {
        debug_assert!(
            false,
            "global diagram ({} engine): {violation}",
            engine.name()
        );
    }
    diagram
}

/// The dataset reflected through the selected axes; reflection stays within
/// the coordinate bound, so construction cannot fail.
fn reflect(dataset: &Dataset, flip_x: bool, flip_y: bool) -> Dataset {
    Dataset::from_coords(dataset.points().iter().map(|p| {
        (
            if flip_x { -p.x } else { p.x },
            if flip_y { -p.y } else { p.y },
        )
    }))
    .expect("reflection preserves dataset validity and coordinate bounds")
}

/// The four per-quadrant diagrams re-encoded as bitset arenas (one block per
/// interned result, id-for-id), ready for word-parallel cell unions.
fn encode_quadrants(quadrants: &[CellDiagram], words: usize) -> Vec<Vec<u64>> {
    let _encode = crate::span!("global.encode", quadrants.len() as u64);
    quadrants
        .iter()
        .map(|q| encode_results(q.results(), words))
        .collect()
}

/// The per-quadrant result block for cell `(i, j)` of the original grid.
#[inline]
fn quadrant_block<'a>(
    quadrants: &[CellDiagram],
    arenas: &'a [Vec<u64>],
    grid: &CellGrid,
    words: usize,
    q: usize,
    i: u32,
    j: u32,
) -> (&'a [u64], ResultId) {
    let (flip_x, flip_y) = REFLECTIONS[q];
    let ri = if flip_x { grid.nx() - i } else { i };
    let rj = if flip_y { grid.ny() - j } else { j };
    let rid = quadrants[q].result_id((ri, rj));
    let start = rid.0 as usize * words;
    (&arenas[q][start..start + words], rid)
}

/// The deterministic sequential reference: four sequential quadrant builds,
/// then one word-parallel union pass over the full grid.
fn build_sequential(dataset: &Dataset, engine: QuadrantEngine) -> CellDiagram {
    let grid = CellGrid::new(dataset);
    let words = words_for(dataset.len());
    let width = grid.nx() as usize + 1;
    let height = grid.ny() as usize + 1;

    let quadrants: Vec<CellDiagram> = REFLECTIONS
        .iter()
        .map(|&(flip_x, flip_y)| {
            engine.build_with(
                &reflect(dataset, flip_x, flip_y),
                &ParallelConfig::sequential(),
            )
        })
        .collect();
    let arenas = encode_quadrants(&quadrants, words);

    let _union = crate::span!("global.union", (width * height) as u64);
    let mut bits = BitsetInterner::new(words);
    let mut scratch = vec![0u64; words];
    let mut cells = Vec::with_capacity(width * height);
    for j in 0..height as u32 {
        for i in 0..width as u32 {
            let blocks: [&[u64]; 4] = std::array::from_fn(|q| {
                quadrant_block(&quadrants, &arenas, &grid, words, q, i, j).0
            });
            union4_words(blocks[0], blocks[1], blocks[2], blocks[3], &mut scratch);
            cells.push(ResultId(bits.intern_words(&scratch)));
        }
    }
    CellDiagram::from_parts(grid, bits.to_result_interner(), cells)
}

/// The parallel engine: per-orthant fan-out, then row-banded word-parallel
/// 4-way unions memoized over unchanged result-id tuples.
fn build_parallel(dataset: &Dataset, engine: QuadrantEngine, cfg: &ParallelConfig) -> CellDiagram {
    let grid = CellGrid::new(dataset);
    let words = words_for(dataset.len());
    let width = grid.nx() as usize + 1;
    let height = grid.ny() as usize + 1;

    // Per-orthant fan-out; each orthant build keeps the caller's parallel
    // configuration so the engines' restructured parallel formulations (e.g.
    // the scanning engine's independent-row algorithm) apply inside the
    // workers too.
    let quadrants: Vec<CellDiagram> = {
        let _fanout = crate::span!("global.fanout", 4);
        parallel::map(cfg, &REFLECTIONS, |&(flip_x, flip_y)| {
            let _orthant = crate::span!("global.orthant");
            engine.build_with(&reflect(dataset, flip_x, flip_y), cfg)
        })
    };
    let arenas = encode_quadrants(&quadrants, words);

    let rows: Vec<BitRuns> = {
        let _union = crate::span!("global.union", height as u64);
        parallel::map_indexed(cfg, height, |j| {
            let j = j as u32;
            let mut runs = BitRuns::new(words);
            let mut prev_tuple: Option<[ResultId; 4]> = None;
            let mut out = vec![0u64; words];
            for i in 0..width as u32 {
                let mut blocks: [&[u64]; 4] = [&[]; 4];
                let tuple: [ResultId; 4] = std::array::from_fn(|q| {
                    let (block, rid) = quadrant_block(&quadrants, &arenas, &grid, words, q, i, j);
                    blocks[q] = block;
                    rid
                });
                if prev_tuple == Some(tuple) {
                    crate::counter!("global.union.memo_hit").add(1);
                    runs.push_repeat(1);
                    continue;
                }
                crate::counter!("global.union.memo_miss").add(1);
                prev_tuple = Some(tuple);
                union4_words(blocks[0], blocks[1], blocks[2], blocks[3], &mut out);
                runs.push_words(&out);
            }
            runs
        })
    };

    let _intern = crate::span!("global.intern", rows.len() as u64);
    let mut bits = BitsetInterner::new(words);
    let mut cells = Vec::with_capacity(width * height);
    for row in &rows {
        row.intern_into(&mut bits, &mut cells);
    }
    CellDiagram::from_parts(grid, bits.to_result_interner(), cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{global_skyline, global_skyline_naive};

    #[test]
    fn matches_from_scratch_queries_on_hotel_example() {
        let ds = crate::test_data::hotel_dataset();
        let d = build(&ds, QuadrantEngine::Baseline);
        for cell in d.grid().cells() {
            // Compare in doubled coordinates so every cell has an exact
            // interior representative.
            let doubled =
                Dataset::from_coords(ds.points().iter().map(|p| (2 * p.x, 2 * p.y))).unwrap();
            let q = d.grid().representative_doubled(cell);
            assert_eq!(
                d.result(cell),
                global_skyline(&doubled, q).as_slice(),
                "cell {cell:?}"
            );
        }
    }

    #[test]
    fn paper_global_result() {
        // For q = (10, 80): {p1, p3, p6, p8, p9, p10, p11}.
        let ds = crate::test_data::hotel_dataset();
        let d = build(&ds, QuadrantEngine::Sweeping);
        assert_eq!(
            d.query(crate::geometry::Point::new(10, 80)),
            global_skyline_naive(&ds, crate::geometry::Point::new(10, 80)).as_slice()
        );
    }

    #[test]
    fn all_engines_agree_on_global() {
        let ds = crate::test_data::lcg_dataset(30, 40, 11);
        let reference = build(&ds, QuadrantEngine::Baseline);
        for engine in QuadrantEngine::ALL {
            assert!(
                build(&ds, engine).same_results(&reference),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn global_contains_quadrant_everywhere() {
        let ds = crate::test_data::lcg_dataset(25, 100, 3);
        let global = build(&ds, QuadrantEngine::Baseline);
        let quadrant = QuadrantEngine::Baseline.build(&ds);
        for cell in global.grid().cells() {
            let g = global.result(cell);
            for id in quadrant.result(cell) {
                assert!(g.contains(id), "quadrant point {id} missing at {cell:?}");
            }
        }
    }

    #[test]
    fn parallel_engine_matches_sequential_reference() {
        for seed in 0..3 {
            let ds = crate::test_data::lcg_dataset(24, 30, seed);
            let reference =
                build_with(&ds, QuadrantEngine::Sweeping, &ParallelConfig::sequential());
            for threads in [1, 2, 3, 8] {
                let parallel_diag = build_with(
                    &ds,
                    QuadrantEngine::Sweeping,
                    &ParallelConfig::with_threads(threads),
                );
                assert!(
                    parallel_diag.same_results(&reference),
                    "threads = {threads}, seed = {seed}"
                );
            }
        }
    }

    #[test]
    fn word_boundary_sizes_agree_across_engines() {
        // 63/64/65 points straddle the bitset block boundary; the global
        // union must agree with the baseline on both sides of it.
        for n in [63, 64, 65] {
            let ds = crate::test_data::lcg_dataset(n, 300, 21);
            let reference = build(&ds, QuadrantEngine::Baseline);
            assert!(
                build_with(
                    &ds,
                    QuadrantEngine::Scanning,
                    &ParallelConfig::with_threads(4)
                )
                .same_results(&reference),
                "n = {n}"
            );
        }
    }
}
