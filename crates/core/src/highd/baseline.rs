//! The baseline high-dimensional diagram algorithm (Section IV-E.1).
//!
//! For each of the `O(n^d)` hyper-cells: filter the points lying in the
//! cell's first orthant and compute their skyline. `O(n^{d+1})`-class, the
//! reference the incremental engines are validated against.

use crate::geometry::{DatasetD, PointId};
use crate::highd::{HighDDiagram, OrthantGrid};
use crate::result_set::ResultInterner;
use crate::skyline::bnl;

/// Builds the d-dimensional quadrant diagram with the per-cell baseline.
pub fn build(dataset: &DatasetD) -> HighDDiagram {
    let grid = OrthantGrid::new(dataset);
    let mut results = ResultInterner::new();
    let total = grid.cell_count();
    let mut cells = Vec::with_capacity(total);
    let all: Vec<PointId> = (0..dataset.len() as u32).map(PointId).collect();

    let mut cell = vec![0u32; grid.dims()];
    for idx in 0..total {
        // Mixed-radix decode without re-dividing every time.
        if idx > 0 {
            for (c, &w) in cell.iter_mut().zip(grid.widths()) {
                *c += 1;
                if (*c as usize) < w {
                    break;
                }
                *c = 0;
            }
        }
        let candidates = all.iter().copied().filter(|&id| grid.in_orthant(id, &cell));
        let sky = bnl::skyline_d_subset(dataset, candidates);
        cells.push(results.intern_sorted(sky));
    }

    HighDDiagram::from_parts(grid, results, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PointD;

    #[test]
    fn origin_cell_is_dataset_skyline() {
        let ds = DatasetD::from_rows([[1i64, 9, 9], [9, 1, 9], [9, 9, 1], [9, 9, 9]]).unwrap();
        let d = build(&ds);
        assert_eq!(d.result(&[0, 0, 0]), &[PointId(0), PointId(1), PointId(2)]);
    }

    #[test]
    fn top_corner_cells_are_empty() {
        let ds = DatasetD::from_rows([[1i64, 2, 3], [4, 5, 6]]).unwrap();
        let d = build(&ds);
        let top: Vec<u32> = d.grid().widths().iter().map(|&w| w as u32 - 1).collect();
        assert!(d.result(&top).is_empty());
    }

    #[test]
    fn cell_results_match_naive_orthant_queries() {
        let ds = DatasetD::from_rows([[3i64, 1, 4], [1, 5, 9], [2, 6, 5], [5, 3, 5], [4, 4, 4]])
            .unwrap();
        let d = build(&ds);
        // Spot-check every cell against a filtered naive skyline at the
        // cell's doubled representative.
        for idx in 0..d.grid().cell_count() {
            let cell = d.grid().cell_from_linear(idx);
            let rep = d.grid().representative_doubled(&cell);
            let in_orthant: Vec<PointId> = ds
                .iter()
                .filter(|(_, p)| (0..3).all(|k| 2 * p.coord(k) > rep.coord(k)))
                .map(|(id, _)| id)
                .collect();
            let expected = crate::skyline::bnl::skyline_d_naive(&ds, &in_orthant);
            assert_eq!(d.result(&cell), expected.as_slice(), "cell {cell:?}");
        }
        let q = PointD::new(vec![0, 0, 0]);
        assert_eq!(d.query(&q).len(), d.result(&d.grid().cell_of(&q)).len());
    }
}
