//! The high-dimensional DSG diagram algorithm (Section IV-E.2).
//!
//! Identical principle to the planar version: sweeping the cell lattice in
//! lexicographic order, every step deletes the points on one crossed axis
//! hyperplane, and deletions remain dominator-closed, so parent-counting on
//! the directed skyline graph maintains the skyline incrementally. The
//! recursion keeps one [`DeletionSweep`] snapshot per dimension level — the
//! paper's per-row `tempDSG` copies, generalized.

use crate::dsg::{DeletionSweep, DirectedSkylineGraph};
use crate::geometry::DatasetD;
use crate::highd::{HighDDiagram, OrthantGrid};
use crate::result_set::{ResultId, ResultInterner};

/// Builds the d-dimensional quadrant diagram with the DSG deletion sweep.
pub fn build(dataset: &DatasetD) -> HighDDiagram {
    let grid = OrthantGrid::new(dataset);
    let dsg = DirectedSkylineGraph::new_d(dataset);
    let mut results = ResultInterner::new();
    let mut cells = vec![results.empty(); grid.cell_count()];

    let mut state = DeletionSweep::new(&dsg);
    recurse(
        &grid,
        &dsg,
        &mut state,
        grid.dims(),
        0,
        &mut results,
        &mut cells,
    );

    HighDDiagram::from_parts(grid, results, cells)
}

/// Sweeps dimension `level - 1` (levels count down so that dimension 0 is
/// the innermost, matching the row-major linear layout): for each slab,
/// recurse with a snapshot, then cross the slab's hyperplane.
fn recurse(
    grid: &OrthantGrid,
    dsg: &DirectedSkylineGraph,
    state: &mut DeletionSweep,
    level: usize,
    base: usize,
    results: &mut ResultInterner,
    cells: &mut [ResultId],
) {
    let dim = level - 1;
    let width = grid.widths()[dim];
    let stride: usize = grid.widths()[..dim].iter().product();
    if level == 1 {
        // Innermost dimension: record, then advance in place.
        for c in 0..width {
            cells[base + c] = results.intern_sorted(state.skyline_ids());
            if c + 1 < width {
                state.remove_points(dsg, grid.points_with_rank(dim, c as u32));
            }
        }
    } else {
        for c in 0..width {
            let mut child = state.clone();
            recurse(
                grid,
                dsg,
                &mut child,
                level - 1,
                base + c * stride,
                results,
                cells,
            );
            if c + 1 < width {
                state.remove_points(dsg, grid.points_with_rank(dim, c as u32));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::highd::baseline;

    fn lcg(n: usize, d: usize, domain: i64, seed: u64) -> DatasetD {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % domain as u64) as i64
        };
        DatasetD::from_rows((0..n).map(|_| (0..d).map(|_| next()).collect::<Vec<_>>())).unwrap()
    }

    #[test]
    fn matches_baseline_3d() {
        for seed in 0..3 {
            let ds = lcg(12, 3, 20, seed);
            assert!(
                build(&ds).same_results(&baseline::build(&ds)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_baseline_4d() {
        let ds = lcg(8, 4, 10, 9);
        assert!(build(&ds).same_results(&baseline::build(&ds)));
    }

    #[test]
    fn matches_baseline_3d_with_ties() {
        for seed in 0..3 {
            let ds = lcg(12, 3, 4, 30 + seed);
            assert!(
                build(&ds).same_results(&baseline::build(&ds)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_planar_dsg_at_d2() {
        let planar = crate::test_data::hotel_dataset();
        let hd = build(&planar.to_dataset_d());
        let flat = crate::quadrant::dsg_algorithm::build(&planar);
        for cell in flat.grid().cells() {
            assert_eq!(hd.result(&[cell.0, cell.1]), flat.result(cell), "{cell:?}");
        }
    }
}
