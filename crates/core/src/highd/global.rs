//! d-dimensional **global** skyline diagrams: per-cell union of the `2^d`
//! per-orthant skylines, built by running a quadrant engine on every axis
//! reflection of the dataset — the direct generalization of
//! [`crate::global`] used by the high-dimensional dynamic subset engine.

use crate::geometry::{DatasetD, PointD, PointId};
use crate::highd::{HighDDiagram, HighDEngine, OrthantGrid};
use crate::result_set::ResultInterner;

/// Builds the d-dimensional global skyline diagram with the given quadrant
/// engine for each of the `2^d` reflections.
pub fn build(dataset: &DatasetD, engine: HighDEngine) -> HighDDiagram {
    let dims = dataset.dims();
    let grid = OrthantGrid::new(dataset);
    let total = grid.cell_count();

    let reflections: Vec<HighDDiagram> = (0..(1u32 << dims))
        .map(|mask| {
            let reflected = DatasetD::new(
                dataset
                    .points()
                    .iter()
                    .map(|p| {
                        PointD::new(
                            (0..dims)
                                .map(|k| {
                                    if mask & (1 << k) != 0 {
                                        -p.coord(k)
                                    } else {
                                        p.coord(k)
                                    }
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            )
            .expect("reflection preserves validity");
            engine.build(&reflected)
        })
        .collect();

    let mut results = ResultInterner::new();
    let mut cells = Vec::with_capacity(total);
    let mut union: Vec<PointId> = Vec::new();
    for idx in 0..total {
        let cell = grid.cell_from_linear(idx);
        union.clear();
        for (mask, diagram) in reflections.iter().enumerate() {
            let reflected_cell: Vec<u32> = (0..dims)
                .map(|k| {
                    if mask & (1 << k) != 0 {
                        grid.lines(k).len() as u32 - cell[k]
                    } else {
                        cell[k]
                    }
                })
                .collect();
            union.extend_from_slice(diagram.result(&reflected_cell));
        }
        union.sort_unstable();
        union.dedup();
        cells.push(results.intern_sorted(union.clone()));
    }

    HighDDiagram::from_parts(grid, results, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::global_skyline_d;

    fn lcg(n: usize, d: usize, domain: i64, seed: u64) -> DatasetD {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % domain as u64) as i64
        };
        DatasetD::from_rows((0..n).map(|_| (0..d).map(|_| next()).collect::<Vec<_>>())).unwrap()
    }

    #[test]
    fn matches_from_scratch_at_representatives_3d() {
        let ds = lcg(10, 3, 25, 1);
        let d = build(&ds, HighDEngine::Sweeping);
        let doubled = DatasetD::new(
            ds.points()
                .iter()
                .map(|p| PointD::new(p.coords().iter().map(|&c| 2 * c).collect()))
                .collect(),
        )
        .unwrap();
        for idx in (0..d.grid().cell_count()).step_by(5) {
            let cell = d.grid().cell_from_linear(idx);
            let rep = d.grid().representative_doubled(&cell);
            assert_eq!(
                d.result(&cell),
                global_skyline_d(&doubled, &rep).as_slice(),
                "cell {cell:?}"
            );
        }
    }

    #[test]
    fn engine_choice_does_not_matter() {
        let ds = lcg(9, 3, 15, 4);
        let reference = build(&ds, HighDEngine::Baseline);
        for engine in HighDEngine::ALL {
            assert!(
                build(&ds, engine).same_results(&reference),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn d2_matches_planar_global() {
        let planar = crate::test_data::hotel_dataset();
        let hd = build(&planar.to_dataset_d(), HighDEngine::Scanning);
        let flat = crate::global::build(&planar, crate::quadrant::QuadrantEngine::Scanning);
        for cell in flat.grid().cells() {
            assert_eq!(hd.result(&[cell.0, cell.1]), flat.result(cell), "{cell:?}");
        }
    }

    #[test]
    fn global_contains_orthant_everywhere() {
        let ds = lcg(10, 3, 20, 7);
        let global = build(&ds, HighDEngine::DirectedSkylineGraph);
        let orthant = HighDEngine::DirectedSkylineGraph.build(&ds);
        for idx in 0..global.grid().cell_count() {
            let cell = global.grid().cell_from_linear(idx);
            let g = global.result(&cell);
            for id in orthant.result(&cell) {
                assert!(g.contains(id), "{id} missing at {cell:?}");
            }
        }
    }
}
