//! High-dimensional quadrant skyline diagrams (paper Section IV-E).
//!
//! The cell grid generalizes directly: each dimension contributes an axis
//! hyperplane per distinct coordinate, producing `∏(len_k + 1) = O(n^d)`
//! hyper-cells; cell `(c_1, …, c_d)`'s first orthant holds the points with
//! `rank_k ≥ c_k` in every dimension. Three engines generalize from the
//! plane directly: the per-cell [`baseline`], the DSG deletion sweep
//! ([`dsg_algorithm`]), and the neighbor recurrence ([`scanning`]). The
//! paper leaves the sweeping algorithm's extension to d > 2 as future
//! work; [`sweeping`] resolves it via the corner-key characterization of
//! polyominoes.

pub mod baseline;
pub mod dsg_algorithm;
pub mod global;
pub mod scanning;
pub mod sweeping;

use std::collections::HashMap;

use crate::geometry::{Coord, DatasetD, PointD, PointId};
use crate::result_set::{ResultId, ResultInterner};

/// The grid of hyper-cells induced by a d-dimensional dataset.
#[derive(Clone, Debug)]
pub struct OrthantGrid {
    /// Per dimension: sorted distinct coordinates.
    lines: Vec<Vec<Coord>>,
    /// `ranks[k][p]`: rank of point `p`'s k-th coordinate.
    ranks: Vec<Vec<u32>>,
    /// Per dimension and rank: the points with that rank.
    by_rank: Vec<Vec<Vec<PointId>>>,
    /// Points at exact grid corners, keyed by linear cell index of the cell
    /// whose upper corner they form.
    at_corner: HashMap<usize, Vec<PointId>>,
    /// `widths[k] = lines[k].len() + 1`.
    widths: Vec<usize>,
    /// Row-major strides for linear indexing (dimension 0 fastest).
    strides: Vec<usize>,
}

impl OrthantGrid {
    /// Builds the grid for a d-dimensional dataset.
    pub fn new(dataset: &DatasetD) -> Self {
        let dims = dataset.dims();
        let mut lines = Vec::with_capacity(dims);
        let mut ranks = Vec::with_capacity(dims);
        let mut by_rank = Vec::with_capacity(dims);
        for k in 0..dims {
            let mut vals: Vec<Coord> = dataset.points().iter().map(|p| p.coord(k)).collect();
            vals.sort_unstable();
            vals.dedup();
            let mut rk = Vec::with_capacity(dataset.len());
            let mut groups = vec![Vec::new(); vals.len()];
            for (id, p) in dataset.iter() {
                let r = vals.binary_search(&p.coord(k)).expect("coordinate present") as u32;
                rk.push(r);
                groups[r as usize].push(id);
            }
            lines.push(vals);
            ranks.push(rk);
            by_rank.push(groups);
        }
        let widths: Vec<usize> = lines.iter().map(|l| l.len() + 1).collect();
        let mut strides = vec![1usize; dims];
        for k in 1..dims {
            strides[k] = strides[k - 1] * widths[k - 1];
        }
        let mut at_corner: HashMap<usize, Vec<PointId>> = HashMap::new();
        for (id, _) in dataset.iter() {
            let mut idx = 0usize;
            for k in 0..dims {
                idx += ranks[k][id.index()] as usize * strides[k];
            }
            at_corner.entry(idx).or_default().push(id);
        }
        OrthantGrid {
            lines,
            ranks,
            by_rank,
            at_corner,
            widths,
            strides,
        }
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lines.len()
    }

    /// Cell-count per dimension (`len_k + 1`).
    #[inline]
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// Total number of hyper-cells.
    pub fn cell_count(&self) -> usize {
        self.widths.iter().product()
    }

    /// Sorted distinct coordinates of a dimension.
    #[inline]
    pub fn lines(&self, dim: usize) -> &[Coord] {
        &self.lines[dim]
    }

    /// Rank of a point in a dimension.
    #[inline]
    pub fn rank(&self, dim: usize, id: PointId) -> u32 {
        self.ranks[dim][id.index()]
    }

    /// Points with the given rank in the given dimension.
    #[inline]
    pub fn points_with_rank(&self, dim: usize, rank: u32) -> &[PointId] {
        &self.by_rank[dim][rank as usize]
    }

    /// Points exactly at the upper corner of the cell with this linear
    /// index (i.e. with `rank_k == cell_k` in every dimension).
    pub fn points_at_corner(&self, linear: usize) -> &[PointId] {
        self.at_corner.get(&linear).map_or(&[], |v| v.as_slice())
    }

    /// Linear index of a multi-index cell.
    pub fn linear_index(&self, cell: &[u32]) -> usize {
        debug_assert_eq!(cell.len(), self.dims());
        cell.iter()
            .zip(&self.strides)
            .map(|(&c, &s)| c as usize * s)
            .sum()
    }

    /// Multi-index of a linear cell index.
    pub fn cell_from_linear(&self, mut idx: usize) -> Vec<u32> {
        let mut cell = vec![0u32; self.dims()];
        for (c, &w) in cell.iter_mut().zip(&self.widths) {
            *c = (idx % w) as u32;
            idx /= w;
        }
        cell
    }

    /// The cell containing a query point; on-hyperplane queries go to the
    /// greater side, as in the planar grid.
    pub fn cell_of(&self, q: &PointD) -> Vec<u32> {
        (0..self.dims())
            .map(|k| self.lines[k].partition_point(|&v| v <= q.coord(k)) as u32)
            .collect()
    }

    /// True iff point `id` lies in the first orthant of cell `cell`.
    pub fn in_orthant(&self, id: PointId, cell: &[u32]) -> bool {
        (0..self.dims()).all(|k| self.ranks[k][id.index()] >= cell[k])
    }

    /// An interior sample of a cell, in doubled coordinates.
    pub fn representative_doubled(&self, cell: &[u32]) -> PointD {
        PointD::new(
            (0..self.dims())
                .map(|k| crate::geometry::slab_sample_doubled(&self.lines[k], cell[k]))
                .collect(),
        )
    }
}

/// A high-dimensional quadrant skyline diagram at cell granularity.
#[derive(Clone, Debug)]
#[must_use]
pub struct HighDDiagram {
    grid: OrthantGrid,
    results: ResultInterner,
    cells: Vec<ResultId>,
}

impl HighDDiagram {
    pub(crate) fn from_parts(
        grid: OrthantGrid,
        results: ResultInterner,
        cells: Vec<ResultId>,
    ) -> Self {
        debug_assert_eq!(cells.len(), grid.cell_count());
        HighDDiagram {
            grid,
            results,
            cells,
        }
    }

    /// The underlying grid.
    #[inline]
    pub fn grid(&self) -> &OrthantGrid {
        &self.grid
    }

    /// The skyline result of a cell.
    pub fn result(&self, cell: &[u32]) -> &[PointId] {
        self.results.get(self.cells[self.grid.linear_index(cell)])
    }

    /// The skyline result for an arbitrary query point.
    pub fn query(&self, q: &PointD) -> &[PointId] {
        self.result(&self.grid.cell_of(q))
    }

    /// The interner holding the distinct results.
    #[inline]
    pub fn results(&self) -> &ResultInterner {
        &self.results
    }

    /// True iff two diagrams assign the same result to every cell.
    pub fn same_results(&self, other: &HighDDiagram) -> bool {
        self.grid.widths == other.grid.widths
            && (0..self.grid.dims()).all(|k| self.grid.lines(k) == other.grid.lines(k))
            && self
                .cells
                .iter()
                .zip(&other.cells)
                .all(|(&a, &b)| self.results.get(a) == other.results.get(b))
    }
}

/// Selector for the high-dimensional engines.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum HighDEngine {
    /// Per-cell skyline (generalized Algorithm 1).
    Baseline,
    /// DSG deletion sweep (generalized Algorithm 2).
    DirectedSkylineGraph,
    /// Neighbor recurrence, union form (generalized Algorithm 3). Default.
    #[default]
    Scanning,
    /// Neighbor recurrence, the paper's signed inclusion–exclusion form —
    /// kept for the E8b ablation.
    ScanningInclusionExclusion,
    /// Corner-key sweeping — this library's resolution of the paper's
    /// future-work item (see [`sweeping`]): `O(d·n^d)` lattice work plus
    /// one skyline evaluation per polyomino.
    Sweeping,
}

impl HighDEngine {
    /// All engines, for cross-validation and benches.
    pub const ALL: [HighDEngine; 5] = [
        HighDEngine::Baseline,
        HighDEngine::DirectedSkylineGraph,
        HighDEngine::Scanning,
        HighDEngine::ScanningInclusionExclusion,
        HighDEngine::Sweeping,
    ];

    /// Short stable name for bench ids.
    pub fn name(self) -> &'static str {
        match self {
            HighDEngine::Baseline => "baseline",
            HighDEngine::DirectedSkylineGraph => "dsg",
            HighDEngine::Scanning => "scanning",
            HighDEngine::ScanningInclusionExclusion => "scanning-ie",
            HighDEngine::Sweeping => "sweeping",
        }
    }

    /// Builds the diagram with this engine.
    pub fn build(self, dataset: &DatasetD) -> HighDDiagram {
        match self {
            HighDEngine::Baseline => baseline::build(dataset),
            HighDEngine::DirectedSkylineGraph => dsg_algorithm::build(dataset),
            HighDEngine::Scanning => scanning::build(dataset),
            HighDEngine::ScanningInclusionExclusion => scanning::build_inclusion_exclusion(dataset),
            HighDEngine::Sweeping => sweeping::build(dataset),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Dataset;

    fn lcg_dataset_d(n: usize, d: usize, domain: i64, seed: u64) -> DatasetD {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % domain as u64) as i64
        };
        DatasetD::from_rows((0..n).map(|_| (0..d).map(|_| next()).collect::<Vec<_>>()))
            .expect("n > 0")
    }

    #[test]
    fn grid_roundtrips() {
        let ds = lcg_dataset_d(8, 3, 20, 1);
        let g = OrthantGrid::new(&ds);
        for idx in 0..g.cell_count() {
            let cell = g.cell_from_linear(idx);
            assert_eq!(g.linear_index(&cell), idx);
        }
        assert_eq!(g.dims(), 3);
    }

    #[test]
    fn orthant_membership_matches_ranks() {
        let ds = lcg_dataset_d(10, 3, 10, 2);
        let g = OrthantGrid::new(&ds);
        let cell = vec![1u32, 2, 0];
        for (id, p) in ds.iter() {
            let expected = (0..3).all(|k| {
                let boundary = cell[k].checked_sub(1).map(|r| g.lines(k)[r as usize]);
                boundary.map_or(true, |b| p.coord(k) > b)
            });
            assert_eq!(g.in_orthant(id, &cell), expected, "{id}");
        }
    }

    #[test]
    fn all_engines_agree_3d() {
        let ds = lcg_dataset_d(12, 3, 15, 3);
        let reference = HighDEngine::Baseline.build(&ds);
        for engine in HighDEngine::ALL {
            assert!(
                engine.build(&ds).same_results(&reference),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn d2_matches_planar_engines() {
        let planar = crate::test_data::hotel_dataset();
        let ds = planar.to_dataset_d();
        let hd = HighDEngine::Baseline.build(&ds);
        let flat = crate::quadrant::QuadrantEngine::Baseline.build(&planar);
        for cell in flat.grid().cells() {
            assert_eq!(hd.result(&[cell.0, cell.1]), flat.result(cell), "{cell:?}");
        }
    }

    #[test]
    fn query_matches_cell_lookup() {
        let ds = lcg_dataset_d(9, 3, 12, 4);
        let d = HighDEngine::Scanning.build(&ds);
        let q = PointD::new(vec![5, 5, 5]);
        let cell = d.grid().cell_of(&q);
        assert_eq!(d.query(&q), d.result(&cell));
    }

    #[test]
    fn hotel_dataset_is_reused_consistently() {
        // Guard: the 2-d fixture and its lift agree on the dataset skyline.
        let planar = crate::test_data::hotel_dataset();
        let lifted = planar.to_dataset_d();
        assert_eq!(
            crate::skyline::sort_sweep::skyline_2d(&planar),
            crate::skyline::bnl::skyline_d(&lifted)
        );
        let _ = Dataset::from_coords([(0, 0)]).unwrap();
    }
}
