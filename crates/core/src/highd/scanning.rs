//! The high-dimensional scanning diagram algorithm (Section IV-E.3).
//!
//! Cells are scanned in decreasing lexicographic order so every upper
//! neighbor is known. Two candidate-combination rules are provided:
//!
//! - [`build`] — the **union** form, provably exact in every dimension:
//!   a skyline point of cell `D` with `rank_k > D_k` in some dimension `k`
//!   survives into `Sky(C_{D+e_k})` (the orthant only shrinks), so
//!   `Sky(C_D) ⊆ ⋃_k Sky(C_{D+e_k}) ∪ corner(D)`; and any candidate
//!   dominated within the orthant is dominated by a candidate (walk the
//!   dominance chain to a minimal dominator, which is skyline and hence a
//!   candidate). One minima pass over the candidates finishes the cell.
//! - [`build_inclusion_exclusion`] — the paper's signed multiset form over
//!   all `2^d - 1` upper neighbors (`+` for an odd number of `+1` offsets,
//!   `-` for even), with multiplicities clamped at zero and an outer skyline
//!   pass, as the paper specifies for `d > 2`. Kept for the E8b ablation;
//!   tests assert it agrees with the union form.
//!
//! Cells with data points at their upper corner short-circuit to exactly
//! those points, as in the planar engine.

use std::collections::HashMap;

use crate::geometry::{DatasetD, PointId};
use crate::highd::{HighDDiagram, OrthantGrid};
use crate::result_set::ResultInterner;
use crate::skyline::bnl;

/// Builds the d-dimensional quadrant diagram with the union-form scan.
pub fn build(dataset: &DatasetD) -> HighDDiagram {
    build_impl(dataset, false)
}

/// Builds with the paper's signed inclusion–exclusion combination.
pub fn build_inclusion_exclusion(dataset: &DatasetD) -> HighDDiagram {
    build_impl(dataset, true)
}

fn build_impl(dataset: &DatasetD, inclusion_exclusion: bool) -> HighDDiagram {
    let grid = OrthantGrid::new(dataset);
    let dims = grid.dims();
    let total = grid.cell_count();
    let mut results = ResultInterner::new();
    let mut cells = vec![results.empty(); total];

    // Strides per dimension for neighbor lookups.
    let strides: Vec<usize> = (0..dims)
        .map(|k| grid.widths()[..k].iter().product())
        .collect();

    // Precompute the signed offset list for the IE form: all nonzero
    // 0/1-vectors with sign +1 for odd popcount, -1 for even.
    let offsets: Vec<(u32, usize, i32)> = (1..(1u32 << dims))
        .map(|mask| {
            let lin: usize = (0..dims)
                .filter(|&k| mask & (1 << k) != 0)
                .map(|k| strides[k])
                .sum();
            let sign = if mask.count_ones() % 2 == 1 { 1 } else { -1 };
            (mask, lin, sign)
        })
        .collect();

    let mut cell = vec![0u32; dims];
    let mut counts: HashMap<PointId, i32> = HashMap::new();
    for idx in (0..total).rev() {
        // Decode the multi-index (cheap: amortized constant per step when
        // walking backwards, but a plain decode keeps the code obvious).
        let mut rem = idx;
        for (c, &w) in cell.iter_mut().zip(grid.widths()) {
            *c = (rem % w) as u32;
            rem /= w;
        }

        let corner = grid.points_at_corner(idx);
        if !corner.is_empty() {
            cells[idx] = results.intern_unsorted(corner.to_vec());
            continue;
        }

        let rid = if inclusion_exclusion {
            counts.clear();
            for &(mask, lin, sign) in &offsets {
                // A neighbor is out of bounds (hence empty) when any offset
                // dimension already sits at its maximum index.
                if (0..dims)
                    .any(|k| mask & (1 << k) != 0 && cell[k] as usize == grid.widths()[k] - 1)
                {
                    continue;
                }
                for &id in results.get(cells[idx + lin]) {
                    *counts.entry(id).or_insert(0) += sign;
                }
            }
            let kept: Vec<PointId> = counts
                .iter()
                .filter(|&(_, &c)| c >= 1)
                .map(|(&id, _)| id)
                .collect();
            let sky = bnl::skyline_d_subset(dataset, kept);
            results.intern_sorted(sky)
        } else {
            let mut candidates: Vec<PointId> = Vec::new();
            for k in 0..dims {
                if (cell[k] as usize) < grid.widths()[k] - 1 {
                    candidates.extend_from_slice(results.get(cells[idx + strides[k]]));
                }
            }
            candidates.sort_unstable();
            candidates.dedup();
            let sky = bnl::skyline_d_subset(dataset, candidates);
            results.intern_sorted(sky)
        };
        cells[idx] = rid;
    }

    HighDDiagram::from_parts(grid, results, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::highd::baseline;

    fn lcg(n: usize, d: usize, domain: i64, seed: u64) -> DatasetD {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % domain as u64) as i64
        };
        DatasetD::from_rows((0..n).map(|_| (0..d).map(|_| next()).collect::<Vec<_>>())).unwrap()
    }

    #[test]
    fn union_form_matches_baseline_3d() {
        for seed in 0..3 {
            let ds = lcg(12, 3, 20, seed);
            assert!(
                build(&ds).same_results(&baseline::build(&ds)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn ie_form_matches_baseline_3d() {
        for seed in 0..3 {
            let ds = lcg(12, 3, 20, seed);
            assert!(
                build_inclusion_exclusion(&ds).same_results(&baseline::build(&ds)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn both_forms_match_baseline_4d() {
        let ds = lcg(8, 4, 10, 5);
        let reference = baseline::build(&ds);
        assert!(build(&ds).same_results(&reference));
        assert!(build_inclusion_exclusion(&ds).same_results(&reference));
    }

    #[test]
    fn tie_heavy_3d() {
        for seed in 0..3 {
            let ds = lcg(12, 3, 3, 60 + seed);
            let reference = baseline::build(&ds);
            assert!(build(&ds).same_results(&reference), "seed {seed}");
            assert!(
                build_inclusion_exclusion(&ds).same_results(&reference),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_planar_scanning_at_d2() {
        let planar = crate::test_data::hotel_dataset();
        let hd = build(&planar.to_dataset_d());
        let flat = crate::quadrant::scanning::build(&planar);
        for cell in flat.grid().cells() {
            assert_eq!(hd.result(&[cell.0, cell.1]), flat.result(cell), "{cell:?}");
        }
    }
}
