//! High-dimensional sweeping — the extension the paper leaves as future
//! work ("the sweeping algorithm … can not be easily extended to
//! high-dimensional space and we leave its extension to future work",
//! Section IV-E).
//!
//! The planar sweeping engine's effectiveness comes from one fact: the
//! region containing a query is determined by its **corner key** — the
//! per-dimension minimum rank over the query's first-orthant points — and
//! two rank-adjacent cells share a key iff the crossed hyperplane carries
//! no orthant point, which is also exactly when their skylines coincide
//! (the orthant point-set itself is unchanged). This characterization is
//! dimension-free:
//!
//! 1. a single sweep over the cell lattice in decreasing lexicographic
//!    order computes every cell's key with the DP
//!    `key(C) = min(key(C + e_1), …, key(C + e_d), corner(C))` —
//!    `O(d · n^d)` with *no skyline computation at all*;
//! 2. cells sharing a key form the polyominoes (hyper-polyominoes), and
//!    only one skyline evaluation per **distinct key** is needed — the
//!    count of distinct keys is the number of polyominoes, typically far
//!    below the cell count (experiment E5).
//!
//! Correctness: if adjacent cells (across the rank-`c_k` hyperplane of
//! dimension `k`) have equal keys, then no orthant point has `rank_k = c_k`
//! (otherwise the lower cell's `k`-minimum would be `c_k` and the upper
//! cell's at least `c_k + 1`), hence the two orthant sets — and skylines —
//! are identical. Conversely a face point forces different keys *and*
//! different skylines (the face's minimal point is skyline below, absent
//! above). So key-components are exactly the equal-result components the
//! generic merge would produce; the `matches_baseline` tests assert this
//! cell-for-cell.

use std::collections::HashMap;

use crate::geometry::{DatasetD, PointId};
use crate::highd::{HighDDiagram, OrthantGrid};
use crate::result_set::{ResultId, ResultInterner};
use crate::skyline::bnl;

/// Builds the d-dimensional quadrant diagram by key-sweeping: `O(d·n^d)`
/// lattice work plus one skyline evaluation per polyomino.
pub fn build(dataset: &DatasetD) -> HighDDiagram {
    let grid = OrthantGrid::new(dataset);
    let dims = grid.dims();
    let total = grid.cell_count();
    let strides: Vec<usize> = (0..dims)
        .map(|k| grid.widths()[..k].iter().product())
        .collect();

    // Phase 1: per-cell corner keys. A key is the tuple of per-dimension
    // minimum ranks over the cell's orthant points; RANK_INF marks the
    // empty orthant. Keys are stored flattened (d u32s per cell).
    const RANK_INF: u32 = u32::MAX;
    let mut keys = vec![RANK_INF; total * dims];
    let mut cell = vec![0u32; dims];
    for idx in (0..total).rev() {
        let mut rem = idx;
        for (c, &w) in cell.iter_mut().zip(grid.widths()) {
            *c = (rem % w) as u32;
            rem /= w;
        }
        let base = idx * dims;
        for k in 0..dims {
            let mut min_rank = RANK_INF;
            for (j, &stride) in strides.iter().enumerate() {
                if (cell[j] as usize) < grid.widths()[j] - 1 {
                    min_rank = min_rank.min(keys[(idx + stride) * dims + k]);
                }
            }
            keys[base + k] = min_rank;
        }
        if !grid.points_at_corner(idx).is_empty() {
            for k in 0..dims {
                keys[base + k] = keys[base + k].min(cell[k]);
            }
        }
    }

    // Phase 2: one skyline per distinct key. The key pins the orthant
    // anchor: candidates are the points with rank_k >= key_k in every
    // dimension — the *inclusive* orthant of the key's corner.
    let mut results = ResultInterner::new();
    let mut by_key: HashMap<Vec<u32>, ResultId> = HashMap::new();
    let all: Vec<PointId> = (0..dataset.len() as u32).map(PointId).collect();
    let mut cells = Vec::with_capacity(total);
    for idx in 0..total {
        let key = &keys[idx * dims..(idx + 1) * dims];
        if key[0] == RANK_INF {
            cells.push(results.empty());
            continue;
        }
        if let Some(&rid) = by_key.get(key) {
            cells.push(rid);
            continue;
        }
        let candidates = all
            .iter()
            .copied()
            .filter(|&id| (0..dims).all(|k| grid.rank(k, id) >= key[k]));
        let sky = bnl::skyline_d_subset(dataset, candidates);
        let rid = results.intern_sorted(sky);
        by_key.insert(key.to_vec(), rid);
        cells.push(rid);
    }

    HighDDiagram::from_parts(grid, results, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::highd::baseline;

    fn lcg(n: usize, d: usize, domain: i64, seed: u64) -> DatasetD {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % domain as u64) as i64
        };
        DatasetD::from_rows((0..n).map(|_| (0..d).map(|_| next()).collect::<Vec<_>>())).unwrap()
    }

    #[test]
    fn matches_baseline_3d() {
        for seed in 0..4 {
            let ds = lcg(12, 3, 25, seed);
            assert!(
                build(&ds).same_results(&baseline::build(&ds)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_baseline_4d() {
        let ds = lcg(9, 4, 12, 7);
        assert!(build(&ds).same_results(&baseline::build(&ds)));
    }

    #[test]
    fn matches_baseline_with_ties() {
        for seed in 0..4 {
            let ds = lcg(12, 3, 4, 40 + seed);
            assert!(
                build(&ds).same_results(&baseline::build(&ds)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_planar_sweeping_at_d2() {
        let planar = crate::test_data::hotel_dataset();
        let hd = build(&planar.to_dataset_d());
        let flat = crate::quadrant::QuadrantEngine::Sweeping.build(&planar);
        for cell in flat.grid().cells() {
            assert_eq!(hd.result(&[cell.0, cell.1]), flat.result(cell), "{cell:?}");
        }
    }

    #[test]
    fn skyline_evaluations_equal_distinct_results() {
        // The whole point of the extension: one evaluation per polyomino.
        let ds = lcg(14, 3, 30, 2);
        let d = build(&ds);
        // Distinct result ids in the interner (minus the pre-interned
        // empty if unused) can only come from distinct keys.
        let distinct: std::collections::HashSet<_> = (0..d.grid().cell_count())
            .map(|i| d.result(&d.grid().cell_from_linear(i)).to_vec())
            .collect();
        assert!(distinct.len() < d.grid().cell_count() / 2);
    }
}
