//! [`SkylineIndex`]: the batteries-included facade.
//!
//! Most users want "build the structure once, then ask skyline questions":
//! this module bundles the dataset, the quadrant/global cell diagrams, the
//! dynamic subcell diagram, and the merged polyomino partition behind one
//! type, with a builder to opt out of the expensive parts (the dynamic
//! diagram is `O(n⁴)` cells and only worth building for small `n`).
//!
//! ```
//! use skyline_core::index::SkylineIndex;
//! use skyline_core::geometry::{Dataset, Point};
//!
//! let ds = Dataset::from_coords([(2, 9), (5, 4), (9, 1), (4, 6)])?;
//! let index = SkylineIndex::builder().with_global(true).build(&ds);
//!
//! let q = Point::new(3, 3);
//! assert!(!index.quadrant(q).is_empty());
//! assert!(index.global(q).len() >= index.quadrant(q).len());
//! assert!(index.safe_zone(q).area() >= 1);
//! # Ok::<(), skyline_core::Error>(())
//! ```

use crate::diagram::merge::merge;
use crate::diagram::{CellDiagram, MergedDiagram, PolyominoRef};
use crate::dynamic::{DynamicEngine, SubcellDiagram};
use crate::geometry::{Dataset, Point, PointId};
use crate::parallel::ParallelConfig;
use crate::quadrant::QuadrantEngine;

/// Builder for [`SkylineIndex`]; see the module docs.
#[derive(Clone, Copy, Debug)]
pub struct SkylineIndexBuilder {
    engine: QuadrantEngine,
    dynamic_engine: DynamicEngine,
    with_global: bool,
    with_dynamic: bool,
}

impl Default for SkylineIndexBuilder {
    fn default() -> Self {
        SkylineIndexBuilder {
            engine: QuadrantEngine::Sweeping,
            dynamic_engine: DynamicEngine::Scanning,
            with_global: false,
            with_dynamic: false,
        }
    }
}

impl SkylineIndexBuilder {
    /// Quadrant/global construction engine (default: sweeping).
    pub fn engine(mut self, engine: QuadrantEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Dynamic construction engine (default: scanning).
    pub fn dynamic_engine(mut self, engine: DynamicEngine) -> Self {
        self.dynamic_engine = engine;
        self
    }

    /// Also build the global diagram (4 reflected runs; ~5–15× the
    /// quadrant cost).
    pub fn with_global(mut self, yes: bool) -> Self {
        self.with_global = yes;
        self
    }

    /// Also build the dynamic subcell diagram (`O(n⁴)` subcells — intended
    /// for n up to roughly a hundred).
    pub fn with_dynamic(mut self, yes: bool) -> Self {
        self.with_dynamic = yes;
        self
    }

    /// Builds the index.
    pub fn build(self, dataset: &Dataset) -> SkylineIndex {
        let quadrant = self.engine.build(dataset);
        self.assemble(dataset, quadrant, &ParallelConfig::from_env())
    }

    /// Builds the index with an explicit parallel configuration for every
    /// constituent diagram build (the serving layer rebuilds snapshots on
    /// the scoped pool this way).
    pub fn build_with(self, dataset: &Dataset, cfg: &ParallelConfig) -> SkylineIndex {
        let quadrant = self.engine.build_with(dataset, cfg);
        self.assemble(dataset, quadrant, cfg)
    }

    /// Assembles an index around an already-built quadrant diagram,
    /// constructing only the remaining parts (polyomino merge, optional
    /// global/dynamic diagrams).
    ///
    /// `quadrant` must be a quadrant diagram of `dataset` — callers such as
    /// `MaintainedIndex`-backed servers reuse the diagram from their last
    /// rebuild instead of building it twice.
    pub fn assemble(
        self,
        dataset: &Dataset,
        quadrant: CellDiagram,
        cfg: &ParallelConfig,
    ) -> SkylineIndex {
        debug_assert_eq!(
            quadrant.grid().cell_count(),
            crate::geometry::CellGrid::new(dataset).cell_count(),
            "assemble() requires a quadrant diagram built over the same dataset"
        );
        let _assemble = crate::span!("index.assemble", dataset.len() as u64);
        crate::counter!("index.assembles").add(1);
        let merged = {
            let _merge = crate::span!("index.merge");
            merge(&quadrant)
        };
        let global = self
            .with_global
            .then(|| crate::global::build_with(dataset, self.engine, cfg));
        let dynamic = self
            .with_dynamic
            .then(|| self.dynamic_engine.build_with(dataset, cfg));
        SkylineIndex {
            dataset: dataset.clone(),
            quadrant,
            merged,
            global,
            dynamic,
        }
    }
}

/// Precomputed skyline diagrams over one dataset, answering all three query
/// semantics by point location.
#[derive(Clone, Debug)]
pub struct SkylineIndex {
    dataset: Dataset,
    quadrant: CellDiagram,
    merged: MergedDiagram,
    global: Option<CellDiagram>,
    dynamic: Option<SubcellDiagram>,
}

impl SkylineIndex {
    /// Estimated heap bytes owned by the index: dataset, quadrant diagram,
    /// polyomino partition, and the optional global/dynamic diagrams.
    /// Cross-checked against allocator-measured build deltas in the
    /// `mem_accounting` tests.
    pub fn heap_bytes(&self) -> usize {
        self.dataset.heap_bytes()
            + self.quadrant.heap_bytes()
            + self.merged.heap_bytes()
            + self.global.as_ref().map_or(0, CellDiagram::heap_bytes)
            + self.dynamic.as_ref().map_or(0, SubcellDiagram::heap_bytes)
    }

    /// Starts a builder with default settings.
    pub fn builder() -> SkylineIndexBuilder {
        SkylineIndexBuilder::default()
    }

    /// Reassembles an index from parts decoded out of a snapshot container
    /// (`crate::container`). No diagram construction happens here — the
    /// container decoder has already bounds-checked and cross-validated
    /// every part against `dataset`.
    pub(crate) fn from_loaded_parts(
        dataset: Dataset,
        quadrant: CellDiagram,
        merged: MergedDiagram,
        global: Option<CellDiagram>,
        dynamic: Option<SubcellDiagram>,
    ) -> Self {
        SkylineIndex {
            dataset,
            quadrant,
            merged,
            global,
            dynamic,
        }
    }

    /// Builds with defaults: quadrant diagram + polyominoes only.
    pub fn new(dataset: &Dataset) -> Self {
        SkylineIndexBuilder::default().build(dataset)
    }

    /// The indexed dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// First-quadrant skyline of `q` — an `O(log n)` lookup.
    pub fn quadrant(&self, q: Point) -> &[PointId] {
        self.quadrant.query(q)
    }

    /// Global skyline of `q`. Falls back to a from-scratch computation when
    /// the global diagram was not built (allocates in that case).
    #[must_use]
    pub fn global(&self, q: Point) -> Vec<PointId> {
        match &self.global {
            Some(d) => d.query(q).to_vec(),
            None => crate::query::global_skyline(&self.dataset, q),
        }
    }

    /// Dynamic skyline of `q`. Falls back to a from-scratch computation
    /// when the dynamic diagram was not built.
    #[must_use]
    pub fn dynamic(&self, q: Point) -> Vec<PointId> {
        match &self.dynamic {
            Some(d) => d.query(q).to_vec(),
            None => crate::query::dynamic_skyline(&self.dataset, q),
        }
    }

    /// The skyline polyomino containing `q`: the region where `q` can move
    /// without its quadrant result changing.
    pub fn safe_zone(&self, q: Point) -> PolyominoRef<'_> {
        let cell = self.quadrant.grid().cell_of(q);
        self.merged
            .polyomino_of_cell(self.quadrant.grid().linear_index(cell))
    }

    /// The quadrant cell diagram.
    pub fn quadrant_diagram(&self) -> &CellDiagram {
        &self.quadrant
    }

    /// The polyomino partition of the quadrant diagram.
    pub fn polyominoes(&self) -> &MergedDiagram {
        &self.merged
    }

    /// The global diagram, if built.
    pub fn global_diagram(&self) -> Option<&CellDiagram> {
        self.global.as_ref()
    }

    /// The dynamic diagram, if built.
    pub fn dynamic_diagram(&self) -> Option<&SubcellDiagram> {
        self.dynamic.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query;

    fn hotel() -> Dataset {
        crate::test_data::hotel_dataset()
    }

    #[test]
    fn default_index_answers_quadrant_queries() {
        let ds = hotel();
        let index = SkylineIndex::new(&ds);
        for q in [(0, 0), (10, 50), (14, 81)] {
            let q = Point::new(q.0, q.1);
            assert_eq!(
                index.quadrant(q),
                query::quadrant_skyline(&ds, q).as_slice()
            );
        }
        assert!(index.global_diagram().is_none());
        assert!(index.dynamic_diagram().is_none());
        assert_eq!(index.dataset().len(), 11);
    }

    #[test]
    fn fallbacks_match_diagram_lookups_off_boundaries() {
        let ds = hotel();
        let with = SkylineIndex::builder()
            .with_global(true)
            .with_dynamic(true)
            .build(&ds);
        let without = SkylineIndex::new(&ds);
        // Odd coordinates in a 4x-scaled copy avoid all boundary lines, so
        // diagram lookups and fallbacks must agree exactly.
        let scaled = Dataset::from_coords(ds.points().iter().map(|p| (4 * p.x, 4 * p.y))).unwrap();
        let with_scaled = SkylineIndex::builder()
            .with_global(true)
            .with_dynamic(true)
            .build(&scaled);
        let without_scaled = SkylineIndex::new(&scaled);
        for (qx, qy) in [(41, 321), (3, 5), (61, 333), (85, 9)] {
            let q = Point::new(qx, qy);
            assert_eq!(with_scaled.dynamic(q), without_scaled.dynamic(q), "{q}");
            assert_eq!(with_scaled.global(q), without_scaled.global(q), "{q}");
        }
        let _ = (with, without);
    }

    #[test]
    fn safe_zone_is_consistent() {
        let ds = hotel();
        let index = SkylineIndex::new(&ds);
        let q = Point::new(14, 81);
        let zone = index.safe_zone(q);
        for &cell in zone.cells {
            assert_eq!(index.quadrant_diagram().result(cell), index.quadrant(q));
        }
        assert!(index.polyominoes().len() > 1);
    }

    #[test]
    fn builder_engine_choices_are_equivalent() {
        let ds = hotel();
        let a = SkylineIndex::builder()
            .engine(QuadrantEngine::Baseline)
            .build(&ds);
        let b = SkylineIndex::builder()
            .engine(QuadrantEngine::Scanning)
            .build(&ds);
        assert!(a.quadrant_diagram().same_results(b.quadrant_diagram()));
        let c = SkylineIndex::builder()
            .with_dynamic(true)
            .dynamic_engine(DynamicEngine::Subset)
            .build(&ds);
        let d = SkylineIndex::builder()
            .with_dynamic(true)
            .dynamic_engine(DynamicEngine::Scanning)
            .build(&ds);
        assert!(c
            .dynamic_diagram()
            .unwrap()
            .same_results(d.dynamic_diagram().unwrap()));
    }
}
