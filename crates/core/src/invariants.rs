//! Structural and semantic invariant checks for skyline diagrams.
//!
//! Every engine in this crate produces a dense diagram (one interned result
//! per cell or subcell). This module validates such outputs against the
//! paper's definitions, independently of how they were built:
//!
//! - **Tiling** — the per-cell result array tiles the bounded grid exactly:
//!   one entry per cell, row-major, with a consistent
//!   `linear_index`/`cell_from_linear` bijection and strictly increasing
//!   grid lines that match the dataset (no overlap, no gap).
//! - **Well-formed results** — every interned result referenced by a cell is
//!   a strictly increasing sequence of in-range [`PointId`]s.
//! - **Semantic correctness** — sampled cells' stored skylines equal a
//!   from-scratch brute-force recompute at an exact interior representative
//!   (doubled coordinates for cells, quadrupled for subcells).
//! - **Definition 2** — for global diagrams, the stored result also equals
//!   the union of the four per-quadrant skylines, each computed by
//!   reflecting the dataset onto the first quadrant
//!   ([`union_of_quadrant_skylines`]), a code path disjoint from
//!   [`query::global_skyline`].
//! - **Polyomino partition** — a merged diagram's polyominoes cover every
//!   cell exactly once, are 4-connected, preserve the per-cell results, and
//!   are maximal (Definition 4: no two adjacent equal-result cells live in
//!   different polyominoes).
//!
//! The checks are hooked behind `debug_assert!` in
//! [`QuadrantEngine::build`](crate::quadrant::QuadrantEngine::build),
//! [`DynamicEngine::build`](crate::dynamic::DynamicEngine::build) and
//! [`global::build`](crate::global::build) with a small sampling budget
//! ([`DEBUG_SAMPLE_BUDGET`]), run unconditionally with [`FULL_SAMPLE`] by
//! the `fuzz_diff` harness, and drive the `invariants` proptest suite.

use std::collections::HashSet;
use std::fmt;

use crate::diagram::{CellDiagram, MergedDiagram};
use crate::dynamic::SubcellDiagram;
use crate::geometry::{Coord, Dataset, Point, PointId, MAX_COORD};
use crate::query;
use crate::result_set::{ResultId, ResultInterner};

/// Recompute budget used by the `debug_assert!` hooks inside the engines:
/// at most this many cells get a brute-force semantic recompute per build,
/// keeping debug-mode test time linear in the structural size of the
/// diagram rather than quadratic in the recompute cost.
pub const DEBUG_SAMPLE_BUDGET: usize = 24;

/// Unlimited recompute budget: every cell is checked. Used by `fuzz_diff`
/// and the proptest suite, where datasets are small by construction.
pub const FULL_SAMPLE: usize = usize::MAX;

/// Which query semantics a [`CellDiagram`] is supposed to encode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CellSemantics {
    /// First-quadrant skylines (paper Section IV).
    Quadrant,
    /// Global skylines — union of the four quadrant skylines (Definition 2).
    Global,
}

impl CellSemantics {
    /// Short stable name, used in violation messages.
    pub fn name(self) -> &'static str {
        match self {
            CellSemantics::Quadrant => "quadrant",
            CellSemantics::Global => "global",
        }
    }
}

/// A failed diagram invariant: which invariant, and a human-readable detail
/// naming the offending cell or polyomino.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation {
    invariant: &'static str,
    detail: String,
}

impl InvariantViolation {
    /// Stable identifier of the violated invariant (e.g. `"tiling"`,
    /// `"semantic-recompute"`, `"definition-2"`, `"polyomino-partition"`).
    pub fn invariant(&self) -> &'static str {
        self.invariant
    }

    /// Human-readable description of the specific failure.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "diagram invariant `{}` violated: {}",
            self.invariant, self.detail
        )
    }
}

impl std::error::Error for InvariantViolation {}

/// Outcome of an invariant check: `Ok(())` or the first violation found.
pub type CheckResult = Result<(), InvariantViolation>;

fn violated(invariant: &'static str, detail: String) -> CheckResult {
    Err(InvariantViolation { invariant, detail })
}

// --- shared structural checks ---------------------------------------------

fn check_lines_strictly_increasing(lines: &[Coord], axis: &str) -> CheckResult {
    if lines.is_empty() {
        return violated(
            "grid-lines",
            format!("no {axis} grid lines (empty dataset?)"),
        );
    }
    for w in lines.windows(2) {
        if w[0] >= w[1] {
            return violated(
                "grid-lines",
                format!(
                    "{axis} grid lines not strictly increasing: {} then {}",
                    w[0], w[1]
                ),
            );
        }
    }
    Ok(())
}

fn check_lines_match(lines: &[Coord], mut expected: Vec<Coord>, axis: &str) -> CheckResult {
    expected.sort_unstable();
    expected.dedup();
    if lines != expected.as_slice() {
        return violated(
            "grid-lines",
            format!(
                "{axis} grid lines do not match the dataset: got {} lines, expected {}",
                lines.len(),
                expected.len()
            ),
        );
    }
    Ok(())
}

/// Every result id referenced by a cell resolves to a strictly increasing
/// sequence of point ids below `n`.
fn check_result_sets(n: usize, interner: &ResultInterner, used: &[ResultId]) -> CheckResult {
    let distinct: HashSet<ResultId> = used.iter().copied().collect();
    for rid in distinct {
        if crate::geometry::conv::widen(rid.0) >= interner.len() {
            return violated(
                "result-sets",
                format!(
                    "cell references unknown result id {} (interner holds {})",
                    rid.0,
                    interner.len()
                ),
            );
        }
        let ids = interner.get(rid);
        for w in ids.windows(2) {
            if w[0] >= w[1] {
                return violated(
                    "result-sets",
                    format!(
                        "result {} is not strictly increasing: {} then {}",
                        rid.0, w[0], w[1]
                    ),
                );
            }
        }
        if let Some(&last) = ids.last() {
            if last.index() >= n {
                return violated(
                    "result-sets",
                    format!(
                        "result {} references point {last} but the dataset has {n} points",
                        rid.0
                    ),
                );
            }
        }
    }
    Ok(())
}

/// True for linear indices selected by a deterministic stride sample of at
/// most `budget` cells (first and last cell always included).
fn sampled(idx: usize, total: usize, budget: usize) -> bool {
    if budget >= total {
        return true;
    }
    if budget == 0 {
        return false;
    }
    let stride = total.div_ceil(budget).max(1);
    idx % stride == 0 || idx + 1 == total
}

fn scaled_dataset(dataset: &Dataset, factor: Coord) -> Option<Dataset> {
    let max_abs = dataset
        .points()
        .iter()
        .flat_map(|p| [p.x.abs(), p.y.abs()])
        .max()
        .unwrap_or(0);
    if max_abs > MAX_COORD / factor {
        return None;
    }
    Some(
        Dataset::from_coords(
            dataset
                .points()
                .iter()
                .map(|p| (factor * p.x, factor * p.y)),
        )
        .expect("scaling was bounds-checked against MAX_COORD above"),
    )
}

// --- cell diagrams (quadrant / global) -------------------------------------

/// Validates a cell-level diagram produced for `dataset` under `semantics`.
///
/// Structural checks (tiling, grid lines, index bijection, result
/// well-formedness) always run over the whole diagram. Semantic checks
/// recompute at most `budget` cells from scratch in doubled coordinates —
/// pass [`FULL_SAMPLE`] to check every cell, [`DEBUG_SAMPLE_BUDGET`] for a
/// cheap smoke pass. Global diagrams additionally get the Definition 2
/// cross-check on every sampled cell.
///
/// Semantic checks are skipped (structural checks still run) when doubling
/// the coordinates would overflow [`MAX_COORD`]; within the paper's bounded
/// domains this never happens.
///
/// # Errors
/// The first [`InvariantViolation`] found, if any.
pub fn validate_cell_diagram(
    dataset: &Dataset,
    diagram: &CellDiagram,
    semantics: CellSemantics,
    budget: usize,
) -> CheckResult {
    let grid = diagram.grid();
    let total = grid.cell_count();
    let width = crate::geometry::conv::widen(grid.nx()) + 1;
    let height = crate::geometry::conv::widen(grid.ny()) + 1;

    // Tiling: one result per cell of the (nx+1) x (ny+1) bounded grid.
    if total != width * height {
        return violated(
            "tiling",
            format!("cell_count {total} != ({width} slabs) x ({height} slabs)"),
        );
    }
    if diagram.cell_results().len() != total {
        return violated(
            "tiling",
            format!(
                "{} stored results for {total} cells",
                diagram.cell_results().len()
            ),
        );
    }
    check_lines_strictly_increasing(grid.x_lines(), "x")?;
    check_lines_strictly_increasing(grid.y_lines(), "y")?;
    check_lines_match(
        grid.x_lines(),
        dataset.points().iter().map(|p| p.x).collect(),
        "x",
    )?;
    check_lines_match(
        grid.y_lines(),
        dataset.points().iter().map(|p| p.y).collect(),
        "y",
    )?;

    // Index bijection: row-major enumeration round-trips through
    // linear_index / cell_from_linear with no overlap or gap.
    for (idx, cell) in grid.cells().enumerate() {
        if grid.linear_index(cell) != idx || grid.cell_from_linear(idx) != cell {
            return violated(
                "tiling",
                format!("cell {cell:?} does not round-trip through linear index {idx}"),
            );
        }
    }

    check_result_sets(dataset.len(), diagram.results(), diagram.cell_results())?;

    // Semantic recompute on a deterministic sample of cells, in doubled
    // coordinates so every cell has an exact integer interior representative.
    let Some(doubled) = scaled_dataset(dataset, 2) else {
        return Ok(());
    };
    for (idx, cell) in grid.cells().enumerate() {
        if !sampled(idx, total, budget) {
            continue;
        }
        let q = grid.representative_doubled(cell);
        let expected = match semantics {
            CellSemantics::Quadrant => query::quadrant_skyline(&doubled, q),
            CellSemantics::Global => query::global_skyline(&doubled, q),
        };
        if diagram.result(cell) != expected.as_slice() {
            return violated(
                "semantic-recompute",
                format!(
                    "cell {cell:?}: stored {} result {:?} != from-scratch {:?}",
                    semantics.name(),
                    diagram.result(cell),
                    expected
                ),
            );
        }
        if semantics == CellSemantics::Global {
            let union = union_of_quadrant_skylines(&doubled, q);
            if union != expected {
                return violated(
                    "definition-2",
                    format!(
                        "cell {cell:?}: union of quadrant skylines {union:?} != global skyline {expected:?}"
                    ),
                );
            }
        }
    }
    Ok(())
}

/// The global skyline computed literally as Definition 2 states it: the
/// union of the four per-quadrant skylines, each obtained by reflecting the
/// dataset and query onto the first quadrant and running
/// [`query::quadrant_skyline`]. A deliberately independent code path from
/// [`query::global_skyline`] (which partitions by
/// [`quadrant_of`](crate::dominance::quadrant_of)), used to cross-check
/// global diagrams.
#[must_use]
pub fn union_of_quadrant_skylines(dataset: &Dataset, q: Point) -> Vec<PointId> {
    let mut out: Vec<PointId> = Vec::new();
    for (flip_x, flip_y) in [(false, false), (true, false), (true, true), (false, true)] {
        let reflected = Dataset::from_coords(dataset.points().iter().map(|p| {
            (
                if flip_x { -p.x } else { p.x },
                if flip_y { -p.y } else { p.y },
            )
        }))
        .expect("axis reflection preserves coordinate magnitudes");
        let rq = Point::new(
            if flip_x { -q.x } else { q.x },
            if flip_y { -q.y } else { q.y },
        );
        out.extend(query::quadrant_skyline(&reflected, rq));
    }
    // Open quadrants are disjoint, so this is a plain sorted union.
    out.sort_unstable();
    out.dedup();
    out
}

// --- subcell diagrams (dynamic) --------------------------------------------

/// Validates a dynamic (subcell-level) diagram produced for `dataset`.
///
/// Same contract as [`validate_cell_diagram`]: structural checks are
/// exhaustive, semantic checks recompute at most `budget` subcells from
/// scratch at the exact quadrupled-coordinate sample point
/// ([`SubcellGrid::sample_x4`](crate::dynamic::SubcellGrid::sample_x4)),
/// skipped when quadrupling would overflow [`MAX_COORD`].
///
/// # Errors
/// The first [`InvariantViolation`] found, if any.
pub fn validate_subcell_diagram(
    dataset: &Dataset,
    diagram: &SubcellDiagram,
    budget: usize,
) -> CheckResult {
    let grid = diagram.grid();
    let total = grid.subcell_count();
    let width = crate::geometry::conv::widen(grid.mx()) + 1;
    let height = crate::geometry::conv::widen(grid.my()) + 1;

    if total != width * height {
        return violated(
            "tiling",
            format!("subcell_count {total} != ({width} slabs) x ({height} slabs)"),
        );
    }
    if diagram.cell_results().len() != total {
        return violated(
            "tiling",
            format!(
                "{} stored results for {total} subcells",
                diagram.cell_results().len()
            ),
        );
    }
    check_lines_strictly_increasing(grid.x_lines(), "x")?;
    check_lines_strictly_increasing(grid.y_lines(), "y")?;
    // Definition 7: the doubled-coordinate lines are exactly the pairwise
    // sums {a.x + b.x} (a == b gives the point's own line 2·p.x).
    let pair_sums = |coords: Vec<Coord>| -> Vec<Coord> {
        let mut sums = Vec::with_capacity(coords.len() * (coords.len() + 1) / 2);
        for (i, &a) in coords.iter().enumerate() {
            for &b in &coords[i..] {
                sums.push(a + b);
            }
        }
        sums
    };
    check_lines_match(
        grid.x_lines(),
        pair_sums(dataset.points().iter().map(|p| p.x).collect()),
        "x",
    )?;
    check_lines_match(
        grid.y_lines(),
        pair_sums(dataset.points().iter().map(|p| p.y).collect()),
        "y",
    )?;

    for (idx, sc) in grid.subcells().enumerate() {
        if grid.linear_index(sc) != idx || grid.subcell_from_linear(idx) != sc {
            return violated(
                "tiling",
                format!("subcell {sc:?} does not round-trip through linear index {idx}"),
            );
        }
    }

    check_result_sets(dataset.len(), diagram.results(), diagram.cell_results())?;

    let Some(quadrupled) = scaled_dataset(dataset, 4) else {
        return Ok(());
    };
    for (idx, sc) in grid.subcells().enumerate() {
        if !sampled(idx, total, budget) {
            continue;
        }
        let s = grid.sample_x4(sc);
        let expected = query::dynamic_skyline(&quadrupled, s);
        if diagram.result(sc) != expected.as_slice() {
            return violated(
                "semantic-recompute",
                format!(
                    "subcell {sc:?}: stored dynamic result {:?} != from-scratch {expected:?}",
                    diagram.result(sc)
                ),
            );
        }
    }
    Ok(())
}

// --- merged diagrams (polyomino partition) ---------------------------------

/// Validates the polyomino partition of a merged **cell** diagram against
/// its source diagram: coverage, pairwise disjointness, 4-connectivity,
/// result preservation, and maximality (Definition 4).
///
/// # Errors
/// The first [`InvariantViolation`] found, if any.
pub fn validate_merged_cells(diagram: &CellDiagram, merged: &MergedDiagram) -> CheckResult {
    validate_partition(
        diagram.cell_results(),
        crate::geometry::conv::widen(diagram.grid().nx()) + 1,
        merged,
        |rid| diagram.results().get(rid),
    )
}

/// Validates the polyomino partition of a merged **subcell** diagram, with
/// the same checks as [`validate_merged_cells`].
///
/// # Errors
/// The first [`InvariantViolation`] found, if any.
pub fn validate_merged_subcells(diagram: &SubcellDiagram, merged: &MergedDiagram) -> CheckResult {
    validate_partition(
        diagram.cell_results(),
        crate::geometry::conv::widen(diagram.grid().mx()) + 1,
        merged,
        |rid| diagram.results().get(rid),
    )
}

fn validate_partition<'a>(
    cell_results: &[ResultId],
    width: usize,
    merged: &MergedDiagram,
    resolve: impl Fn(ResultId) -> &'a [PointId],
) -> CheckResult {
    let total = cell_results.len();
    if merged.cell_to_polyomino().len() != total {
        return violated(
            "polyomino-partition",
            format!(
                "cell_to_polyomino has {} entries for {total} cells",
                merged.cell_to_polyomino().len()
            ),
        );
    }

    // Coverage + disjointness: every cell appears in exactly one polyomino,
    // and the reverse index agrees with the membership lists.
    let mut owner: Vec<Option<usize>> = vec![None; total];
    for (pi, poly) in merged.iter().enumerate() {
        if poly.cells.is_empty() {
            return violated("polyomino-partition", format!("polyomino {pi} is empty"));
        }
        for &(i, j) in poly.cells {
            let idx = crate::geometry::conv::widen(j) * width + crate::geometry::conv::widen(i);
            if crate::geometry::conv::widen(i) >= width || idx >= total {
                return violated(
                    "polyomino-partition",
                    format!("polyomino {pi} contains out-of-grid cell ({i}, {j})"),
                );
            }
            if let Some(prev) = owner[idx] {
                return violated(
                    "polyomino-partition",
                    format!("cell ({i}, {j}) is in polyominoes {prev} and {pi}"),
                );
            }
            owner[idx] = Some(pi);
            if crate::geometry::conv::widen(merged.cell_to_polyomino()[idx]) != pi {
                return violated(
                    "polyomino-partition",
                    format!(
                        "cell ({i}, {j}) is listed in polyomino {pi} but indexed to {}",
                        merged.cell_to_polyomino()[idx]
                    ),
                );
            }
            // Result preservation: every member cell stores the polyomino's
            // result (compared by content, not by interner id).
            if resolve(cell_results[idx]) != resolve(poly.result) {
                return violated(
                    "polyomino-result",
                    format!("cell ({i}, {j}) has a different result than its polyomino {pi}"),
                );
            }
        }
        if !poly.is_connected() {
            return violated(
                "polyomino-connectivity",
                format!("polyomino {pi} ({} cells) is not 4-connected", poly.area()),
            );
        }
    }
    if let Some(idx) = owner.iter().position(Option::is_none) {
        return violated(
            "polyomino-partition",
            format!("cell at linear index {idx} belongs to no polyomino"),
        );
    }

    // Maximality (Definition 4): 4-adjacent cells with equal results must
    // share a polyomino — otherwise the partition is finer than maximal.
    let split = |a: usize, b: usize| {
        merged.cell_to_polyomino()[a] != merged.cell_to_polyomino()[b]
            && resolve(cell_results[a]) == resolve(cell_results[b])
    };
    for idx in 0..total {
        let right = idx + 1;
        let up = idx + width;
        for nb in [right, up] {
            if nb == right && right % width == 0 {
                continue;
            }
            if nb < total && split(idx, nb) {
                return violated(
                    "polyomino-maximality",
                    format!(
                        "adjacent equal-result cells at linear indices {idx} and {nb} are in different polyominoes"
                    ),
                );
            }
        }
    }
    Ok(())
}

/// Convenience: area accounting for a merged diagram — the polyomino areas
/// must sum to the cell count (implied by the partition check, exposed for
/// quick assertions in tests and reports).
#[must_use]
pub fn total_area(merged: &MergedDiagram) -> usize {
    merged.iter().map(|p| p.area()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::merge::{merge, merge_subcells};
    use crate::dynamic::DynamicEngine;
    use crate::geometry::Dataset;
    use crate::quadrant::QuadrantEngine;
    use crate::result_set::ResultInterner;

    #[test]
    fn quadrant_engines_validate_on_hotel_example() {
        let ds = crate::test_data::hotel_dataset();
        for engine in QuadrantEngine::ALL {
            let d = engine.build(&ds);
            validate_cell_diagram(&ds, &d, CellSemantics::Quadrant, FULL_SAMPLE)
                .unwrap_or_else(|v| panic!("{}: {v}", engine.name()));
        }
    }

    #[test]
    fn global_build_validates_with_definition_2() {
        let ds = crate::test_data::hotel_dataset();
        let d = crate::global::build(&ds, QuadrantEngine::Sweeping);
        validate_cell_diagram(&ds, &d, CellSemantics::Global, FULL_SAMPLE)
            .unwrap_or_else(|v| panic!("{v}"));
    }

    #[test]
    fn dynamic_engines_validate_on_small_data() {
        let ds = crate::test_data::lcg_dataset(8, 25, 3);
        for engine in DynamicEngine::ALL {
            let d = engine.build(&ds);
            validate_subcell_diagram(&ds, &d, FULL_SAMPLE)
                .unwrap_or_else(|v| panic!("{}: {v}", engine.name()));
        }
    }

    #[test]
    fn merged_partitions_validate() {
        let ds = crate::test_data::hotel_dataset();
        let d = QuadrantEngine::Sweeping.build(&ds);
        let m = merge(&d);
        validate_merged_cells(&d, &m).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(total_area(&m), d.grid().cell_count());

        let ds_small = crate::test_data::lcg_dataset(6, 20, 9);
        let sd = DynamicEngine::Scanning.build(&ds_small);
        let sm = merge_subcells(&sd);
        validate_merged_subcells(&sd, &sm).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(total_area(&sm), sd.grid().subcell_count());
    }

    #[test]
    fn union_of_quadrant_skylines_matches_global_oracle() {
        let ds = crate::test_data::hotel_dataset();
        for q in [
            Point::new(10, 80),
            Point::new(0, 0),
            Point::new(13, 83),
            Point::new(30, 100),
        ] {
            assert_eq!(
                union_of_quadrant_skylines(&ds, q),
                query::global_skyline_naive(&ds, q),
                "q = {q:?}"
            );
        }
    }

    #[test]
    fn corrupted_cell_is_reported() {
        let ds = crate::test_data::hotel_dataset();
        let d = QuadrantEngine::Baseline.build(&ds);
        // Rebuild with one cell's result swapped to the empty set.
        let grid = d.grid().clone();
        let mut cells = d.cell_results().to_vec();
        let victim = grid.linear_index((0, 0));
        cells[victim] = d.results().empty();
        let corrupt = CellDiagram::from_parts(grid, d.results().clone(), cells);
        let err = validate_cell_diagram(&ds, &corrupt, CellSemantics::Quadrant, FULL_SAMPLE)
            .expect_err("corrupted diagram must fail validation");
        assert_eq!(err.invariant(), "semantic-recompute");
        assert!(err.to_string().contains("cell (0, 0)"), "{err}");
    }

    #[test]
    fn split_polyomino_fails_maximality() {
        let ds = Dataset::from_coords([(0, 0), (10, 10)])
            .expect("two in-range points form a valid dataset");
        let d = QuadrantEngine::Sweeping.build(&ds);
        let m = merge(&d);
        // Split the first polyomino with more than one cell into two by
        // rebuilding the CSR arena with the last cell carved off.
        let mut polys: Vec<(ResultId, Vec<crate::geometry::CellIndex>)> =
            m.iter().map(|p| (p.result, p.cells.to_vec())).collect();
        let Some(pi) = polys.iter().position(|(_, cells)| cells.len() > 1) else {
            panic!("fixture must contain a multi-cell polyomino");
        };
        let moved = polys[pi]
            .1
            .pop()
            .expect("multi-cell polyomino has a last cell");
        let result = polys[pi].0;
        polys.push((result, vec![moved]));
        let mut cell_to_polyomino = m.cell_to_polyomino().to_vec();
        let width = crate::geometry::conv::widen(d.grid().nx()) + 1;
        let idx =
            crate::geometry::conv::widen(moved.1) * width + crate::geometry::conv::widen(moved.0);
        cell_to_polyomino[idx] = crate::geometry::conv::narrow(polys.len() - 1);
        let mut results = Vec::new();
        let mut ends = Vec::new();
        let mut cells_flat = Vec::new();
        for (r, cells) in polys {
            results.push(r);
            cells_flat.extend(cells);
            ends.push(crate::geometry::conv::narrow(cells_flat.len()));
        }
        let broken = MergedDiagram::from_csr(results, ends, cells_flat, cell_to_polyomino);
        let err =
            validate_merged_cells(&d, &broken).expect_err("split polyomino must fail validation");
        assert!(
            err.invariant() == "polyomino-maximality"
                || err.invariant() == "polyomino-connectivity",
            "{err}"
        );
    }

    #[test]
    fn stale_interner_reference_is_reported() {
        let ds = Dataset::from_coords([(0, 0), (10, 10)])
            .expect("two in-range points form a valid dataset");
        let d = QuadrantEngine::Sweeping.build(&ds);
        let grid = d.grid().clone();
        let mut cells = d.cell_results().to_vec();
        cells[0] = ResultId(u32::MAX);
        let corrupt = CellDiagram::from_parts(grid, ResultInterner::new(), cells);
        let err = validate_cell_diagram(&ds, &corrupt, CellSemantics::Quadrant, FULL_SAMPLE)
            .expect_err("unknown result id must fail validation");
        assert_eq!(err.invariant(), "result-sets");
    }

    #[test]
    fn sampling_budget_is_deterministic_and_covers_extremes() {
        let total = 100;
        let picked: Vec<usize> = (0..total).filter(|&i| sampled(i, total, 10)).collect();
        assert!(picked.contains(&0) && picked.contains(&99));
        assert!(picked.len() <= 12, "{picked:?}");
        assert!((0..total).all(|i| sampled(i, total, FULL_SAMPLE)));
        assert!((0..total).all(|i| !sampled(i, total, 0)));
    }
}
