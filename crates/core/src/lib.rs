//! # skyline-core
//!
//! A faithful, production-quality implementation of **skyline diagrams** —
//! the Voronoi-diagram counterpart for skyline queries — from Liu, Yang,
//! Xiong, Pei, Luo, *"Skyline Diagram: Finding the Voronoi Counterpart for
//! Skyline Queries"*, ICDE 2018.
//!
//! Given `n` seed points, a skyline diagram partitions the query plane into
//! **skyline polyominoes**: maximal regions within which every query point
//! has the same skyline result. Three query semantics are supported:
//!
//! - **quadrant** skyline: competitors restricted to the first quadrant of
//!   the query ([`quadrant`], four engines, Section IV of the paper);
//! - **global** skyline: the union of all four per-quadrant skylines
//!   ([`global`]);
//! - **dynamic** skyline: all points mapped by coordinate-wise absolute
//!   distance to the query ([`dynamic`], three engines, Section V).
//!
//! High-dimensional generalizations of the quadrant engines live in
//! [`highd`] (Section IV-E).
//!
//! ## Quick example
//!
//! ```
//! use skyline_core::geometry::{Dataset, Point};
//! use skyline_core::quadrant::QuadrantEngine;
//! use skyline_core::diagram::merge::merge;
//!
//! let hotels = Dataset::from_coords([
//!     (1, 92), (3, 96), (12, 86), (5, 94), (15, 85), (8, 78),
//!     (16, 83), (13, 83), (6, 93), (21, 82), (11, 9),
//! ])?;
//!
//! // Build the quadrant skyline diagram with the O(n²) sweeping engine.
//! let diagram = QuadrantEngine::Sweeping.build(&hotels);
//!
//! // Every future skyline query is now a grid lookup.
//! let skyline = diagram.query(Point::new(10, 80));
//! assert_eq!(skyline.len(), 3); // {p3, p8, p10} in the paper's numbering
//!
//! // Merge cells into the polyomino partition.
//! let merged = merge(&diagram);
//! assert!(merged.len() < diagram.grid().cell_count());
//! # Ok::<(), skyline_core::Error>(())
//! ```
//!
//! ## Conventions
//!
//! All skylines minimize (smaller coordinates are better); coordinates are
//! `i64` and must fit within [`geometry::MAX_COORD`] so bisector arithmetic
//! stays exact. Quadrants are open: a point sharing an axis with the query
//! belongs to no quadrant (see [`query`] for the full boundary discussion).

// `deny`, not `forbid`: the counting-allocator hook in telemetry/mem.rs
// carries the workspace's one `#[allow(unsafe_code)]` (a GlobalAlloc impl
// cannot be written without `unsafe`), which `forbid` would reject.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod container;
pub mod diagram;
pub mod dominance;
pub mod dsg;
pub mod dynamic;
pub mod epoch;
mod error;
pub mod geometry;
pub mod global;
pub mod highd;
pub mod index;
pub mod invariants;
pub mod maintained;
pub mod parallel;
pub mod quadrant;
pub mod query;
pub mod result_set;
pub mod serialize;
pub mod skyband;
pub mod skyline;
pub mod sync;
pub mod telemetry;

#[cfg(test)]
pub(crate) mod test_data;

pub use error::{Error, Result};
