//! A semi-dynamic wrapper: accept point insertions and removals, keep
//! answering queries, and rebuild the diagram **lazily** — the honest
//! maintenance strategy for a structure whose grid shifts globally on any
//! update (a new point adds a grid line, renumbering every cell beyond
//! it). Updates are `O(1)` queue pushes; the first query after a batch of
//! updates pays one rebuild. Between rebuilds, pending updates are applied
//! *exactly* on the query path by post-filtering and candidate-merging, so
//! answers are always correct, never stale.
//!
//! Mid-epoch query semantics: pending **insertions** are merged exactly by
//! a minima pass over `lookup ∪ pending` (a stale skyline point can only
//! be evicted by a pending point, and a pending point only enters if
//! undominated by the survivors — one minima computation checks both).
//! Pending **removals** cannot be patched locally — deleting a skyline
//! point exposes dominated points the stale lookup never recorded — so
//! the first query after a removal triggers the rebuild instead. The
//! `removal_exposes_dominated_points` test pins exactly this case.

use crate::diagram::CellDiagram;
use crate::geometry::{Coord, Dataset, Point, PointId};
use crate::quadrant::QuadrantEngine;
use crate::skyline::sort_sweep::minima_xy;

/// Handle for a point inside a [`MaintainedIndex`] — stable across
/// rebuilds (unlike raw [`PointId`]s, which are positional).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Handle(pub u64);

/// A quadrant-skyline index over a mutable point set.
#[derive(Clone, Debug)]
pub struct MaintainedIndex {
    engine: QuadrantEngine,
    /// Live points by handle, insertion-ordered.
    points: Vec<(Handle, Point)>,
    next_handle: u64,
    /// The diagram over the points as of the last rebuild, paired with the
    /// handle list it was built from (ids index into it).
    built: Option<(CellDiagram, Vec<Handle>)>,
    /// Handles inserted since the last rebuild (not yet in `built`).
    pending_inserts: Vec<(Handle, Point)>,
    /// Handles removed since the last rebuild.
    pending_removes: std::collections::HashSet<Handle>,
    /// Updates since last rebuild; rebuild eagerly once this passes the
    /// threshold (the per-query filtering cost grows with it).
    dirt: usize,
    /// Rebuild after this many buffered updates (default 32).
    pub rebuild_threshold: usize,
}

impl MaintainedIndex {
    /// Creates an empty index using the given engine for rebuilds.
    pub fn new(engine: QuadrantEngine) -> Self {
        MaintainedIndex {
            engine,
            points: Vec::new(),
            next_handle: 0,
            built: None,
            pending_inserts: Vec::new(),
            pending_removes: std::collections::HashSet::new(),
            dirt: 0,
            rebuild_threshold: 32,
        }
    }

    /// Restores an index from a decoded snapshot (`crate::container`): the
    /// live point set and its handle assignment are adopted verbatim, so
    /// handles stay stable across a save/load cycle. Handles must be
    /// unique; fresh handles continue after the largest restored one. The
    /// diagram is *not* built here — cold-start callers publish the decoded
    /// diagram directly and let the first mutation pay the rebuild.
    pub fn restore(
        engine: QuadrantEngine,
        points: impl IntoIterator<Item = (Handle, Point)>,
    ) -> Result<Self, &'static str> {
        let points: Vec<(Handle, Point)> = points.into_iter().collect();
        let mut seen: Vec<Handle> = points.iter().map(|&(h, _)| h).collect();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err("restored handles must be unique");
        }
        let next_handle = match seen.last() {
            Some(h) => {
                h.0.checked_add(1)
                    .ok_or("restored handle space is exhausted")?
            }
            None => 0,
        };
        Ok(MaintainedIndex {
            engine,
            points,
            next_handle,
            built: None,
            pending_inserts: Vec::new(),
            pending_removes: std::collections::HashSet::new(),
            dirt: 0,
            rebuild_threshold: 32,
        })
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff no live points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Inserts a point; `O(1)` now, cost deferred to the next rebuild.
    pub fn insert(&mut self, p: Point) -> Handle {
        let handle = Handle(self.next_handle);
        self.next_handle += 1;
        self.points.push((handle, p));
        self.pending_inserts.push((handle, p));
        self.dirt += 1;
        handle
    }

    /// Removes a point by handle; returns false if unknown.
    pub fn remove(&mut self, handle: Handle) -> bool {
        let Some(idx) = self.points.iter().position(|&(h, _)| h == handle) else {
            return false;
        };
        self.points.swap_remove(idx);
        // An unbuilt pending insert can be dropped entirely.
        if let Some(k) = self.pending_inserts.iter().position(|&(h, _)| h == handle) {
            self.pending_inserts.swap_remove(k);
        } else {
            self.pending_removes.insert(handle);
        }
        self.dirt += 1;
        true
    }

    /// The coordinates of a live point.
    pub fn get(&self, handle: Handle) -> Option<Point> {
        self.points
            .iter()
            .find(|&&(h, _)| h == handle)
            .map(|&(_, p)| p)
    }

    /// Quadrant skyline of `q` over the *current* point set, as handles
    /// sorted ascending. Rebuilds first when the update buffer is large.
    pub fn query(&mut self, q: Point) -> Vec<Handle> {
        if self.points.is_empty() {
            return Vec::new();
        }
        // Removals force a rebuild: the stale lookup cannot know which
        // dominated points a deleted skyline member was hiding.
        if self.built.is_none()
            || !self.pending_removes.is_empty()
            || self.dirt >= self.rebuild_threshold
        {
            self.rebuild();
        }
        let (diagram, handles) = self
            .built
            .as_ref()
            .expect("rebuild() just ran whenever built was None");

        // Candidates: the stale lookup minus removals, plus pending
        // insertions in the quadrant; one minima pass resolves both
        // directions of interference.
        let mut scratch: Vec<(Coord, Coord, PointId)> = Vec::new();
        let mut candidate_handles: Vec<Handle> = Vec::new();
        for &id in diagram.query(q) {
            let handle = handles[id.index()];
            let p = self.get(handle).expect("no removals are pending here");
            scratch.push((p.x, p.y, PointId(candidate_handles.len() as u32)));
            candidate_handles.push(handle);
        }
        for &(handle, p) in &self.pending_inserts {
            if p.x > q.x && p.y > q.y {
                scratch.push((p.x, p.y, PointId(candidate_handles.len() as u32)));
                candidate_handles.push(handle);
            }
        }
        let mut out: Vec<Handle> = minima_xy(&mut scratch)
            .into_iter()
            .map(|id| candidate_handles[id.index()])
            .collect();
        out.sort_unstable();
        out
    }

    /// Forces a rebuild now; afterwards queries are pure lookups again.
    pub fn rebuild(&mut self) {
        self.rebuild_with(&crate::parallel::ParallelConfig::from_env());
    }

    /// Forces a rebuild on an explicit parallel configuration (the serving
    /// layer rebuilds snapshots on the scoped pool this way); afterwards
    /// queries are pure lookups again.
    pub fn rebuild_with(&mut self, cfg: &crate::parallel::ParallelConfig) {
        let _rebuild = crate::span!("maintained.rebuild", self.points.len() as u64);
        crate::counter!("maintained.rebuilds").add(1);
        if self.points.is_empty() {
            self.built = None;
        } else {
            let dataset = Dataset::from_coords(self.points.iter().map(|&(_, p)| (p.x, p.y)))
                .expect("live points are valid");
            let handles = self.points.iter().map(|&(h, _)| h).collect();
            self.built = Some((self.engine.build_with(&dataset, cfg), handles));
        }
        self.pending_inserts.clear();
        self.pending_removes.clear();
        self.dirt = 0;
    }

    /// Number of buffered updates since the last rebuild.
    pub fn pending_updates(&self) -> usize {
        self.dirt
    }

    /// The live points with their handles, in the internal (rebuild) order:
    /// after a rebuild with no pending updates, the point at iterator
    /// position `i` is exactly the diagram's `PointId(i)`, so the paired
    /// handle list from [`MaintainedIndex::built`] maps ids back to handles.
    pub fn live_points(&self) -> impl Iterator<Item = (Handle, Point)> + '_ {
        self.points.iter().copied()
    }

    /// The diagram and handle table from the last rebuild, if any. Entry
    /// `i` of the handle slice is the handle of the diagram's `PointId(i)`.
    /// `None` when the index has never been rebuilt or was empty at the
    /// last rebuild. Ignores pending updates — callers that need a current
    /// view rebuild first.
    pub fn built(&self) -> Option<(&CellDiagram, &[Handle])> {
        self.built
            .as_ref()
            .map(|(diagram, handles)| (diagram, handles.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::quadrant_skyline_naive;

    /// Oracle: from-scratch query over the current live points, mapped to
    /// handles.
    fn oracle(index: &MaintainedIndex, q: Point) -> Vec<Handle> {
        let mut live: Vec<(Handle, Point)> = index.points.clone();
        live.sort_unstable();
        if live.is_empty() {
            return Vec::new();
        }
        let ds = Dataset::from_coords(live.iter().map(|&(_, p)| (p.x, p.y))).unwrap();
        let mut out: Vec<Handle> = quadrant_skyline_naive(&ds, q)
            .into_iter()
            .map(|id| live[id.index()].0)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn interleaved_updates_and_queries_match_the_oracle() {
        let mut index = MaintainedIndex::new(QuadrantEngine::Sweeping);
        index.rebuild_threshold = 5;
        let mut state: u64 = 77;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % 50
        };
        let mut handles: Vec<Handle> = Vec::new();
        for step in 0..300 {
            match next() % 4 {
                0 | 1 => {
                    let p = Point::new(next() as i64, next() as i64);
                    handles.push(index.insert(p));
                }
                2 if !handles.is_empty() => {
                    let victim = handles.swap_remove(next() as usize % handles.len());
                    assert!(index.remove(victim));
                }
                _ => {
                    let q = Point::new(next() as i64 - 2, next() as i64 - 2);
                    assert_eq!(index.query(q), oracle(&index, q), "step {step}");
                }
            }
        }
        assert_eq!(index.len(), handles.len());
    }

    #[test]
    fn handles_are_stable_across_rebuilds() {
        let mut index = MaintainedIndex::new(QuadrantEngine::Scanning);
        let a = index.insert(Point::new(5, 5));
        let b = index.insert(Point::new(10, 10));
        index.rebuild();
        let c = index.insert(Point::new(1, 1));
        // c dominates everything: it is the sole skyline from the origin.
        assert_eq!(index.query(Point::new(0, 0)), vec![c]);
        index.rebuild();
        assert_eq!(index.query(Point::new(0, 0)), vec![c]);
        assert_eq!(index.get(a), Some(Point::new(5, 5)));
        assert!(index.remove(b));
        assert!(!index.remove(b), "double remove is refused");
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn removal_exposes_dominated_points() {
        // The case that makes lazy removal-filtering unsound: deleting the
        // skyline point must expose the point it dominated. The index
        // handles it by rebuilding on the first query after a removal.
        let mut index = MaintainedIndex::new(QuadrantEngine::Baseline);
        let front = index.insert(Point::new(2, 2));
        let behind = index.insert(Point::new(3, 3));
        index.rebuild();
        assert_eq!(index.query(Point::new(0, 0)), vec![front]);
        assert!(index.remove(front));
        assert!(index.pending_updates() > 0);
        assert_eq!(index.query(Point::new(0, 0)), vec![behind]);
        // The query consumed the pending removal via rebuild.
        assert_eq!(index.pending_updates(), 0);
    }

    #[test]
    fn insertions_are_merged_without_rebuild() {
        let mut index = MaintainedIndex::new(QuadrantEngine::Baseline);
        let a = index.insert(Point::new(5, 5));
        index.rebuild();
        let b = index.insert(Point::new(2, 8));
        let c = index.insert(Point::new(3, 3)); // dominates a
                                                // Still below threshold: no rebuild, yet answers are exact.
        assert!(index.pending_updates() > 0);
        let got = index.query(Point::new(0, 0));
        assert_eq!(got, vec![b, c]);
        assert!(index.pending_updates() > 0, "insert-only epoch persists");
        let _ = a;
    }

    #[test]
    fn empty_index_behaves() {
        let mut index = MaintainedIndex::new(QuadrantEngine::Sweeping);
        assert!(index.is_empty());
        assert!(index.query(Point::new(0, 0)).is_empty());
        assert!(!index.remove(Handle(99)));
        let h = index.insert(Point::new(1, 1));
        assert!(index.remove(h));
        assert!(index.query(Point::new(0, 0)).is_empty());
        index.rebuild();
        assert!(index.is_empty());
    }
}
