//! Dependency-free parallel execution layer: a scoped worker pool with
//! chunked work distribution, built on [`std::thread::scope`] so the
//! workspace stays hermetic (no registry crates) and within the 1.75 MSRV.
//!
//! The paper's structures are embarrassingly parallel — the global diagram
//! is the independent union of the `2^d` quadrant diagrams (Definition 2),
//! the dynamic diagram decomposes into independent subcell rows (Section V),
//! and the sweeping/scanning engines process horizontal bands from shared
//! precomputed inputs. Every parallel engine in this crate funnels through
//! this module; the `no-raw-spawn` lint (`cargo xtask lint`) keeps any other
//! `std::thread` use out of the workspace.
//!
//! # Determinism contract
//!
//! Work is identified by item *index*, workers pull fixed contiguous chunks
//! off a shared atomic cursor, and results are stitched back **in index
//! order** on the calling thread. Shared mutable state (notably the
//! [`ResultInterner`](crate::result_set::ResultInterner)) is only touched
//! during the stitch, so a build's output is bit-identical for every thread
//! count, including the sequential reference path. `threads = 0` bypasses
//! the pool entirely and runs inline on the caller — that path is the
//! deterministic reference the differential tests compare against.
//!
//! # Configuration
//!
//! [`ParallelConfig::from_env`] reads `SKYLINE_THREADS` once per process:
//! `0` forces the sequential reference path, any other integer fixes the
//! worker count, and an unset (or unparsable) value falls back to
//! [`std::thread::available_parallelism`]. Engines expose `build_with`
//! variants taking an explicit [`ParallelConfig`] for callers (and tests)
//! that need a specific thread count.
//!
//! # Memory ordering
//!
//! The pool's only shared atomic is the chunk cursor, and it is read with
//! `fetch_add(1, Relaxed)`. Relaxed is sufficient because the cursor is
//! used purely for *claim uniqueness*: `fetch_add` is a single atomic
//! read-modify-write, so every worker observes a distinct chunk index, and
//! no data is published through the cursor itself. All actual data flow —
//! the closure's captured inputs on the way in, each worker's `local`
//! result vector on the way out — is ordered by [`std::thread::scope`]'s
//! spawn and join edges, which are full happens-before synchronisation
//! points. The stitch therefore reads every worker's results strictly
//! after that worker finished writing them, with no additional fences.
//!
//! # Observability
//!
//! When the `telemetry` feature is on (the default), each pool region
//! records phase spans (`pool.region`, `pool.worker`, `pool.chunk`,
//! `pool.stitch`) and registry metrics (`pool.regions`,
//! `pool.region_items`, `pool.worker_chunks` — the latter's spread across
//! workers is the stitch-imbalance signal). Probes never alter scheduling
//! or output: the differential tests pin bit-identical results with
//! telemetry on, off, and recording mid-flight.

use crate::sync::{AtomicUsize, OnceLock, Ordering};
use std::num::NonZeroUsize;

/// How many chunks each worker should get on average: > 1 so stragglers can
/// steal, small enough that per-chunk bookkeeping stays negligible.
const CHUNKS_PER_WORKER: usize = 4;

/// Thread-count knob for the parallel engines.
///
/// `threads == 0` selects the sequential reference path (work runs inline on
/// the calling thread, no pool involved); `threads >= 1` spawns up to that
/// many scoped workers per parallel region. The effective worker count is
/// additionally capped at [`std::thread::available_parallelism`] — values
/// above the hardware width select the parallel engines but never
/// oversubscribe the machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParallelConfig {
    threads: usize,
}

impl ParallelConfig {
    /// The sequential reference configuration (`threads = 0`).
    pub const fn sequential() -> Self {
        ParallelConfig { threads: 0 }
    }

    /// A fixed worker count; `0` is the sequential reference path.
    pub const fn with_threads(threads: usize) -> Self {
        ParallelConfig { threads }
    }

    /// The process-wide configuration: `SKYLINE_THREADS` if set to an
    /// integer (`0` = sequential), otherwise the machine's available
    /// parallelism. The environment is read once and cached for the life of
    /// the process.
    pub fn from_env() -> Self {
        static CACHE: OnceLock<usize> = OnceLock::new();
        let threads = *CACHE.get_or_init(|| {
            match std::env::var("SKYLINE_THREADS") {
                Ok(v) => v.trim().parse().ok(),
                Err(_) => None,
            }
            .unwrap_or_else(available_threads)
        });
        ParallelConfig { threads }
    }

    /// The configured worker count (`0` = sequential reference path).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True iff work runs inline on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 0
    }
}

impl Default for ParallelConfig {
    /// Defaults to the process-wide environment configuration.
    fn default() -> Self {
        ParallelConfig::from_env()
    }
}

/// The machine's available parallelism, defaulting to 1 when unknown.
fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `0..len` through `f`, in parallel when `cfg` allows, and returns the
/// results **in index order**. The closure runs at most once per index.
///
/// Sequential configurations (and trivially small inputs) run inline; the
/// pool otherwise distributes contiguous index chunks to scoped workers via
/// an atomic cursor, so an uneven per-item cost still load-balances.
/// A panic in `f` propagates to the caller after the scope unwinds.
pub fn map_indexed<R, F>(cfg: &ParallelConfig, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if cfg.is_sequential() || len <= 1 {
        return (0..len).map(f).collect();
    }
    // Never oversubscribe: a CPU-bound worker per index beyond the hardware
    // width only adds context switches and cache thrash. A single effective
    // worker runs inline — same work order, no scope or spawn overhead.
    let workers = cfg.threads.min(len).min(available_threads());
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let _region = crate::span!("pool.region", len as u64);
    crate::counter!("pool.regions").add(1);
    crate::histogram!("pool.region_items").record(len as u64);
    let chunk = len.div_ceil(workers * CHUNKS_PER_WORKER).max(1);
    let chunks = len.div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let f = &f;

    let mut parts: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(chunks))
            .map(|_| {
                scope.spawn(|| {
                    let mut worker_span = crate::span!("pool.worker");
                    let mut claimed: u64 = 0;
                    let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        // relaxed-ok: pure chunk ticket; workers read the
                        // shared input through the scope, not the cursor.
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= chunks {
                            break;
                        }
                        let start = c * chunk;
                        let end = (start + chunk).min(len);
                        let _chunk_span = crate::span!("pool.chunk", (end - start) as u64);
                        claimed += 1;
                        local.push((start, (start..end).map(f).collect()));
                    }
                    // Chunks claimed per worker: the spread of this
                    // histogram across one region is the load-imbalance
                    // signal the stitch inherits.
                    worker_span.set_payload(claimed);
                    crate::histogram!("pool.worker_chunks").record(claimed);
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(local) => local,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    let _stitch = crate::span!("pool.stitch", parts.len() as u64);
    parts.sort_unstable_by_key(|&(start, _)| start);
    debug_assert_eq!(parts.iter().map(|(_, v)| v.len()).sum::<usize>(), len);
    let mut out = Vec::with_capacity(len);
    for (_, mut part) in parts.drain(..) {
        out.append(&mut part);
    }
    out
}

/// Maps a slice through `f` with the same ordering and distribution
/// guarantees as [`map_indexed`].
pub fn map<T, R, F>(cfg: &ParallelConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_indexed(cfg, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_config_is_inline() {
        let cfg = ParallelConfig::sequential();
        assert!(cfg.is_sequential());
        assert_eq!(cfg.threads(), 0);
        assert_eq!(map_indexed(&cfg, 5, |i| i * i), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        for threads in [1, 2, 3, 8, 33] {
            let cfg = ParallelConfig::with_threads(threads);
            let expected: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
            assert_eq!(
                map_indexed(&cfg, 257, |i| i * 3 + 1),
                expected,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn map_over_slice_matches_sequential() {
        let items: Vec<i64> = (0..100).map(|i| i * 7 % 13).collect();
        let seq = map(&ParallelConfig::sequential(), &items, |&x| x * x);
        for threads in [1, 2, 4] {
            assert_eq!(
                map(&ParallelConfig::with_threads(threads), &items, |&x| x * x),
                seq
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let cfg = ParallelConfig::with_threads(4);
        assert_eq!(map_indexed(&cfg, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(&cfg, 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        map_indexed(&ParallelConfig::with_threads(7), 100, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed)
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            map_indexed(&ParallelConfig::with_threads(2), 8, |i| {
                assert!(i != 5, "boom at index 5");
                i
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn with_threads_roundtrips() {
        assert_eq!(ParallelConfig::with_threads(3).threads(), 3);
        assert!(!ParallelConfig::with_threads(1).is_sequential());
    }
}
