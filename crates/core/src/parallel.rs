//! Dependency-free parallel execution layer: a scoped worker pool with
//! self-scheduled chunked work distribution, built on [`std::thread::scope`]
//! so the workspace stays hermetic (no registry crates) and within the 1.75
//! MSRV.
//!
//! The paper's structures are embarrassingly parallel — the global diagram
//! is the independent union of the `2^d` quadrant diagrams (Definition 2),
//! the dynamic diagram decomposes into independent subcell rows (Section V),
//! and the sweeping/scanning engines process horizontal bands from shared
//! precomputed inputs. Every parallel engine in this crate funnels through
//! this module; the `no-raw-spawn` lint (`cargo xtask lint`) keeps any other
//! `std::thread` use out of the workspace.
//!
//! # Determinism contract
//!
//! Work is identified by item *index*, workers pull contiguous chunks off a
//! shared atomic cursor, and results are stitched back **in index order** on
//! the calling thread. Shared mutable state (notably the
//! [`ResultInterner`](crate::result_set::ResultInterner)) is only touched
//! during the stitch, so a build's output is bit-identical for every thread
//! count, including the sequential reference path. `threads = 0` bypasses
//! the pool entirely and runs inline on the caller — that path is the
//! deterministic reference the differential tests compare against.
//!
//! # Band split
//!
//! Chunk boundaries are precomputed per region (deterministically — they
//! never depend on claim timing) and workers *steal* whole chunks off the
//! cursor with one `fetch_add` each:
//!
//! * [`map_indexed`] uses a **guided** table: each successive chunk covers
//!   `~remaining / (workers · CHUNKS_PER_WORKER)` items, so early chunks are
//!   large (low bookkeeping) and the tail degrades to single items (a
//!   straggler can be out-stolen down to one item of slack). This replaced a
//!   fixed-size split whose coarse tail chunks serialized the end of every
//!   band (`skydiag report`'s `band-imbalance` verdict).
//! * [`map_indexed_weighted`] is the **cost-modeled** variant: callers
//!   supply a per-item cost estimate and boundaries cut the prefix-sum into
//!   equal-cost chunks (same guided tail decay, measured in cost units), so
//!   bands with skewed per-row work — e.g. sweeping rows weighted by anchor
//!   count — still balance.
//!
//! # Configuration
//!
//! [`ParallelConfig::from_env`] reads `SKYLINE_THREADS` once per process:
//! `0` forces the sequential reference path, any other integer fixes the
//! worker count, and an unset (or unparsable) value falls back to
//! [`std::thread::available_parallelism`]. Environment-derived counts are
//! capped at the hardware width (no accidental oversubscription in
//! production); configs built with [`ParallelConfig::with_threads`] are
//! **exact** — tests and benches get the worker count they asked for even on
//! narrow hosts, so cross-thread-count differential suites exercise real
//! concurrent claiming everywhere.
//!
//! # Memory ordering
//!
//! The pool's only shared atomic is the chunk cursor, and it is read with
//! `fetch_add(1, Relaxed)`. Relaxed is sufficient because the cursor is
//! used purely for *claim uniqueness*: `fetch_add` is a single atomic
//! read-modify-write, so every worker observes a distinct chunk index, and
//! no data is published through the cursor itself. All actual data flow —
//! the closure's captured inputs on the way in, each worker's `local`
//! result vector on the way out — is ordered by [`std::thread::scope`]'s
//! spawn and join edges, which are full happens-before synchronisation
//! points. The stitch therefore reads every worker's results strictly
//! after that worker finished writing them, with no additional fences.
//!
//! # Observability
//!
//! When the `telemetry` feature is on (the default), each pool region
//! records phase spans (`pool.region`, `pool.worker`, `pool.chunk`,
//! `pool.stitch`) and registry metrics (`pool.regions`,
//! `pool.region_items`, `pool.region_chunks`, `pool.worker_chunks` — the
//! latter's spread across workers is the stitch-imbalance signal). Probes
//! never alter scheduling or output: the differential tests pin
//! bit-identical results with telemetry on, off, and recording mid-flight.

use crate::sync::{AtomicUsize, OnceLock, Ordering};
use std::num::NonZeroUsize;

/// Guided-schedule granularity: each claimed chunk targets
/// `remaining / (workers * CHUNKS_PER_WORKER)` items, so every worker sees
/// several chunks on average and the tail shrinks geometrically.
const CHUNKS_PER_WORKER: usize = 4;

/// Thread-count knob for the parallel engines.
///
/// `threads == 0` selects the sequential reference path (work runs inline on
/// the calling thread, no pool involved); `threads >= 1` spawns up to that
/// many scoped workers per parallel region. Environment-derived
/// configurations ([`ParallelConfig::from_env`]) additionally cap the
/// effective worker count at [`std::thread::available_parallelism`];
/// explicitly constructed counts ([`ParallelConfig::with_threads`]) are
/// exact, so differential tests drive real multi-worker claiming even on
/// narrow hosts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParallelConfig {
    threads: usize,
    /// True when `threads` came from the environment/hardware probe and must
    /// be re-capped at the hardware width per region.
    hardware_capped: bool,
}

impl ParallelConfig {
    /// The sequential reference configuration (`threads = 0`).
    pub const fn sequential() -> Self {
        ParallelConfig {
            threads: 0,
            hardware_capped: false,
        }
    }

    /// An exact fixed worker count; `0` is the sequential reference path.
    pub const fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads,
            hardware_capped: false,
        }
    }

    /// Re-caps this configuration's effective worker count at the hardware
    /// width, like [`ParallelConfig::from_env`] does. Benchmarks sweeping
    /// fixed thread counts use this so a `t=4` row on a narrower host
    /// measures the capped configuration rather than oversubscription
    /// thrash; differential tests stay on the exact [`with_threads`]
    /// semantics, where spawning more workers than cores is the point.
    ///
    /// [`with_threads`]: ParallelConfig::with_threads
    pub const fn cap_to_hardware(self) -> Self {
        ParallelConfig {
            threads: self.threads,
            hardware_capped: true,
        }
    }

    /// The process-wide configuration: `SKYLINE_THREADS` if set to an
    /// integer (`0` = sequential), otherwise the machine's available
    /// parallelism. The environment is read once and cached for the life of
    /// the process.
    pub fn from_env() -> Self {
        static CACHE: OnceLock<usize> = OnceLock::new();
        let threads = *CACHE.get_or_init(|| {
            match std::env::var("SKYLINE_THREADS") {
                Ok(v) => v.trim().parse().ok(),
                Err(_) => None,
            }
            .unwrap_or_else(available_threads)
        });
        ParallelConfig {
            threads,
            hardware_capped: true,
        }
    }

    /// The configured worker count (`0` = sequential reference path).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True iff work runs inline on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 0
    }

    /// The effective worker bound for a region of `len` items.
    fn workers_for(&self, len: usize) -> usize {
        let cap = if self.hardware_capped {
            available_threads()
        } else {
            usize::MAX
        };
        self.threads.min(len).min(cap)
    }
}

impl Default for ParallelConfig {
    /// Defaults to the process-wide environment configuration.
    fn default() -> Self {
        ParallelConfig::from_env()
    }
}

/// The machine's available parallelism, defaulting to 1 when unknown.
/// Public so hardware-aware bench gates can grade speedup expectations by
/// the width of the host they ran on.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Guided chunk table over `len` uniform items: exclusive end offsets, each
/// chunk covering `~remaining / (workers * CHUNKS_PER_WORKER)` items. Purely
/// a function of `(len, workers)` — never of claim timing — so the split is
/// deterministic even though claiming is racy.
fn guided_ends(len: usize, workers: usize) -> Vec<usize> {
    let grain = workers * CHUNKS_PER_WORKER;
    let mut ends = Vec::new();
    let mut done = 0usize;
    while done < len {
        let take = ((len - done) / grain).max(1);
        done += take;
        ends.push(done);
    }
    ends
}

/// Cost-modeled chunk table: cuts the per-item cost prefix sum into chunks of
/// `~remaining_cost / (workers * CHUNKS_PER_WORKER)` each, so equal-*cost*
/// (not equal-count) bands go to the workers. Zero-cost items ride along
/// with their preceding chunk.
fn weighted_ends(costs: &[u64], workers: usize) -> Vec<usize> {
    let total: u64 = costs.iter().sum();
    let grain = (workers * CHUNKS_PER_WORKER) as u64;
    let mut ends = Vec::new();
    let mut spent = 0u64;
    let mut chunk_cost = 0u64;
    for (i, &c) in costs.iter().enumerate() {
        chunk_cost += c;
        let target = ((total - spent) / grain).max(1);
        if chunk_cost >= target {
            spent += chunk_cost;
            chunk_cost = 0;
            ends.push(i + 1);
        }
    }
    if ends.last() != Some(&costs.len()) && !costs.is_empty() {
        ends.push(costs.len());
    }
    ends
}

/// Maps `0..len` through `f`, in parallel when `cfg` allows, and returns the
/// results **in index order**. The closure runs at most once per index.
///
/// Sequential configurations (and trivially small inputs) run inline; the
/// pool otherwise lets scoped workers steal contiguous index chunks off an
/// atomic cursor over the guided chunk table, so both uneven per-item cost
/// and worker stalls load-balance down to single-item granularity at the
/// tail. A panic in `f` propagates to the caller after the scope unwinds.
pub fn map_indexed<R, F>(cfg: &ParallelConfig, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if cfg.is_sequential() || len <= 1 {
        return (0..len).map(f).collect();
    }
    let workers = cfg.workers_for(len);
    if workers <= 1 {
        // A single effective worker runs inline — same work order, no scope
        // or spawn overhead.
        return (0..len).map(f).collect();
    }
    run_region(workers, len, &guided_ends(len, workers), &f)
}

/// The cost-modeled variant of [`map_indexed`]: `cost(i)` estimates the
/// relative cost of item `i` (any monotone-in-work unit is fine; only ratios
/// matter) and chunk boundaries cut the cost prefix sum evenly, so bands
/// with skewed per-item work still balance. Same determinism contract:
/// results come back in index order, bit-identical at every thread count.
pub fn map_indexed_weighted<R, F, W>(cfg: &ParallelConfig, len: usize, cost: W, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    W: Fn(usize) -> u64,
{
    if cfg.is_sequential() || len <= 1 {
        return (0..len).map(f).collect();
    }
    let workers = cfg.workers_for(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let costs: Vec<u64> = (0..len).map(cost).collect();
    run_region(workers, len, &weighted_ends(&costs, workers), &f)
}

/// One parallel region: `workers` scoped threads steal chunks (delimited by
/// the precomputed `ends` table) off a shared atomic cursor and the caller
/// stitches the per-chunk results back in index order.
fn run_region<R, F>(workers: usize, len: usize, ends: &[usize], f: &F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let _region = crate::span!("pool.region", len as u64);
    crate::counter!("pool.regions").add(1);
    crate::histogram!("pool.region_items").record(len as u64);
    crate::histogram!("pool.region_chunks").record(ends.len() as u64);
    let cursor = AtomicUsize::new(0);

    let mut parts: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(ends.len()))
            .map(|_| {
                scope.spawn(|| {
                    let mut worker_span = crate::span!("pool.worker");
                    let _mem =
                        crate::telemetry::mem::phase(crate::telemetry::mem::MemPhase::PoolWorker);
                    let mut claimed: u64 = 0;
                    let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        // relaxed-ok: pure chunk ticket; workers read the
                        // shared input through the scope, not the cursor.
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= ends.len() {
                            break;
                        }
                        let start = if c == 0 { 0 } else { ends[c - 1] };
                        let end = ends[c];
                        let _chunk_span = crate::span!("pool.chunk", (end - start) as u64);
                        claimed += 1;
                        local.push((start, (start..end).map(f).collect()));
                    }
                    // Chunks claimed per worker: the spread of this
                    // histogram across one region is the load-imbalance
                    // signal the stitch inherits.
                    worker_span.set_payload(claimed);
                    crate::histogram!("pool.worker_chunks").record(claimed);
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(local) => local,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    let _stitch = crate::span!("pool.stitch", parts.len() as u64);
    let _mem = crate::telemetry::mem::phase(crate::telemetry::mem::MemPhase::PoolStitch);
    parts.sort_unstable_by_key(|&(start, _)| start);
    debug_assert_eq!(parts.iter().map(|(_, v)| v.len()).sum::<usize>(), len);
    let mut out = Vec::with_capacity(len);
    for (_, mut part) in parts.drain(..) {
        out.append(&mut part);
    }
    out
}

/// Maps a slice through `f` with the same ordering and distribution
/// guarantees as [`map_indexed`].
pub fn map<T, R, F>(cfg: &ParallelConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_indexed(cfg, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_config_is_inline() {
        let cfg = ParallelConfig::sequential();
        assert!(cfg.is_sequential());
        assert_eq!(cfg.threads(), 0);
        assert_eq!(map_indexed(&cfg, 5, |i| i * i), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        for threads in [1, 2, 3, 8, 33] {
            let cfg = ParallelConfig::with_threads(threads);
            let expected: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
            assert_eq!(
                map_indexed(&cfg, 257, |i| i * 3 + 1),
                expected,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn weighted_map_matches_sequential_for_any_cost_model() {
        let expected: Vec<usize> = (0..300).map(|i| i ^ 0x5a).collect();
        for threads in [1, 2, 3, 8] {
            let cfg = ParallelConfig::with_threads(threads);
            // Skewed, uniform, zero, and adversarial (single hot item) costs
            // must never change the output, only the chunk boundaries.
            for cost in [
                |i: usize| (i as u64) * (i as u64),
                |_| 1u64,
                |_| 0u64,
                |i: usize| if i == 150 { 1_000_000 } else { 1 },
            ] {
                assert_eq!(
                    map_indexed_weighted(&cfg, 300, cost, |i| i ^ 0x5a),
                    expected,
                    "threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn guided_ends_cover_exactly_once_with_decaying_tail() {
        for (len, workers) in [(1, 2), (7, 2), (100, 3), (641, 4), (640_000, 4)] {
            let ends = guided_ends(len, workers);
            assert_eq!(*ends.last().unwrap(), len, "len={len} workers={workers}");
            assert!(ends.windows(2).all(|w| w[0] < w[1]));
            // Tail chunks degrade to single items: a straggler can be
            // out-stolen down to one item of slack.
            let prev = if ends.len() >= 2 {
                ends[ends.len() - 2]
            } else {
                0
            };
            assert_eq!(
                ends[ends.len() - 1] - prev,
                1,
                "len={len} workers={workers}"
            );
        }
        // First chunk is the coarse guided grain, not the whole range.
        let ends = guided_ends(640_000, 4);
        assert_eq!(ends[0], 640_000 / (4 * CHUNKS_PER_WORKER));
    }

    #[test]
    fn weighted_ends_cut_equal_cost_not_equal_count() {
        // One huge item: it must get its own chunk; the cheap tail must not
        // ride in it.
        let mut costs = vec![1u64; 100];
        costs[0] = 1_000_000;
        let ends = weighted_ends(&costs, 4);
        assert_eq!(ends[0], 1);
        assert_eq!(*ends.last().unwrap(), 100);
        assert!(ends.windows(2).all(|w| w[0] < w[1]));
        // All-zero costs still cover every item exactly once.
        let ends = weighted_ends(&[0u64; 10], 2);
        assert_eq!(*ends.last().unwrap(), 10);
    }

    #[test]
    fn map_over_slice_matches_sequential() {
        let items: Vec<i64> = (0..100).map(|i| i * 7 % 13).collect();
        let seq = map(&ParallelConfig::sequential(), &items, |&x| x * x);
        for threads in [1, 2, 4] {
            assert_eq!(
                map(&ParallelConfig::with_threads(threads), &items, |&x| x * x),
                seq
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let cfg = ParallelConfig::with_threads(4);
        assert_eq!(map_indexed(&cfg, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(&cfg, 1, |i| i + 41), vec![41]);
        assert_eq!(
            map_indexed_weighted(&cfg, 0, |_| 1, |i| i),
            Vec::<usize>::new()
        );
        assert_eq!(map_indexed_weighted(&cfg, 1, |_| 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        map_indexed(&ParallelConfig::with_threads(7), 100, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed)
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        let counts: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        map_indexed_weighted(
            &ParallelConfig::with_threads(7),
            100,
            |i| i as u64,
            |i| counts[i].fetch_add(1, Ordering::Relaxed),
        );
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            map_indexed(&ParallelConfig::with_threads(2), 8, |i| {
                assert!(i != 5, "boom at index 5");
                i
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn with_threads_is_exact_and_roundtrips() {
        assert_eq!(ParallelConfig::with_threads(3).threads(), 3);
        assert!(!ParallelConfig::with_threads(1).is_sequential());
        // Explicit counts are exact even beyond the hardware width, so
        // differential tests drive real multi-worker claiming on any host;
        // environment-derived counts stay hardware-capped.
        assert_eq!(ParallelConfig::with_threads(64).workers_for(1000), 64);
        assert!(ParallelConfig::from_env().workers_for(1000) <= available_threads().max(64));
        // The bench sweep's capped variant folds back to the hardware width.
        let capped = ParallelConfig::with_threads(64).cap_to_hardware();
        assert_eq!(capped.threads(), 64);
        assert!(capped.workers_for(1000) <= available_threads());
    }
}
