//! The paper's Algorithm 4, implemented *literally*: compute the
//! intersection points of the half-open grid-line segments, link each to
//! its left/right and lower/upper neighbors, and walk each polyomino's
//! vertex sequence (Example 5's `g1, g2, g3, g4, g5, g6`).
//!
//! The production sweeping engine ([`crate::quadrant::sweeping`]) uses the
//! equivalent corner-key formulation, which also handles coordinate ties
//! and attaches skyline results. This module exists for fidelity and as a
//! differential check: the `walks_match_boundary_tracer` test asserts that
//! every literal vertex walk equals the boundary loop of the corresponding
//! corner-key polyomino, vertex for vertex.
//!
//! Scope: as in the paper, general position is assumed (pairwise distinct
//! x and pairwise distinct y); [`build`] returns
//! [`Error::RequiresGeneralPosition`] otherwise. Walls replace the paper's
//! `0` boundary: one unit below the minimum coordinate per axis, so
//! negative coordinates work.

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::geometry::{Coord, Dataset, Point};

/// One skyline polyomino as a closed vertex walk (counterclockwise; the
/// first vertex is the polyomino's upper-right corner `g₀`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexPolyomino {
    /// The upper-right corner — the intersection point owning the region.
    pub corner: Point,
    /// The boundary vertices, starting at `corner`, not repeating it.
    pub vertices: Vec<Point>,
}

/// Builds every polyomino's vertex walk. `O(n²)` intersection points, each
/// walked once; total work linear in the output size.
pub fn build(dataset: &Dataset) -> Result<Vec<VertexPolyomino>> {
    let points = dataset.points();
    let n = points.len();
    {
        let mut xs: Vec<Coord> = points.iter().map(|p| p.x).collect();
        let mut ys: Vec<Coord> = points.iter().map(|p| p.y).collect();
        xs.sort_unstable();
        xs.dedup();
        ys.sort_unstable();
        ys.dedup();
        if xs.len() != n || ys.len() != n {
            return Err(Error::RequiresGeneralPosition);
        }
    }

    let wall_x = points
        .iter()
        .map(|p| p.x)
        .min()
        .expect("datasets are never empty")
        - 1;
    let wall_y = points
        .iter()
        .map(|p| p.y)
        .min()
        .expect("datasets are never empty")
        - 1;

    // Intersection lists per line. A point p's horizontal segment spans
    // x ∈ [wall_x, p.x]; a point u's vertical segment spans
    // y ∈ [wall_y, u.y]. They cross iff u.x ≤ p.x and u.y ≥ p.y.
    let mut horizontal: HashMap<Coord, Vec<Coord>> = HashMap::new(); // y -> xs
    let mut vertical: HashMap<Coord, Vec<Coord>> = HashMap::new(); // x -> ys

    for p in points {
        let mut xs: Vec<Coord> = points
            .iter()
            .filter(|u| u.y > p.y && u.x < p.x)
            .map(|u| u.x)
            .collect();
        xs.push(wall_x);
        xs.push(p.x);
        xs.sort_unstable();
        horizontal.insert(p.y, xs);

        let mut ys: Vec<Coord> = points
            .iter()
            .filter(|w| w.y < p.y && w.x > p.x)
            .map(|w| w.y)
            .collect();
        ys.push(wall_y);
        ys.push(p.y);
        ys.sort_unstable();
        vertical.insert(p.x, ys);
    }
    // Wall lines: the horizontal wall crosses every vertical segment, and
    // vice versa.
    {
        let mut xs: Vec<Coord> = points.iter().map(|p| p.x).collect();
        xs.push(wall_x);
        xs.sort_unstable();
        horizontal.insert(wall_y, xs);
        let mut ys: Vec<Coord> = points.iter().map(|p| p.y).collect();
        ys.push(wall_y);
        ys.sort_unstable();
        vertical.insert(wall_x, ys);
    }

    let left_of = |g: Point| -> Point {
        let xs = &horizontal[&g.y];
        let i = xs.binary_search(&g.x).expect("vertex lies on its line");
        Point::new(xs[i - 1], g.y)
    };
    let right_of = |g: Point| -> Point {
        let xs = &horizontal[&g.y];
        let i = xs.binary_search(&g.x).expect("vertex lies on its line");
        Point::new(xs[i + 1], g.y)
    };
    let lower_of = |g: Point| -> Point {
        let ys = &vertical[&g.x];
        let i = ys.binary_search(&g.y).expect("vertex lies on its line");
        Point::new(g.x, ys[i - 1])
    };

    // Every pair (u, p) with u.x ≤ p.x and u.y ≥ p.y (including u = p)
    // produces the intersection (u.x, p.y) — the upper-right corner of
    // exactly one polyomino.
    let mut out = Vec::new();
    for p in points {
        for u in points {
            if u.x > p.x || u.y < p.y {
                continue;
            }
            let g0 = Point::new(u.x, p.y);
            let mut vertices = vec![g0];
            // The paper's walk: left once, then (lower, right) pairs until
            // the right neighbor returns to g0's vertical line.
            let mut g = left_of(g0);
            vertices.push(g);
            loop {
                g = lower_of(g);
                vertices.push(g);
                g = right_of(g);
                if g.x == g0.x {
                    vertices.push(g);
                    break;
                }
                vertices.push(g);
                debug_assert!(g.x < g0.x, "walk must not overshoot its corner");
                debug_assert!(vertices.len() <= 4 * n + 8, "walk must terminate");
            }
            // Degenerate final edge: if the last vertex equals g0 the
            // region is a rectangle whose bottom edge sits on g0's line
            // (cannot happen in general position, but keep the walk
            // well-formed).
            if vertices.last() == Some(&g0) {
                vertices.pop();
            }
            out.push(VertexPolyomino {
                corner: g0,
                vertices,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::boundary::{boundary_loops, signed_area_doubled, ClipBox};
    use crate::diagram::merge::merge;

    fn general_position_dataset(n: usize, seed: u64) -> Dataset {
        // Distinct coordinates per axis: shuffle 0..n for y by a seeded
        // permutation, x = index scaled.
        let mut ys: Vec<i64> = (0..n as i64).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            ys.swap(i, j);
        }
        Dataset::from_coords((0..n).map(|i| (3 * i as i64 + 1, 5 * ys[i] + 2))).unwrap()
    }

    #[test]
    fn rejects_ties() {
        let ds = Dataset::from_coords([(1, 1), (1, 2)]).unwrap();
        assert_eq!(build(&ds), Err(Error::RequiresGeneralPosition));
        let ds = Dataset::from_coords([(1, 2), (3, 2)]).unwrap();
        assert_eq!(build(&ds), Err(Error::RequiresGeneralPosition));
    }

    #[test]
    fn polyomino_count_matches_sweeping() {
        for seed in [1u64, 9, 42] {
            let ds = general_position_dataset(12, seed);
            let literal = build(&ds).unwrap();
            let swept = crate::quadrant::sweeping::build(&ds);
            // Swept polyominoes include exactly one empty-result region
            // (beyond all points); the literal walks cover the rest.
            let nonempty = swept
                .merged
                .iter()
                .filter(|p| !swept.cell_diagram.results().get(p.result).is_empty())
                .count();
            assert_eq!(literal.len(), nonempty, "seed {seed}");
        }
    }

    #[test]
    fn walks_match_boundary_tracer() {
        for seed in [3u64, 7] {
            let ds = general_position_dataset(10, seed);
            let literal = build(&ds).unwrap();
            let swept = crate::quadrant::sweeping::build(&ds);
            let grid = swept.cell_diagram.grid();
            let wall_x = ds.points().iter().map(|p| p.x).min().unwrap() - 1;
            let wall_y = ds.points().iter().map(|p| p.y).min().unwrap() - 1;
            let clip = ClipBox {
                x_min: wall_x,
                x_max: grid.x_lines()[grid.nx() as usize - 1] + 1,
                y_min: wall_y,
                y_max: grid.y_lines()[grid.ny() as usize - 1] + 1,
            };
            // Match literal polyominoes to swept ones by upper-right
            // corner: the swept polyomino whose cells' maximal corner is
            // the literal corner.
            for vp in &literal {
                let poly = swept
                    .merged
                    .iter()
                    .find(|poly| {
                        let (_, _, max_i, max_j) = poly.bounding_box();
                        max_i < grid.nx()
                            && max_j < grid.ny()
                            && grid.x_lines()[max_i as usize] == vp.corner.x
                            && grid.y_lines()[max_j as usize] == vp.corner.y
                    })
                    .unwrap_or_else(|| panic!("no swept polyomino for {}", vp.corner));
                let loops = boundary_loops(grid, poly.cells, clip);
                assert_eq!(loops.len(), 1, "polyominoes have no holes");
                let mut a = vp.vertices.clone();
                let mut b = loops[0].clone();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "corner {} (seed {seed})", vp.corner);
            }
        }
    }

    #[test]
    fn paper_example5_shape() {
        // Example 5's shape: the polyomino with upper-right corner at the
        // intersection of u = (20, 40)'s vertical line and p = (40, 20)'s
        // horizontal line is interrupted by w = (10, 10)'s half-open
        // segments, producing the six-vertex staircase
        // g1..g6 = (20,20), (9,20), (9,10), (10,10), (10,9), (20,9).
        let ds = Dataset::from_coords([(20, 40), (40, 20), (10, 10)]).unwrap();
        let walks = build(&ds).unwrap();
        let stair = walks
            .iter()
            .find(|w| w.corner == Point::new(20, 20))
            .unwrap();
        assert_eq!(
            stair.vertices,
            vec![
                Point::new(20, 20),
                Point::new(9, 20),
                Point::new(9, 10),
                Point::new(10, 10),
                Point::new(10, 9),
                Point::new(20, 9),
            ]
        );
        assert!(signed_area_doubled(&stair.vertices) > 0, "walks are CCW");
        // An uninterrupted corner stays a rectangle.
        let rect = walks
            .iter()
            .find(|w| w.corner == Point::new(10, 10))
            .unwrap();
        assert_eq!(rect.vertices.len(), 4);
    }

    #[test]
    fn total_area_covers_everything_below_the_staircase() {
        // The literal polyominoes tile the region below/left of the
        // half-open segments; together with the outer empty region they
        // tile the clip box, so their total area equals the clip box area
        // minus the outer region's.
        let ds = general_position_dataset(8, 5);
        let walks = build(&ds).unwrap();
        let total: i64 = walks.iter().map(|w| signed_area_doubled(&w.vertices)).sum();
        assert!(total > 0);
        // Cross-check against the swept diagram's nonempty-cell area in
        // the same wall-based clip.
        let swept = crate::quadrant::sweeping::build(&ds);
        let merged = merge(&swept.cell_diagram);
        let grid = swept.cell_diagram.grid();
        let wall_x = ds.points().iter().map(|p| p.x).min().unwrap() - 1;
        let wall_y = ds.points().iter().map(|p| p.y).min().unwrap() - 1;
        let clip = ClipBox {
            x_min: wall_x,
            x_max: grid.x_lines()[grid.nx() as usize - 1] + 1,
            y_min: wall_y,
            y_max: grid.y_lines()[grid.ny() as usize - 1] + 1,
        };
        let mut swept_total = 0i64;
        for poly in merged.iter() {
            if swept.cell_diagram.results().get(poly.result).is_empty() {
                continue;
            }
            for walk in boundary_loops(grid, poly.cells, clip) {
                swept_total += signed_area_doubled(&walk);
            }
        }
        assert_eq!(total, swept_total);
    }
}
