//! The baseline quadrant-diagram algorithm (paper Algorithm 1).
//!
//! For each of the `O(n²)` skyline cells, the first-quadrant candidates
//! (points at or beyond the cell's upper-right boundary in both ranks) are
//! scanned in x order keeping the running minimum y — `O(n)` per cell after
//! one global sort, `O(n³)` total, matching the paper's analysis. The cells
//! are then interned into a [`CellDiagram`]; merging into polyominoes is a
//! separate step shared by all engines ([`crate::diagram::merge`]).

use crate::diagram::CellDiagram;
use crate::geometry::{CellGrid, Dataset, PointId};
use crate::result_set::{ResultId, ResultInterner};

/// Builds the quadrant skyline diagram with the baseline per-cell scan.
pub fn build(dataset: &Dataset) -> CellDiagram {
    let grid = CellGrid::new(dataset);
    let mut results = ResultInterner::new();

    // Points in ascending (x, y, id) order — the "sort once" of Algorithm 1.
    let mut order: Vec<PointId> = dataset.ids().collect();
    order.sort_unstable_by_key(|&id| {
        let p = dataset.point(id);
        (p.x, p.y, id)
    });
    let xrank: Vec<u32> = order.iter().map(|&id| grid.xrank(id)).collect();
    let yrank: Vec<u32> = order.iter().map(|&id| grid.yrank(id)).collect();

    let width = grid.nx() as usize + 1;
    let height = grid.ny() as usize + 1;
    let mut cells = vec![results.empty(); width * height];
    let mut scratch: Vec<PointId> = Vec::new();

    for j in 0..height as u32 {
        for i in 0..width as u32 {
            let rid = cell_skyline(&order, &xrank, &yrank, i, j, &mut scratch, &mut results);
            cells[j as usize * width + i as usize] = rid;
        }
    }

    CellDiagram::from_parts(grid, results, cells)
}

/// Tie-correct minima scan over the candidates of one cell.
///
/// `order` is sorted ascending by (x, y); the candidates for cell `(i, j)`
/// are entries with `xrank >= i` and `yrank >= j`. Within a run of equal x,
/// the first qualifying entry has the group's minimal qualifying y, and
/// equal-(x, y) duplicates immediately follow it.
fn cell_skyline(
    order: &[PointId],
    xrank: &[u32],
    yrank: &[u32],
    i: u32,
    j: u32,
    scratch: &mut Vec<PointId>,
    results: &mut ResultInterner,
) -> ResultId {
    scratch.clear();
    let mut best_y = u32::MAX; // compare by y rank: same order as y values
    let mut k = 0;
    while k < order.len() {
        // Find the run of this x rank.
        let gx = xrank[k];
        let mut end = k;
        while end < order.len() && xrank[end] == gx {
            end += 1;
        }
        if gx >= i {
            // First qualifying entry in the run has minimal qualifying y.
            if let Some(first) = (k..end).find(|&t| yrank[t] >= j) {
                let gy = yrank[first];
                if (gy as u64) < best_y as u64 {
                    for t in first..end {
                        if yrank[t] == gy {
                            scratch.push(order[t]);
                        } else {
                            break;
                        }
                    }
                    best_y = gy;
                }
            }
        }
        k = end;
    }
    results.intern_unsorted(std::mem::take(scratch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::query::quadrant_skyline_naive;

    fn hotel() -> Dataset {
        crate::test_data::hotel_dataset()
    }

    #[test]
    fn boundary_cells_are_empty() {
        let ds = hotel();
        let d = build(&ds);
        let (nx, ny) = (d.grid().nx(), d.grid().ny());
        for i in 0..=nx {
            assert!(d.result((i, ny)).is_empty());
        }
        for j in 0..=ny {
            assert!(d.result((nx, j)).is_empty());
        }
    }

    #[test]
    fn origin_cell_is_the_dataset_skyline() {
        let ds = hotel();
        let d = build(&ds);
        assert_eq!(
            d.result((0, 0)),
            crate::skyline::sort_sweep::skyline_2d(&ds)
        );
        // Paper fact: Sky(P) of the hotel example is {p1, p6, p11}.
        assert_eq!(d.result((0, 0)), &[PointId(0), PointId(5), PointId(10)]);
    }

    #[test]
    fn every_cell_matches_the_naive_quadrant_query() {
        let ds = hotel();
        let d = build(&ds);
        for cell in d.grid().cells() {
            let q = d.grid().representative_doubled(cell);
            let expected = quadrant_skyline_naive_doubled(&ds, q);
            assert_eq!(d.result(cell), expected.as_slice(), "cell {cell:?}");
        }
    }

    /// Naive quadrant skyline against a query in doubled coordinates.
    fn quadrant_skyline_naive_doubled(ds: &Dataset, q2: Point) -> Vec<PointId> {
        let doubled = Dataset::from_coords(ds.points().iter().map(|p| (2 * p.x, 2 * p.y))).unwrap();
        quadrant_skyline_naive(&doubled, q2)
    }

    #[test]
    fn paper_shaded_region_result() {
        // The paper's Figure 3 highlights a region whose skyline is
        // {p8, p10}; in the reconstruction, queries just right of p3 and
        // just below p10 see exactly that pair (p5 and p7 are dominated by
        // p8 within the quadrant).
        let ds = hotel();
        let d = build(&ds);
        assert_eq!(d.query(Point::new(12, 81)), &[PointId(7), PointId(9)]);
    }

    #[test]
    fn tie_heavy_dataset() {
        // 3x3 integer grid with duplicates: all engines must agree with the
        // naive oracle even on fully tied coordinates.
        let mut coords = Vec::new();
        for x in 0..3 {
            for y in 0..3 {
                coords.push((x, y));
            }
        }
        coords.push((1, 1));
        let ds = Dataset::from_coords(coords).unwrap();
        let d = build(&ds);
        for cell in d.grid().cells() {
            let q = d.grid().representative_doubled(cell);
            let expected = quadrant_skyline_naive_doubled(&ds, q);
            assert_eq!(d.result(cell), expected.as_slice(), "cell {cell:?}");
        }
    }

    #[test]
    fn single_point_diagram() {
        let ds = Dataset::from_coords([(5, 5)]).unwrap();
        let d = build(&ds);
        assert_eq!(d.result((0, 0)), &[PointId(0)]);
        assert!(d.result((1, 0)).is_empty());
        assert!(d.result((0, 1)).is_empty());
        assert!(d.result((1, 1)).is_empty());
    }
}
