//! The directed-skyline-graph quadrant-diagram algorithm (paper Section
//! IV-B, Algorithm 2).
//!
//! Key observation: moving from a cell to its right (upper) neighbor only
//! removes the points on the crossed vertical (horizontal) grid line from
//! the first quadrant, and those removals are *dominator-closed* — a point
//! left behind by a rightward/upward move has every dominator left behind
//! too. Hence a surviving point becomes a new skyline point exactly when its
//! last surviving direct parent in the DSG is removed (see [`crate::dsg`]
//! for the proof).
//!
//! The sweep processes cells column by column, as in the paper: each
//! column's state is derived from the previous column's bottom cell by
//! crossing one vertical line, then swept upward on a scratch copy (the
//! paper's `tempDSG`) crossing one horizontal line per cell. Copying costs
//! `O(n)` per column; link deletions cost `O(links)` per sweep, for `O(n³)`
//! worst case and far less in practice.

use crate::diagram::CellDiagram;
use crate::dsg::{DeletionSweep, DirectedSkylineGraph};
use crate::geometry::{CellGrid, Dataset};
use crate::result_set::ResultInterner;

/// Builds the quadrant skyline diagram with the DSG-incremental algorithm.
pub fn build(dataset: &Dataset) -> CellDiagram {
    let grid = CellGrid::new(dataset);
    let dsg = DirectedSkylineGraph::new_2d(dataset);
    build_with_dsg(grid, &dsg)
}

/// Variant taking a prebuilt DSG, for the E8a ablation (graph construction
/// cost vs sweep cost) and for callers reusing one DSG across runs.
pub fn build_with_dsg(grid: CellGrid, dsg: &DirectedSkylineGraph) -> CellDiagram {
    let mut results = ResultInterner::new();
    let width = grid.nx() as usize + 1;
    let height = grid.ny() as usize + 1;
    let mut cells = vec![results.empty(); width * height];

    // State of the current column's bottom cell C_{i,0}.
    let mut column_state = DeletionSweep::new(dsg);

    for i in 0..width {
        // Sweep this column bottom-to-top on a scratch copy, recording each
        // cell's skyline. Points already removed by column advancement (x
        // rank < i) are skipped inside `remove_points` via presence flags.
        let mut state = column_state.clone();
        cells[i] = results.intern_sorted(state.skyline_ids());
        for j in 1..height {
            state.remove_points(dsg, grid.points_with_yrank(j as u32 - 1));
            cells[j * width + i] = results.intern_sorted(state.skyline_ids());
        }

        // Advance the bottom-row state to the next column by crossing the
        // vertical grid line xs[i].
        if i + 1 < width {
            column_state.remove_points(dsg, grid.points_with_xrank(i as u32));
        }
    }

    CellDiagram::from_parts(grid, results, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PointId;
    use crate::quadrant::baseline;

    #[test]
    fn matches_baseline_on_hotel_example() {
        let ds = crate::test_data::hotel_dataset();
        assert!(build(&ds).same_results(&baseline::build(&ds)));
    }

    #[test]
    fn matches_baseline_on_random_data() {
        for seed in 0..5 {
            let ds = crate::test_data::lcg_dataset(40, 1000, seed);
            assert!(
                build(&ds).same_results(&baseline::build(&ds)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_baseline_under_heavy_ties() {
        for seed in 0..5 {
            let ds = crate::test_data::lcg_dataset(40, 6, 100 + seed);
            assert!(
                build(&ds).same_results(&baseline::build(&ds)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn paper_example_walk() {
        // Example 2 of the paper: Sky(C_{0,0}) is the first skyline layer;
        // crossing the first vertical line (the reconstruction's p1) removes
        // p1; the new skyline is {p6, p11}.
        let ds = crate::test_data::hotel_dataset();
        let d = build(&ds);
        assert_eq!(d.result((0, 0)), &[PointId(0), PointId(5), PointId(10)]);
        // Crossing the first vertical line removes p1, exposing its direct
        // children p2, p4, p9 (no other point dominates them).
        assert_eq!(
            d.result((1, 0)),
            &[PointId(1), PointId(3), PointId(5), PointId(8), PointId(10)]
        );
        // Two more crossings peel p2 then p4 without exposing anything new.
        assert_eq!(
            d.result((2, 0)),
            &[PointId(3), PointId(5), PointId(8), PointId(10)]
        );
        assert_eq!(d.result((3, 0)), &[PointId(5), PointId(8), PointId(10)]);
        // Crossing the first horizontal line removes p11 (the lowest-price
        // hotel); nothing is exposed because p6 dominates the remaining
        // non-skyline points: Sky(C_{0,1}) = {p1, p6}.
        assert_eq!(d.result((0, 1)), &[PointId(0), PointId(5)]);
    }

    #[test]
    fn single_column_dataset() {
        // All points share one x: two cells wide, vertical sweep only.
        let ds = Dataset::from_coords([(5, 1), (5, 2), (5, 3)]).unwrap();
        let d = build(&ds);
        assert_eq!(d.result((0, 0)), &[PointId(0)]);
        assert_eq!(d.result((0, 1)), &[PointId(1)]);
        assert_eq!(d.result((0, 2)), &[PointId(2)]);
        assert!(d.result((0, 3)).is_empty());
        assert!(d.result((1, 0)).is_empty());
    }
}
