//! Skyline-diagram construction for **quadrant** skyline queries
//! (Section IV of the paper): four engines with identical output.
//!
//! | Engine | Paper § | Complexity | Notes |
//! |---|---|---|---|
//! | [`baseline`] | IV-A | `O(n³)` | per-cell sorted scan |
//! | [`dsg_algorithm`] | IV-B | `O(n³)` | incremental link deletion |
//! | [`scanning`] | IV-C | `O(n³)` | Theorem-1 multiset recurrence |
//! | [`sweeping`] | IV-D | `O(n²)` | finds polyominoes directly (corner keys) |
//! | [`algorithm4`] | IV-D | `O(n²)` | the paper's literal vertex walks; geometry only, kept as a differential check |

pub mod algorithm4;
pub mod baseline;
pub mod dsg_algorithm;
pub mod scanning;
pub mod sweeping;

use crate::diagram::CellDiagram;
use crate::geometry::Dataset;

pub use sweeping::SweptDiagram;

/// Selector for the quadrant-diagram engines, used by benches and the
/// experiments harness to sweep all algorithms uniformly.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QuadrantEngine {
    /// Per-cell sorted scan (paper Algorithm 1).
    Baseline,
    /// Directed-skyline-graph incremental (paper Algorithm 2).
    DirectedSkylineGraph,
    /// Multiset-recurrence scanning (paper Algorithm 3).
    Scanning,
    /// Half-open grid-line sweeping (paper Algorithm 4). The default: it is
    /// the asymptotically best engine.
    #[default]
    Sweeping,
}

impl QuadrantEngine {
    /// All engines, for exhaustive cross-validation and benches.
    pub const ALL: [QuadrantEngine; 4] = [
        QuadrantEngine::Baseline,
        QuadrantEngine::DirectedSkylineGraph,
        QuadrantEngine::Scanning,
        QuadrantEngine::Sweeping,
    ];

    /// Short stable name, used in bench ids and experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            QuadrantEngine::Baseline => "baseline",
            QuadrantEngine::DirectedSkylineGraph => "dsg",
            QuadrantEngine::Scanning => "scanning",
            QuadrantEngine::Sweeping => "sweeping",
        }
    }

    /// Builds the quadrant skyline diagram with this engine.
    ///
    /// ```
    /// use skyline_core::geometry::{Dataset, Point};
    /// use skyline_core::quadrant::QuadrantEngine;
    ///
    /// let ds = Dataset::from_coords([(2, 8), (5, 5), (8, 2)])?;
    /// let diagram = QuadrantEngine::Sweeping.build(&ds);
    /// // Below-left of everything, all three points are quadrant skyline.
    /// assert_eq!(diagram.query(Point::new(0, 0)).len(), 3);
    /// // Beyond all points, the quadrant is empty.
    /// assert!(diagram.query(Point::new(9, 9)).is_empty());
    /// # Ok::<(), skyline_core::Error>(())
    /// ```
    pub fn build(self, dataset: &Dataset) -> CellDiagram {
        self.build_with(dataset, &crate::parallel::ParallelConfig::from_env())
    }

    /// Builds the quadrant skyline diagram with this engine and an explicit
    /// parallel configuration. The scanning and sweeping engines have
    /// row-band parallel paths; the per-cell baseline and DSG engines are
    /// reference implementations and always run sequentially.
    pub fn build_with(
        self,
        dataset: &Dataset,
        cfg: &crate::parallel::ParallelConfig,
    ) -> CellDiagram {
        // Span names are per-engine so a trace separates the four engines;
        // the counter key is a literal because `counter!` caches its
        // registry lookup per call site.
        let span_name = match self {
            QuadrantEngine::Baseline => "quadrant.build.baseline",
            QuadrantEngine::DirectedSkylineGraph => "quadrant.build.dsg",
            QuadrantEngine::Scanning => "quadrant.build.scanning",
            QuadrantEngine::Sweeping => "quadrant.build.sweeping",
        };
        let _build = crate::span!(span_name, dataset.len() as u64);
        let _mem = crate::telemetry::mem::phase(crate::telemetry::mem::MemPhase::QuadrantBuild);
        crate::counter!("quadrant.builds").add(1);
        let diagram = match self {
            QuadrantEngine::Baseline => baseline::build(dataset),
            QuadrantEngine::DirectedSkylineGraph => dsg_algorithm::build(dataset),
            QuadrantEngine::Scanning => scanning::build_with(dataset, cfg),
            QuadrantEngine::Sweeping => sweeping::build_with(dataset, cfg).cell_diagram,
        };
        // Debug builds spot-check the output against the from-scratch oracle
        // (see `crate::invariants`); release builds pay nothing.
        #[cfg(debug_assertions)]
        if let Err(violation) = crate::invariants::validate_cell_diagram(
            dataset,
            &diagram,
            crate::invariants::CellSemantics::Quadrant,
            crate::invariants::DEBUG_SAMPLE_BUDGET,
        ) {
            debug_assert!(false, "{} engine: {violation}", self.name());
        }
        diagram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_engines_agree() {
        let ds = crate::test_data::lcg_dataset(35, 50, 7);
        let reference = QuadrantEngine::Baseline.build(&ds);
        for engine in QuadrantEngine::ALL {
            assert!(
                engine.build(&ds).same_results(&reference),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            QuadrantEngine::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), QuadrantEngine::ALL.len());
    }

    #[test]
    fn default_engine_is_sweeping() {
        assert_eq!(QuadrantEngine::default(), QuadrantEngine::Sweeping);
    }
}
