//! The scanning quadrant-diagram algorithm (paper Section IV-C, Theorem 1,
//! Algorithm 3).
//!
//! Scans cells from the top-right corner leftward/downward and computes each
//! cell's skyline from its three already-computed neighbors with the
//! multiset identity
//!
//! ```text
//! Sky(C_{i,j}) = Sky(C_{i+1,j}) ⊎ Sky(C_{i,j+1}) ∖ Sky(C_{i+1,j+1})
//! ```
//!
//! except for cells with a data point at their upper-right corner, whose
//! skyline is exactly the point(s) at that corner (such a point dominates
//! the whole quadrant).
//!
//! Results are carried as u64-block bitsets
//! ([`BitsetInterner`]), so one recurrence step is
//! three bitwise operations per 64 points
//! ([`scanning_combine_words`]) plus one block hash,
//! independent of the skyline sizes; the arena converts to the sorted-id
//! representation once, id-for-id, at the end of the build.
//!
//! # Correctness beyond the paper's statement
//!
//! Writing `K` for the points exactly at the corner `(xs[i], ys[j])`, `R`
//! for the points on the corner's vertical line strictly above it, `U` for
//! the points on its horizontal line strictly right of it, and `I` for the
//! strict interior `Q(i+1, j+1)`, one gets (for `K = ∅`):
//!
//! - `Sky(C_{i,j})   = r* ⊎ u* ⊎ {p ∈ Sky(I) : p.x < min_x(U), p.y < min_y(R)}`
//! - `Sky(C_{i+1,j}) = u* ⊎ {p ∈ Sky(I) : p.x < min_x(U)}`
//! - `Sky(C_{i,j+1}) = r* ⊎ {p ∈ Sky(I) : p.y < min_y(R)}`
//! - `Sky(C_{i+1,j+1}) = Sky(I)`
//!
//! where `r*`/`u*` are the minimal elements of `R`/`U` (nonempty only if the
//! line carries points in the quadrant). A `Sky(I)` point failing *both*
//! guards appears in neither neighbor but once in the diagonal, so a literal
//! multiset difference would assign it multiplicity `-1`. The published
//! identity implicitly assumes this configuration away (its proof notes the
//! upper-right range `D` must be empty when range `A` is nonempty, but `D`
//! can be nonempty when `A`, `B`, `C` are all empty). Clamping multiplicity
//! at zero — `scanning_combine` keeps
//! an id iff `[right] + [up] - [diag] >= 1` — drops exactly those points and
//! makes the recurrence exact for every input, ties included. The
//! `counterexample_to_unclamped_identity` test below pins the 3-point input
//! that breaks the unclamped form.

use crate::diagram::CellDiagram;
use crate::geometry::{CellGrid, Coord, Dataset, PointId};
use crate::parallel::{self, ParallelConfig};
use crate::result_set::{scanning_combine_words, words_for, BitsetInterner};

/// Builds the quadrant skyline diagram with the scanning recurrence, using
/// the process-wide parallel configuration (`SKYLINE_THREADS`).
pub fn build(dataset: &Dataset) -> CellDiagram {
    build_with(dataset, &ParallelConfig::from_env())
}

/// Builds the quadrant skyline diagram with an explicit parallel
/// configuration.
///
/// The scanning recurrence chains every cell to its upper-right neighbors,
/// so the parallel path replaces it with an equivalent independent-row
/// formulation: `Sky(C_{i,j})` is the staircase of minima over the points
/// with `xrank >= i` and `yrank >= j`, so each row band sweeps the shared
/// descending-x point order once, maintaining the staircase as a bitset and
/// snapshotting its block at each x-rank that contributed (the result only
/// changes across such boundaries). Workers return raw boundary blocks;
/// interning happens on the caller in row-major order, keeping the output
/// identical to the sequential recurrence.
pub fn build_with(dataset: &Dataset, cfg: &ParallelConfig) -> CellDiagram {
    if cfg.is_sequential() {
        build_sequential(dataset)
    } else {
        build_parallel(dataset, cfg)
    }
}

/// The deterministic sequential reference: the paper's clamped recurrence,
/// word-parallel over the bitset arena.
fn build_sequential(dataset: &Dataset) -> CellDiagram {
    let _scan = crate::span!("scanning.recurrence", dataset.len() as u64);
    let grid = CellGrid::new(dataset);
    let words = words_for(dataset.len());
    let mut bits = BitsetInterner::new(words);
    let width = grid.nx() as usize + 1;
    let height = grid.ny() as usize + 1;
    // Bitset ids double as cell results until the final id-for-id
    // conversion; the empty set is id 0 on both sides.
    let mut cells = vec![0u32; width * height];
    let mut scratch = vec![0u64; words];

    // Top row (j = ny) and right column (i = nx) stay empty: their first
    // quadrants contain no points. Scan the rest top-down, right-to-left.
    for j in (0..height - 1).rev() {
        for i in (0..width - 1).rev() {
            let corner = grid.points_at_corner(i as u32, j as u32);
            let id = if !corner.is_empty() {
                // A corner point dominates its entire open quadrant; only
                // exact duplicates at the corner survive alongside it.
                bits.intern_ids(corner.iter().copied())
            } else {
                let right = cells[j * width + i + 1];
                let up = cells[(j + 1) * width + i];
                let diag = cells[(j + 1) * width + i + 1];
                scanning_combine_words(
                    bits.get_words(right),
                    bits.get_words(up),
                    bits.get_words(diag),
                    &mut scratch,
                );
                bits.intern_words(&scratch)
            };
            cells[j * width + i] = id;
        }
    }

    let results = bits.to_result_interner();
    let cells = cells.into_iter().map(crate::result_set::ResultId).collect();
    CellDiagram::from_parts(grid, results, cells)
}

/// One row band's boundary snapshots, struct-of-arrays: `xranks[k]` pairs
/// with the `k`-th `words`-stride block of `blocks`.
struct RowSnapshots {
    xranks: Vec<u32>,
    blocks: Vec<u64>,
}

/// The parallel engine: independent row bands over a shared descending-x
/// sort, stitched in row-major order.
fn build_parallel(dataset: &Dataset, cfg: &ParallelConfig) -> CellDiagram {
    let grid = CellGrid::new(dataset);
    let words = words_for(dataset.len());
    let width = grid.nx() as usize + 1;
    let height = grid.ny() as usize + 1;

    // Shared precomputation: points by descending x, then descending y, so
    // equal-x groups arrive highest-first and the staircase eviction rule
    // (same as the sweeping engine's) resolves ties identically.
    let mut by_x_desc: Vec<PointId> = dataset.ids().collect();
    by_x_desc.sort_unstable_by_key(|&id| {
        let p = dataset.point(id);
        (std::cmp::Reverse(p.x), std::cmp::Reverse(p.y))
    });

    // The top row (j = ny) has an empty first quadrant; every other row is
    // an independent band. Rows with a low `j` admit more points into the
    // staircase, which is the cost model for the band split.
    crate::counter!("scanning.rows").add((height - 1) as u64);
    let rows: Vec<RowSnapshots> = {
        let _scan = crate::span!("scanning.rows", (height - 1) as u64);
        parallel::map_indexed_weighted(
            cfg,
            height - 1,
            |j| (height - j) as u64,
            |j| scan_row(dataset, &grid, &by_x_desc, j as u32, words),
        )
    };

    let _stitch = crate::span!("scanning.stitch");
    let mut bits = BitsetInterner::new(words);
    let mut cells = vec![bits.empty(); width * height];
    for (j, row) in rows.iter().enumerate() {
        // Boundaries come back in descending x-rank order; replay them
        // ascending. Cells up to the first boundary share its snapshot,
        // cells past the last boundary have empty quadrants.
        let mut next = 0usize;
        for (k, &v) in row.xranks.iter().enumerate().rev() {
            let block = &row.blocks[k * words..(k + 1) * words];
            let id = bits.intern_words(block);
            for cell in &mut cells[j * width + next..=j * width + v as usize] {
                *cell = id;
            }
            next = v as usize + 1;
        }
    }
    let results = bits.to_result_interner();
    let cells = cells.into_iter().map(crate::result_set::ResultId).collect();
    CellDiagram::from_parts(grid, results, cells)
}

/// One row band: sweep the shared descending-x order, keep the staircase of
/// minima over points with `yrank >= j` (mirrored as a bitset block), and
/// snapshot the block after each x-rank group that inserted at least one
/// point. Cell `(i, j)` takes the snapshot of the smallest recorded x-rank
/// `>= i`.
fn scan_row(
    dataset: &Dataset,
    grid: &CellGrid,
    by_x_desc: &[PointId],
    j: u32,
    words: usize,
) -> RowSnapshots {
    let mut stack: Vec<(Coord, PointId)> = Vec::new();
    let mut live = vec![0u64; words];
    let mut out = RowSnapshots {
        xranks: Vec::new(),
        blocks: Vec::new(),
    };
    let set_bit = |block: &mut [u64], id: PointId, on: bool| {
        let bit = id.0 as usize;
        if on {
            block[bit / 64] |= 1u64 << (bit % 64);
        } else {
            block[bit / 64] &= !(1u64 << (bit % 64));
        }
    };
    let mut pt = 0usize;
    while pt < by_x_desc.len() {
        let v = grid.xrank(by_x_desc[pt]);
        let mut changed = false;
        while pt < by_x_desc.len() && grid.xrank(by_x_desc[pt]) == v {
            let id = by_x_desc[pt];
            pt += 1;
            if grid.yrank(id) < j {
                continue;
            }
            let p = dataset.point(id);
            // Evict dominated entries; exact duplicates survive. Mirrors the
            // sweeping engine's staircase so tie semantics stay identical.
            while let Some(&(ty, tid)) = stack.last() {
                let tp = dataset.point(tid);
                if ty > p.y || (ty == p.y && tp.x > p.x) {
                    stack.pop();
                    set_bit(&mut live, tid, false);
                } else {
                    break;
                }
            }
            stack.push((p.y, id));
            set_bit(&mut live, id, true);
            changed = true;
        }
        if changed {
            out.xranks.push(v);
            out.blocks.extend_from_slice(&live);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrant::baseline;

    #[test]
    fn matches_baseline_on_hotel_example() {
        let ds = crate::test_data::hotel_dataset();
        assert!(build(&ds).same_results(&baseline::build(&ds)));
    }

    #[test]
    fn matches_baseline_on_random_data() {
        for seed in 0..5 {
            let ds = crate::test_data::lcg_dataset(40, 1000, seed);
            assert!(
                build(&ds).same_results(&baseline::build(&ds)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_baseline_under_heavy_ties() {
        for seed in 0..5 {
            let ds = crate::test_data::lcg_dataset(40, 6, 200 + seed);
            assert!(
                build(&ds).same_results(&baseline::build(&ds)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn counterexample_to_unclamped_identity() {
        // a = (10, 0), b = (0, 10), d = (20, 20): for C_{0,0} the three
        // upper ranges of Theorem 1's proof are empty while its range D
        // holds d, so the unclamped multiset expression would compute
        // {a} ⊎ {b} ∖ {d} with d at multiplicity -1. The clamped recurrence
        // must produce exactly {a, b}.
        let ds = Dataset::from_coords([(10, 0), (0, 10), (20, 20)]).unwrap();
        let d = build(&ds);
        assert_eq!(d.result((0, 0)), &[PointId(0), PointId(1)]);
        assert_eq!(d.result((1, 0)), &[PointId(0)]);
        assert_eq!(d.result((0, 1)), &[PointId(1)]);
        assert_eq!(d.result((1, 1)), &[PointId(2)]);
        assert!(build(&ds).same_results(&baseline::build(&ds)));
    }

    #[test]
    fn thread_counts_agree_with_sequential_recurrence() {
        for seed in 0..3 {
            let ds = crate::test_data::lcg_dataset(35, 50, 400 + seed);
            let reference = build_with(&ds, &ParallelConfig::sequential());
            for threads in [1, 2, 3, 8] {
                assert!(
                    build_with(&ds, &ParallelConfig::with_threads(threads))
                        .same_results(&reference),
                    "threads = {threads}, seed = {seed}"
                );
            }
        }
    }

    #[test]
    fn parallel_row_formulation_handles_ties() {
        for seed in 0..3 {
            let ds = crate::test_data::lcg_dataset(40, 6, 500 + seed);
            let reference = baseline::build(&ds);
            assert!(
                build_with(&ds, &ParallelConfig::with_threads(3)).same_results(&reference),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn word_boundary_sizes_match_baseline() {
        // 63/64/65 points straddle the one-word/two-word block boundary.
        for n in [63, 64, 65] {
            let ds = crate::test_data::lcg_dataset(n, 500, 77);
            let reference = baseline::build(&ds);
            assert!(build(&ds).same_results(&reference), "n = {n}");
            assert!(
                build_with(&ds, &ParallelConfig::with_threads(4)).same_results(&reference),
                "n = {n} parallel"
            );
        }
    }

    #[test]
    fn corner_cells_hold_their_point() {
        let ds = crate::test_data::hotel_dataset();
        let d = build(&ds);
        let grid = d.grid();
        for (id, _) in ds.iter() {
            let (rx, ry) = (grid.xrank(id), grid.yrank(id));
            assert_eq!(d.result((rx, ry)), &[id], "cell cornered by {id}");
        }
    }

    #[test]
    fn duplicate_corner_points_survive_together() {
        let ds = Dataset::from_coords([(5, 5), (5, 5), (9, 9)]).unwrap();
        let d = build(&ds);
        assert_eq!(d.result((0, 0)), &[PointId(0), PointId(1)]);
        assert!(build(&ds).same_results(&baseline::build(&ds)));
    }
}
