//! The sweeping quadrant-diagram algorithm (paper Section IV-D, Theorem 2,
//! Algorithm 4) — `O(n²)`: finds the skyline polyominoes *directly*, without
//! computing a skyline per cell and merging.
//!
//! Two half-open grid-line segments per point (one downward, one leftward)
//! partition the plane; by Theorem 2 every region they bound is a skyline
//! polyomino. Each bounded region has a unique upper-right corner — an
//! intersection of one downward segment with one leftward segment — and that
//! corner determines the region's result.
//!
//! # Implementation notes
//!
//! The corner of the region containing a query `q` is
//! `g₀ = (min_x(Q), min_y(Q))` where `Q` is `q`'s first-quadrant point set:
//! walking right from `q`, the first downward segment hit belongs to the
//! leftmost quadrant point; walking up, the first leftward segment belongs
//! to the lowest one. Two rank-adjacent cells are separated by a segment iff
//! the crossed grid line carries a quadrant point, which is also exactly
//! when their corners (and their skylines) differ — so the swept polyominoes
//! are the connected components of cells sharing a corner, and they coincide
//! with the merge of any per-cell diagram (asserted by tests). The corner
//! field is computed for all cells by a single `O(n²)` dynamic program, and
//! results are attached per distinct corner with one leftward staircase
//! sweep per horizontal line: `O(n²)` plus the size of the output, versus
//! the `O(n³)` of the per-cell engines.

use std::collections::HashMap;

use crate::diagram::{merge::merge, CellDiagram, MergedDiagram};
use crate::geometry::{CellGrid, Coord, Dataset, PointId};
use crate::parallel::{self, ParallelConfig};
use crate::result_set::{ResultId, ResultInterner};

/// Output of the sweeping engine: the per-cell diagram (for interoperability
/// with the other engines) plus the polyomino partition it found directly.
#[derive(Clone, Debug)]
#[must_use]
pub struct SweptDiagram {
    /// Cell-level view, identical in content to the other engines' output.
    pub cell_diagram: CellDiagram,
    /// The polyominoes, grouped by region corner during the sweep.
    pub merged: MergedDiagram,
}

/// Builds the quadrant skyline diagram by sweeping, with the process-wide
/// parallel configuration (`SKYLINE_THREADS`).
pub fn build(dataset: &Dataset) -> SweptDiagram {
    build_with(dataset, &ParallelConfig::from_env())
}

/// Builds the quadrant skyline diagram by sweeping with an explicit parallel
/// configuration. After the shared corner DP and the one descending-x sort,
/// the horizontal lines are independent row bands: workers sweep lines and
/// return raw per-anchor staircases, and the caller interns them in a fixed
/// line order — so every thread count (including the sequential reference)
/// produces an identical diagram.
pub fn build_with(dataset: &Dataset, cfg: &ParallelConfig) -> SweptDiagram {
    let grid = CellGrid::new(dataset);
    let width = grid.nx() as usize + 1;
    let height = grid.ny() as usize + 1;

    let corner_dp_span = crate::span!("sweeping.corner_dp", (width * height) as u64);
    // Corner DP: for each cell, the (min x-rank, min y-rank) over its
    // first-quadrant points, or RANK_INF when the quadrant is empty.
    const RANK_INF: u32 = u32::MAX;
    let mut corner_x = vec![RANK_INF; width * height];
    let mut corner_y = vec![RANK_INF; width * height];
    for j in (0..height - 1).rev() {
        for i in (0..width - 1).rev() {
            let idx = j * width + i;
            let mut cx = corner_x[idx + 1].min(corner_x[idx + width]);
            let mut cy = corner_y[idx + 1].min(corner_y[idx + width]);
            if !grid.points_at_corner(i as u32, j as u32).is_empty() {
                cx = cx.min(i as u32);
                cy = cy.min(j as u32);
            }
            corner_x[idx] = cx;
            corner_y[idx] = cy;
        }
    }

    // Attach a skyline result to every distinct corner. Corners sharing a
    // y rank are served by one rightmost-to-leftmost staircase sweep; the
    // lines are gathered into a y-rank-sorted vector so both the worker
    // schedule and the interning order below are deterministic.
    let mut anchors_by_y: HashMap<u32, Vec<u32>> = HashMap::new();
    for idx in 0..width * height {
        if corner_x[idx] != RANK_INF {
            anchors_by_y
                .entry(corner_y[idx])
                .or_default()
                .push(corner_x[idx]);
        }
    }
    let mut lines: Vec<(u32, Vec<u32>)> = anchors_by_y
        .into_iter()
        .map(|(ry, mut anchors)| {
            anchors.sort_unstable();
            anchors.dedup();
            (ry, anchors)
        })
        .collect();
    lines.sort_unstable_by_key(|&(ry, _)| ry);

    // Points sorted by descending x (then descending y) once, reused by
    // every per-line sweep.
    let mut by_x_desc: Vec<PointId> = dataset.ids().collect();
    by_x_desc.sort_unstable_by_key(|&id| {
        let p = dataset.point(id);
        (std::cmp::Reverse(p.x), std::cmp::Reverse(p.y))
    });

    drop(corner_dp_span);
    crate::counter!("sweeping.lines").add(lines.len() as u64);

    // Row-band parallelism: each line sweep is independent given the shared
    // sort; raw staircases come back per line and are interned in line order.
    let swept: Vec<Vec<(u32, Vec<PointId>)>> = {
        let _sweep = crate::span!("sweeping.sweep", lines.len() as u64);
        parallel::map(cfg, &lines, |(ry, anchors)| {
            sweep_line(dataset, &grid, &by_x_desc, *ry, anchors)
        })
    };

    let _intern = crate::span!("sweeping.intern");
    let mut results = ResultInterner::new();
    let mut corner_result: HashMap<(u32, u32), ResultId> = HashMap::new();
    for ((ry, _), line) in lines.iter().zip(&swept) {
        for (anchor, ids) in line {
            let rid = results.intern_unsorted(ids.clone());
            corner_result.insert((*anchor, *ry), rid);
        }
    }

    // Fill the per-cell diagram from the corner results.
    let empty = results.empty();
    let cells: Vec<ResultId> = (0..width * height)
        .map(|idx| {
            if corner_x[idx] == RANK_INF {
                empty
            } else {
                corner_result[&(corner_x[idx], corner_y[idx])]
            }
        })
        .collect();
    let cell_diagram = CellDiagram::from_parts(grid, results, cells);

    // The polyominoes are the connected components of equal corners, which
    // coincide with equal-result components (module docs); reuse the shared
    // merge to produce them in the common format.
    let merged = merge(&cell_diagram);
    SweptDiagram {
        cell_diagram,
        merged,
    }
}

/// One horizontal line's sweep: for every anchor x-rank on line `ry`
/// (ascending), the result is the staircase of points with
/// `yrank >= ry` and `xrank >= anchor`. Sweeps anchors in descending order
/// while inserting points right-to-left, returning each anchor's raw
/// (unsorted) staircase for the caller to intern.
fn sweep_line(
    dataset: &Dataset,
    grid: &CellGrid,
    by_x_desc: &[PointId],
    ry: u32,
    anchors: &[u32],
) -> Vec<(u32, Vec<PointId>)> {
    // Staircase stack: x descending insertion order; invariant x ascending /
    // y strictly descending from bottom to top... inserted points have the
    // smallest x so far, so the live stack is ordered by insertion time with
    // later entries dominating earlier ones evicted on the fly. Entries are
    // (y, id); eviction compares y only. Ties: an equal-y later point with
    // strictly smaller x dominates, so `>=` evicts; exact duplicates are
    // handled by keeping same-(x, y) runs together.
    let mut stack: Vec<(Coord, PointId)> = Vec::new();
    let mut out = Vec::with_capacity(anchors.len());
    let mut pt = 0usize;
    for &anchor in anchors.iter().rev() {
        // Insert all points with xrank >= anchor (and yrank >= ry).
        while pt < by_x_desc.len() {
            let id = by_x_desc[pt];
            if grid.xrank(id) < anchor {
                break;
            }
            pt += 1;
            if grid.yrank(id) < ry {
                continue;
            }
            let p = dataset.point(id);
            // Evict dominated staircase entries: same or larger y, unless it
            // is an exact duplicate (same x and y), which must survive.
            while let Some(&(ty, tid)) = stack.last() {
                let tp = dataset.point(tid);
                if ty > p.y || (ty == p.y && tp.x > p.x) {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push((p.y, id));
        }
        out.push((anchor, stack.iter().map(|&(_, id)| id).collect()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrant::baseline;

    #[test]
    fn matches_baseline_on_hotel_example() {
        let ds = crate::test_data::hotel_dataset();
        assert!(build(&ds).cell_diagram.same_results(&baseline::build(&ds)));
    }

    #[test]
    fn matches_baseline_on_random_data() {
        for seed in 0..5 {
            let ds = crate::test_data::lcg_dataset(40, 1000, seed);
            assert!(
                build(&ds).cell_diagram.same_results(&baseline::build(&ds)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_baseline_under_heavy_ties() {
        for seed in 0..5 {
            let ds = crate::test_data::lcg_dataset(40, 6, 300 + seed);
            assert!(
                build(&ds).cell_diagram.same_results(&baseline::build(&ds)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn polyominoes_match_merged_baseline() {
        let ds = crate::test_data::hotel_dataset();
        let swept = build(&ds);
        let merged_baseline = merge(&baseline::build(&ds));
        assert_eq!(swept.merged.len(), merged_baseline.len());
        // Same cell partition: components must contain identical cell sets.
        let mut a: Vec<_> = swept.merged.iter().map(|p| p.cells.to_vec()).collect();
        let mut b: Vec<_> = merged_baseline.iter().map(|p| p.cells.to_vec()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn exact_duplicates_stay_in_results() {
        let ds = Dataset::from_coords([(5, 5), (5, 5), (2, 8)]).unwrap();
        let swept = build(&ds);
        assert!(swept.cell_diagram.same_results(&baseline::build(&ds)));
        assert_eq!(
            swept.cell_diagram.result((0, 0)),
            &[PointId(0), PointId(1), PointId(2)]
        );
    }

    #[test]
    fn thread_counts_agree_with_sequential_reference() {
        for seed in 0..3 {
            let ds = crate::test_data::lcg_dataset(35, 50, 100 + seed);
            let reference = build_with(&ds, &ParallelConfig::sequential());
            for threads in [1, 2, 3, 8] {
                let swept = build_with(&ds, &ParallelConfig::with_threads(threads));
                assert!(
                    swept.cell_diagram.same_results(&reference.cell_diagram),
                    "threads = {threads}, seed = {seed}"
                );
                assert_eq!(swept.merged.len(), reference.merged.len());
            }
        }
    }

    #[test]
    fn polyomino_count_is_at_most_cell_count() {
        let ds = crate::test_data::lcg_dataset(60, 100, 9);
        let swept = build(&ds);
        assert!(swept.merged.len() <= swept.cell_diagram.grid().cell_count());
        // ... and strictly smaller here: merging must achieve something.
        assert!(swept.merged.len() < swept.cell_diagram.grid().cell_count());
    }
}
