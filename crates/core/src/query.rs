//! From-scratch skyline queries for arbitrary query points.
//!
//! These are the "no precomputation" baselines the diagram is measured
//! against (experiment E6), and the oracles the diagrams are validated
//! against: for any query point, the diagram lookup must equal the
//! from-scratch answer.
//!
//! # Boundary convention
//!
//! Quadrants are *open*: a point with `p.x == q.x` or `p.y == q.y` lies on an
//! axis of `q` and belongs to no quadrant, so it never appears in a quadrant
//! or global skyline. This matches the diagram side, where on-line queries
//! are assigned to the greater-side cell (see
//! [`CellGrid::cell_of`](crate::geometry::CellGrid::cell_of)): for `q`
//! exactly on the grid line of `p`, the first quadrant of the assigned cell
//! starts strictly beyond `p`, so *quadrant* diagram lookups are exact even
//! on grid lines. *Global* lookups are exact off grid lines only: exactly on
//! a line, the from-scratch answer excludes the line's axis points entirely,
//! while the greater-side cell counts them in the lower quadrants — the
//! lookup then equals the from-scratch answer for `q + ε`. Dynamic skylines
//! have no quadrant subtlety — the
//! mapping `|p - q|` is defined everywhere — but dynamic *diagram* lookups
//! for queries exactly on a subcell boundary may differ from the
//! from-scratch answer on the boundary itself (a measure-zero set where
//! bisector comparisons tie); use [`dynamic_skyline`] when exactness on
//! boundaries matters.

use crate::dominance::{dominates_dynamic, dominates_global, quadrant_of};
use crate::geometry::{Coord, Dataset, Point, PointD, PointId};
use crate::skyline::sort_sweep::minima_xy;

/// First-quadrant skyline of `q`: minima of the points strictly greater than
/// `q` in both coordinates. `O(n log n)`.
#[must_use]
pub fn quadrant_skyline(dataset: &Dataset, q: Point) -> Vec<PointId> {
    let mut scratch: Vec<(Coord, Coord, PointId)> = dataset
        .iter()
        .filter(|(_, p)| p.x > q.x && p.y > q.y)
        .map(|(id, p)| (p.x, p.y, id))
        .collect();
    minima_xy(&mut scratch)
}

/// Quadratic oracle for [`quadrant_skyline`].
#[must_use]
pub fn quadrant_skyline_naive(dataset: &Dataset, q: Point) -> Vec<PointId> {
    let in_q1: Vec<(PointId, Point)> = dataset
        .iter()
        .filter(|(_, p)| p.x > q.x && p.y > q.y)
        .collect();
    let mut out: Vec<PointId> = in_q1
        .iter()
        .filter(|(_, p)| {
            !in_q1
                .iter()
                .any(|(_, o)| crate::dominance::dominates(*o, *p))
        })
        .map(|&(id, _)| id)
        .collect();
    out.sort_unstable();
    out
}

/// Global skyline of `q` (Definition 3): union of the four per-quadrant
/// skylines. Points on an axis of `q` belong to no quadrant. `O(n log n)`.
#[must_use]
pub fn global_skyline(dataset: &Dataset, q: Point) -> Vec<PointId> {
    let mut out = Vec::new();
    let mut scratch: Vec<(Coord, Coord, PointId)> = Vec::new();
    for quadrant in 1..=4u8 {
        scratch.clear();
        // Reflect each quadrant onto the first so minima_xy applies:
        // dominance within a quadrant minimizes |p - q| componentwise.
        scratch.extend(
            dataset
                .iter()
                .filter(|&(_, p)| quadrant_of(p, q) == Some(quadrant))
                .map(|(id, p)| ((p.x - q.x).abs(), (p.y - q.y).abs(), id)),
        );
        out.extend(minima_xy(&mut scratch));
    }
    out.sort_unstable();
    out
}

/// Quadratic oracle for [`global_skyline`].
#[must_use]
pub fn global_skyline_naive(dataset: &Dataset, q: Point) -> Vec<PointId> {
    let mut out: Vec<PointId> = dataset
        .iter()
        .filter(|&(_, p)| {
            quadrant_of(p, q).is_some() && !dataset.iter().any(|(_, o)| dominates_global(o, p, q))
        })
        .map(|(id, _)| id)
        .collect();
    out.sort_unstable();
    out
}

/// Dynamic skyline of `q` (Definition 2): skyline of the points mapped by
/// `t[j] = |p[j] - q[j]|`. `O(n log n)`.
#[must_use]
pub fn dynamic_skyline(dataset: &Dataset, q: Point) -> Vec<PointId> {
    let mut scratch: Vec<(Coord, Coord, PointId)> = dataset
        .iter()
        .map(|(id, p)| ((p.x - q.x).abs(), (p.y - q.y).abs(), id))
        .collect();
    minima_xy(&mut scratch)
}

/// Quadratic oracle for [`dynamic_skyline`].
#[must_use]
pub fn dynamic_skyline_naive(dataset: &Dataset, q: Point) -> Vec<PointId> {
    let mut out: Vec<PointId> = dataset
        .iter()
        .filter(|&(_, p)| !dataset.iter().any(|(_, o)| dominates_dynamic(o, p, q)))
        .map(|(id, _)| id)
        .collect();
    out.sort_unstable();
    out
}

// --- d-dimensional counterparts ------------------------------------------

/// First-orthant skyline of `q` in d dimensions: minima of the points
/// strictly greater than `q` in every coordinate.
#[must_use]
pub fn orthant_skyline_d(dataset: &crate::geometry::DatasetD, q: &PointD) -> Vec<PointId> {
    debug_assert_eq!(dataset.dims(), q.dims());
    let candidates = dataset
        .iter()
        .filter(|(_, p)| (0..q.dims()).all(|k| p.coord(k) > q.coord(k)))
        .map(|(id, _)| id);
    crate::skyline::bnl::skyline_d_subset(dataset, candidates)
}

/// Global skyline of `q` in d dimensions: union of the per-orthant
/// skylines; points on an axis hyperplane of `q` belong to no orthant.
#[must_use]
pub fn global_skyline_d(dataset: &crate::geometry::DatasetD, q: &PointD) -> Vec<PointId> {
    use crate::dominance::orthant_of;
    let mut out = Vec::new();
    for mask in 0..(1u32 << dataset.dims()) {
        // Mapped coordinates |p - q| reduce each orthant to minimization.
        let members: Vec<(PointId, Vec<Coord>)> = dataset
            .iter()
            .filter(|(_, p)| orthant_of(p, q) == Some(mask))
            .map(|(id, p)| {
                let mapped = (0..q.dims())
                    .map(|k| (p.coord(k) - q.coord(k)).abs())
                    .collect();
                (id, mapped)
            })
            .collect();
        out.extend(
            members
                .iter()
                .filter(|(_, m)| {
                    !members
                        .iter()
                        .any(|(_, o)| crate::dominance::dominates_coords(o, m))
                })
                .map(|&(id, _)| id),
        );
    }
    out.sort_unstable();
    out
}

/// Dynamic skyline of `q` in d dimensions.
#[must_use]
pub fn dynamic_skyline_d(dataset: &crate::geometry::DatasetD, q: &PointD) -> Vec<PointId> {
    let mapped: Vec<Vec<Coord>> = dataset
        .points()
        .iter()
        .map(|p| {
            (0..q.dims())
                .map(|k| (p.coord(k) - q.coord(k)).abs())
                .collect()
        })
        .collect();
    let mut out: Vec<PointId> = (0..dataset.len())
        .filter(|&i| {
            !mapped
                .iter()
                .any(|o| crate::dominance::dominates_coords(o, &mapped[i]))
        })
        .map(|i| PointId(i as u32))
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hotel() -> Dataset {
        crate::test_data::hotel_dataset()
    }

    /// The paper's running query.
    const Q: Point = Point::new(10, 80);

    #[test]
    fn first_quadrant_matches_paper() {
        let ds = hotel();
        // {p3, p8, p10}
        let expected = vec![PointId(2), PointId(7), PointId(9)];
        assert_eq!(quadrant_skyline(&ds, Q), expected);
        assert_eq!(quadrant_skyline_naive(&ds, Q), expected);
    }

    #[test]
    fn global_is_union_of_quadrants() {
        let ds = hotel();
        // Q1 {p3, p8, p10} ∪ Q2 {p1, p9} ∪ Q3 {p6} ∪ Q4 {p11}.
        let expected = vec![
            PointId(0),
            PointId(2),
            PointId(5),
            PointId(7),
            PointId(8),
            PointId(9),
            PointId(10),
        ];
        assert_eq!(global_skyline(&ds, Q), expected);
        assert_eq!(global_skyline_naive(&ds, Q), expected);
    }

    #[test]
    fn dynamic_matches_paper() {
        let ds = hotel();
        // {p6, p11} — the paper's headline dynamic result for q = (10, 80).
        let expected = vec![PointId(5), PointId(10)];
        assert_eq!(dynamic_skyline(&ds, Q), expected);
        assert_eq!(dynamic_skyline_naive(&ds, Q), expected);
    }

    #[test]
    fn dynamic_is_subset_of_global() {
        let ds = hotel();
        for q in [Q, Point::new(0, 0), Point::new(7, 90), Point::new(14, 50)] {
            let dynamic = dynamic_skyline(&ds, q);
            let global = global_skyline(&ds, q);
            for id in &dynamic {
                // Points on an axis of q are excluded from the global
                // skyline by the open-quadrant convention; skip those.
                let p = ds.point(*id);
                if p.x == q.x || p.y == q.y {
                    continue;
                }
                assert!(
                    global.contains(id),
                    "dynamic {id} missing from global at {q}"
                );
            }
        }
    }

    #[test]
    fn axis_points_are_excluded_from_quadrant_queries() {
        let ds = Dataset::from_coords([(5, 7), (6, 8)]).unwrap();
        // q shares x with p0: p0 is on the axis, only p1 is in Q1.
        let q = Point::new(5, 5);
        assert_eq!(quadrant_skyline(&ds, q), vec![PointId(1)]);
        assert_eq!(global_skyline(&ds, q), vec![PointId(1)]);
        // Dynamic still sees both; p0 maps to (0, 2) and dominates (1, 3).
        assert_eq!(dynamic_skyline(&ds, q), vec![PointId(0)]);
    }

    #[test]
    fn fast_and_naive_agree_on_many_queries() {
        let ds = hotel();
        for qx in (0..25).step_by(3) {
            for qy in (0..100).step_by(7) {
                let q = Point::new(qx, qy);
                assert_eq!(
                    quadrant_skyline(&ds, q),
                    quadrant_skyline_naive(&ds, q),
                    "{q}"
                );
                assert_eq!(global_skyline(&ds, q), global_skyline_naive(&ds, q), "{q}");
                assert_eq!(
                    dynamic_skyline(&ds, q),
                    dynamic_skyline_naive(&ds, q),
                    "{q}"
                );
            }
        }
    }

    #[test]
    fn query_beyond_all_points_is_empty_quadrant() {
        let ds = hotel();
        assert!(quadrant_skyline(&ds, Point::new(1000, 1000)).is_empty());
        // ... but its dynamic skyline is never empty.
        assert!(!dynamic_skyline(&ds, Point::new(1000, 1000)).is_empty());
    }

    #[test]
    fn d_dimensional_queries_match_planar_at_d2() {
        let ds = hotel();
        let lifted = ds.to_dataset_d();
        for (qx, qy) in [(0, 0), (10, 80), (14, 50), (7, 93)] {
            let q = Point::new(qx, qy);
            let qd = PointD::from(q);
            assert_eq!(
                quadrant_skyline(&ds, q),
                orthant_skyline_d(&lifted, &qd),
                "{q}"
            );
            assert_eq!(
                global_skyline(&ds, q),
                global_skyline_d(&lifted, &qd),
                "{q}"
            );
            assert_eq!(
                dynamic_skyline(&ds, q),
                dynamic_skyline_d(&lifted, &qd),
                "{q}"
            );
        }
    }

    #[test]
    fn d3_queries_are_internally_consistent() {
        let ds = crate::geometry::DatasetD::from_rows([
            [3i64, 1, 4],
            [1, 5, 9],
            [2, 6, 5],
            [5, 3, 5],
            [4, 4, 4],
        ])
        .unwrap();
        let q = PointD::new(vec![3, 3, 3]);
        let orthant = orthant_skyline_d(&ds, &q);
        let global = global_skyline_d(&ds, &q);
        let dynamic = dynamic_skyline_d(&ds, &q);
        // Orthant ⊆ global; dynamic ⊆ global (off-axis points only).
        assert!(orthant.iter().all(|id| global.contains(id)));
        for id in &dynamic {
            let p = ds.point(*id);
            if (0..3).all(|k| p.coord(k) != q.coord(k)) {
                assert!(global.contains(id), "{id}");
            }
        }
        assert!(!dynamic.is_empty());
    }
}
