//! Interned skyline result sets.
//!
//! A diagram assigns a skyline result (a set of point ids) to each of up to
//! `O(n²)` cells — or `O(n⁴)` subcells for the dynamic diagram — but the
//! number of *distinct* results is bounded by the number of skyline
//! polyominoes, which is far smaller in practice. Storing one `u32` result id
//! per cell and interning the distinct sets keeps the output structure within
//! the paper's `O(min(s², n²)·n)` space bound without a per-cell `Vec`
//! allocation, and makes polyomino merging a cheap group-by on ids.

use std::collections::HashMap;

use crate::geometry::PointId;

/// Identifier of an interned skyline result inside a [`ResultInterner`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ResultId(pub u32);

/// FNV-1a over the id sequence; cheap and good enough for a `HashMap` key
/// that is verified by full comparison on collision.
fn fnv1a(ids: &[PointId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for id in ids {
        for b in id.0.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Deduplicating store of skyline results.
///
/// Every result is a strictly increasing sequence of [`PointId`]s. The empty
/// result is always interned with id 0 so that boundary cells can be filled
/// without a lookup.
#[derive(Clone, Debug, Default)]
pub struct ResultInterner {
    sets: Vec<Vec<PointId>>,
    lookup: HashMap<u64, Vec<ResultId>>,
}

impl ResultInterner {
    /// Creates an interner with the empty result pre-interned as id 0.
    pub fn new() -> Self {
        let mut interner = ResultInterner {
            sets: Vec::new(),
            lookup: HashMap::new(),
        };
        let empty = interner.intern_sorted(Vec::new());
        debug_assert_eq!(empty, ResultId(0));
        interner
    }

    /// The id of the empty result.
    #[inline]
    pub fn empty(&self) -> ResultId {
        ResultId(0)
    }

    /// Interns a result that is already sorted and duplicate-free.
    ///
    /// # Panics
    /// Debug builds assert the sortedness precondition.
    pub fn intern_sorted(&mut self, ids: Vec<PointId>) -> ResultId {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "result must be strictly sorted"
        );
        let h = fnv1a(&ids);
        let bucket = self.lookup.entry(h).or_default();
        for &rid in bucket.iter() {
            if self.sets[rid.0 as usize] == ids {
                return rid;
            }
        }
        let rid = ResultId(self.sets.len() as u32);
        self.sets.push(ids);
        bucket.push(rid);
        rid
    }

    /// Interns a result given in arbitrary order (sorts and dedups first).
    pub fn intern_unsorted(&mut self, mut ids: Vec<PointId>) -> ResultId {
        ids.sort_unstable();
        ids.dedup();
        self.intern_sorted(ids)
    }

    /// Interns a borrowed, strictly sorted result, allocating only when the
    /// set was not seen before. The workhorse of the parallel stitchers in
    /// [`crate::parallel`]-enabled engines: workers hand back flat borrowed
    /// result runs and the single-threaded stitch interns them without a
    /// per-cell `Vec` allocation.
    ///
    /// # Panics
    /// Debug builds assert the sortedness precondition.
    pub fn intern_slice(&mut self, ids: &[PointId]) -> ResultId {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "result must be strictly sorted"
        );
        let h = fnv1a(ids);
        let bucket = self.lookup.entry(h).or_default();
        for &rid in bucket.iter() {
            if self.sets[rid.0 as usize] == ids {
                return rid;
            }
        }
        let rid = ResultId(self.sets.len() as u32);
        self.sets.push(ids.to_vec());
        bucket.push(rid);
        rid
    }

    /// The point ids of an interned result, in increasing order.
    #[inline]
    pub fn get(&self, id: ResultId) -> &[PointId] {
        &self.sets[id.0 as usize]
    }

    /// Number of distinct interned results (including the empty one).
    #[inline]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether only the empty result has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sets.len() <= 1
    }

    /// Iterates over `(id, result)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ResultId, &[PointId])> + '_ {
        self.sets
            .iter()
            .enumerate()
            .map(|(i, s)| (ResultId(i as u32), s.as_slice()))
    }

    /// Total number of point ids stored across all distinct results — the
    /// diagram's intrinsic output size, reported by the E5 statistics.
    pub fn total_ids(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

/// The clamped multiset expression of the paper's Theorem 1:
/// `Sky(C_{i,j}) = Sky(C_{i+1,j}) ⊎ Sky(C_{i,j+1}) ∖ Sky(C_{i+1,j+1})`.
///
/// Each input is a strictly sorted set, so per-id multiplicities are
/// `{0, 1}`; an id belongs to the output iff
/// `[right] + [up] - [diag] >= 1`. Clamping at zero (instead of letting the
/// `diag` term go negative) extends the published identity to the corner
/// configuration where the three upper ranges of the theorem's proof are
/// empty while its upper-right range `D` is not — there `Sky(C_{i+1,j+1})`
/// contains points that appear in neither neighbor and must simply be
/// dropped. See `quadrant::scanning` for the full derivation and the
/// regression test pinning this configuration.
pub fn scanning_combine(
    right: &[PointId],
    up: &[PointId],
    diag: &[PointId],
    out: &mut Vec<PointId>,
) {
    out.clear();
    let (mut a, mut b, mut c) = (0usize, 0usize, 0usize);
    loop {
        let next = [
            right.get(a).copied(),
            up.get(b).copied(),
            diag.get(c).copied(),
        ]
        .into_iter()
        .flatten()
        .min();
        let Some(id) = next else { break };
        let mut count = 0i32;
        if right.get(a) == Some(&id) {
            count += 1;
            a += 1;
        }
        if up.get(b) == Some(&id) {
            count += 1;
            b += 1;
        }
        if diag.get(c) == Some(&id) {
            count -= 1;
            c += 1;
        }
        if count >= 1 {
            out.push(id);
        }
    }
}

/// Sorted-set union of two strictly sorted id slices.
pub fn union_sorted(a: &[PointId], b: &[PointId], out: &mut Vec<PointId>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                out.push(x);
                i += 1;
                j += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                out.push(x);
                i += 1;
            }
            (Some(_), Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (Some(&x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
}

/// A row's worth of per-cell results produced by one parallel worker:
/// consecutive equal results collapse into *runs* over one shared flat id
/// buffer, so a band of cells costs one allocation instead of one per cell.
///
/// Workers fill a `ResultRuns` each (no shared state, no locks); the
/// single-threaded stitch then replays the runs into the shared
/// [`ResultInterner`] in deterministic row-major order, which is what keeps
/// parallel builds bit-identical for every thread count.
#[derive(Clone, Debug, Default)]
pub struct ResultRuns {
    /// Concatenated ids of the distinct runs, in emission order.
    flat: Vec<PointId>,
    /// Per run: `(cells covered, end offset into flat)`.
    runs: Vec<(u32, u32)>,
}

impl ResultRuns {
    /// An empty run buffer.
    pub fn new() -> Self {
        ResultRuns::default()
    }

    /// Number of cells covered so far.
    pub fn cells(&self) -> usize {
        self.runs.iter().map(|&(count, _)| count as usize).sum()
    }

    /// True iff no cell has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The ids of the most recent run, if any.
    fn last_run(&self) -> Option<&[PointId]> {
        let &(_, end) = self.runs.last()?;
        let start = match self.runs.len().checked_sub(2) {
            Some(i) => self.runs[i].1 as usize,
            None => 0,
        };
        Some(&self.flat[start..end as usize])
    }

    /// Appends one cell whose result is `ids` (strictly sorted); collapses
    /// into the previous run when the result repeats.
    pub fn push(&mut self, ids: &[PointId]) {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "result must be strictly sorted"
        );
        if self.last_run() == Some(ids) {
            self.push_repeat(1);
            return;
        }
        self.flat.extend_from_slice(ids);
        self.runs.push((1, self.flat.len() as u32));
    }

    /// Appends `count` cells sharing the result `ids`.
    pub fn push_n(&mut self, ids: &[PointId], count: u32) {
        if count == 0 {
            return;
        }
        self.push(ids);
        self.push_repeat(count - 1);
    }

    /// Extends the current run by `count` more cells without re-checking the
    /// ids — for callers that already know the result did not change.
    ///
    /// # Panics
    /// Debug builds assert that a run exists.
    pub fn push_repeat(&mut self, count: u32) {
        debug_assert!(!self.runs.is_empty(), "push_repeat needs a current run");
        if let Some(last) = self.runs.last_mut() {
            last.0 += count;
        }
    }

    /// Replays the runs into `results`, appending one [`ResultId`] per cell
    /// to `cells` in emission order.
    pub fn intern_into(&self, results: &mut ResultInterner, cells: &mut Vec<ResultId>) {
        let mut start = 0usize;
        for &(count, end) in &self.runs {
            let rid = results.intern_slice(&self.flat[start..end as usize]);
            cells.extend(std::iter::repeat(rid).take(count as usize));
            start = end as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<PointId> {
        v.iter().copied().map(PointId).collect()
    }

    #[test]
    fn empty_is_id_zero() {
        let interner = ResultInterner::new();
        assert_eq!(interner.empty(), ResultId(0));
        assert!(interner.get(ResultId(0)).is_empty());
        assert!(interner.is_empty());
    }

    #[test]
    fn interning_dedups() {
        let mut interner = ResultInterner::new();
        let a = interner.intern_sorted(ids(&[1, 2, 5]));
        let b = interner.intern_sorted(ids(&[1, 2, 5]));
        let c = interner.intern_sorted(ids(&[1, 2, 6]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(interner.len(), 3); // empty + two distinct
        assert_eq!(interner.get(a), ids(&[1, 2, 5]).as_slice());
        assert_eq!(interner.total_ids(), 6);
        assert!(!interner.is_empty());
        assert_eq!(interner.iter().count(), 3);
    }

    #[test]
    fn intern_unsorted_normalizes() {
        let mut interner = ResultInterner::new();
        let a = interner.intern_unsorted(ids(&[5, 1, 2, 2, 5]));
        assert_eq!(interner.get(a), ids(&[1, 2, 5]).as_slice());
    }

    #[test]
    fn scanning_combine_basic() {
        let mut out = Vec::new();
        // right = {1,3}, up = {2,3}, diag = {3}: 1 and 2 kept, 3 has 1+1-1=1.
        scanning_combine(&ids(&[1, 3]), &ids(&[2, 3]), &ids(&[3]), &mut out);
        assert_eq!(out, ids(&[1, 2, 3]));
    }

    #[test]
    fn scanning_combine_clamps_negative() {
        let mut out = Vec::new();
        // diag contains an id absent from both neighbors: dropped, not -1.
        scanning_combine(&ids(&[1]), &ids(&[2]), &ids(&[9]), &mut out);
        assert_eq!(out, ids(&[1, 2]));
    }

    #[test]
    fn scanning_combine_cancellation() {
        let mut out = Vec::new();
        // id 4 in up and diag only: 1 - 1 = 0, dropped.
        scanning_combine(&ids(&[]), &ids(&[4]), &ids(&[4]), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn intern_slice_matches_intern_sorted() {
        let mut interner = ResultInterner::new();
        let a = interner.intern_sorted(ids(&[1, 2, 5]));
        assert_eq!(interner.intern_slice(&ids(&[1, 2, 5])), a);
        let b = interner.intern_slice(&ids(&[7]));
        assert_eq!(interner.intern_sorted(ids(&[7])), b);
        assert_eq!(interner.len(), 3);
    }

    #[test]
    fn result_runs_collapse_and_replay() {
        let mut runs = ResultRuns::new();
        assert!(runs.is_empty());
        runs.push(&ids(&[1, 2]));
        runs.push(&ids(&[1, 2])); // collapses
        runs.push(&ids(&[3]));
        runs.push_repeat(2);
        runs.push_n(&ids(&[]), 2);
        runs.push_n(&ids(&[3]), 0); // no-op
        assert_eq!(runs.cells(), 7);

        let mut interner = ResultInterner::new();
        let mut cells = Vec::new();
        runs.intern_into(&mut interner, &mut cells);
        assert_eq!(cells.len(), 7);
        assert_eq!(interner.get(cells[0]), ids(&[1, 2]).as_slice());
        assert_eq!(cells[0], cells[1]);
        assert_eq!(interner.get(cells[2]), ids(&[3]).as_slice());
        assert_eq!(cells[2], cells[3]);
        assert_eq!(cells[3], cells[4]);
        assert_eq!(cells[5], interner.empty());
        assert_eq!(cells[6], interner.empty());
        // Distinct sets stored once each: empty + {1,2} + {3}.
        assert_eq!(interner.len(), 3);
    }

    #[test]
    fn union_sorted_merges() {
        let mut out = Vec::new();
        union_sorted(&ids(&[1, 3, 5]), &ids(&[2, 3, 6]), &mut out);
        assert_eq!(out, ids(&[1, 2, 3, 5, 6]));
        union_sorted(&ids(&[]), &ids(&[7]), &mut out);
        assert_eq!(out, ids(&[7]));
        union_sorted(&ids(&[7]), &ids(&[]), &mut out);
        assert_eq!(out, ids(&[7]));
    }
}
