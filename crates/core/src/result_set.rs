//! Interned skyline result sets.
//!
//! A diagram assigns a skyline result (a set of point ids) to each of up to
//! `O(n²)` cells — or `O(n⁴)` subcells for the dynamic diagram — but the
//! number of *distinct* results is bounded by the number of skyline
//! polyominoes, which is far smaller in practice. Storing one `u32` result id
//! per cell and interning the distinct sets keeps the output structure within
//! the paper's `O(min(s², n²)·n)` space bound without a per-cell `Vec`
//! allocation, and makes polyomino merging a cheap group-by on ids.

use std::collections::HashMap;

use crate::geometry::PointId;

/// Identifier of an interned skyline result inside a [`ResultInterner`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ResultId(pub u32);

/// FNV-1a over the id sequence; cheap and good enough for a `HashMap` key
/// that is verified by full comparison on collision.
fn fnv1a(ids: &[PointId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for id in ids {
        for b in id.0.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Deduplicating store of skyline results.
///
/// Every result is a strictly increasing sequence of [`PointId`]s. The empty
/// result is always interned with id 0 so that boundary cells can be filled
/// without a lookup.
#[derive(Clone, Debug, Default)]
pub struct ResultInterner {
    sets: Vec<Vec<PointId>>,
    lookup: HashMap<u64, Vec<ResultId>>,
}

impl ResultInterner {
    /// Creates an interner with the empty result pre-interned as id 0.
    pub fn new() -> Self {
        let mut interner = ResultInterner {
            sets: Vec::new(),
            lookup: HashMap::new(),
        };
        let empty = interner.intern_sorted(Vec::new());
        debug_assert_eq!(empty, ResultId(0));
        interner
    }

    /// The id of the empty result.
    #[inline]
    pub fn empty(&self) -> ResultId {
        ResultId(0)
    }

    /// Interns a result that is already sorted and duplicate-free.
    ///
    /// # Panics
    /// Debug builds assert the sortedness precondition.
    pub fn intern_sorted(&mut self, ids: Vec<PointId>) -> ResultId {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "result must be strictly sorted"
        );
        let h = fnv1a(&ids);
        let bucket = self.lookup.entry(h).or_default();
        for &rid in bucket.iter() {
            if self.sets[rid.0 as usize] == ids {
                return rid;
            }
        }
        let rid = ResultId(self.sets.len() as u32);
        self.sets.push(ids);
        bucket.push(rid);
        rid
    }

    /// Interns a result given in arbitrary order (sorts and dedups first).
    pub fn intern_unsorted(&mut self, mut ids: Vec<PointId>) -> ResultId {
        ids.sort_unstable();
        ids.dedup();
        self.intern_sorted(ids)
    }

    /// The point ids of an interned result, in increasing order.
    #[inline]
    pub fn get(&self, id: ResultId) -> &[PointId] {
        &self.sets[id.0 as usize]
    }

    /// Number of distinct interned results (including the empty one).
    #[inline]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether only the empty result has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sets.len() <= 1
    }

    /// Iterates over `(id, result)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ResultId, &[PointId])> + '_ {
        self.sets
            .iter()
            .enumerate()
            .map(|(i, s)| (ResultId(i as u32), s.as_slice()))
    }

    /// Total number of point ids stored across all distinct results — the
    /// diagram's intrinsic output size, reported by the E5 statistics.
    pub fn total_ids(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

/// The clamped multiset expression of the paper's Theorem 1:
/// `Sky(C_{i,j}) = Sky(C_{i+1,j}) ⊎ Sky(C_{i,j+1}) ∖ Sky(C_{i+1,j+1})`.
///
/// Each input is a strictly sorted set, so per-id multiplicities are
/// `{0, 1}`; an id belongs to the output iff
/// `[right] + [up] - [diag] >= 1`. Clamping at zero (instead of letting the
/// `diag` term go negative) extends the published identity to the corner
/// configuration where the three upper ranges of the theorem's proof are
/// empty while its upper-right range `D` is not — there `Sky(C_{i+1,j+1})`
/// contains points that appear in neither neighbor and must simply be
/// dropped. See `quadrant::scanning` for the full derivation and the
/// regression test pinning this configuration.
pub fn scanning_combine(
    right: &[PointId],
    up: &[PointId],
    diag: &[PointId],
    out: &mut Vec<PointId>,
) {
    out.clear();
    let (mut a, mut b, mut c) = (0usize, 0usize, 0usize);
    loop {
        let next = [
            right.get(a).copied(),
            up.get(b).copied(),
            diag.get(c).copied(),
        ]
        .into_iter()
        .flatten()
        .min();
        let Some(id) = next else { break };
        let mut count = 0i32;
        if right.get(a) == Some(&id) {
            count += 1;
            a += 1;
        }
        if up.get(b) == Some(&id) {
            count += 1;
            b += 1;
        }
        if diag.get(c) == Some(&id) {
            count -= 1;
            c += 1;
        }
        if count >= 1 {
            out.push(id);
        }
    }
}

/// Sorted-set union of two strictly sorted id slices.
pub fn union_sorted(a: &[PointId], b: &[PointId], out: &mut Vec<PointId>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                out.push(x);
                i += 1;
                j += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                out.push(x);
                i += 1;
            }
            (Some(_), Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (Some(&x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<PointId> {
        v.iter().copied().map(PointId).collect()
    }

    #[test]
    fn empty_is_id_zero() {
        let interner = ResultInterner::new();
        assert_eq!(interner.empty(), ResultId(0));
        assert!(interner.get(ResultId(0)).is_empty());
        assert!(interner.is_empty());
    }

    #[test]
    fn interning_dedups() {
        let mut interner = ResultInterner::new();
        let a = interner.intern_sorted(ids(&[1, 2, 5]));
        let b = interner.intern_sorted(ids(&[1, 2, 5]));
        let c = interner.intern_sorted(ids(&[1, 2, 6]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(interner.len(), 3); // empty + two distinct
        assert_eq!(interner.get(a), ids(&[1, 2, 5]).as_slice());
        assert_eq!(interner.total_ids(), 6);
        assert!(!interner.is_empty());
        assert_eq!(interner.iter().count(), 3);
    }

    #[test]
    fn intern_unsorted_normalizes() {
        let mut interner = ResultInterner::new();
        let a = interner.intern_unsorted(ids(&[5, 1, 2, 2, 5]));
        assert_eq!(interner.get(a), ids(&[1, 2, 5]).as_slice());
    }

    #[test]
    fn scanning_combine_basic() {
        let mut out = Vec::new();
        // right = {1,3}, up = {2,3}, diag = {3}: 1 and 2 kept, 3 has 1+1-1=1.
        scanning_combine(&ids(&[1, 3]), &ids(&[2, 3]), &ids(&[3]), &mut out);
        assert_eq!(out, ids(&[1, 2, 3]));
    }

    #[test]
    fn scanning_combine_clamps_negative() {
        let mut out = Vec::new();
        // diag contains an id absent from both neighbors: dropped, not -1.
        scanning_combine(&ids(&[1]), &ids(&[2]), &ids(&[9]), &mut out);
        assert_eq!(out, ids(&[1, 2]));
    }

    #[test]
    fn scanning_combine_cancellation() {
        let mut out = Vec::new();
        // id 4 in up and diag only: 1 - 1 = 0, dropped.
        scanning_combine(&ids(&[]), &ids(&[4]), &ids(&[4]), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn union_sorted_merges() {
        let mut out = Vec::new();
        union_sorted(&ids(&[1, 3, 5]), &ids(&[2, 3, 6]), &mut out);
        assert_eq!(out, ids(&[1, 2, 3, 5, 6]));
        union_sorted(&ids(&[]), &ids(&[7]), &mut out);
        assert_eq!(out, ids(&[7]));
        union_sorted(&ids(&[7]), &ids(&[]), &mut out);
        assert_eq!(out, ids(&[7]));
    }
}
