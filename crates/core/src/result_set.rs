//! Interned skyline result sets: sorted-id arenas and u64-block bitsets.
//!
//! A diagram assigns a skyline result (a set of point ids) to each of up to
//! `O(n²)` cells — or `O(n⁴)` subcells for the dynamic diagram — but the
//! number of *distinct* results is bounded by the number of skyline
//! polyominoes, which is far smaller in practice. Storing one `u32` result id
//! per cell and interning the distinct sets keeps the output structure within
//! the paper's `O(min(s², n²)·n)` space bound without a per-cell `Vec`
//! allocation, and makes polyomino merging a cheap group-by on ids.
//!
//! # Storage layout
//!
//! Both interners are struct-of-arrays arenas: the distinct sets live in one
//! flat buffer with a parallel end-offset array, so result `k` is a slice of
//! the arena rather than its own heap allocation (see DESIGN.md §10).
//!
//! * [`ResultInterner`] stores each distinct result as a strictly sorted
//!   `PointId` run inside one flat arena — the query-facing representation
//!   (`get` hands out slices, serialization streams the arena).
//! * [`BitsetInterner`] stores each distinct result as a fixed-stride block
//!   of `u64` words, one bit per point id. The diagram recurrences become
//!   word-parallel: unions are `OR` over blocks and the scanning recurrence
//!   of Theorem 1 is three bitwise operations per word (see
//!   [`scanning_combine_words`]). Builders accumulate cells against the
//!   bitset arena and convert once, id-for-id, via
//!   [`BitsetInterner::to_result_interner`], so callers and the
//!   serialize/snapshot layers see the sorted-id representation unchanged.
//!
//! [`ResultRuns`] and [`BitRuns`] are the matching run-collapsed per-worker
//! buffers replayed by the deterministic single-threaded stitch.

use std::collections::HashMap;

use crate::geometry::PointId;

/// Identifier of an interned skyline result inside a [`ResultInterner`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ResultId(pub u32);

/// FNV-1a over the id sequence; cheap and good enough for a `HashMap` key
/// that is verified by full comparison on collision.
fn fnv1a(ids: &[PointId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for id in ids {
        for b in id.0.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// FNV-1a folded one `u64` word at a time — the bitset blocks have fixed
/// stride, so per-word folding keeps the hash loop at `words` iterations.
fn fnv1a_words(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deduplicating store of skyline results, laid out as a flat arena.
///
/// Every result is a strictly increasing sequence of [`PointId`]s. The empty
/// result is always interned with id 0 so that boundary cells can be filled
/// without a lookup. Result `k` occupies `flat[ends[k-1]..ends[k]]`; there is
/// no per-result allocation.
#[derive(Clone, Debug, Default)]
pub struct ResultInterner {
    /// Concatenated ids of every distinct result, in interning order.
    flat: Vec<PointId>,
    /// Per result: exclusive end offset into `flat`.
    ends: Vec<u32>,
    lookup: HashMap<u64, Vec<ResultId>>,
}

impl ResultInterner {
    /// Creates an interner with the empty result pre-interned as id 0.
    pub fn new() -> Self {
        let mut interner = ResultInterner {
            flat: Vec::new(),
            ends: Vec::new(),
            lookup: HashMap::new(),
        };
        let empty = interner.intern_slice(&[]);
        debug_assert_eq!(empty, ResultId(0));
        interner
    }

    /// Creates an interner with arena capacity reserved for `sets` distinct
    /// results totalling `total_ids` point ids — the deserializer knows both
    /// up front.
    pub fn with_capacity(sets: usize, total_ids: usize) -> Self {
        let mut interner = ResultInterner::new();
        interner.ends.reserve(sets);
        interner.flat.reserve(total_ids);
        interner
    }

    /// The id of the empty result.
    #[inline]
    pub fn empty(&self) -> ResultId {
        ResultId(0)
    }

    /// Interns a result that is already sorted and duplicate-free.
    ///
    /// # Panics
    /// Debug builds assert the sortedness precondition.
    pub fn intern_sorted(&mut self, ids: Vec<PointId>) -> ResultId {
        self.intern_slice(&ids)
    }

    /// Interns a result given in arbitrary order (sorts and dedups first).
    pub fn intern_unsorted(&mut self, mut ids: Vec<PointId>) -> ResultId {
        ids.sort_unstable();
        ids.dedup();
        self.intern_slice(&ids)
    }

    /// Interns a borrowed, strictly sorted result, copying into the arena
    /// only when the set was not seen before. The workhorse of the parallel
    /// stitchers in [`crate::parallel`]-enabled engines: workers hand back
    /// flat borrowed result runs and the single-threaded stitch interns them
    /// without a per-cell allocation.
    ///
    /// # Panics
    /// Debug builds assert the sortedness precondition.
    pub fn intern_slice(&mut self, ids: &[PointId]) -> ResultId {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "result must be strictly sorted"
        );
        let h = fnv1a(ids);
        if let Some(bucket) = self.lookup.get(&h) {
            for &rid in bucket {
                if self.get(rid) == ids {
                    return rid;
                }
            }
        }
        let rid = ResultId(self.ends.len() as u32);
        self.flat.extend_from_slice(ids);
        self.ends.push(self.flat.len() as u32);
        self.lookup.entry(h).or_default().push(rid);
        rid
    }

    /// The point ids of an interned result, in increasing order.
    #[inline]
    pub fn get(&self, id: ResultId) -> &[PointId] {
        let k = id.0 as usize;
        let start = if k == 0 { 0 } else { self.ends[k - 1] as usize };
        &self.flat[start..self.ends[k] as usize]
    }

    /// Number of distinct interned results (including the empty one).
    #[inline]
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether only the empty result has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ends.len() <= 1
    }

    /// Heap bytes owned by the arena: the flat id and offset buffers plus
    /// the lookup table (estimated; see
    /// [`crate::telemetry::mem::map_heap_bytes`]) and its per-hash
    /// collision vectors.
    pub fn heap_bytes(&self) -> usize {
        use crate::telemetry::mem::{map_heap_bytes, vec_heap_bytes};
        vec_heap_bytes(&self.flat)
            + vec_heap_bytes(&self.ends)
            + map_heap_bytes(&self.lookup)
            + self.lookup.values().map(vec_heap_bytes).sum::<usize>()
    }

    /// Iterates over `(id, result)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ResultId, &[PointId])> + '_ {
        (0..self.ends.len()).map(|k| {
            let id = ResultId(k as u32);
            (id, self.get(id))
        })
    }

    /// Total number of point ids stored across all distinct results — the
    /// diagram's intrinsic output size, reported by the E5 statistics.
    pub fn total_ids(&self) -> usize {
        self.flat.len()
    }

    /// The CSR end-offset array: result `k` occupies
    /// `flat_ids()[ends()[k-1]..ends()[k]]` (with `ends[-1] = 0`). Written
    /// verbatim into snapshot containers (`crate::container`).
    #[inline]
    pub fn ends(&self) -> &[u32] {
        &self.ends
    }

    /// The flat arena of concatenated result ids, in interning order.
    #[inline]
    pub fn flat_ids(&self) -> &[PointId] {
        &self.flat
    }

    /// Reassembles an interner directly from its CSR arrays — the zero-copy
    /// load path of `crate::container`: the arrays are *moved* into place
    /// after one validation scan, with no per-result re-interning.
    ///
    /// Validates everything [`intern_slice`](Self::intern_slice) guarantees
    /// by construction: the empty result first (id 0), non-decreasing end
    /// offsets covering `flat` exactly, every run strictly sorted, and no
    /// two runs equal. The lookup table is rebuilt so subsequent interning
    /// against the loaded arena stays deduplicating.
    pub fn from_csr(flat: Vec<PointId>, ends: Vec<u32>) -> Result<Self, &'static str> {
        Self::validate_csr(&flat, &ends)?;
        let mut lookup: HashMap<u64, Vec<ResultId>> = HashMap::with_capacity(ends.len());
        let mut start = 0usize;
        for (k, &end) in ends.iter().enumerate() {
            let run = &flat[start..end as usize];
            let rid = ResultId(k as u32);
            let bucket = lookup.entry(fnv1a(run)).or_default();
            for &prev in bucket.iter() {
                let pk = prev.0 as usize;
                let ps = if pk == 0 { 0 } else { ends[pk - 1] as usize };
                if &flat[ps..ends[pk] as usize] == run {
                    return Err("duplicate result set in arena");
                }
            }
            bucket.push(rid);
            start = end as usize;
        }
        Ok(ResultInterner { flat, ends, lookup })
    }

    /// Adopts checksum-validated CSR arrays *without* rebuilding the intern
    /// lookup table: the same structural validation as [`Self::from_csr`]
    /// (CSR laws, strict per-run sortedness) but no duplicate-set scan and
    /// an empty lookup. The snapshot-container decoder is the only caller —
    /// a loaded interner is read-only (server mutations rebuild diagrams
    /// into fresh interners via [`Self::intern_slice`]), so the lookup is
    /// never consulted, and skipping its reconstruction is most of what
    /// makes a cold start an order of magnitude faster than a rebuild
    /// (experiment E14).
    pub(crate) fn from_csr_readonly(
        flat: Vec<PointId>,
        ends: Vec<u32>,
    ) -> Result<Self, &'static str> {
        Self::validate_csr(&flat, &ends)?;
        Ok(ResultInterner {
            flat,
            ends,
            lookup: HashMap::new(),
        })
    }

    /// The structural CSR laws shared by [`Self::from_csr`] and
    /// [`Self::from_csr_readonly`]; duplicate detection is separate because
    /// only the deduplicating constructor needs the hash buckets.
    fn validate_csr(flat: &[PointId], ends: &[u32]) -> Result<(), &'static str> {
        if ends.first() != Some(&0) {
            return Err("the empty result must be interned first (ends[0] == 0)");
        }
        if u32::try_from(flat.len()).is_err() {
            return Err("id arena exceeds the u32 offset range");
        }
        if ends.windows(2).any(|w| w[0] > w[1]) {
            return Err("end offsets must be non-decreasing");
        }
        if ends.last().map(|&e| e as usize) != Some(flat.len()) {
            return Err("end offsets must cover the id arena exactly");
        }
        let mut start = 0usize;
        for &end in ends {
            if flat[start..end as usize].windows(2).any(|w| w[0] >= w[1]) {
                return Err("each result run must be strictly sorted");
            }
            start = end as usize;
        }
        Ok(())
    }
}

/// The clamped multiset expression of the paper's Theorem 1:
/// `Sky(C_{i,j}) = Sky(C_{i+1,j}) ⊎ Sky(C_{i,j+1}) ∖ Sky(C_{i+1,j+1})`.
///
/// Each input is a strictly sorted set, so per-id multiplicities are
/// `{0, 1}`; an id belongs to the output iff
/// `[right] + [up] - [diag] >= 1`. Clamping at zero (instead of letting the
/// `diag` term go negative) extends the published identity to the corner
/// configuration where the three upper ranges of the theorem's proof are
/// empty while its upper-right range `D` is not — there `Sky(C_{i+1,j+1})`
/// contains points that appear in neither neighbor and must simply be
/// dropped. See `quadrant::scanning` for the full derivation and the
/// regression test pinning this configuration, and
/// [`scanning_combine_words`] for the word-parallel form.
pub fn scanning_combine(
    right: &[PointId],
    up: &[PointId],
    diag: &[PointId],
    out: &mut Vec<PointId>,
) {
    out.clear();
    let (mut a, mut b, mut c) = (0usize, 0usize, 0usize);
    loop {
        let next = [
            right.get(a).copied(),
            up.get(b).copied(),
            diag.get(c).copied(),
        ]
        .into_iter()
        .flatten()
        .min();
        let Some(id) = next else { break };
        let mut count = 0i32;
        if right.get(a) == Some(&id) {
            count += 1;
            a += 1;
        }
        if up.get(b) == Some(&id) {
            count += 1;
            b += 1;
        }
        if diag.get(c) == Some(&id) {
            count -= 1;
            c += 1;
        }
        if count >= 1 {
            out.push(id);
        }
    }
}

/// Sorted-set union of two strictly sorted id slices.
pub fn union_sorted(a: &[PointId], b: &[PointId], out: &mut Vec<PointId>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                out.push(x);
                i += 1;
                j += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                out.push(x);
                i += 1;
            }
            (Some(_), Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (Some(&x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
}

/// Number of `u64` words per bitset block for an `n`-point dataset: one bit
/// per point id, at least one word so the empty dataset stays well-formed.
#[inline]
pub const fn words_for(n: usize) -> usize {
    let w = n.div_ceil(64);
    if w == 0 {
        1
    } else {
        w
    }
}

/// Word-parallel set union: `out = a | b`, one `OR` per word.
#[inline]
pub fn union_words(a: &[u64], b: &[u64], out: &mut [u64]) {
    debug_assert!(a.len() == b.len() && b.len() == out.len());
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x | y;
    }
}

/// Word-parallel set subtraction: `out = a & !b`, one `ANDNOT` per word —
/// the multiset-subtract leg of the memoized recurrences.
#[inline]
pub fn subtract_words(a: &[u64], b: &[u64], out: &mut [u64]) {
    debug_assert!(a.len() == b.len() && b.len() == out.len());
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x & !y;
    }
}

/// Word-parallel 4-way union: `out = a | b | c | d` — the global diagram's
/// Definition 2 union of the four per-quadrant results in one pass.
#[inline]
pub fn union4_words(a: &[u64], b: &[u64], c: &[u64], d: &[u64], out: &mut [u64]) {
    debug_assert!(
        a.len() == out.len()
            && b.len() == out.len()
            && c.len() == out.len()
            && d.len() == out.len()
    );
    for k in 0..out.len() {
        out[k] = a[k] | b[k] | c[k] | d[k];
    }
}

/// Word-parallel form of [`scanning_combine`], the clamped Theorem 1
/// recurrence. Over `{0,1}` multiplicities, `[right] + [up] - [diag] >= 1`
/// holds exactly when the id is in `right ∪ up` and not in
/// `diag ∖ (right ∩ up)`:
///
/// * id in `right ∩ up`: count is `2 - [diag] >= 1` — always kept;
/// * id in exactly one neighbor: count is `1 - [diag]` — kept iff not in
///   `diag`;
/// * id in neither neighbor: count is `-[diag]`, clamped — never kept.
///
/// Hence `out = (right | up) & !(diag & !(right & up))`, three bitwise
/// operations per 64 ids.
#[inline]
pub fn scanning_combine_words(right: &[u64], up: &[u64], diag: &[u64], out: &mut [u64]) {
    debug_assert!(right.len() == out.len() && up.len() == out.len() && diag.len() == out.len());
    for k in 0..out.len() {
        let (r, u) = (right[k], up[k]);
        out[k] = (r | u) & !(diag[k] & !(r & u));
    }
}

/// Deduplicating store of skyline results as fixed-stride bitset blocks.
///
/// The builders' working representation: each distinct result is `words`
/// consecutive `u64`s in one flat arena (bit `i` set ⇔ `PointId(i)` in the
/// result), so the diagram recurrences run word-parallel and interning hashes
/// a fixed-size block instead of a variable-length id list. Ids are dense and
/// assigned in first-occurrence order, with the empty set pre-interned as
/// id 0 — exactly the [`ResultInterner`] contract, which is what makes the
/// final [`BitsetInterner::to_result_interner`] conversion id-for-id.
#[derive(Clone, Debug)]
pub struct BitsetInterner {
    /// Block stride in words.
    words: usize,
    /// Concatenated blocks of every distinct result, in interning order.
    flat: Vec<u64>,
    lookup: HashMap<u64, Vec<u32>>,
    /// Reusable block for `intern_ids`.
    scratch: Vec<u64>,
}

impl BitsetInterner {
    /// Creates a bitset interner with the given block stride and the empty
    /// set pre-interned as id 0.
    pub fn new(words: usize) -> Self {
        let words = words.max(1);
        let mut interner = BitsetInterner {
            words,
            flat: Vec::new(),
            lookup: HashMap::new(),
            scratch: vec![0u64; words],
        };
        let zeros = vec![0u64; words];
        let empty = interner.intern_words(&zeros);
        debug_assert_eq!(empty, 0);
        interner
    }

    /// The block stride in words.
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// The id of the empty result.
    #[inline]
    pub fn empty(&self) -> u32 {
        0
    }

    /// Number of distinct interned results (including the empty one).
    #[inline]
    pub fn len(&self) -> usize {
        self.flat.len() / self.words
    }

    /// Whether only the empty result has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Heap bytes owned by the arena: the flat block buffer, the scratch
    /// block, and the lookup table (estimated) with its collision vectors.
    pub fn heap_bytes(&self) -> usize {
        use crate::telemetry::mem::{map_heap_bytes, vec_heap_bytes};
        vec_heap_bytes(&self.flat)
            + vec_heap_bytes(&self.scratch)
            + map_heap_bytes(&self.lookup)
            + self.lookup.values().map(vec_heap_bytes).sum::<usize>()
    }

    /// The bitset block of an interned result.
    #[inline]
    pub fn get_words(&self, id: u32) -> &[u64] {
        let start = id as usize * self.words;
        &self.flat[start..start + self.words]
    }

    /// Interns a bitset block, copying into the arena only when the set was
    /// not seen before.
    ///
    /// # Panics
    /// Debug builds assert the stride precondition.
    pub fn intern_words(&mut self, block: &[u64]) -> u32 {
        debug_assert_eq!(block.len(), self.words, "block stride mismatch");
        let h = fnv1a_words(block);
        if let Some(bucket) = self.lookup.get(&h) {
            for &id in bucket {
                if self.get_words(id) == block {
                    return id;
                }
            }
        }
        let id = (self.flat.len() / self.words) as u32;
        self.flat.extend_from_slice(block);
        self.lookup.entry(h).or_default().push(id);
        id
    }

    /// Interns the set of the given point ids (any order, duplicates
    /// collapse) by setting their bits in an internal scratch block.
    pub fn intern_ids<I: IntoIterator<Item = PointId>>(&mut self, ids: I) -> u32 {
        let mut block = std::mem::take(&mut self.scratch);
        block.iter_mut().for_each(|w| *w = 0);
        for id in ids {
            let bit = id.0 as usize;
            debug_assert!(bit / 64 < block.len(), "point id out of bitset range");
            block[bit / 64] |= 1u64 << (bit % 64);
        }
        let interned = self.intern_words(&block);
        self.scratch = block;
        interned
    }

    /// Decodes an interned block back to its strictly sorted id list.
    pub fn decode_into(&self, id: u32, out: &mut Vec<PointId>) {
        out.clear();
        decode_words(self.get_words(id), out);
    }

    /// Converts the whole arena to the sorted-id representation, id-for-id:
    /// bitset id `k` becomes [`ResultId`]`(k)`. Builders accumulate their
    /// per-cell ids against this interner and hand the converted interner
    /// plus the unmodified cell vector to the diagram, so the query,
    /// serialize, and snapshot layers keep seeing sorted-id slices.
    pub fn to_result_interner(&self) -> ResultInterner {
        let _decode = crate::span!("intern.decode", self.len() as u64);
        let mut results = ResultInterner::with_capacity(self.len(), 0);
        let mut ids: Vec<PointId> = Vec::new();
        for k in 0..self.len() as u32 {
            self.decode_into(k, &mut ids);
            let rid = results.intern_slice(&ids);
            debug_assert_eq!(rid.0, k, "bitset ids must convert id-for-id");
        }
        results
    }
}

/// Decodes a bitset block into strictly increasing point ids. Public so
/// differential tests can cross-check the word-parallel operators against
/// the sorted-id representation.
pub fn decode_words(block: &[u64], out: &mut Vec<PointId>) {
    for (k, &word) in block.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            let bit = w.trailing_zeros();
            out.push(PointId((k * 64) as u32 + bit));
            w &= w - 1;
        }
    }
}

/// Re-encodes a sorted-id interner as a flat bitset arena with the given
/// stride, id-for-id: block `rid` holds the bits of `results.get(rid)`.
/// The global engine encodes each per-quadrant interner once and then runs
/// every cell union word-parallel against the four arenas.
pub fn encode_results(results: &ResultInterner, words: usize) -> Vec<u64> {
    let words = words.max(1);
    let mut flat = vec![0u64; results.len() * words];
    for (rid, ids) in results.iter() {
        let block = &mut flat[rid.0 as usize * words..(rid.0 as usize + 1) * words];
        for id in ids {
            let bit = id.0 as usize;
            debug_assert!(bit / 64 < words, "point id out of bitset range");
            block[bit / 64] |= 1u64 << (bit % 64);
        }
    }
    flat
}

/// A row's worth of per-cell results produced by one parallel worker:
/// consecutive equal results collapse into *runs* over one shared flat id
/// buffer, so a band of cells costs one allocation instead of one per cell.
///
/// Workers fill a `ResultRuns` each (no shared state, no locks); the
/// single-threaded stitch then replays the runs into the shared
/// [`ResultInterner`] in deterministic row-major order, which is what keeps
/// parallel builds bit-identical for every thread count.
#[derive(Clone, Debug, Default)]
pub struct ResultRuns {
    /// Concatenated ids of the distinct runs, in emission order.
    flat: Vec<PointId>,
    /// Per run: `(cells covered, end offset into flat)`.
    runs: Vec<(u32, u32)>,
}

impl ResultRuns {
    /// An empty run buffer.
    pub fn new() -> Self {
        ResultRuns::default()
    }

    /// Number of cells covered so far.
    pub fn cells(&self) -> usize {
        self.runs.iter().map(|&(count, _)| count as usize).sum()
    }

    /// True iff no cell has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The ids of the most recent run, if any.
    fn last_run(&self) -> Option<&[PointId]> {
        let &(_, end) = self.runs.last()?;
        let start = match self.runs.len().checked_sub(2) {
            Some(i) => self.runs[i].1 as usize,
            None => 0,
        };
        Some(&self.flat[start..end as usize])
    }

    /// Appends one cell whose result is `ids` (strictly sorted); collapses
    /// into the previous run when the result repeats.
    pub fn push(&mut self, ids: &[PointId]) {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "result must be strictly sorted"
        );
        if self.last_run() == Some(ids) {
            self.push_repeat(1);
            return;
        }
        self.flat.extend_from_slice(ids);
        self.runs.push((1, self.flat.len() as u32));
    }

    /// Appends `count` cells sharing the result `ids`.
    pub fn push_n(&mut self, ids: &[PointId], count: u32) {
        if count == 0 {
            return;
        }
        self.push(ids);
        self.push_repeat(count - 1);
    }

    /// Extends the current run by `count` more cells without re-checking the
    /// ids — for callers that already know the result did not change.
    ///
    /// # Panics
    /// Debug builds assert that a run exists.
    pub fn push_repeat(&mut self, count: u32) {
        debug_assert!(!self.runs.is_empty(), "push_repeat needs a current run");
        if let Some(last) = self.runs.last_mut() {
            last.0 += count;
        }
    }

    /// Replays the runs into `results`, appending one [`ResultId`] per cell
    /// to `cells` in emission order.
    pub fn intern_into(&self, results: &mut ResultInterner, cells: &mut Vec<ResultId>) {
        let mut start = 0usize;
        for &(count, end) in &self.runs {
            let rid = results.intern_slice(&self.flat[start..end as usize]);
            cells.extend(std::iter::repeat(rid).take(count as usize));
            start = end as usize;
        }
    }
}

/// The bitset counterpart of [`ResultRuns`]: a run-collapsed per-worker
/// buffer of fixed-stride bitset blocks. Same API shape, same stitch
/// contract — workers push word blocks, the single-threaded stitch replays
/// them into the shared [`BitsetInterner`] in deterministic row-major order.
#[derive(Clone, Debug)]
pub struct BitRuns {
    /// Block stride in words.
    words: usize,
    /// Concatenated blocks of the distinct runs, in emission order.
    flat: Vec<u64>,
    /// Per run: `(cells covered, end word offset into flat)`.
    runs: Vec<(u32, u32)>,
}

impl BitRuns {
    /// An empty run buffer with the given block stride.
    pub fn new(words: usize) -> Self {
        BitRuns {
            words: words.max(1),
            flat: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// The block stride in words.
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Number of cells covered so far.
    pub fn cells(&self) -> usize {
        self.runs.iter().map(|&(count, _)| count as usize).sum()
    }

    /// True iff no cell has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The block of the most recent run, if any.
    fn last_run(&self) -> Option<&[u64]> {
        let &(_, end) = self.runs.last()?;
        Some(&self.flat[end as usize - self.words..end as usize])
    }

    /// Appends one cell whose result is the bitset `block`; collapses into
    /// the previous run when the result repeats.
    ///
    /// # Panics
    /// Debug builds assert the stride precondition.
    pub fn push_words(&mut self, block: &[u64]) {
        debug_assert_eq!(block.len(), self.words, "block stride mismatch");
        if self.last_run() == Some(block) {
            self.push_repeat(1);
            return;
        }
        self.flat.extend_from_slice(block);
        self.runs.push((1, self.flat.len() as u32));
    }

    /// Extends the current run by `count` more cells without re-checking the
    /// block — for callers that already know the result did not change.
    ///
    /// # Panics
    /// Debug builds assert that a run exists.
    pub fn push_repeat(&mut self, count: u32) {
        debug_assert!(!self.runs.is_empty(), "push_repeat needs a current run");
        if let Some(last) = self.runs.last_mut() {
            last.0 += count;
        }
    }

    /// Replays the runs into `bits`, appending one [`ResultId`] per cell to
    /// `cells` in emission order. The ids are bitset ids, valid against the
    /// [`ResultInterner`] produced by
    /// [`BitsetInterner::to_result_interner`].
    pub fn intern_into(&self, bits: &mut BitsetInterner, cells: &mut Vec<ResultId>) {
        let mut start = 0usize;
        for &(count, end) in &self.runs {
            let id = bits.intern_words(&self.flat[start..end as usize]);
            cells.extend(std::iter::repeat(ResultId(id)).take(count as usize));
            start = end as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<PointId> {
        v.iter().copied().map(PointId).collect()
    }

    #[test]
    fn empty_is_id_zero() {
        let interner = ResultInterner::new();
        assert_eq!(interner.empty(), ResultId(0));
        assert!(interner.get(ResultId(0)).is_empty());
        assert!(interner.is_empty());
    }

    #[test]
    fn interning_dedups() {
        let mut interner = ResultInterner::new();
        let a = interner.intern_sorted(ids(&[1, 2, 5]));
        let b = interner.intern_sorted(ids(&[1, 2, 5]));
        let c = interner.intern_sorted(ids(&[1, 2, 6]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(interner.len(), 3); // empty + two distinct
        assert_eq!(interner.get(a), ids(&[1, 2, 5]).as_slice());
        assert_eq!(interner.total_ids(), 6);
        assert!(!interner.is_empty());
        assert_eq!(interner.iter().count(), 3);
    }

    #[test]
    fn intern_unsorted_normalizes() {
        let mut interner = ResultInterner::new();
        let a = interner.intern_unsorted(ids(&[5, 1, 2, 2, 5]));
        assert_eq!(interner.get(a), ids(&[1, 2, 5]).as_slice());
    }

    #[test]
    fn with_capacity_matches_new() {
        let mut a = ResultInterner::with_capacity(10, 100);
        let mut b = ResultInterner::new();
        assert_eq!(a.intern_sorted(ids(&[3, 4])), b.intern_sorted(ids(&[3, 4])));
        assert_eq!(a.empty(), b.empty());
    }

    #[test]
    fn scanning_combine_basic() {
        let mut out = Vec::new();
        // right = {1,3}, up = {2,3}, diag = {3}: 1 and 2 kept, 3 has 1+1-1=1.
        scanning_combine(&ids(&[1, 3]), &ids(&[2, 3]), &ids(&[3]), &mut out);
        assert_eq!(out, ids(&[1, 2, 3]));
    }

    #[test]
    fn scanning_combine_clamps_negative() {
        let mut out = Vec::new();
        // diag contains an id absent from both neighbors: dropped, not -1.
        scanning_combine(&ids(&[1]), &ids(&[2]), &ids(&[9]), &mut out);
        assert_eq!(out, ids(&[1, 2]));
    }

    #[test]
    fn scanning_combine_cancellation() {
        let mut out = Vec::new();
        // id 4 in up and diag only: 1 - 1 = 0, dropped.
        scanning_combine(&ids(&[]), &ids(&[4]), &ids(&[4]), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn intern_slice_matches_intern_sorted() {
        let mut interner = ResultInterner::new();
        let a = interner.intern_sorted(ids(&[1, 2, 5]));
        assert_eq!(interner.intern_slice(&ids(&[1, 2, 5])), a);
        let b = interner.intern_slice(&ids(&[7]));
        assert_eq!(interner.intern_sorted(ids(&[7])), b);
        assert_eq!(interner.len(), 3);
    }

    #[test]
    fn result_runs_collapse_and_replay() {
        let mut runs = ResultRuns::new();
        assert!(runs.is_empty());
        runs.push(&ids(&[1, 2]));
        runs.push(&ids(&[1, 2])); // collapses
        runs.push(&ids(&[3]));
        runs.push_repeat(2);
        runs.push_n(&ids(&[]), 2);
        runs.push_n(&ids(&[3]), 0); // no-op
        assert_eq!(runs.cells(), 7);

        let mut interner = ResultInterner::new();
        let mut cells = Vec::new();
        runs.intern_into(&mut interner, &mut cells);
        assert_eq!(cells.len(), 7);
        assert_eq!(interner.get(cells[0]), ids(&[1, 2]).as_slice());
        assert_eq!(cells[0], cells[1]);
        assert_eq!(interner.get(cells[2]), ids(&[3]).as_slice());
        assert_eq!(cells[2], cells[3]);
        assert_eq!(cells[3], cells[4]);
        assert_eq!(cells[5], interner.empty());
        assert_eq!(cells[6], interner.empty());
        // Distinct sets stored once each: empty + {1,2} + {3}.
        assert_eq!(interner.len(), 3);
    }

    #[test]
    fn union_sorted_merges() {
        let mut out = Vec::new();
        union_sorted(&ids(&[1, 3, 5]), &ids(&[2, 3, 6]), &mut out);
        assert_eq!(out, ids(&[1, 2, 3, 5, 6]));
        union_sorted(&ids(&[]), &ids(&[7]), &mut out);
        assert_eq!(out, ids(&[7]));
        union_sorted(&ids(&[7]), &ids(&[]), &mut out);
        assert_eq!(out, ids(&[7]));
    }

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 1);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(63), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }

    #[test]
    fn bitset_interner_dedups_and_decodes() {
        let mut bits = BitsetInterner::new(words_for(70));
        assert_eq!(bits.words(), 2);
        assert_eq!(bits.empty(), 0);
        assert!(bits.is_empty());
        let a = bits.intern_ids(ids(&[1, 64, 69]));
        let b = bits.intern_ids(ids(&[69, 1, 64, 1])); // order/dup-insensitive
        let c = bits.intern_ids(ids(&[2]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(bits.len(), 3);
        assert!(!bits.is_empty());
        let mut out = Vec::new();
        bits.decode_into(a, &mut out);
        assert_eq!(out, ids(&[1, 64, 69]));
        bits.decode_into(bits.empty(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn bitset_converts_to_result_interner_id_for_id() {
        let mut bits = BitsetInterner::new(words_for(100));
        let a = bits.intern_ids(ids(&[0, 63, 64, 99]));
        let b = bits.intern_ids(ids(&[5]));
        let results = bits.to_result_interner();
        assert_eq!(results.len(), bits.len());
        assert_eq!(results.get(ResultId(a)), ids(&[0, 63, 64, 99]).as_slice());
        assert_eq!(results.get(ResultId(b)), ids(&[5]).as_slice());
        assert_eq!(results.empty(), ResultId(0));
    }

    #[test]
    fn encode_results_roundtrips() {
        let mut results = ResultInterner::new();
        let a = results.intern_sorted(ids(&[0, 63, 64]));
        let b = results.intern_sorted(ids(&[127]));
        let words = words_for(128);
        let flat = encode_results(&results, words);
        assert_eq!(flat.len(), results.len() * words);
        let block = |rid: ResultId| &flat[rid.0 as usize * words..(rid.0 as usize + 1) * words];
        let mut out = Vec::new();
        decode_words(block(a), &mut out);
        assert_eq!(out, ids(&[0, 63, 64]));
        out.clear();
        decode_words(block(b), &mut out);
        assert_eq!(out, ids(&[127]));
        assert!(block(ResultId(0)).iter().all(|&w| w == 0));
    }

    #[test]
    fn word_ops_match_sorted_ops() {
        let words = words_for(130);
        let mut bits = BitsetInterner::new(words);
        let r = bits.intern_ids(ids(&[1, 63, 64, 129]));
        let u = bits.intern_ids(ids(&[2, 63, 129]));
        let d = bits.intern_ids(ids(&[63, 100, 129]));

        let mut out = vec![0u64; words];
        union_words(bits.get_words(r), bits.get_words(u), &mut out);
        let mut got = Vec::new();
        decode_words(&out, &mut got);
        let mut want = Vec::new();
        union_sorted(&ids(&[1, 63, 64, 129]), &ids(&[2, 63, 129]), &mut want);
        assert_eq!(got, want);

        scanning_combine_words(
            bits.get_words(r),
            bits.get_words(u),
            bits.get_words(d),
            &mut out,
        );
        got.clear();
        decode_words(&out, &mut got);
        scanning_combine(
            &ids(&[1, 63, 64, 129]),
            &ids(&[2, 63, 129]),
            &ids(&[63, 100, 129]),
            &mut want,
        );
        assert_eq!(got, want);

        union4_words(
            bits.get_words(r),
            bits.get_words(u),
            bits.get_words(d),
            bits.get_words(bits.empty()),
            &mut out,
        );
        got.clear();
        decode_words(&out, &mut got);
        assert_eq!(got, ids(&[1, 2, 63, 64, 100, 129]));
    }

    #[test]
    fn bit_runs_collapse_and_replay() {
        let words = words_for(10);
        let mut bits = BitsetInterner::new(words);
        let a = bits.intern_ids(ids(&[1, 2]));
        let b = bits.intern_ids(ids(&[3]));

        let mut runs = BitRuns::new(words);
        assert!(runs.is_empty());
        assert_eq!(runs.words(), words);
        runs.push_words(bits.get_words(a).to_vec().as_slice());
        runs.push_words(bits.get_words(a).to_vec().as_slice()); // collapses
        runs.push_words(bits.get_words(b).to_vec().as_slice());
        runs.push_repeat(2);
        runs.push_words(bits.get_words(0).to_vec().as_slice());
        assert_eq!(runs.cells(), 6);

        let mut cells = Vec::new();
        runs.intern_into(&mut bits, &mut cells);
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0], ResultId(a));
        assert_eq!(cells[0], cells[1]);
        assert_eq!(cells[2], ResultId(b));
        assert_eq!(cells[2], cells[4]);
        assert_eq!(cells[5], ResultId(0));
        let results = bits.to_result_interner();
        assert_eq!(results.get(cells[0]), ids(&[1, 2]).as_slice());
        assert_eq!(results.get(cells[5]), ids(&[]).as_slice());
    }
}
