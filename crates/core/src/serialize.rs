//! Compact binary serialization for diagrams.
//!
//! The outsourcing applications (authentication, PIR) need diagrams to
//! travel: a data owner builds once and ships the structure to servers.
//! This module defines a small, versioned, checksummed binary format:
//!
//! ```text
//! magic "SKYD" | version u16 | kind u8 | payload | fnv64 checksum
//! payload (cell diagram):    x_lines | y_lines | interner | cells
//! lines:    u32 count, i64 values (strictly increasing)
//! interner: u32 count, per result: u32 len, u32 ids (strictly increasing)
//! cells:    u32 count, u32 result ids (bounds-checked)
//! ```
//!
//! Everything is little-endian. Decoding is *paranoid*: magic, version,
//! kind, checksum, monotonicity of lines, sortedness of results, result-id
//! bounds, and exact trailing length are all validated, so a corrupted or
//! truncated file fails loudly instead of producing a wrong diagram.
//!
//! ```
//! use skyline_core::geometry::{Dataset, Point};
//! use skyline_core::quadrant::QuadrantEngine;
//! use skyline_core::serialize::{decode_cell_diagram, encode_cell_diagram};
//!
//! let ds = Dataset::from_coords([(1, 4), (3, 2)])?;
//! let diagram = QuadrantEngine::Scanning.build(&ds);
//! let bytes = encode_cell_diagram(&diagram);
//! let restored = decode_cell_diagram(&bytes).expect("fresh bytes decode");
//! assert_eq!(restored.query(Point::new(0, 0)), diagram.query(Point::new(0, 0)));
//!
//! let mut corrupted = bytes.clone();
//! corrupted[10] ^= 1;
//! assert!(decode_cell_diagram(&corrupted).is_err());
//! # Ok::<(), skyline_core::Error>(())
//! ```

use crate::diagram::CellDiagram;
use crate::dynamic::SubcellDiagram;
use crate::geometry::{CellGrid, Coord, Dataset, Point, PointId};
use crate::result_set::{ResultId, ResultInterner};

const MAGIC: &[u8; 4] = b"SKYD";
const VERSION: u16 = 1;

const KIND_CELL: u8 = 1;
const KIND_SUBCELL: u8 = 2;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic bytes: not a skyline-diagram file.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Unexpected diagram kind byte.
    BadKind(u8),
    /// Checksum mismatch: the payload was corrupted.
    ChecksumMismatch,
    /// The buffer ended before the structure was complete.
    Truncated,
    /// Trailing bytes after a complete structure.
    TrailingBytes(usize),
    /// A structural invariant failed (message describes which).
    Invalid(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a skyline-diagram file"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::BadKind(k) => write!(f, "unexpected diagram kind {k}"),
            DecodeError::ChecksumMismatch => write!(f, "checksum mismatch"),
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
            DecodeError::Invalid(what) => write!(f, "invalid structure: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// --- Writer ------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(kind: u8) -> Self {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(kind);
        Writer { buf }
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn lines(&mut self, lines: &[Coord]) {
        self.u32(lines.len() as u32);
        for &v in lines {
            self.i64(v);
        }
    }

    fn interner(&mut self, interner: &ResultInterner) {
        self.u32(interner.len() as u32);
        for (_, ids) in interner.iter() {
            self.u32(ids.len() as u32);
            for id in ids {
                self.u32(id.0);
            }
        }
    }

    fn cells(&mut self, cells: &[ResultId]) {
        self.u32(cells.len() as u32);
        for rid in cells {
            self.u32(rid.0);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        let checksum = fnv64(&self.buf);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.buf
    }
}

// --- Reader ------------------------------------------------------------

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn open(data: &'a [u8], expect_kind: u8) -> Result<Self, DecodeError> {
        if data.len() < 4 + 2 + 1 + 8 {
            return Err(DecodeError::Truncated);
        }
        let (body, tail) = data.split_at(data.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("split_at leaves an 8-byte tail"));
        if fnv64(body) != stored {
            return Err(DecodeError::ChecksumMismatch);
        }
        if &body[..4] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = u16::from_le_bytes([body[4], body[5]]);
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        if body[6] != expect_kind {
            return Err(DecodeError::BadKind(body[6]));
        }
        Ok(Reader { data: body, pos: 7 })
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let end = self.pos.checked_add(4).ok_or(DecodeError::Truncated)?;
        let bytes = self.data.get(self.pos..end).ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(
            bytes.try_into().expect("get(pos..pos+4) is 4 bytes long"),
        ))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        let end = self.pos.checked_add(8).ok_or(DecodeError::Truncated)?;
        let bytes = self.data.get(self.pos..end).ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(i64::from_le_bytes(
            bytes.try_into().expect("get(pos..pos+8) is 8 bytes long"),
        ))
    }

    fn lines(&mut self) -> Result<Vec<Coord>, DecodeError> {
        let count = self.u32()? as usize;
        let mut out = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            out.push(self.i64()?);
        }
        if !out.windows(2).all(|w| w[0] < w[1]) {
            return Err(DecodeError::Invalid(
                "grid lines must be strictly increasing",
            ));
        }
        if out.is_empty() {
            return Err(DecodeError::Invalid(
                "a diagram needs at least one grid line",
            ));
        }
        Ok(out)
    }

    fn interner(&mut self) -> Result<ResultInterner, DecodeError> {
        let count = self.u32()? as usize;
        if count == 0 {
            return Err(DecodeError::Invalid(
                "interner must contain the empty result",
            ));
        }
        let mut interner = ResultInterner::new();
        for k in 0..count {
            let len = self.u32()? as usize;
            let mut ids = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                ids.push(PointId(self.u32()?));
            }
            if !ids.windows(2).all(|w| w[0] < w[1]) {
                return Err(DecodeError::Invalid(
                    "result ids must be strictly increasing",
                ));
            }
            if k == 0 && !ids.is_empty() {
                return Err(DecodeError::Invalid("result 0 must be the empty result"));
            }
            let rid = interner.intern_sorted(ids);
            if rid.0 as usize != k {
                return Err(DecodeError::Invalid("duplicate result in interner"));
            }
        }
        Ok(interner)
    }

    fn cells(&mut self, expected: usize, bound: usize) -> Result<Vec<ResultId>, DecodeError> {
        let count = self.u32()? as usize;
        if count != expected {
            return Err(DecodeError::Invalid("cell count does not match grid"));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let rid = self.u32()?;
            if rid as usize >= bound {
                return Err(DecodeError::Invalid("cell references unknown result"));
            }
            out.push(ResultId(rid));
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos != self.data.len() {
            return Err(DecodeError::TrailingBytes(self.data.len() - self.pos));
        }
        Ok(())
    }
}

// --- Public API ---------------------------------------------------------

/// Serializes a cell diagram.
pub fn encode_cell_diagram(diagram: &CellDiagram) -> Vec<u8> {
    let mut w = Writer::new(KIND_CELL);
    w.lines(diagram.grid().x_lines());
    w.lines(diagram.grid().y_lines());
    w.interner(diagram.results());
    w.cells(diagram.cell_results());
    w.finish()
}

/// Deserializes a cell diagram.
///
/// The cell grid is reconstructed from synthetic one-point-per-line data;
/// per-point rank metadata is not retained (it is only needed during
/// construction), so decoded diagrams answer queries and merge but cannot
/// seed incremental engines.
pub fn decode_cell_diagram(data: &[u8]) -> Result<CellDiagram, DecodeError> {
    let mut r = Reader::open(data, KIND_CELL)?;
    let xs = r.lines()?;
    let ys = r.lines()?;
    // Rebuild a grid with the same line structure: one synthetic point per
    // (x, y) pair, padding the shorter axis by repeating its last value.
    let n = xs.len().max(ys.len());
    let synth =
        Dataset::from_coords((0..n).map(|k| (xs[k.min(xs.len() - 1)], ys[k.min(ys.len() - 1)])))
            .map_err(|_| DecodeError::Invalid("grid lines exceed coordinate bounds"))?;
    let grid = CellGrid::new(&synth);
    debug_assert_eq!(grid.x_lines(), xs.as_slice());
    debug_assert_eq!(grid.y_lines(), ys.as_slice());

    let interner = r.interner()?;
    let cells = r.cells(grid.cell_count(), interner.len())?;
    r.finish()?;
    Ok(CellDiagram::from_parts(grid, interner, cells))
}

/// Serializes a dynamic subcell diagram.
pub fn encode_subcell_diagram(diagram: &SubcellDiagram) -> Vec<u8> {
    let mut w = Writer::new(KIND_SUBCELL);
    w.lines(diagram.grid().x_lines());
    w.lines(diagram.grid().y_lines());
    w.interner(diagram.results());
    w.cells(diagram.cell_results());
    w.finish()
}

/// Deserializes a dynamic subcell diagram.
pub fn decode_subcell_diagram(data: &[u8]) -> Result<SubcellDiagram, DecodeError> {
    let mut r = Reader::open(data, KIND_SUBCELL)?;
    let xs = r.lines()?;
    let ys = r.lines()?;
    let interner = r.interner()?;
    let expected = (xs.len() + 1) * (ys.len() + 1);
    let cells = r.cells(expected, interner.len())?;
    r.finish()?;
    Ok(SubcellDiagram::from_lines(xs, ys, interner, cells))
}

/// Convenience: query support after decode is identical to pre-encode.
/// (Documented here because decode rebuilds grids synthetically.)
pub fn roundtrip_query_check(diagram: &CellDiagram, q: Point) -> bool {
    let decoded =
        decode_cell_diagram(&encode_cell_diagram(diagram)).expect("fresh encoding always decodes");
    decoded.query(q) == diagram.query(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::DynamicEngine;
    use crate::quadrant::QuadrantEngine;

    fn diagram() -> CellDiagram {
        QuadrantEngine::Sweeping.build(&crate::test_data::hotel_dataset())
    }

    #[test]
    fn cell_roundtrip_preserves_everything() {
        let d = diagram();
        let decoded = decode_cell_diagram(&encode_cell_diagram(&d)).unwrap();
        assert!(decoded.same_results(&d));
        for q in [(0, 0), (10, 80), (14, 81), (25, 100)] {
            assert!(roundtrip_query_check(&d, Point::new(q.0, q.1)));
        }
    }

    #[test]
    fn subcell_roundtrip_preserves_everything() {
        let ds = Dataset::from_coords([(0, 0), (6, 10), (12, 4)]).unwrap();
        let d = DynamicEngine::Scanning.build(&ds);
        let decoded = decode_subcell_diagram(&encode_subcell_diagram(&d)).unwrap();
        assert!(decoded.same_results(&d));
        assert_eq!(decoded.query(Point::new(5, 5)), d.query(Point::new(5, 5)));
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = encode_cell_diagram(&diagram());
        for idx in [0usize, 5, 6, 20, bytes.len() - 9, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[idx] ^= 0x55;
            assert!(
                decode_cell_diagram(&bad).is_err(),
                "flip at byte {idx} must be detected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_cell_diagram(&diagram());
        for cut in [0usize, 3, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_cell_diagram(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn kind_confusion_is_detected() {
        let ds = Dataset::from_coords([(0, 0), (6, 10)]).unwrap();
        let sub = encode_subcell_diagram(&DynamicEngine::Scanning.build(&ds));
        assert_eq!(
            decode_cell_diagram(&sub).err(),
            Some(DecodeError::BadKind(KIND_SUBCELL))
        );
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut bytes = encode_cell_diagram(&diagram());
        // Append junk *and* fix up the checksum so only the length check
        // can catch it.
        let body_end = bytes.len() - 8;
        bytes.truncate(body_end);
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        let checksum = super::fnv64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            decode_cell_diagram(&bytes).err(),
            Some(DecodeError::TrailingBytes(4))
        );
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::BadMagic.to_string().contains("not a skyline"));
        assert!(DecodeError::BadVersion(9).to_string().contains('9'));
        assert!(DecodeError::ChecksumMismatch
            .to_string()
            .contains("checksum"));
        assert!(DecodeError::Invalid("x").to_string().contains('x'));
    }
}
