//! k-skyband diagrams — the k-th-order analog, mirroring how k-th-order
//! Voronoi diagrams generalize Voronoi diagrams for kNN (the comparison the
//! paper's introduction draws).
//!
//! The **k-skyband** of a point set contains the points dominated by fewer
//! than `k` others (`k = 1` is the skyline). Dominance among first-quadrant
//! points depends only on the quadrant *set*, which is constant per
//! skyline cell — so the same cell grid carries a diagram for quadrant
//! k-skyband queries, with the same merging step. Two engines:
//!
//! - [`build_baseline`]: per-cell dominator counting, `O(n³)`-class with a
//!   `k` early exit;
//! - [`build_incremental`]: the DSG idea transplanted — grid-line
//!   crossings delete dominator-closed sets, so maintaining per-point
//!   *surviving dominator counts* (decremented via precomputed dominance
//!   lists) keeps band membership current: a survivor is in the band iff
//!   its count is below `k`.
//!
//! The k-skyband is the precomputation needed for top-k skyline variants
//! and for tolerating up to `k - 1` deletions without rebuilding.
//!
//! ```
//! use skyline_core::geometry::{Dataset, Point};
//! use skyline_core::skyband;
//!
//! // A chain: each point dominates the next.
//! let ds = Dataset::from_coords([(1, 1), (2, 2), (3, 3)])?;
//! let band2 = skyband::build_incremental(&ds, 2);
//! // From the origin, the 2-skyband holds the two least-dominated points.
//! assert_eq!(band2.query(Point::new(0, 0)).len(), 2);
//! # Ok::<(), skyline_core::Error>(())
//! ```

use crate::diagram::CellDiagram;
use crate::dominance::dominates;
use crate::geometry::{CellGrid, Dataset, PointId};
use crate::result_set::ResultInterner;

/// From-scratch quadrant k-skyband of a query point: points strictly in
/// the first quadrant of `q` dominated by fewer than `k` quadrant points.
#[must_use]
pub fn quadrant_skyband(dataset: &Dataset, q: crate::geometry::Point, k: u32) -> Vec<PointId> {
    assert!(k >= 1, "k-skyband needs k >= 1");
    let members: Vec<(PointId, crate::geometry::Point)> = dataset
        .iter()
        .filter(|(_, p)| p.x > q.x && p.y > q.y)
        .collect();
    let mut out: Vec<PointId> = members
        .iter()
        .filter(|(_, p)| {
            let mut dominators = 0u32;
            for (_, o) in &members {
                if dominates(*o, *p) {
                    dominators += 1;
                    if dominators >= k {
                        return false;
                    }
                }
            }
            true
        })
        .map(|&(id, _)| id)
        .collect();
    out.sort_unstable();
    out
}

/// Builds the quadrant k-skyband diagram with per-cell counting.
pub fn build_baseline(dataset: &Dataset, k: u32) -> CellDiagram {
    assert!(k >= 1, "k-skyband needs k >= 1");
    let grid = CellGrid::new(dataset);
    let mut results = ResultInterner::new();
    let width = grid.nx() as usize + 1;
    let height = grid.ny() as usize + 1;
    let mut cells = Vec::with_capacity(width * height);

    let n = dataset.len();
    // Precompute the dominance matrix once; per cell only membership
    // filtering and counting remain.
    let dominance: Vec<Vec<PointId>> = dominance_lists(dataset).1;

    let mut in_quadrant = vec![false; n];
    for j in 0..height as u32 {
        for i in 0..width as u32 {
            for (id, _) in dataset.iter() {
                in_quadrant[id.index()] = grid.xrank(id) >= i && grid.yrank(id) >= j;
            }
            let mut band = Vec::new();
            for (id, _) in dataset.iter() {
                if !in_quadrant[id.index()] {
                    continue;
                }
                let dominators = dominance[id.index()]
                    .iter()
                    .filter(|d| in_quadrant[d.index()])
                    .take(k as usize)
                    .count() as u32;
                if dominators < k {
                    band.push(id);
                }
            }
            cells.push(results.intern_sorted(band));
        }
    }

    CellDiagram::from_parts(grid, results, cells)
}

/// `(dominated_by_me, my_dominators)` adjacency lists over the dataset.
fn dominance_lists(dataset: &Dataset) -> (Vec<Vec<PointId>>, Vec<Vec<PointId>>) {
    let n = dataset.len();
    let mut dominated = vec![Vec::new(); n];
    let mut dominators = vec![Vec::new(); n];
    for (a, pa) in dataset.iter() {
        for (b, pb) in dataset.iter() {
            if dominates(pa, pb) {
                dominated[a.index()].push(b);
                dominators[b.index()].push(a);
            }
        }
    }
    (dominated, dominators)
}

#[derive(Clone)]
struct BandSweep {
    present: Vec<bool>,
    /// Surviving dominator count per point.
    dominators_left: Vec<u32>,
}

impl BandSweep {
    fn remove_points(&mut self, dominated: &[Vec<PointId>], points: &[PointId]) {
        for &p in points {
            if !self.present[p.index()] {
                continue;
            }
            self.present[p.index()] = false;
            for &c in &dominated[p.index()] {
                // Every deleted dominator was present (deletions are
                // dominator-closed: see crate::dsg module docs).
                self.dominators_left[c.index()] -= 1;
            }
        }
    }

    fn band(&self, k: u32, results: &mut ResultInterner) -> crate::result_set::ResultId {
        let ids: Vec<PointId> = self
            .present
            .iter()
            .zip(&self.dominators_left)
            .enumerate()
            .filter(|&(_, (&present, &left))| present && left < k)
            .map(|(idx, _)| PointId(idx as u32))
            .collect();
        results.intern_sorted(ids)
    }
}

/// Builds the quadrant k-skyband diagram with the incremental deletion
/// sweep (the DSG algorithm's structure with dominator counts in place of
/// direct-parent counts).
pub fn build_incremental(dataset: &Dataset, k: u32) -> CellDiagram {
    assert!(k >= 1, "k-skyband needs k >= 1");
    let grid = CellGrid::new(dataset);
    let (dominated, dominators) = dominance_lists(dataset);
    let mut results = ResultInterner::new();
    let width = grid.nx() as usize + 1;
    let height = grid.ny() as usize + 1;
    let mut cells = vec![results.empty(); width * height];

    let mut column_state = BandSweep {
        present: vec![true; dataset.len()],
        dominators_left: dominators.iter().map(|d| d.len() as u32).collect(),
    };

    for i in 0..width {
        let mut state = column_state.clone();
        cells[i] = state.band(k, &mut results);
        for j in 1..height {
            state.remove_points(&dominated, grid.points_with_yrank(j as u32 - 1));
            cells[j * width + i] = state.band(k, &mut results);
        }
        if i + 1 < width {
            column_state.remove_points(&dominated, grid.points_with_xrank(i as u32));
        }
    }

    CellDiagram::from_parts(grid, results, cells)
}

/// Builds the **global** k-skyband diagram: per-cell union of the four
/// per-quadrant k-skybands, via the same reflection scheme as
/// [`crate::global`].
pub fn build_global(dataset: &Dataset, k: u32) -> CellDiagram {
    assert!(k >= 1, "k-skyband needs k >= 1");
    let grid = CellGrid::new(dataset);
    let width = grid.nx() as usize + 1;
    let height = grid.ny() as usize + 1;
    let reflections = [(false, false), (true, false), (true, true), (false, true)];

    let mut results = ResultInterner::new();
    let mut union_acc: Vec<Vec<PointId>> = vec![Vec::new(); width * height];
    let mut scratch = Vec::new();
    for (flip_x, flip_y) in reflections {
        let reflected = Dataset::from_coords(dataset.points().iter().map(|p| {
            (
                if flip_x { -p.x } else { p.x },
                if flip_y { -p.y } else { p.y },
            )
        }))
        .expect("reflection preserves validity");
        let band = build_incremental(&reflected, k);
        for j in 0..height as u32 {
            for i in 0..width as u32 {
                let ri = if flip_x { grid.nx() - i } else { i };
                let rj = if flip_y { grid.ny() - j } else { j };
                let part = band.result((ri, rj));
                if part.is_empty() {
                    continue;
                }
                let acc = &mut union_acc[j as usize * width + i as usize];
                crate::result_set::union_sorted(acc, part, &mut scratch);
                std::mem::swap(acc, &mut scratch);
            }
        }
    }
    let cells = union_acc
        .into_iter()
        .map(|ids| results.intern_sorted(ids))
        .collect();
    CellDiagram::from_parts(grid, results, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::quadrant::QuadrantEngine;

    #[test]
    fn k1_equals_the_skyline_diagram() {
        let ds = crate::test_data::hotel_dataset();
        let band = build_baseline(&ds, 1);
        let skyline = QuadrantEngine::Baseline.build(&ds);
        assert!(band.same_results(&skyline));
        let inc = build_incremental(&ds, 1);
        assert!(inc.same_results(&skyline));
    }

    #[test]
    fn engines_agree_for_various_k() {
        for seed in 0..3 {
            let ds = crate::test_data::lcg_dataset(30, 200, seed);
            for k in [1u32, 2, 3, 5] {
                assert!(
                    build_incremental(&ds, k).same_results(&build_baseline(&ds, k)),
                    "k = {k}, seed {seed}"
                );
            }
        }
    }

    #[test]
    fn engines_agree_under_ties() {
        let ds = crate::test_data::lcg_dataset(25, 6, 9);
        for k in [1u32, 2, 4] {
            assert!(
                build_incremental(&ds, k).same_results(&build_baseline(&ds, k)),
                "{k}"
            );
        }
    }

    #[test]
    fn diagram_matches_from_scratch_queries() {
        let ds = crate::test_data::lcg_dataset(20, 50, 4);
        let k = 3;
        let d = build_incremental(&ds, k);
        for cell in d.grid().cells() {
            if let Some(q) = d.grid().representative_unscaled(cell) {
                assert_eq!(
                    d.result(cell),
                    quadrant_skyband(&ds, q, k).as_slice(),
                    "cell {cell:?}"
                );
            }
        }
    }

    #[test]
    fn bands_are_nested_in_k() {
        let ds = crate::test_data::lcg_dataset(25, 80, 7);
        let d1 = build_baseline(&ds, 1);
        let d2 = build_baseline(&ds, 2);
        let d4 = build_baseline(&ds, 4);
        for cell in d1.grid().cells() {
            let (a, b, c) = (d1.result(cell), d2.result(cell), d4.result(cell));
            assert!(a.iter().all(|id| b.contains(id)), "1 ⊆ 2 at {cell:?}");
            assert!(b.iter().all(|id| c.contains(id)), "2 ⊆ 4 at {cell:?}");
        }
    }

    #[test]
    fn large_k_keeps_the_whole_quadrant() {
        let ds = crate::test_data::lcg_dataset(15, 40, 2);
        let d = build_baseline(&ds, ds.len() as u32 + 1);
        // Every quadrant point is in the band when k exceeds n.
        assert_eq!(d.result((0, 0)).len(), ds.len());
        assert_eq!(
            quadrant_skyband(&ds, Point::new(-1, -1), ds.len() as u32 + 1).len(),
            ds.len()
        );
    }

    #[test]
    fn global_band_at_k1_is_the_global_diagram() {
        let ds = crate::test_data::lcg_dataset(20, 50, 6);
        let band = build_global(&ds, 1);
        let global = crate::global::build(&ds, QuadrantEngine::Baseline);
        assert!(band.same_results(&global));
    }

    #[test]
    fn global_band_contains_quadrant_band() {
        let ds = crate::test_data::lcg_dataset(20, 50, 8);
        let global = build_global(&ds, 3);
        let quadrant = build_baseline(&ds, 3);
        for cell in global.grid().cells() {
            let g = global.result(cell);
            for id in quadrant.result(cell) {
                assert!(g.contains(id), "{id} missing at {cell:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_is_rejected() {
        let ds = crate::test_data::lcg_dataset(5, 10, 1);
        let _ = build_baseline(&ds, 0);
    }
}
