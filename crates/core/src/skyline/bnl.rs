//! Block-nested-loop skyline (Börzsönyi et al. \[1\]) for d dimensions.
//!
//! Maintains a window of incomparable points; each incoming point either is
//! dominated by a window point (discarded), dominates window points (they are
//! evicted), or is incomparable (appended). Worst case `O(n²·d)`, good in
//! practice when the skyline is small.

use crate::dominance::dominates_d;
use crate::geometry::{DatasetD, PointId};

/// Skyline of a subset of a d-dimensional dataset. Returns ids sorted by id.
#[must_use]
pub fn skyline_d_subset(
    dataset: &DatasetD,
    subset: impl IntoIterator<Item = PointId>,
) -> Vec<PointId> {
    let mut window: Vec<PointId> = Vec::new();
    'outer: for id in subset {
        let p = dataset.point(id);
        let mut k = 0;
        while k < window.len() {
            let w = dataset.point(window[k]);
            if dominates_d(w, p) {
                continue 'outer;
            }
            if dominates_d(p, w) {
                window.swap_remove(k);
            } else {
                k += 1;
            }
        }
        window.push(id);
    }
    window.sort_unstable();
    window
}

/// Skyline of an entire d-dimensional dataset.
#[must_use]
pub fn skyline_d(dataset: &DatasetD) -> Vec<PointId> {
    skyline_d_subset(dataset, (0..dataset.len() as u32).map(PointId))
}

/// Brute-force quadratic skyline in d dimensions; test oracle only.
#[must_use]
pub fn skyline_d_naive(dataset: &DatasetD, subset: &[PointId]) -> Vec<PointId> {
    let mut result: Vec<PointId> = subset
        .iter()
        .copied()
        .filter(|&id| {
            !subset
                .iter()
                .any(|&other| dominates_d(dataset.point(other), dataset.point(id)))
        })
        .collect();
    result.sort_unstable();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(rows: &[&[i64]]) -> DatasetD {
        DatasetD::from_rows(rows.iter().copied()).unwrap()
    }

    #[test]
    fn three_dimensional_skyline() {
        let d = ds(&[
            &[1, 9, 9],
            &[9, 1, 9],
            &[9, 9, 1],
            &[5, 5, 5],
            &[9, 9, 9], // dominated by everything else
        ]);
        let sky = skyline_d(&d);
        assert_eq!(sky, vec![PointId(0), PointId(1), PointId(2), PointId(3)]);
    }

    #[test]
    fn window_eviction() {
        // Later point dominates several earlier window entries at once.
        let d = ds(&[&[5, 5], &[6, 4], &[4, 6], &[3, 3]]);
        assert_eq!(skyline_d(&d), vec![PointId(3)]);
    }

    #[test]
    fn duplicates_survive_together() {
        let d = ds(&[&[2, 2, 2], &[2, 2, 2], &[1, 3, 3]]);
        assert_eq!(skyline_d(&d), vec![PointId(0), PointId(1), PointId(2)]);
    }

    #[test]
    fn subset_restriction() {
        let d = ds(&[&[1, 1], &[2, 2], &[3, 1]]);
        // Without point 0, both remaining points are skyline.
        assert_eq!(
            skyline_d_subset(&d, [PointId(1), PointId(2)]),
            vec![PointId(1), PointId(2)]
        );
    }

    #[test]
    fn matches_naive() {
        let d = ds(&[
            &[3, 1, 4],
            &[1, 5, 9],
            &[2, 6, 5],
            &[3, 5, 8],
            &[9, 7, 9],
            &[3, 2, 3],
            &[8, 4, 6],
            &[2, 6, 4],
            &[3, 3, 8],
            &[3, 2, 7],
        ]);
        let all: Vec<PointId> = (0..10).map(PointId).collect();
        assert_eq!(skyline_d(&d), skyline_d_naive(&d, &all));
    }
}
