//! Divide-and-conquer skyline for d dimensions.
//!
//! Splits on the median of the first coordinate, recurses into both halves,
//! and filters the high half's skyline against the low half's (a low-half
//! point can dominate a high-half point, never the reverse when the split is
//! strict). This is the simple variant of Kung's scheme; the filter step is
//! a nested loop rather than a (d-1)-dimensional recursion, which keeps the
//! code small while preserving the divide-and-conquer shape the paper cites
//! from computational geometry.

use crate::dominance::dominates_d;
use crate::geometry::{DatasetD, PointId};

/// Skyline of a subset of a d-dimensional dataset. Returns ids sorted by id.
#[must_use]
pub fn skyline_d_subset(
    dataset: &DatasetD,
    subset: impl IntoIterator<Item = PointId>,
) -> Vec<PointId> {
    let mut order: Vec<PointId> = subset.into_iter().collect();
    // Sort once by (first coordinate, full lexicographic) so every split is
    // a strict partition of the first coordinate.
    order.sort_unstable_by(|&a, &b| {
        dataset
            .point(a)
            .coords()
            .cmp(dataset.point(b).coords())
            .then(a.cmp(&b))
    });
    let mut result = recurse(dataset, &order);
    result.sort_unstable();
    result
}

/// Skyline of an entire d-dimensional dataset.
#[must_use]
pub fn skyline_d(dataset: &DatasetD) -> Vec<PointId> {
    skyline_d_subset(dataset, (0..dataset.len() as u32).map(PointId))
}

fn recurse(dataset: &DatasetD, sorted: &[PointId]) -> Vec<PointId> {
    if sorted.len() <= 4 {
        return small_case(dataset, sorted);
    }
    // Split so the first coordinate is strictly smaller on the left; slide
    // the split point off any run of equal first coordinates.
    let mut mid = sorted.len() / 2;
    let split_coord = dataset.point(sorted[mid]).coord(0);
    while mid > 0 && dataset.point(sorted[mid - 1]).coord(0) == split_coord {
        mid -= 1;
    }
    if mid == 0 {
        // Entire slice shares its first coordinate; no strict split exists.
        return small_case(dataset, sorted);
    }
    let low = recurse(dataset, &sorted[..mid]);
    let high = recurse(dataset, &sorted[mid..]);
    let mut merged = low.clone();
    merged.extend(high.into_iter().filter(|&h| {
        !low.iter()
            .any(|&l| dominates_d(dataset.point(l), dataset.point(h)))
    }));
    merged
}

fn small_case(dataset: &DatasetD, slice: &[PointId]) -> Vec<PointId> {
    slice
        .iter()
        .copied()
        .filter(|&id| {
            !slice
                .iter()
                .any(|&other| dominates_d(dataset.point(other), dataset.point(id)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline::bnl;

    fn ds(rows: &[&[i64]]) -> DatasetD {
        DatasetD::from_rows(rows.iter().copied()).unwrap()
    }

    #[test]
    fn agrees_with_bnl() {
        let d = ds(&[
            &[3, 1, 4],
            &[1, 5, 9],
            &[2, 6, 5],
            &[3, 5, 8],
            &[9, 7, 9],
            &[3, 2, 3],
            &[8, 4, 6],
            &[2, 6, 4],
            &[7, 1, 2],
            &[6, 6, 6],
            &[1, 9, 1],
            &[4, 4, 4],
        ]);
        assert_eq!(skyline_d(&d), bnl::skyline_d(&d));
    }

    #[test]
    fn all_points_share_first_coordinate() {
        let d = ds(&[&[5, 1], &[5, 2], &[5, 3], &[5, 4], &[5, 5], &[5, 1]]);
        // Minimum second coordinate wins; duplicates of it all survive.
        assert_eq!(skyline_d(&d), vec![PointId(0), PointId(5)]);
    }

    #[test]
    fn larger_random_like_input_agrees_with_bnl() {
        // Deterministic pseudo-random rows from a small LCG.
        let mut state: u64 = 0x1234_5678;
        let mut rows = Vec::new();
        for _ in 0..200 {
            let mut row = [0i64; 3];
            for r in &mut row {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *r = ((state >> 33) % 50) as i64;
            }
            rows.push(row.to_vec());
        }
        let d = DatasetD::from_rows(rows).unwrap();
        assert_eq!(skyline_d(&d), bnl::skyline_d(&d));
    }
}
