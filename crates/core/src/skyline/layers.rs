//! Skyline layers (onion peeling), following the layer construction the
//! paper adapts from \[15\].
//!
//! Layer 1 is the skyline of the whole dataset; layer `k+1` is the skyline of
//! what remains after removing layers `1..=k`. Properties used downstream:
//! points within a layer are mutually incomparable, and dominance only ever
//! points from lower-numbered layers to higher-numbered ones.

use crate::geometry::{Coord, Dataset, DatasetD, PointId};
use crate::skyline::{bnl, sort_sweep};

/// Skyline layers of a planar dataset. `layers[k]` lists the ids on layer
/// `k+1`, sorted by id; every point appears in exactly one layer.
#[must_use]
pub fn layers_2d(dataset: &Dataset) -> Vec<Vec<PointId>> {
    let mut remaining: Vec<(Coord, Coord, PointId)> =
        dataset.iter().map(|(id, p)| (p.x, p.y, id)).collect();
    let mut layers = Vec::new();
    while !remaining.is_empty() {
        let layer = sort_sweep::minima_xy(&mut remaining);
        remaining.retain(|&(_, _, id)| layer.binary_search(&id).is_err());
        layers.push(layer);
    }
    layers
}

/// Skyline layers of a d-dimensional dataset.
#[must_use]
pub fn layers_d(dataset: &DatasetD) -> Vec<Vec<PointId>> {
    let mut remaining: Vec<PointId> = (0..dataset.len() as u32).map(PointId).collect();
    let mut layers = Vec::new();
    while !remaining.is_empty() {
        let layer = bnl::skyline_d_subset(dataset, remaining.iter().copied());
        remaining.retain(|id| layer.binary_search(id).is_err());
        layers.push(layer);
    }
    layers
}

/// Per-point layer numbers (1-based), parallel to the dataset.
pub fn layer_numbers(layers: &[Vec<PointId>], n: usize) -> Vec<u32> {
    let mut numbers = vec![0u32; n];
    for (k, layer) in layers.iter().enumerate() {
        for id in layer {
            numbers[id.index()] = k as u32 + 1;
        }
    }
    debug_assert!(
        numbers.iter().all(|&l| l > 0),
        "every point belongs to a layer"
    );
    numbers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::dominates;

    /// Reconstruction of the paper's Figure-1 hotel example: eleven hotels,
    /// ids 0..=10 corresponding to p1..=p11. The exact coordinates of the
    /// figure are not recoverable from the source text, but this layout
    /// reproduces its headline facts: `Sky(P) = {p1, p6, p11}`, and for
    /// `q = (10, 80)` the first-quadrant skyline is `{p3, p8, p10}` and the
    /// dynamic skyline is `{p6, p11}` (the canonical copy with full
    /// verification lives in `skyline-data::hotel`).
    pub(crate) fn paper_points() -> Vec<(Coord, Coord)> {
        vec![
            (1, 92),  // p1
            (3, 96),  // p2
            (12, 86), // p3
            (5, 94),  // p4
            (15, 85), // p5
            (8, 78),  // p6
            (16, 83), // p7
            (13, 83), // p8
            (6, 93),  // p9
            (21, 82), // p10
            (11, 9),  // p11
        ]
    }

    #[test]
    fn layers_partition_the_dataset() {
        let ds = Dataset::from_coords(paper_points()).unwrap();
        let layers = layers_2d(&ds);
        let total: usize = layers.iter().map(Vec::len).sum();
        assert_eq!(total, ds.len());
        let numbers = layer_numbers(&layers, ds.len());
        assert!(numbers.iter().all(|&l| l >= 1));
    }

    #[test]
    fn first_layer_is_the_skyline() {
        let ds = Dataset::from_coords(paper_points()).unwrap();
        let layers = layers_2d(&ds);
        assert_eq!(layers[0], sort_sweep::skyline_2d(&ds));
        // As in the paper's Figure 5: the first skyline layer of the hotel
        // example is {p1, p6, p11}.
        assert_eq!(layers[0], vec![PointId(0), PointId(5), PointId(10)]);
    }

    #[test]
    fn dominance_never_points_to_a_lower_layer() {
        let ds = Dataset::from_coords(paper_points()).unwrap();
        let layers = layers_2d(&ds);
        let numbers = layer_numbers(&layers, ds.len());
        for (a, pa) in ds.iter() {
            for (b, pb) in ds.iter() {
                if dominates(pa, pb) {
                    assert!(
                        numbers[a.index()] < numbers[b.index()],
                        "{a} dominates {b} but layers are {} vs {}",
                        numbers[a.index()],
                        numbers[b.index()]
                    );
                }
            }
        }
    }

    #[test]
    fn within_layer_incomparability() {
        let ds = Dataset::from_coords(paper_points()).unwrap();
        for layer in layers_2d(&ds) {
            for &a in &layer {
                for &b in &layer {
                    assert!(!dominates(ds.point(a), ds.point(b)));
                }
            }
        }
    }

    #[test]
    fn d_dimensional_layers_match_planar_at_d2() {
        let ds = Dataset::from_coords(paper_points()).unwrap();
        assert_eq!(layers_2d(&ds), layers_d(&ds.to_dataset_d()));
    }

    #[test]
    fn totally_ordered_chain_gives_singleton_layers() {
        let ds = Dataset::from_coords([(1, 1), (2, 2), (3, 3)]).unwrap();
        let layers = layers_2d(&ds);
        assert_eq!(layers.len(), 3);
        assert!(layers.iter().all(|l| l.len() == 1));
    }
}
