//! Skyline computation algorithms — the substrate every diagram engine is
//! built on.
//!
//! - [`sort_sweep`]: the planar `O(n log n)` sort-and-scan minima, used by
//!   every per-cell computation;
//! - [`bnl`]: block-nested-loop for d dimensions;
//! - [`sfs`]: sort-filter-skyline for d dimensions;
//! - [`dnc`]: divide-and-conquer for d dimensions;
//! - [`layers`]: onion peeling into skyline layers.

pub mod bnl;
pub mod dnc;
pub mod layers;
pub mod sfs;
pub mod sort_sweep;

use crate::geometry::{DatasetD, PointId};

/// Selector for the d-dimensional skyline algorithms, so callers (and the
/// ablation benches) can switch implementations uniformly.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SkylineAlgorithm {
    /// Block nested loop.
    #[default]
    Bnl,
    /// Sort-filter-skyline.
    Sfs,
    /// Divide and conquer.
    DivideAndConquer,
}

impl SkylineAlgorithm {
    /// All selectable algorithms, for exhaustive cross-validation.
    pub const ALL: [SkylineAlgorithm; 3] = [
        SkylineAlgorithm::Bnl,
        SkylineAlgorithm::Sfs,
        SkylineAlgorithm::DivideAndConquer,
    ];

    /// Skyline of a subset of a d-dimensional dataset; ids sorted by id.
    #[must_use]
    pub fn skyline_subset(
        self,
        dataset: &DatasetD,
        subset: impl IntoIterator<Item = PointId>,
    ) -> Vec<PointId> {
        match self {
            SkylineAlgorithm::Bnl => bnl::skyline_d_subset(dataset, subset),
            SkylineAlgorithm::Sfs => sfs::skyline_d_subset(dataset, subset),
            SkylineAlgorithm::DivideAndConquer => dnc::skyline_d_subset(dataset, subset),
        }
    }

    /// Skyline of an entire d-dimensional dataset.
    #[must_use]
    pub fn skyline(self, dataset: &DatasetD) -> Vec<PointId> {
        self.skyline_subset(dataset, (0..dataset.len() as u32).map(PointId))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_agree() {
        let mut state: u64 = 42;
        let mut rows = Vec::new();
        for _ in 0..120 {
            let mut row = [0i64; 4];
            for r in &mut row {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                *r = ((state >> 33) % 30) as i64;
            }
            rows.push(row.to_vec());
        }
        let ds = DatasetD::from_rows(rows).unwrap();
        let expected = SkylineAlgorithm::Bnl.skyline(&ds);
        for alg in SkylineAlgorithm::ALL {
            assert_eq!(alg.skyline(&ds), expected, "{alg:?} disagrees");
        }
    }

    #[test]
    fn default_is_bnl() {
        assert_eq!(SkylineAlgorithm::default(), SkylineAlgorithm::Bnl);
    }
}
