//! Sort-filter-skyline (Chomicki et al.) for d dimensions.
//!
//! Points are presorted by a monotone score (here the coordinate sum, with
//! lexicographic tiebreak): a point can only be dominated by points that
//! precede it in this order, so one filtering pass against the confirmed
//! skyline suffices and no window eviction is ever needed.

use crate::dominance::dominates_d;
use crate::geometry::{DatasetD, PointId};

/// Skyline of a subset of a d-dimensional dataset. Returns ids sorted by id.
#[must_use]
pub fn skyline_d_subset(
    dataset: &DatasetD,
    subset: impl IntoIterator<Item = PointId>,
) -> Vec<PointId> {
    let mut order: Vec<PointId> = subset.into_iter().collect();
    // Monotone preorder: if p dominates q then sum(p) < sum(q), or the sums
    // are equal and p equals q in every coordinate (impossible with a strict
    // dimension). Hence dominators always sort strictly earlier.
    order.sort_unstable_by_key(|&id| {
        let p = dataset.point(id);
        (p.coords().iter().sum::<i64>(), id)
    });

    let mut skyline: Vec<PointId> = Vec::new();
    for id in order {
        let p = dataset.point(id);
        if !skyline.iter().any(|&s| dominates_d(dataset.point(s), p)) {
            skyline.push(id);
        }
    }
    skyline.sort_unstable();
    skyline
}

/// Skyline of an entire d-dimensional dataset.
#[must_use]
pub fn skyline_d(dataset: &DatasetD) -> Vec<PointId> {
    skyline_d_subset(dataset, (0..dataset.len() as u32).map(PointId))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline::bnl;

    fn ds(rows: &[&[i64]]) -> DatasetD {
        DatasetD::from_rows(rows.iter().copied()).unwrap()
    }

    #[test]
    fn agrees_with_bnl_on_small_inputs() {
        let d = ds(&[
            &[3, 1, 4],
            &[1, 5, 9],
            &[2, 6, 5],
            &[3, 5, 8],
            &[9, 7, 9],
            &[3, 2, 3],
            &[8, 4, 6],
            &[2, 6, 4],
        ]);
        assert_eq!(skyline_d(&d), bnl::skyline_d(&d));
    }

    #[test]
    fn equal_sum_incomparable_points() {
        // (0, 4) and (4, 0) have equal sums and are incomparable; (4, 4)
        // is dominated by both.
        let d = ds(&[&[0, 4], &[4, 0], &[4, 4]]);
        assert_eq!(skyline_d(&d), vec![PointId(0), PointId(1)]);
    }

    #[test]
    fn duplicates_survive() {
        let d = ds(&[&[1, 1], &[1, 1]]);
        assert_eq!(skyline_d(&d), vec![PointId(0), PointId(1)]);
    }

    #[test]
    fn subset_restriction() {
        let d = ds(&[&[1, 1], &[2, 2], &[2, 1]]);
        assert_eq!(
            skyline_d_subset(&d, [PointId(1), PointId(2)]),
            vec![PointId(2)]
        );
    }
}
