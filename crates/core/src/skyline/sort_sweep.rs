//! The planar `O(n log n)` sort-and-scan skyline (Kung et al. \[9\]),
//! tie-correct for bounded integer domains.
//!
//! This is the workhorse used by every per-cell and per-subcell computation:
//! once candidates are sorted by x, one pass keeping the running minimum y
//! yields the minima staircase, as in Lines 5–12 of the paper's Algorithm 1.

use crate::geometry::{Coord, Dataset, Point, PointId};

/// Skyline (minimization minima) of labelled coordinates. Sorts the scratch
/// buffer in place; returns ids sorted by id.
///
/// Tie handling: points sharing an x coordinate form a group; only the
/// minimum-y members of the group can survive, and they do iff their y is
/// *strictly* below the best y of every strictly-smaller x (a point with
/// smaller x and equal y dominates: `<=` in both, `<` in x). Points with
/// identical coordinates never dominate each other (no strict dimension), so
/// exact duplicates are all reported.
#[must_use]
pub fn minima_xy(points: &mut [(Coord, Coord, PointId)]) -> Vec<PointId> {
    let mut result = Vec::new();
    if points.is_empty() {
        return result;
    }
    points.sort_unstable();
    let mut best_y = Coord::MAX;
    let mut i = 0;
    while i < points.len() {
        let group_x = points[i].0;
        let mut j = i;
        while j < points.len() && points[j].0 == group_x {
            j += 1;
        }
        // Sorted order puts the group's minimal y first.
        let group_min_y = points[i].1;
        if group_min_y < best_y {
            for &(_, y, id) in &points[i..j] {
                if y == group_min_y {
                    result.push(id);
                } else {
                    break;
                }
            }
            best_y = group_min_y;
        }
        i = j;
    }
    result.sort_unstable();
    result
}

/// Maxima counterpart of [`minima_xy`] (used for direct-dominance parents in
/// the directed skyline graph): points not dominated under maximization.
#[must_use]
pub fn maxima_xy(points: &mut [(Coord, Coord, PointId)]) -> Vec<PointId> {
    for p in points.iter_mut() {
        p.0 = -p.0;
        p.1 = -p.1;
    }
    minima_xy(points)
}

/// Skyline of an entire planar dataset.
#[must_use]
pub fn skyline_2d(dataset: &Dataset) -> Vec<PointId> {
    skyline_2d_subset(dataset, dataset.ids())
}

/// Skyline of a subset of a planar dataset.
#[must_use]
pub fn skyline_2d_subset(
    dataset: &Dataset,
    subset: impl IntoIterator<Item = PointId>,
) -> Vec<PointId> {
    let mut scratch: Vec<(Coord, Coord, PointId)> = subset
        .into_iter()
        .map(|id| {
            let p = dataset.point(id);
            (p.x, p.y, id)
        })
        .collect();
    minima_xy(&mut scratch)
}

/// Brute-force quadratic skyline, kept as the test oracle for every other
/// implementation in this module tree.
#[must_use]
pub fn skyline_2d_naive(points: &[(Point, PointId)]) -> Vec<PointId> {
    let mut result: Vec<PointId> = points
        .iter()
        .filter(|(p, _)| {
            !points
                .iter()
                .any(|(q, _)| crate::dominance::dominates(*q, *p))
        })
        .map(|&(_, id)| id)
        .collect();
    result.sort_unstable();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(coords: &[(Coord, Coord)]) -> Vec<u32> {
        let mut pts: Vec<(Coord, Coord, PointId)> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (x, y, PointId(i as u32)))
            .collect();
        minima_xy(&mut pts).into_iter().map(|id| id.0).collect()
    }

    fn run_naive(coords: &[(Coord, Coord)]) -> Vec<u32> {
        let pts: Vec<(Point, PointId)> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Point::new(x, y), PointId(i as u32)))
            .collect();
        skyline_2d_naive(&pts).into_iter().map(|id| id.0).collect()
    }

    #[test]
    fn empty_input() {
        assert!(run(&[]).is_empty());
    }

    #[test]
    fn staircase() {
        // Classic staircase: minima are the lower-left frontier.
        assert_eq!(
            run(&[(1, 5), (2, 3), (3, 4), (4, 1), (5, 2)]),
            vec![0, 1, 3]
        );
    }

    #[test]
    fn x_ties_keep_only_min_y() {
        assert_eq!(run(&[(1, 5), (1, 2), (1, 9)]), vec![1]);
    }

    #[test]
    fn equal_y_with_smaller_x_dominates() {
        // (1, 3) dominates (2, 3): <= in y, < in x.
        assert_eq!(run(&[(1, 3), (2, 3)]), vec![0]);
    }

    #[test]
    fn exact_duplicates_all_survive() {
        assert_eq!(run(&[(2, 2), (2, 2), (3, 1)]), vec![0, 1, 2]);
    }

    #[test]
    fn matches_naive_on_tie_heavy_grid() {
        // Every combination from a 3x3 coordinate grid, some repeated.
        let mut coords = Vec::new();
        for x in 0..3 {
            for y in 0..3 {
                coords.push((x, y));
                if (x + y) % 2 == 0 {
                    coords.push((x, y));
                }
            }
        }
        assert_eq!(run(&coords), run_naive(&coords));
    }

    #[test]
    fn maxima_mirrors_minima() {
        let coords = [(1, 5), (2, 3), (3, 4), (4, 1), (5, 2)];
        let mut pts: Vec<(Coord, Coord, PointId)> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (x, y, PointId(i as u32)))
            .collect();
        // Maxima of the staircase dataset: upper-right frontier.
        assert_eq!(
            maxima_xy(&mut pts)
                .into_iter()
                .map(|id| id.0)
                .collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
    }

    #[test]
    fn dataset_wrappers() {
        let ds = Dataset::from_coords([(1, 5), (2, 3), (3, 4), (4, 1), (5, 2)]).unwrap();
        assert_eq!(skyline_2d(&ds), vec![PointId(0), PointId(1), PointId(3)]);
        assert_eq!(
            skyline_2d_subset(&ds, [PointId(2), PointId(4)]),
            vec![PointId(2), PointId(4)]
        );
    }
}
