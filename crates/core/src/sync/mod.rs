//! The workspace's single doorway to shared-memory synchronisation.
//!
//! Library code must import `Arc`, `OnceLock`, `Mutex`, and the atomics it
//! uses from **this module** — never from `std::sync` directly. The
//! `no-raw-atomic` lint (`cargo xtask lint`) enforces the discipline for
//! atomics and `OnceLock`; see `crates/xtask/src/rules.rs`.
//!
//! # Why a facade
//!
//! In a normal build every name here is a zero-cost re-export of the
//! `std::sync` original: same types, same codegen, no wrapper. But when the
//! workspace is compiled with `RUSTFLAGS="--cfg skyline_sched"`, the atomic
//! types, `OnceLock`, and `Mutex` swap to the deterministic interleaving
//! checker in `sched` (compiled only under that cfg, hence not linkable
//! from these docs): a hand-rolled, zero-dependency loom-style model
//! checker that enumerates thread schedules (DFS with a bounded-preemption
//! budget) and tracks happens-before with vector clocks, so the
//! release/acquire contracts documented in [`crate::epoch`] and
//! [`crate::telemetry`] are *proved over every explored interleaving*
//! instead of merely stress-tested. Because all lib code routes its shared
//! state through this module, the checker sees every atomic operation —
//! that is the entire point of the lint.
//!
//! The checked suites live in `crates/core/tests/sched_*.rs` and
//! `crates/serve/tests/sched_*.rs`; run them with
//!
//! ```text
//! RUSTFLAGS="--cfg skyline_sched" cargo test -p skyline-core --test sched_epoch
//! ```
//!
//! `cargo xtask sched-mutate` additionally proves the checker itself works
//! by weakening a `Release` store in `epoch.rs` to `Relaxed` in a scratch
//! build and asserting the suite catches it.
//!
//! # What is and is not modelled
//!
//! Under `skyline_sched` the model types still *store* their values in real
//! `std` primitives, so a checked run is never undefined behaviour; the
//! model layer adds scheduling points and happens-before bookkeeping on
//! top. Threads created outside a model run (e.g. the scoped pool) fall
//! through to the real operations untouched — only threads spawned via
//! `sched::spawn` inside `sched::model` are scheduled.

#[cfg(skyline_sched)]
pub mod sched;

// `Arc` and `Ordering` are always the std originals: `Arc`'s reference
// counting is internally synchronised (the checker trusts it), and the
// model atomics consume the real `Ordering` enum so call sites are
// identical under both configurations.
pub use std::sync::atomic::Ordering;
pub use std::sync::Arc;

#[cfg(not(skyline_sched))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
#[cfg(not(skyline_sched))]
pub use std::sync::{Mutex, OnceLock};

#[cfg(skyline_sched)]
pub use sched::{AtomicBool, AtomicU64, AtomicUsize, Mutex, OnceLock};

#[cfg(test)]
mod tests {
    use super::{AtomicU64, Ordering};

    #[test]
    fn facade_atomics_behave_like_std() {
        let a = AtomicU64::new(5);
        assert_eq!(a.load(Ordering::Acquire), 5);
        a.store(7, Ordering::Release);
        assert_eq!(a.fetch_add(3, Ordering::AcqRel), 7);
        assert_eq!(a.load(Ordering::Acquire), 10);
        assert_eq!(
            a.compare_exchange(10, 1, Ordering::AcqRel, Ordering::Acquire),
            Ok(10)
        );
        assert_eq!(
            a.compare_exchange(10, 2, Ordering::AcqRel, Ordering::Acquire),
            Err(1)
        );
    }
}
