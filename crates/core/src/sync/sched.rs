//! Deterministic interleaving checker behind `cfg(skyline_sched)`.
//!
//! A hand-rolled, zero-dependency loom-style model checker. Test code wraps a
//! concurrent scenario in [`model`]; inside the closure, threads spawned via
//! [`spawn`] are *scheduled threads*: every operation on the model atomic
//! types, [`OnceLock`], and [`Mutex`] re-exported by [`crate::sync`] becomes a
//! scheduling point. The controller enumerates thread schedules by depth-first
//! search with a bounded-preemption budget, replaying the decision prefix on
//! each execution, until every schedule within the budget has been explored.
//!
//! # Execution model
//!
//! Scheduled threads are real OS threads serialised by a single baton: one
//! `Mutex<ExecState>` plus a condvar. At each scheduling point the running
//! thread *performs* its operation under the lock, then *decides* which thread
//! runs next (consulting the replay prefix or recording a fresh choice) and
//! parks until re-chosen. Because every shared-memory operation routed through
//! the facade takes this path, executions are sequentially consistent and
//! perfectly deterministic — the checker explores *schedules*, and flags
//! memory-ordering bugs via happens-before analysis rather than by simulating
//! stale values (the same design TSan uses).
//!
//! # Happens-before tracking
//!
//! Each thread carries a vector clock; spawn and join edges transfer clocks,
//! Release stores publish the writer's clock at the location, Acquire loads
//! join it. A *finding* is recorded when:
//!
//! 1. an Acquire load observes another thread's store that is neither
//!    happens-before ordered nor covered by a release clock (unsynchronised
//!    publication — e.g. the writer used `Relaxed`);
//! 2. a `Relaxed` load observes an unordered cross-thread store that was
//!    released (or the location has release history) — the reader is relying
//!    on synchronisation the ordering does not provide;
//! 3. any operation uses `SeqCst` (banned workspace-wide in favour of
//!    documented Acquire/Release pairs);
//! 4. no thread is runnable (deadlock), or an execution exceeds the step
//!    bound (livelock).
//!
//! Read-modify-write operations and *failed* compare-exchange loads are exempt
//! from rules 1–2: an RMW participates in the location's release sequence, and
//! a failed CAS with `Relaxed` failure ordering is the documented idiom for
//! "lost the race, don't care".
//!
//! On any finding the run panics with a `sched-finding:` message containing
//! the findings and the interleaving trace of the failing schedule.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{AssertUnwindSafe, PanicHookInfo};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Bounds for one [`model_with`] run.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum number of preemptive context switches per execution. Schedules
    /// needing more are not explored (bounded-preemption search: almost all
    /// real concurrency bugs manifest within two preemptions).
    pub preemption_bound: u32,
    /// Per-execution scheduling-point budget; exceeding it is reported as a
    /// livelock finding.
    pub max_steps: usize,
    /// Safety valve on the total number of executions explored.
    pub max_executions: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_steps: 20_000,
            max_executions: 1_000_000,
        }
    }
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

type VClock = Vec<u64>;

fn clock_join(into: &mut VClock, other: &VClock) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (i, &v) in other.iter().enumerate() {
        if into[i] < v {
            into[i] = v;
        }
    }
}

/// `true` iff `a` happens-before-or-equals `b` componentwise.
fn clock_leq(a: &VClock, b: &VClock) -> bool {
    a.iter()
        .enumerate()
        .all(|(i, &v)| v <= b.get(i).copied().unwrap_or(0))
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BlockOn {
    /// Blocked until some model store touches this address (OnceLock BUSY
    /// waiters, mutex waiters).
    Addr(usize),
    /// Blocked until the given thread finishes (join).
    Thread(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

#[derive(Clone, Debug)]
struct Choice {
    options: Vec<usize>,
    index: usize,
}

#[derive(Clone, Debug)]
struct StoreInfo {
    tid: usize,
    released: bool,
    /// Store half of a read-modify-write: continues (never heads) a release
    /// sequence, so observing it is not by itself unsynchronised publication.
    rmw: bool,
    clock: VClock,
}

#[derive(Default, Debug)]
struct LocMeta {
    last_store: Option<StoreInfo>,
    /// Clock published by the release sequence currently headed at this
    /// location, if any. Cleared by a plain relaxed store, continued by RMWs.
    release_clock: Option<VClock>,
    /// Whether any store to this location was ever a release — used to flag
    /// relaxed loads that observe a location other code synchronises through.
    release_history: bool,
}

#[derive(Default, Debug)]
struct MutexMeta {
    held: bool,
    release_clock: Option<VClock>,
}

struct ExecState {
    cfg: Config,
    threads: Vec<Status>,
    clocks: Vec<VClock>,
    final_clocks: Vec<Option<VClock>>,
    locs: HashMap<usize, LocMeta>,
    mutexes: HashMap<usize, MutexMeta>,
    /// Choices made so far in this execution (becomes the replay prefix for
    /// the next one after `advance`).
    schedule: Vec<Choice>,
    /// Prefix to replay, consumed front to back.
    replay: Vec<Choice>,
    replay_pos: usize,
    trace: Vec<String>,
    findings: Vec<String>,
    preemptions: u32,
    last_run: Option<usize>,
    current: usize,
    steps: usize,
    done: bool,
    abort: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

impl ExecState {
    fn new(cfg: Config, replay: Vec<Choice>) -> Self {
        ExecState {
            cfg,
            threads: Vec::new(),
            clocks: Vec::new(),
            final_clocks: Vec::new(),
            locs: HashMap::new(),
            mutexes: HashMap::new(),
            schedule: Vec::new(),
            replay,
            replay_pos: 0,
            trace: Vec::new(),
            findings: Vec::new(),
            preemptions: 0,
            last_run: None,
            current: 0,
            steps: 0,
            done: false,
            abort: false,
            os_handles: Vec::new(),
        }
    }

    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Status::Runnable))
            .map(|(t, _)| t)
            .collect()
    }

    /// Wake every thread blocked on `on`.
    fn wake(&mut self, on: BlockOn) {
        for s in &mut self.threads {
            if *s == Status::Blocked(on) {
                *s = Status::Runnable;
            }
        }
    }

    /// Pick the next thread to run, recording the decision. `None` means no
    /// thread is runnable.
    fn decide(&mut self) -> Option<usize> {
        let runnable = self.runnable();
        if runnable.is_empty() {
            return None;
        }
        // Replay the recorded prefix while it is still consistent with the
        // current execution; divergence (the replayed choice no longer
        // runnable) truncates the prefix and falls through to a fresh choice.
        if self.replay_pos < self.replay.len() {
            let entry = self.replay[self.replay_pos].clone();
            let chosen = entry.options[entry.index];
            if runnable.contains(&chosen) {
                self.replay_pos += 1;
                self.account(chosen, &runnable);
                self.schedule.push(entry);
                return Some(chosen);
            }
            self.replay.truncate(self.replay_pos);
        }
        let options = self.fresh_options(&runnable);
        let chosen = options[0];
        self.account(chosen, &runnable);
        self.schedule.push(Choice { options, index: 0 });
        Some(chosen)
    }

    fn fresh_options(&self, runnable: &[usize]) -> Vec<usize> {
        if let Some(last) = self.last_run {
            if runnable.contains(&last) {
                if self.preemptions >= self.cfg.preemption_bound {
                    // Out of preemption budget: keep running the same thread.
                    return vec![last];
                }
                let mut options = vec![last];
                options.extend(runnable.iter().copied().filter(|&t| t != last));
                return options;
            }
        }
        runnable.to_vec()
    }

    fn account(&mut self, chosen: usize, runnable: &[usize]) {
        if let Some(last) = self.last_run {
            if chosen != last && runnable.contains(&last) {
                self.preemptions += 1;
            }
        }
        self.last_run = Some(chosen);
    }

    fn finding(&mut self, msg: String) {
        self.findings.push(msg);
    }
}

struct SchedShared {
    mx: StdMutex<ExecState>,
    cv: Condvar,
}

fn lock_state(shared: &SchedShared) -> StdMutexGuard<'_, ExecState> {
    shared.mx.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Handle identifying the scheduled thread the current OS thread is running.
struct ExecHandle {
    shared: Arc<SchedShared>,
    tid: usize,
}

thread_local! {
    static EXEC: RefCell<Option<ExecHandle>> = const { RefCell::new(None) };
}

fn current_exec() -> Option<(Arc<SchedShared>, usize)> {
    EXEC.with(|e| e.borrow().as_ref().map(|h| (Arc::clone(&h.shared), h.tid)))
}

/// Panic payload used to unwind model threads when an execution aborts early;
/// swallowed by the thread wrapper, never user-visible.
struct SchedAbort;

fn abort_execution(shared: &SchedShared, mut st: StdMutexGuard<'_, ExecState>) -> ! {
    st.abort = true;
    st.done = true;
    shared.cv.notify_all();
    drop(st);
    // Detach this thread from the model BEFORE unwinding: destructors that
    // run during the unwind (mutex guards, nodes with telemetry counters)
    // would otherwise re-enter `scheduled`, observe the abort, and panic
    // inside a landing pad — a double panic that aborts the process.
    // Detached, their operations fall back to the raw non-model path.
    EXEC.with(|e| {
        *e.borrow_mut() = None;
    });
    std::panic::panic_any(SchedAbort);
}

// ---------------------------------------------------------------------------
// The scheduling point
// ---------------------------------------------------------------------------

enum Step<R> {
    Done(R),
    Block(BlockOn),
}

/// Run one operation at a scheduling point: perform it under the state lock,
/// log it, then hand the baton to the next chosen thread and park until
/// re-chosen. `op` may return `Step::Block` to wait (it is retried after the
/// thread is woken and re-chosen).
fn scheduled<R>(
    shared: &Arc<SchedShared>,
    tid: usize,
    what: &str,
    mut op: impl FnMut(&mut ExecState) -> Step<R>,
) -> R {
    let mut st = lock_state(shared);
    loop {
        if st.abort {
            abort_execution(shared, st);
        }
        st.steps += 1;
        if st.steps > st.cfg.max_steps {
            let bound = st.cfg.max_steps;
            st.finding(format!(
                "livelock: execution exceeded {bound} scheduling points"
            ));
            abort_execution(shared, st);
        }
        match op(&mut st) {
            Step::Done(r) => {
                st.trace.push(format!("t{tid} {what}"));
                st = hand_off(shared, st, tid);
                drop(st);
                return r;
            }
            Step::Block(on) => {
                st.trace.push(format!("t{tid} {what} [blocked]"));
                st.threads[tid] = Status::Blocked(on);
                st = hand_off(shared, st, tid);
                // Woken and re-chosen: retry the operation.
            }
        }
    }
}

/// Choose the next thread and park the caller until it is chosen again.
fn hand_off<'a>(
    shared: &'a Arc<SchedShared>,
    mut st: StdMutexGuard<'a, ExecState>,
    tid: usize,
) -> StdMutexGuard<'a, ExecState> {
    match st.decide() {
        Some(next) => {
            st.current = next;
            if next != tid {
                shared.cv.notify_all();
                loop {
                    if st.abort {
                        abort_execution(shared, st);
                    }
                    if st.current == tid && matches!(st.threads[tid], Status::Runnable) {
                        break;
                    }
                    st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
            }
            st
        }
        None => {
            st.finding("deadlock: no runnable thread".to_string());
            abort_execution(shared, st);
        }
    }
}

// ---------------------------------------------------------------------------
// Happens-before bookkeeping
// ---------------------------------------------------------------------------

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn check_seqcst(st: &mut ExecState, tid: usize, ord: Ordering, what: &str) {
    if ord == Ordering::SeqCst {
        st.finding(format!(
            "t{tid} {what}: SeqCst is banned; use a documented Acquire/Release pair"
        ));
    }
}

/// Happens-before analysis for a load. `rmw` marks the load half of a
/// read-modify-write or a failed compare-exchange (exempt from rules 1-2).
fn on_load(st: &mut ExecState, tid: usize, addr: usize, ord: Ordering, rmw: bool, what: &str) {
    check_seqcst(st, tid, ord, what);
    let ExecState {
        locs,
        clocks,
        findings,
        trace,
        ..
    } = &mut *st;
    clocks[tid][tid] += 1;
    let meta = locs.entry(addr).or_default();
    if let Some(store) = &meta.last_store {
        let ordered = store.tid == tid || clock_leq(&store.clock, &clocks[tid]);
        if !ordered && !rmw {
            if is_acquire(ord) && meta.release_clock.is_none() && !store.rmw {
                findings.push(format!(
                    "t{tid} {what}: acquire load observes t{st} store with no release \
                     pairing (unsynchronized publication)",
                    st = store.tid
                ));
                trace.push(format!("t{tid} {what} [FINDING]"));
            } else if !is_acquire(ord) && (store.released || meta.release_history) {
                findings.push(format!(
                    "t{tid} {what}: relaxed load observes unordered t{st} store on a \
                     location used for release/acquire publication",
                    st = store.tid
                ));
                trace.push(format!("t{tid} {what} [FINDING]"));
            }
        }
    }
    if is_acquire(ord) {
        if let Some(rc) = &meta.release_clock {
            clock_join(&mut clocks[tid], rc);
        }
    }
}

/// Happens-before analysis for a store. `rmw` marks the write half of a
/// successful read-modify-write (clock already ticked by the load half).
fn on_store(st: &mut ExecState, tid: usize, addr: usize, ord: Ordering, rmw: bool, what: &str) {
    check_seqcst(st, tid, ord, what);
    let ExecState { locs, clocks, .. } = &mut *st;
    if !rmw {
        clocks[tid][tid] += 1;
    }
    let meta = locs.entry(addr).or_default();
    let released = is_release(ord);
    if released {
        let mut rc = clocks[tid].clone();
        if rmw {
            // An RMW continues the release sequence: join the previous
            // release clock so later acquirers see the whole chain.
            if let Some(prev) = &meta.release_clock {
                clock_join(&mut rc, prev);
            }
        }
        meta.release_clock = Some(rc);
        meta.release_history = true;
    } else if !rmw {
        // A plain relaxed store breaks the release sequence.
        meta.release_clock = None;
    }
    meta.last_store = Some(StoreInfo {
        tid,
        released,
        rmw,
        clock: clocks[tid].clone(),
    });
    st.wake(BlockOn::Addr(addr));
}

// ---------------------------------------------------------------------------
// Model atomics
// ---------------------------------------------------------------------------

macro_rules! model_atomic {
    ($name:ident, $std:path, $ty:ty) => {
        /// Model atomic: identical API subset to the `std` type; inside a
        /// [`model`] run every operation is a scheduling point with
        /// happens-before tracking, outside one it passes through to the real
        /// operation with the requested ordering.
        #[derive(Debug)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Create a new atomic with the given initial value.
            #[must_use]
            pub const fn new(v: $ty) -> Self {
                Self {
                    inner: <$std>::new(v),
                }
            }

            fn addr(&self) -> usize {
                self as *const Self as usize
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }

        impl $name {
            /// Atomic load with model scheduling when inside a model run.
            pub fn load(&self, ord: Ordering) -> $ty {
                match current_exec() {
                    Some((shared, tid)) => {
                        let addr = self.addr();
                        let what = concat!(stringify!($name), ".load");
                        scheduled(&shared, tid, what, |st| {
                            on_load(st, tid, addr, ord, false, what);
                            Step::Done(self.inner.load(Ordering::SeqCst))
                        })
                    }
                    None => self.inner.load(ord),
                }
            }

            /// Atomic store with model scheduling when inside a model run.
            pub fn store(&self, v: $ty, ord: Ordering) {
                match current_exec() {
                    Some((shared, tid)) => {
                        let addr = self.addr();
                        let what = concat!(stringify!($name), ".store");
                        scheduled(&shared, tid, what, |st| {
                            on_store(st, tid, addr, ord, false, what);
                            self.inner.store(v, Ordering::SeqCst);
                            Step::Done(())
                        })
                    }
                    None => self.inner.store(v, ord),
                }
            }
        }
    };
}

model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

macro_rules! model_atomic_rmw {
    ($name:ident, $ty:ty) => {
        impl $name {
            /// Atomic fetch-add; a single scheduling point covering both the
            /// read and the write half.
            pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                match current_exec() {
                    Some((shared, tid)) => {
                        let addr = self.addr();
                        let what = concat!(stringify!($name), ".fetch_add");
                        scheduled(&shared, tid, what, |st| {
                            on_load(st, tid, addr, ord, true, what);
                            on_store(st, tid, addr, ord, true, what);
                            Step::Done(self.inner.fetch_add(v, Ordering::SeqCst))
                        })
                    }
                    None => self.inner.fetch_add(v, ord),
                }
            }

            /// Atomic compare-exchange; success is an RMW, failure is a load
            /// with `failure` ordering (RMW-exempt from race rules).
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                match current_exec() {
                    Some((shared, tid)) => {
                        let addr = self.addr();
                        let what = concat!(stringify!($name), ".compare_exchange");
                        scheduled(&shared, tid, what, |st| {
                            let r = self.inner.compare_exchange(
                                current,
                                new,
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                            );
                            match r {
                                Ok(_) => {
                                    on_load(st, tid, addr, success, true, what);
                                    on_store(st, tid, addr, success, true, what);
                                }
                                Err(_) => {
                                    on_load(st, tid, addr, failure, true, what);
                                }
                            }
                            Step::Done(r)
                        })
                    }
                    None => self.inner.compare_exchange(current, new, success, failure),
                }
            }
        }
    };
}

model_atomic_rmw!(AtomicU64, u64);
model_atomic_rmw!(AtomicUsize, usize);

// ---------------------------------------------------------------------------
// Model OnceLock
// ---------------------------------------------------------------------------

const ONCE_EMPTY: usize = 0;
const ONCE_BUSY: usize = 1;
const ONCE_READY: usize = 2;

/// Model `OnceLock`: the value lives in a real `std::sync::OnceLock`; a model
/// atomic state word (`EMPTY -> BUSY -> READY`) supplies the scheduling
/// points and the release/acquire edges the real type provides internally.
#[derive(Debug)]
pub struct OnceLock<T> {
    state: AtomicUsize,
    cell: std::sync::OnceLock<T>,
}

impl<T> Default for OnceLock<T> {
    /// An empty cell (no `T: Default` bound, matching `std`).
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OnceLock<T> {
    /// Create an empty cell.
    #[must_use]
    pub const fn new() -> Self {
        OnceLock {
            state: AtomicUsize::new(ONCE_EMPTY),
            cell: std::sync::OnceLock::new(),
        }
    }

    /// Get the value if set (acquire load of the state word).
    pub fn get(&self) -> Option<&T> {
        if self.state.load(Ordering::Acquire) == ONCE_READY {
            self.cell.get()
        } else {
            None
        }
    }

    /// Set the value if the cell is empty; returns `Err(value)` if another
    /// thread already set (or is setting) it.
    pub fn set(&self, value: T) -> Result<(), T> {
        match self.state.compare_exchange(
            ONCE_EMPTY,
            ONCE_BUSY,
            Ordering::Acquire,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                let stored = self.cell.set(value);
                debug_assert!(stored.is_ok());
                self.state.store(ONCE_READY, Ordering::Release);
                Ok(())
            }
            Err(_) => Err(value),
        }
    }

    /// Get the value, initialising it with `f` if the cell is empty. If a
    /// racing thread is mid-initialisation the caller blocks until it
    /// finishes (in a model run, a scheduling point).
    pub fn get_or_init(&self, f: impl FnOnce() -> T) -> &T {
        let mut f = Some(f);
        loop {
            match self.state.compare_exchange(
                ONCE_EMPTY,
                ONCE_BUSY,
                Ordering::Acquire,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // The CAS succeeds at most once per cell, so the
                    // closure is still present here.
                    let init = f.take().expect("get_or_init closure runs at most once");
                    let stored = self.cell.set(init());
                    debug_assert!(stored.is_ok());
                    self.state.store(ONCE_READY, Ordering::Release);
                }
                Err(ONCE_READY) => {}
                Err(_) => {
                    self.wait_ready();
                }
            }
            if let Some(v) = self.cell.get() {
                return v;
            }
        }
    }

    /// Block until the state word leaves BUSY. Outside a model run this
    /// spin-loops briefly (initialisers are short); inside one it parks the
    /// scheduled thread until the writer's READY store wakes it.
    fn wait_ready(&self) {
        let addr = &self.state as *const AtomicUsize as usize;
        match current_exec() {
            Some((shared, tid)) => {
                scheduled(&shared, tid, "OnceLock.wait_ready", |_| {
                    if self.state.inner.load(Ordering::SeqCst) == ONCE_BUSY {
                        Step::Block(BlockOn::Addr(addr))
                    } else {
                        Step::Done(())
                    }
                });
            }
            None => {
                while self.state.inner.load(Ordering::Acquire) == ONCE_BUSY {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Take the value out, leaving the cell empty. `&mut self` proves
    /// exclusive access, so this is not a scheduling point.
    pub fn take(&mut self) -> Option<T> {
        self.state.inner.store(ONCE_EMPTY, Ordering::SeqCst);
        self.cell.take()
    }
}

// ---------------------------------------------------------------------------
// Model Mutex
// ---------------------------------------------------------------------------

/// Model `Mutex`: lock/unlock are scheduling points with release/acquire
/// clock transfer; blocking on a held lock parks the scheduled thread instead
/// of the OS thread, so a preempted critical section cannot wedge the run.
/// The data still lives behind a real `std::sync::Mutex` (uncontended among
/// model threads — the scheduler admits one holder at a time).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`]; unlocking is a scheduling point in a model run.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    sched: Option<(Arc<SchedShared>, usize)>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    #[must_use]
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    /// Acquire the lock. The error case mirrors `std` poisoning (a model
    /// thread panicked while holding the inner lock).
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, PoisonError<MutexGuard<'_, T>>> {
        match current_exec() {
            Some((shared, tid)) => {
                let addr = self.addr();
                scheduled(&shared, tid, "Mutex.lock", |st| {
                    let meta = st.mutexes.entry(addr).or_default();
                    if meta.held {
                        Step::Block(BlockOn::Addr(addr))
                    } else {
                        meta.held = true;
                        let rc = meta.release_clock.clone();
                        st.clocks[tid][tid] += 1;
                        if let Some(rc) = rc {
                            clock_join(&mut st.clocks[tid], &rc);
                        }
                        Step::Done(())
                    }
                });
                // The scheduler admitted us: the inner lock is uncontended
                // among model threads (non-model threads may still hold it,
                // which the real lock below handles by blocking).
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    sched: Some((shared, tid)),
                })
            }
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    sched: None,
                }),
                Err(_) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
                    sched: None,
                })),
            },
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("mutex guard holds the inner lock until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("mutex guard holds the inner lock until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first so a non-model thread can proceed.
        drop(self.inner.take());
        if let Some((shared, tid)) = self.sched.take() {
            if current_exec().is_none() {
                // The thread was detached by an execution abort and is
                // unwinding; the model state is being discarded, so no
                // unlock bookkeeping (which would panic again) is needed.
                return;
            }
            let addr = self.lock.addr();
            scheduled(&shared, tid, "Mutex.unlock", |st| {
                st.clocks[tid][tid] += 1;
                let clock = st.clocks[tid].clone();
                let meta = st.mutexes.entry(addr).or_default();
                meta.held = false;
                meta.release_clock = Some(clock);
                st.wake(BlockOn::Addr(addr));
                Step::Done(())
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Model threads
// ---------------------------------------------------------------------------

/// Handle to a model thread; [`JoinHandle::join`] is a scheduling point that
/// transfers the child's final clock to the joiner.
pub struct JoinHandle<T> {
    tid: usize,
    shared: Arc<SchedShared>,
    result: Arc<StdMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result.
    pub fn join(self) -> T {
        let shared = Arc::clone(&self.shared);
        let tid = self.tid;
        let me = current_exec().map(|(_, t)| t).unwrap_or(0);
        scheduled(&shared, me, "join", |st| {
            if matches!(st.threads[tid], Status::Finished) {
                st.clocks[me][me] += 1;
                let child = st.final_clocks[tid].clone();
                if let Some(child) = child {
                    clock_join(&mut st.clocks[me], &child);
                }
                Step::Done(())
            } else {
                Step::Block(BlockOn::Thread(tid))
            }
        });
        self.result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("joined model thread stored its result before finishing")
    }
}

/// Spawn a model thread. Must be called from inside a [`model`] closure (or
/// a thread it spawned); the new thread participates in the schedule search.
pub fn spawn<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> JoinHandle<T> {
    let (shared, parent) =
        current_exec().expect("sched::spawn must be called from inside a sched::model closure");
    let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let tid = {
        let mut st = lock_state(&shared);
        let tid = st.threads.len();
        st.threads.push(Status::Runnable);
        st.clocks[parent][parent] += 1;
        let mut child = st.clocks[parent].clone();
        if child.len() <= tid {
            child.resize(tid + 1, 0);
        }
        child[tid] = 1;
        st.clocks.push(child);
        st.final_clocks.push(None);
        for c in &mut st.clocks {
            if c.len() <= tid {
                c.resize(tid + 1, 0);
            }
        }
        tid
    };
    let handle = {
        let shared = Arc::clone(&shared);
        let result = Arc::clone(&result);
        std::thread::Builder::new()
            .name(format!("sched-t{tid}"))
            .spawn(move || run_model_thread(shared, tid, f, result))
            .expect("spawning a model checker thread failed")
    };
    lock_state(&shared).os_handles.push(handle);
    // Scheduling point: the child becoming runnable is observable.
    scheduled(&shared, parent, "spawn", |_| Step::Done(()));
    JoinHandle {
        tid,
        shared,
        result,
    }
}

fn run_model_thread<T: Send + 'static>(
    shared: Arc<SchedShared>,
    tid: usize,
    f: impl FnOnce() -> T,
    result: Arc<StdMutex<Option<T>>>,
) {
    EXEC.with(|e| {
        *e.borrow_mut() = Some(ExecHandle {
            shared: Arc::clone(&shared),
            tid,
        });
    });
    // Park until first chosen.
    let aborted = {
        let mut st = lock_state(&shared);
        loop {
            if st.abort {
                break true;
            }
            if st.current == tid {
                break false;
            }
            st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    };
    if !aborted {
        match std::panic::catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => {
                *result.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                finish_thread(&shared, tid);
            }
            Err(payload) => {
                if payload.downcast_ref::<SchedAbort>().is_none() {
                    let msg = panic_message(&payload);
                    let mut st = lock_state(&shared);
                    st.finding(format!("panic in model thread t{tid}: {msg}"));
                    st.abort = true;
                    st.done = true;
                    shared.cv.notify_all();
                }
            }
        }
    }
    EXEC.with(|e| {
        *e.borrow_mut() = None;
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn finish_thread(shared: &Arc<SchedShared>, tid: usize) {
    let mut st = lock_state(shared);
    st.clocks[tid][tid] += 1;
    let clock = st.clocks[tid].clone();
    st.final_clocks[tid] = Some(clock);
    st.threads[tid] = Status::Finished;
    st.trace.push(format!("t{tid} finished"));
    st.wake(BlockOn::Thread(tid));
    match st.decide() {
        Some(next) => {
            st.current = next;
            shared.cv.notify_all();
        }
        None => {
            if st.threads.iter().all(|s| matches!(s, Status::Finished)) {
                st.done = true;
            } else {
                st.finding("deadlock: no runnable thread after thread exit".to_string());
                st.abort = true;
                st.done = true;
            }
            shared.cv.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

/// Serialises model runs across parallel `#[test]`s: the checker relies on
/// process-global panic-hook state and deterministic replay, so two models
/// must not interleave.
static MODEL_SERIAL: StdMutex<()> = StdMutex::new(());

/// Wrapper panic hook that suppresses output from model threads (their
/// panics are expected unwinds during DFS aborts); restores the previous
/// hook on drop.
///
/// `PanicHookInfo` postdates the workspace MSRV, which is fine here: this
/// whole module is gated behind `--cfg skyline_sched` and never compiled
/// by the MSRV build.
#[allow(clippy::incompatible_msrv)]
struct QuietHook {
    prev: Arc<dyn Fn(&PanicHookInfo<'_>) + Sync + Send>,
}

impl QuietHook {
    #[allow(clippy::incompatible_msrv)]
    fn install() -> Self {
        let prev: Arc<dyn Fn(&PanicHookInfo<'_>) + Sync + Send> =
            Arc::from(std::panic::take_hook());
        let delegate = Arc::clone(&prev);
        std::panic::set_hook(Box::new(move |info| {
            // Model threads are identified by name rather than by the EXEC
            // thread-local: an aborting thread detaches from the model
            // *before* its unwind starts, but its panic should stay quiet.
            let model_thread = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("sched-t"));
            if !model_thread {
                delegate(info);
            }
        }));
        QuietHook { prev }
    }
}

impl Drop for QuietHook {
    fn drop(&mut self) {
        // `set_hook` itself panics on a panicking thread; when the
        // controller is unwinding (a model assertion fired), leave the
        // wrapper installed — it delegates to the previous hook for every
        // non-model thread, so behaviour stays correct.
        if !std::thread::panicking() {
            let prev = Arc::clone(&self.prev);
            std::panic::set_hook(Box::new(move |info| prev(info)));
        }
    }
}

/// Explore every schedule of `f` within the default [`Config`], panicking
/// with a `sched-finding:` message if any execution produces a finding.
pub fn model(f: impl Fn() + Send + Sync + 'static) {
    model_with(Config::default(), f);
}

/// [`model`] with an explicit [`Config`].
pub fn model_with(cfg: Config, f: impl Fn() + Send + Sync + 'static) {
    let _serial = MODEL_SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    let _quiet = QuietHook::install();
    let f = Arc::new(f);
    let mut replay: Vec<Choice> = Vec::new();
    let mut executions: u64 = 0;
    loop {
        executions += 1;
        assert!(
            executions <= cfg.max_executions,
            "sched: execution budget exhausted after {executions} executions"
        );
        let shared = Arc::new(SchedShared {
            mx: StdMutex::new(ExecState::new(cfg.clone(), std::mem::take(&mut replay))),
            cv: Condvar::new(),
        });
        {
            let mut st = lock_state(&shared);
            st.threads.push(Status::Runnable);
            st.clocks.push(vec![1]);
            st.final_clocks.push(None);
            st.current = 0;
            st.last_run = Some(0);
        }
        // The root closure runs as model thread 0.
        let root = {
            let shared = Arc::clone(&shared);
            let f = Arc::clone(&f);
            std::thread::Builder::new()
                .name("sched-t0".to_string())
                .spawn(move || {
                    run_model_thread(shared, 0, move || f(), Arc::new(StdMutex::new(None)))
                })
                .expect("spawning the root model checker thread failed")
        };
        // Wait for the execution to complete.
        {
            let mut st = lock_state(&shared);
            while !st.done {
                st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
        let (schedule, findings, trace, handles) = {
            let mut st = lock_state(&shared);
            (
                std::mem::take(&mut st.schedule),
                std::mem::take(&mut st.findings),
                std::mem::take(&mut st.trace),
                std::mem::take(&mut st.os_handles),
            )
        };
        // Release any threads still parked on the baton, then join every OS
        // thread so thread-local destructors finish before the next
        // execution (replay determinism depends on it).
        shared.cv.notify_all();
        for h in handles {
            let _ = h.join();
        }
        let _ = root.join();
        assert!(
            findings.is_empty(),
            "sched-finding: execution {executions} produced {n} finding(s):\n  {f}\n\
             interleaving trace:\n  {t}",
            n = findings.len(),
            f = findings.join("\n  "),
            t = trace.join("\n  "),
        );
        match advance(schedule) {
            Some(next) => replay = next,
            None => break,
        }
    }
}

/// Compute the next schedule prefix for DFS: bump the deepest choice with an
/// untried alternative and discard everything after it. `None` when the
/// search space is exhausted.
fn advance(mut schedule: Vec<Choice>) -> Option<Vec<Choice>> {
    while let Some(last) = schedule.last_mut() {
        if last.index + 1 < last.options.len() {
            last.index += 1;
            return Some(schedule);
        }
        schedule.pop();
    }
    None
}
