//! Dependency-free observability: an atomic metrics registry, RAII phase
//! spans, and the monotonic clock the rest of the workspace is required to
//! use (the `no-ad-hoc-timing` lint in `cargo xtask lint` bans raw
//! [`std::time::Instant`] from library code outside this module).
//!
//! Everything here follows the same hand-rolled, lock-free discipline as
//! [`crate::epoch`] and the serve result cache: registration is an
//! append-only linked list of leaked nodes chained through
//! [`std::sync::OnceLock`] next-pointers (wait-free for readers), updates
//! are relaxed atomics, and span events buffer in a per-thread `Vec` so the
//! hot path never takes a lock — the single `Mutex` guards the *drain*
//! side only (`stop_recording`, thread exit).
//!
//! # The three layers
//!
//! * **Metrics registry** — named [`Counter`]s and fixed-bucket log2
//!   [`Histogram`]s, interned by `&'static str` key. Call sites use the
//!   [`counter!`](crate::counter) / [`histogram!`](crate::histogram) macros,
//!   which cache the registry lookup in a per-site static so steady-state
//!   cost is one atomic add. [`metrics_snapshot`] returns everything,
//!   sorted by name; [`reset_metrics`] zeroes the values (the nodes stay
//!   registered forever).
//! * **Phase spans** — [`span!`](crate::span) opens an RAII scope timer
//!   carrying a name, the compact per-process thread id, the nesting depth
//!   on that thread, and an optional `u64` payload (points processed, cells
//!   emitted). Nothing is recorded unless a trace session is active
//!   ([`start_recording`] / [`stop_recording`]): inactive spans cost one
//!   relaxed atomic load.
//! * **Clock** — [`now_ns`] / [`ms_since`], nanoseconds on a process-wide
//!   monotonic epoch. Always available, feature or not, because product
//!   data (e.g. workload reports) depends on it.
//! * **Flight recorder** — every closed span is additionally written into a
//!   bounded per-thread ring ([`FLIGHT_CAPACITY`] events, overwrite-oldest),
//!   whether or not a trace session is active. A *trigger* —
//!   latency-over-threshold ([`set_latency_trigger`]), invariant violation
//!   ([`trigger_anomaly`]), or panic ([`install_panic_trigger`]) — freezes
//!   the recorder: each thread contributes the tail of its ring (events
//!   ending within the freeze window) to a shared dump, drained by
//!   [`take_anomaly_dump`]. The anomalous build or query is captured
//!   *after the fact*, with no `start_recording` pre-arming. The hot path
//!   stays lock-free: the ring is thread-local and trigger checks are two
//!   relaxed atomic loads per closed span; the dump mutex is only touched
//!   once per thread per anomaly.
//!
//! # Feature gate and determinism
//!
//! With the `telemetry` cargo feature off (`default-features = false` from
//! a dependent), every macro still expands and type-checks but resolves to
//! zero-sized no-ops: no registry, no buffers, no atomics. Probes never
//! influence diagram outputs either way — `fuzz_diff`/`stress_diff`
//! digests are byte-identical with the feature on or off, and a
//! differential test pins query results across recording on/off at thread
//! counts {0, 1, 4}.

use crate::sync::OnceLock;
use std::time::Instant;

pub mod mem;

/// Number of histogram buckets: bucket `i` counts values whose bit length
/// is `i` (bucket 0 is exactly zero, bucket `i >= 1` covers
/// `[2^(i-1), 2^i)`), so the top bucket index for `u64::MAX` is 64.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The log2 bucket index of a value: 0 for 0, otherwise its bit length
/// (`bucket_index(1) == 1`, `bucket_index(2) == bucket_index(3) == 2`, …).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    64 - value.leading_zeros() as usize
}

/// Inclusive lower bound of histogram bucket `index` (0 for buckets 0/1).
pub fn bucket_lower_bound(index: usize) -> u64 {
    match index {
        0 | 1 => 0,
        i if i >= 65 => u64::MAX,
        i => 1u64 << (i - 1),
    }
}

/// Capacity of each thread's flight-recorder ring, in closed span events.
/// Oldest events are overwritten once the ring is full, so the ring always
/// holds the most recent `FLIGHT_CAPACITY` spans closed on that thread.
pub const FLIGHT_CAPACITY: usize = 2048;

/// Default freeze window: how far back (in time before the trigger) ring
/// events are considered part of the anomaly, unless overridden with
/// [`set_flight_window_ms`].
pub const DEFAULT_FLIGHT_WINDOW_MS: u64 = 250;

/// Nanoseconds since the first telemetry clock use in this process. The
/// epoch is process-wide, so timestamps from different threads share one
/// monotonic axis — exactly what the Chrome-trace exporter needs.
#[inline]
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let nanos = EPOCH.get_or_init(Instant::now).elapsed().as_nanos();
    u64::try_from(nanos).unwrap_or(u64::MAX)
}

/// Milliseconds elapsed since a [`now_ns`] timestamp.
pub fn ms_since(start_ns: u64) -> f64 {
    now_ns().saturating_sub(start_ns) as f64 / 1_000_000.0
}

/// Busy-waits until the telemetry clock reaches `target_ns` (returns
/// immediately if it already has). This is the workspace's one
/// scheduled-wait primitive: raw `thread::sleep` is banned by the
/// `no-raw-spawn` lint, and its wake-up jitter would poison open-loop
/// latency accounting anyway — a spin wakes within nanoseconds of the
/// scheduled arrival, at the cost of burning the waiting core.
pub fn spin_until(target_ns: u64) {
    while now_ns() < target_ns {
        std::hint::spin_loop();
    }
}

/// One closed span, as drained by [`stop_recording`]. `start_ns`/`dur_ns`
/// are on the [`now_ns`] axis; `depth` is the number of enclosing spans on
/// the same thread when this one opened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name, e.g. `"pool.worker"`.
    pub name: &'static str,
    /// Compact per-process thread index (assigned on first span).
    pub thread: u64,
    /// Nesting depth on `thread` when the span opened (0 = top level).
    pub depth: u32,
    /// Open timestamp on the [`now_ns`] axis.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds (never negative by construction).
    pub dur_ns: u64,
    /// Optional work measure (points processed, cells emitted, …).
    pub payload: Option<u64>,
}

/// One counter's value in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registry key.
    pub name: &'static str,
    /// Value at snapshot time.
    pub value: u64,
}

/// One histogram's state in a [`MetricsSnapshot`]. Only populated buckets
/// are listed, as `(bucket_index, count)` pairs in ascending index order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry key.
    pub name: &'static str,
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping on overflow).
    pub sum: u64,
    /// Non-empty `(bucket_index, count)` pairs; see [`bucket_index`].
    pub buckets: Vec<(usize, u64)>,
}

/// Everything in the metrics registry at one instant, sorted by name so
/// snapshots are deterministic regardless of registration order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All registered counters.
    pub counters: Vec<CounterSnapshot>,
    /// All registered histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

/// A drained flight-recorder dump: the recent span events every thread
/// contributed after an anomaly trigger fired. Produced by
/// [`take_anomaly_dump`]; feed `events` straight to the Chrome-trace
/// exporter (`skyline_bench::json::render_chrome_trace`) for a
/// structurally valid trace of the anomaly's immediate past.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnomalyDump {
    /// Which trigger fired first: `"latency-over-threshold"`, `"panic"`,
    /// or the reason passed to [`trigger_anomaly`].
    pub reason: &'static str,
    /// [`now_ns`] timestamp at which the trigger fired.
    pub trigger_ns: u64,
    /// Contributed ring events, ordered like `stop_recording` output
    /// (`(thread, start_ns)`; ties broken longest-span-first).
    pub events: Vec<SpanEvent>,
}

/// An unregistered, always-compiled atomic counter for *per-instance*
/// statistics (the serve result caches hold these). Unlike the registry's
/// [`Counter`]s it has no name and never no-ops: per-snapshot cache stats
/// are product data, not telemetry.
#[derive(Debug, Default)]
pub struct CounterCell(crate::sync::AtomicU64);

impl CounterCell {
    /// A zeroed cell.
    pub const fn new() -> Self {
        CounterCell(crate::sync::AtomicU64::new(0))
    }

    /// Adds `delta` (relaxed; totals are exact once writers quiesce).
    #[inline]
    pub fn add(&self, delta: u64) {
        // relaxed-ok: pure statistic; nothing is published through it.
        self.0.fetch_add(delta, crate::sync::Ordering::Relaxed);
    }

    /// Current value (relaxed read).
    #[inline]
    pub fn get(&self) -> u64 {
        // relaxed-ok: monitoring read; exact only once writers quiesce.
        self.0.load(crate::sync::Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        // relaxed-ok: caller quiesces writers before resetting stats.
        self.0.store(0, crate::sync::Ordering::Relaxed);
    }
}

/// Bumps a registry counter by `delta`. The registry lookup happens once
/// per call site (cached in a hidden static); with the `telemetry` feature
/// off the whole statement is a no-op (the delta expression is still
/// type-checked but feeds a zero-sized sink).
///
/// ```
/// skyline_core::counter!("doc.example.events").add(3);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __SKYLINE_COUNTER_SITE: $crate::telemetry::CounterSite =
            $crate::telemetry::CounterSite::new();
        __SKYLINE_COUNTER_SITE.resolve($name)
    }};
}

/// Resolves a registry histogram for recording, mirroring
/// [`counter!`](crate::counter)'s per-site caching and feature gating.
///
/// ```
/// skyline_core::histogram!("doc.example.sizes").record(17);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __SKYLINE_HISTOGRAM_SITE: $crate::telemetry::HistogramSite =
            $crate::telemetry::HistogramSite::new();
        __SKYLINE_HISTOGRAM_SITE.resolve($name)
    }};
}

/// Opens an RAII phase span that closes (and records, if a trace session
/// is active) when the returned guard drops. The optional second argument
/// is the span's `u64` payload.
///
/// ```
/// {
///     let _span = skyline_core::span!("doc.example.phase", 42);
///     // ... timed work ...
/// } // span closes here
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::telemetry::Span::enter($name, ::core::option::Option::None)
    };
    ($name:expr, $payload:expr) => {
        $crate::telemetry::Span::enter($name, ::core::option::Option::Some($payload))
    };
}

#[cfg(feature = "telemetry")]
mod active {
    use super::{
        bucket_index, now_ns, AnomalyDump, CounterCell, CounterSnapshot, HistogramSnapshot,
        MetricsSnapshot, SpanEvent, DEFAULT_FLIGHT_WINDOW_MS, FLIGHT_CAPACITY, HISTOGRAM_BUCKETS,
    };
    use crate::sync::{AtomicU64, Mutex, OnceLock, Ordering};
    use std::cell::RefCell;

    /// A named, registered counter. Obtained via
    /// [`counter!`](crate::counter); lives forever (registry nodes are
    /// leaked once, like any `static`).
    #[derive(Debug)]
    pub struct Counter {
        name: &'static str,
        cell: CounterCell,
        next: OnceLock<&'static Counter>,
    }

    impl Counter {
        /// The registry key.
        pub fn name(&self) -> &'static str {
            self.name
        }

        /// Adds `delta` (relaxed).
        #[inline]
        pub fn add(&self, delta: u64) {
            self.cell.add(delta);
        }

        /// Current value.
        pub fn get(&self) -> u64 {
            self.cell.get()
        }
    }

    /// A named, registered log2 histogram (see [`bucket_index`]).
    #[derive(Debug)]
    pub struct Histogram {
        name: &'static str,
        sum: CounterCell,
        buckets: [CounterCell; HISTOGRAM_BUCKETS],
        next: OnceLock<&'static Histogram>,
    }

    impl Histogram {
        /// The registry key.
        pub fn name(&self) -> &'static str {
            self.name
        }

        /// Records one value into its log2 bucket.
        #[inline]
        pub fn record(&self, value: u64) {
            self.buckets[bucket_index(value)].add(1);
            self.sum.add(value);
        }

        /// Total recorded values (sum over buckets).
        pub fn count(&self) -> u64 {
            self.buckets.iter().map(CounterCell::get).sum()
        }

        /// Sum of recorded values (wrapping).
        pub fn sum(&self) -> u64 {
            self.sum.get()
        }

        /// Count in bucket `index` (0 beyond the last bucket).
        pub fn bucket_count(&self, index: usize) -> u64 {
            self.buckets.get(index).map_or(0, CounterCell::get)
        }
    }

    static COUNTER_HEAD: OnceLock<&'static Counter> = OnceLock::new();
    static HISTOGRAM_HEAD: OnceLock<&'static Histogram> = OnceLock::new();

    /// Interns `name` in the counter registry: an append-only `OnceLock`
    /// chain, wait-free for re-lookups. Losing a registration race wastes
    /// one small leaked node and retries — registration happens once per
    /// call site, so the waste is bounded by the source code itself.
    pub fn register_counter(name: &'static str) -> &'static Counter {
        let mut slot = &COUNTER_HEAD;
        loop {
            match slot.get() {
                Some(node) if node.name == name => return node,
                Some(node) => slot = &node.next,
                None => {
                    let fresh: &'static Counter = Box::leak(Box::new(Counter {
                        name,
                        cell: CounterCell::new(),
                        next: OnceLock::new(),
                    }));
                    if slot.set(fresh).is_ok() {
                        return fresh;
                    }
                    // Raced: re-inspect this slot (the winner may be us by
                    // name); the loop continues from the same position.
                }
            }
        }
    }

    /// Interns `name` in the histogram registry; see [`register_counter`].
    pub fn register_histogram(name: &'static str) -> &'static Histogram {
        let mut slot = &HISTOGRAM_HEAD;
        loop {
            match slot.get() {
                Some(node) if node.name == name => return node,
                Some(node) => slot = &node.next,
                None => {
                    let fresh: &'static Histogram = Box::leak(Box::new(Histogram {
                        name,
                        sum: CounterCell::new(),
                        buckets: std::array::from_fn(|_| CounterCell::new()),
                        next: OnceLock::new(),
                    }));
                    if slot.set(fresh).is_ok() {
                        return fresh;
                    }
                }
            }
        }
    }

    fn counters() -> impl Iterator<Item = &'static Counter> {
        let mut cursor = COUNTER_HEAD.get().copied();
        std::iter::from_fn(move || {
            let node = cursor?;
            cursor = node.next.get().copied();
            Some(node)
        })
    }

    fn histograms() -> impl Iterator<Item = &'static Histogram> {
        let mut cursor = HISTOGRAM_HEAD.get().copied();
        std::iter::from_fn(move || {
            let node = cursor?;
            cursor = node.next.get().copied();
            Some(node)
        })
    }

    /// Everything in the registry right now, sorted by name.
    pub fn metrics_snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            counters: counters()
                .map(|c| CounterSnapshot {
                    name: c.name,
                    value: c.get(),
                })
                .collect(),
            histograms: histograms()
                .map(|h| HistogramSnapshot {
                    name: h.name,
                    count: h.count(),
                    sum: h.sum(),
                    buckets: (0..HISTOGRAM_BUCKETS)
                        .filter_map(|i| {
                            let count = h.bucket_count(i);
                            (count > 0).then_some((i, count))
                        })
                        .collect(),
                })
                .collect(),
        };
        snap.counters.sort_by_key(|c| c.name);
        snap.histograms.sort_by_key(|h| h.name);
        snap
    }

    /// Zeroes every registered counter and histogram (nodes stay
    /// registered). Benches call this between configurations so snapshots
    /// attribute work to the right run.
    pub fn reset_metrics() {
        for c in counters() {
            c.cell.reset();
        }
        for h in histograms() {
            h.sum.reset();
            for b in &h.buckets {
                b.reset();
            }
        }
    }

    /// Per-call-site cache behind [`counter!`](crate::counter).
    #[derive(Debug)]
    pub struct CounterSite(OnceLock<&'static Counter>);

    impl Default for CounterSite {
        fn default() -> Self {
            Self::new()
        }
    }

    impl CounterSite {
        /// An empty site (resolved on first use).
        pub const fn new() -> Self {
            CounterSite(OnceLock::new())
        }

        /// The counter for `name`, registering it on first use.
        #[inline]
        pub fn resolve(&self, name: &'static str) -> &'static Counter {
            self.0.get_or_init(|| register_counter(name))
        }
    }

    /// Per-call-site cache behind [`histogram!`](crate::histogram).
    #[derive(Debug)]
    pub struct HistogramSite(OnceLock<&'static Histogram>);

    impl Default for HistogramSite {
        fn default() -> Self {
            Self::new()
        }
    }

    impl HistogramSite {
        /// An empty site (resolved on first use).
        pub const fn new() -> Self {
            HistogramSite(OnceLock::new())
        }

        /// The histogram for `name`, registering it on first use.
        #[inline]
        pub fn resolve(&self, name: &'static str) -> &'static Histogram {
            self.0.get_or_init(|| register_histogram(name))
        }
    }

    /// Trace-session generation: odd = a session is active (spans record),
    /// even = idle. Incrementing on both start and stop gives every session
    /// a unique odd id, so spans and thread buffers left over from an
    /// earlier session can never leak events into a later one.
    static GENERATION: AtomicU64 = AtomicU64::new(0);

    /// The active session's generation, or 0 when idle. `Acquire` pairs
    /// with the `Release` in [`start_recording`]/[`stop_recording`] so a
    /// thread that observes the new generation also observes the drained
    /// sink.
    #[inline]
    fn current_generation() -> u64 {
        let g = GENERATION.load(Ordering::Acquire);
        if g % 2 == 1 {
            g
        } else {
            0
        }
    }

    fn sink() -> &'static Mutex<Vec<SpanEvent>> {
        static SINK: OnceLock<Mutex<Vec<SpanEvent>>> = OnceLock::new();
        SINK.get_or_init(|| Mutex::new(Vec::new()))
    }

    static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

    /// The pending anomaly's trigger timestamp, or 0 when no anomaly is
    /// frozen. Set once per anomaly by a compare-exchange from 0 (first
    /// trigger wins); cleared by [`take_anomaly_dump`].
    static FREEZE_NS: AtomicU64 = AtomicU64::new(0);

    /// Latency-trigger threshold in nanoseconds; 0 = disarmed. Any closed
    /// span whose duration reaches the threshold fires the anomaly trigger.
    static LATENCY_TRIGGER_NS: AtomicU64 = AtomicU64::new(0);

    /// Freeze window in nanoseconds: ring events ending earlier than
    /// `trigger - window` are not part of the anomaly's immediate past.
    static FLIGHT_WINDOW_NS: AtomicU64 = AtomicU64::new(DEFAULT_FLIGHT_WINDOW_MS * 1_000_000);

    /// The frozen dump under construction: trigger metadata plus every
    /// contributed ring tail. Guarded by a mutex, but only touched when a
    /// trigger fires or a thread contributes — never on the span hot path.
    #[derive(Debug, Default)]
    struct DumpState {
        reason: &'static str,
        trigger_ns: u64,
        events: Vec<SpanEvent>,
    }

    fn dump_state() -> &'static Mutex<DumpState> {
        static DUMP: OnceLock<Mutex<DumpState>> = OnceLock::new();
        DUMP.get_or_init(|| Mutex::new(DumpState::default()))
    }

    /// Fires the anomaly trigger at `ts` (clamped to nonzero so 0 keeps
    /// meaning "no anomaly"). Only the first trigger per freeze records its
    /// reason; later triggers are absorbed until the dump is taken.
    fn fire_trigger(reason: &'static str, ts: u64) {
        let ts = ts.max(1);
        // relaxed-ok: failure ordering — a losing trigger reads nothing
        // through the freeze timestamp, it just backs off.
        let won = FREEZE_NS.compare_exchange(0, ts, Ordering::AcqRel, Ordering::Relaxed);
        if won.is_ok() {
            if let Ok(mut dump) = dump_state().lock() {
                dump.reason = reason;
                dump.trigger_ns = ts;
            }
        }
    }

    /// Per-thread span buffer: session events accumulate in `events`
    /// without any lock and flush to the global sink at thread exit or
    /// [`stop_recording`]; `ring` is the always-on flight recorder
    /// (bounded, overwrite-oldest) that triggers drain from.
    #[derive(Debug)]
    struct ThreadBuf {
        id: u64,
        generation: u64,
        depth: u32,
        events: Vec<SpanEvent>,
        ring: Vec<SpanEvent>,
        ring_next: usize,
        contributed_freeze: u64,
    }

    impl ThreadBuf {
        fn new() -> Self {
            ThreadBuf {
                // relaxed-ok: unique-id counter; only atomicity matters.
                id: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
                generation: 0,
                depth: 0,
                events: Vec::new(),
                ring: Vec::new(),
                ring_next: 0,
                contributed_freeze: 0,
            }
        }

        /// Moves this buffer's events into the global sink if they belong
        /// to the session `expected_generation` (stale buffers are cleared,
        /// not flushed).
        fn flush(&mut self, expected_generation: u64) {
            if self.events.is_empty() {
                return;
            }
            if self.generation == expected_generation {
                if let Ok(mut sink) = sink().lock() {
                    sink.append(&mut self.events);
                }
            }
            self.events.clear();
        }

        /// Appends a closed span to the flight ring, overwriting the oldest
        /// entry once [`FLIGHT_CAPACITY`] is reached.
        fn ring_push(&mut self, event: SpanEvent) {
            if self.ring.len() < FLIGHT_CAPACITY {
                self.ring.push(event);
            } else if let Some(slot) = self.ring.get_mut(self.ring_next) {
                *slot = event;
            }
            self.ring_next = (self.ring_next + 1) % FLIGHT_CAPACITY;
        }

        /// If an anomaly is frozen and this thread has not yet contributed
        /// to it, copies the tail of the ring (events ending inside the
        /// freeze window) into the shared dump. At most once per thread per
        /// freeze, so the dump mutex is off the steady-state hot path.
        fn contribute_if_frozen(&mut self) {
            let freeze = FREEZE_NS.load(Ordering::Acquire);
            if freeze == 0 || self.contributed_freeze == freeze {
                return;
            }
            self.contributed_freeze = freeze;
            // relaxed-ok: tuning knob; any recent window value is valid.
            let cutoff = freeze.saturating_sub(FLIGHT_WINDOW_NS.load(Ordering::Relaxed));
            if let Ok(mut dump) = dump_state().lock() {
                for event in &self.ring {
                    if event.start_ns.saturating_add(event.dur_ns) >= cutoff {
                        dump.events.push(event.clone());
                    }
                }
            }
        }
    }

    impl Drop for ThreadBuf {
        fn drop(&mut self) {
            // A worker exiting mid-session hands its events over; a thread
            // outliving its session drops them (flush checks the match). An
            // exiting worker also contributes its ring to any frozen
            // anomaly it has not yet served — scoped pool workers are
            // joined before the driver takes the dump, so nothing is lost.
            self.flush(current_generation());
            self.contribute_if_frozen();
        }
    }

    thread_local! {
        static THREAD_BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
    }

    /// Runs `f` on the thread's buffer; silently skipped during thread
    /// teardown or pathological re-entrancy (telemetry must never panic).
    fn with_thread_buf<R>(f: impl FnOnce(&mut ThreadBuf) -> R) -> Option<R> {
        THREAD_BUF
            .try_with(|cell| cell.try_borrow_mut().ok().map(|mut buf| f(&mut buf)))
            .ok()
            .flatten()
    }

    /// Starts a trace session: clears the sink and makes spans record.
    /// Idempotent while a session is already active.
    pub fn start_recording() {
        if let Ok(mut sink) = sink().lock() {
            sink.clear();
        }
        // relaxed-ok: session start/stop is single-driver; the Release
        // store below is what readers synchronise with.
        let g = GENERATION.load(Ordering::Relaxed);
        if g % 2 == 0 {
            GENERATION.store(g + 1, Ordering::Release);
        }
    }

    /// Ends the trace session and drains every recorded span, ordered by
    /// `(thread, start_ns)`. Spans still open on *other* threads when this
    /// is called are discarded (their generation no longer matches) — in
    /// this workspace all pool workers are scoped and joined before the
    /// driver stops recording, so nothing is lost in practice.
    pub fn stop_recording() -> Vec<SpanEvent> {
        // relaxed-ok: session start/stop is single-driver; the Release
        // store below is what readers synchronise with.
        let g = GENERATION.load(Ordering::Relaxed);
        let active = if g % 2 == 1 { g } else { g.saturating_sub(1) };
        with_thread_buf(|buf| buf.flush(active));
        if g % 2 == 1 {
            GENERATION.store(g + 1, Ordering::Release);
        }
        let mut events = match sink().lock() {
            Ok(mut sink) => std::mem::take(&mut *sink),
            Err(_) => Vec::new(),
        };
        events.sort_by_key(|e| (e.thread, e.start_ns, std::cmp::Reverse(e.dur_ns)));
        events
    }

    /// True iff a trace session is active (spans are recording).
    pub fn recording() -> bool {
        current_generation() != 0
    }

    /// Arms the latency trigger: any span closing with a duration of at
    /// least `threshold_ns` freezes the flight recorder. `0` disarms. The
    /// threshold applies to *every* span name — aim it at the workload's
    /// tail by picking a threshold well above benign span durations.
    pub fn set_latency_trigger(threshold_ns: u64) {
        // relaxed-ok: arming knob; nothing is published through it.
        LATENCY_TRIGGER_NS.store(threshold_ns, Ordering::Relaxed);
    }

    /// Overrides the freeze window: how far before the trigger instant
    /// ring events still count as the anomaly's past (default
    /// [`DEFAULT_FLIGHT_WINDOW_MS`]).
    pub fn set_flight_window_ms(window_ms: u64) {
        // relaxed-ok: tuning knob; any recent window value is valid.
        FLIGHT_WINDOW_NS.store(window_ms.saturating_mul(1_000_000), Ordering::Relaxed);
    }

    /// Fires the anomaly trigger by hand — the invariant-violation entry
    /// point. Freezes the recorder (first trigger wins until the dump is
    /// taken) and immediately contributes the calling thread's ring.
    pub fn trigger_anomaly(reason: &'static str) {
        fire_trigger(reason, now_ns());
        with_thread_buf(ThreadBuf::contribute_if_frozen);
    }

    /// Installs a process-wide panic hook (once) that fires the anomaly
    /// trigger with reason `"panic"` before delegating to the previous
    /// hook. The hook runs on the panicking thread, so that thread's ring
    /// — the spans leading up to the panic — is contributed immediately.
    pub fn install_panic_trigger() {
        static INSTALLED: OnceLock<()> = OnceLock::new();
        INSTALLED.get_or_init(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                trigger_anomaly("panic");
                previous(info);
            }));
        });
    }

    /// Takes the frozen anomaly dump, if a trigger has fired: contributes
    /// the calling thread's ring first, then drains the shared dump and
    /// re-arms the recorder (FREEZE clears, so the next trigger starts a
    /// fresh dump). Returns `None` when no trigger has fired. Threads that
    /// never closed another span after the freeze contribute at exit
    /// (scoped workers) or not at all — take the dump after joining.
    pub fn take_anomaly_dump() -> Option<AnomalyDump> {
        with_thread_buf(ThreadBuf::contribute_if_frozen);
        if FREEZE_NS.load(Ordering::Acquire) == 0 {
            return None;
        }
        let (reason, trigger_ns, mut events) = {
            let mut dump = dump_state().lock().ok()?;
            (
                dump.reason,
                dump.trigger_ns,
                std::mem::take(&mut dump.events),
            )
        };
        FREEZE_NS.store(0, Ordering::Release);
        events.sort_by_key(|e| (e.thread, e.start_ns, std::cmp::Reverse(e.dur_ns)));
        Some(AnomalyDump {
            reason,
            trigger_ns,
            events,
        })
    }

    /// True iff an anomaly trigger has fired and its dump is still frozen.
    pub fn anomaly_pending() -> bool {
        FREEZE_NS.load(Ordering::Acquire) != 0
    }

    /// An open phase span; always feeds the flight ring on drop, and
    /// records a [`SpanEvent`] into the trace session if one is active.
    /// Created by [`span!`](crate::span).
    #[derive(Debug)]
    pub struct Span {
        name: &'static str,
        payload: Option<u64>,
        start_ns: u64,
        generation: u64,
    }

    impl Span {
        /// Opens a span. Timing is always live (the flight recorder needs
        /// it); the session generation is captured so the close event lands
        /// in the right trace, or none.
        #[inline]
        pub fn enter(name: &'static str, payload: Option<u64>) -> Span {
            let generation = current_generation();
            with_thread_buf(|buf| {
                if generation != 0 && buf.generation != generation {
                    buf.events.clear();
                    buf.generation = generation;
                }
                buf.depth += 1;
            });
            Span {
                name,
                payload,
                start_ns: now_ns(),
                generation,
            }
        }

        /// Sets (or replaces) the span's payload before it closes.
        pub fn set_payload(&mut self, payload: u64) {
            self.payload = Some(payload);
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let end_ns = now_ns();
            let dur_ns = end_ns.saturating_sub(self.start_ns);
            let still_active = self.generation != 0 && current_generation() == self.generation;
            with_thread_buf(|buf| {
                buf.depth = buf.depth.saturating_sub(1);
                let event = SpanEvent {
                    name: self.name,
                    thread: buf.id,
                    depth: buf.depth,
                    start_ns: self.start_ns,
                    dur_ns,
                    payload: self.payload,
                };
                if still_active && buf.generation == self.generation {
                    buf.events.push(event.clone());
                }
                buf.ring_push(event);
                // relaxed-ok: hot-path arming check; a stale threshold at
                // worst delays or duplicates a trigger by one span.
                let threshold = LATENCY_TRIGGER_NS.load(Ordering::Relaxed);
                if threshold != 0 && dur_ns >= threshold {
                    fire_trigger("latency-over-threshold", end_ns);
                }
                buf.contribute_if_frozen();
            });
        }
    }
}

#[cfg(feature = "telemetry")]
pub use active::{
    anomaly_pending, install_panic_trigger, recording, register_counter, register_histogram,
    set_flight_window_ms, set_latency_trigger, start_recording, stop_recording, take_anomaly_dump,
    trigger_anomaly, Counter, CounterSite, Histogram, HistogramSite, Span,
};

#[cfg(not(feature = "telemetry"))]
mod noop {
    use super::{AnomalyDump, SpanEvent};

    /// Zero-sized stand-in for both registry metric kinds when the
    /// `telemetry` feature is off; every method compiles to nothing.
    #[derive(Clone, Copy, Debug)]
    pub struct NoopMetric;

    impl NoopMetric {
        /// No-op.
        #[inline(always)]
        pub fn add(&self, _delta: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn record(&self, _value: u64) {}

        /// Always zero.
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// Feature-off twin of the active `CounterSite` (zero-sized).
    #[derive(Debug)]
    pub struct CounterSite;

    impl CounterSite {
        /// A site that resolves to the no-op metric.
        pub const fn new() -> Self {
            CounterSite
        }

        /// Always the no-op metric.
        #[inline(always)]
        pub fn resolve(&self, _name: &'static str) -> NoopMetric {
            NoopMetric
        }
    }

    /// Feature-off twin of the active `HistogramSite` (zero-sized).
    #[derive(Debug)]
    pub struct HistogramSite;

    impl HistogramSite {
        /// A site that resolves to the no-op metric.
        pub const fn new() -> Self {
            HistogramSite
        }

        /// Always the no-op metric.
        #[inline(always)]
        pub fn resolve(&self, _name: &'static str) -> NoopMetric {
            NoopMetric
        }
    }

    /// Feature-off span guard: zero-sized, no `Drop`, fully free.
    #[derive(Debug)]
    pub struct Span;

    impl Span {
        /// No-op.
        #[inline(always)]
        pub fn enter(_name: &'static str, _payload: Option<u64>) -> Span {
            Span
        }

        /// No-op.
        #[inline(always)]
        pub fn set_payload(&mut self, _payload: u64) {}
    }

    /// No-op.
    pub fn start_recording() {}

    /// Always empty.
    pub fn stop_recording() -> Vec<SpanEvent> {
        Vec::new()
    }

    /// Always false.
    pub fn recording() -> bool {
        false
    }

    /// No-op: the flight recorder does not exist with the feature off.
    pub fn set_latency_trigger(_threshold_ns: u64) {}

    /// No-op.
    pub fn set_flight_window_ms(_window_ms: u64) {}

    /// No-op.
    pub fn trigger_anomaly(_reason: &'static str) {}

    /// No-op: no hook is installed, panics propagate untouched.
    pub fn install_panic_trigger() {}

    /// Always `None`.
    pub fn take_anomaly_dump() -> Option<AnomalyDump> {
        None
    }

    /// Always false.
    pub fn anomaly_pending() -> bool {
        false
    }
}

#[cfg(not(feature = "telemetry"))]
pub use noop::{
    anomaly_pending, install_panic_trigger, recording, set_flight_window_ms, set_latency_trigger,
    start_recording, stop_recording, take_anomaly_dump, trigger_anomaly, CounterSite,
    HistogramSite, Span,
};

/// Everything in the metrics registry plus the memory-observatory counters
/// ([`mem`]'s `mem.*` keys and the `mem.alloc_size` histogram), sorted by
/// name. The allocator hook never touches the registry — its counters live
/// in static storage inside [`mem`] — so the merge happens here, on the
/// snapshot path, where allocating is safe.
pub fn metrics_snapshot() -> MetricsSnapshot {
    #[cfg(feature = "telemetry")]
    let mut snap = active::metrics_snapshot();
    #[cfg(not(feature = "telemetry"))]
    let mut snap = MetricsSnapshot::default();
    mem::append_metrics(&mut snap);
    snap.counters.sort_by_key(|c| c.name);
    snap.histograms.sort_by_key(|h| h.name);
    snap
}

/// Zeroes every registered counter and histogram and the memory
/// observatory's interval counters ([`mem::reset`]: totals, phase table,
/// size histogram; peak re-seated at live). Benches call this between
/// configurations so snapshots attribute work to the right run.
pub fn reset_metrics() {
    #[cfg(feature = "telemetry")]
    active::reset_metrics();
    mem::reset();
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_by_name_and_accumulate() {
        let a = register_counter("test.telemetry.alpha");
        let b = register_counter("test.telemetry.alpha");
        assert!(std::ptr::eq(a, b), "same key must intern to one node");
        let before = a.get();
        counter!("test.telemetry.alpha").add(2);
        counter!("test.telemetry.alpha").add(3);
        assert_eq!(a.get(), before + 5);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(2), 2);
        assert_eq!(bucket_lower_bound(4), 8);
    }

    #[test]
    fn snapshot_is_sorted_and_reset_zeroes() {
        counter!("test.telemetry.zz").add(1);
        counter!("test.telemetry.aa").add(1);
        histogram!("test.telemetry.hist").record(5);
        let snap = metrics_snapshot();
        let names: Vec<_> = snap.counters.iter().map(|c| c.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "counter snapshot must be name-sorted");
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "test.telemetry.hist" && h.count >= 1));

        // Reset is registry-global, so only assert on our own keys (other
        // tests in this binary race on theirs).
        reset_metrics();
        assert_eq!(register_counter("test.telemetry.zz").get(), 0);
        assert_eq!(register_histogram("test.telemetry.hist").count(), 0);
    }

    #[test]
    fn spans_record_only_inside_a_session() {
        {
            let _outside = span!("test.telemetry.outside");
        }
        start_recording();
        {
            let _outer = span!("test.telemetry.outer", 7);
            let _inner = span!("test.telemetry.inner");
        }
        let events = stop_recording();
        assert!(events.iter().all(|e| e.name != "test.telemetry.outside"));
        let outer = events
            .iter()
            .find(|e| e.name == "test.telemetry.outer")
            .expect("outer span recorded during the session must be drained");
        let inner = events
            .iter()
            .find(|e| e.name == "test.telemetry.inner")
            .expect("inner span recorded during the session must be drained");
        assert_eq!(outer.payload, Some(7));
        assert_eq!(inner.depth, outer.depth + 1);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        // A second session starts clean.
        start_recording();
        assert!(recording());
        let empty = stop_recording();
        assert!(empty.is_empty());
        assert!(!recording());
    }

    /// The whole flight-recorder lifecycle in one test so the process-wide
    /// freeze/trigger state is exercised sequentially, not raced by the
    /// test harness's parallelism.
    #[test]
    fn flight_recorder_triggers_freeze_and_dump() {
        // 1. Manual (invariant-violation) trigger: spans closed *before*
        //    the trigger, with no session armed, land in the dump.
        {
            let _before = span!("test.flight.before", 11);
        }
        trigger_anomaly("test-invariant");
        assert!(anomaly_pending());
        let dump = take_anomaly_dump().expect("manual trigger must freeze a dump");
        assert_eq!(dump.reason, "test-invariant");
        assert!(dump.trigger_ns > 0);
        assert!(dump
            .events
            .iter()
            .any(|e| e.name == "test.flight.before" && e.payload == Some(11)));
        assert!(!anomaly_pending());
        assert!(
            take_anomaly_dump().is_none(),
            "taking the dump must re-arm the recorder"
        );

        // Dump ordering matches stop_recording's contract.
        let keys: Vec<_> = dump.events.iter().map(|e| (e.thread, e.start_ns)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);

        // 2. Latency trigger: a span over threshold fires on close with no
        //    pre-arming; the slow span itself is part of the dump.
        set_latency_trigger(2_000_000); // 2 ms
        {
            let _slow = span!("test.flight.slow");
            let begin = now_ns();
            while now_ns().saturating_sub(begin) < 3_000_000 {
                std::hint::spin_loop();
            }
        }
        set_latency_trigger(0);
        let dump = take_anomaly_dump().expect("slow span must fire the latency trigger");
        assert!(dump
            .events
            .iter()
            .any(|e| e.name == "test.flight.slow" && e.dur_ns >= 2_000_000));

        // 3. The ring is bounded: closing far more spans than the capacity
        //    leaves at most FLIGHT_CAPACITY of them for this thread.
        for _ in 0..(FLIGHT_CAPACITY + 500) {
            let _tiny = span!("test.flight.wrap");
        }
        trigger_anomaly("test-wrap");
        let dump = take_anomaly_dump().expect("wrap trigger must freeze a dump");
        let wraps = dump
            .events
            .iter()
            .filter(|e| e.name == "test.flight.wrap")
            .count();
        assert!(wraps <= FLIGHT_CAPACITY, "ring must be bounded: {wraps}");
        assert!(
            wraps >= FLIGHT_CAPACITY / 2,
            "ring kept too little: {wraps}"
        );

        // 4. Panic trigger: the hook fires on the panicking thread and the
        //    spans leading up to the panic are captured.
        install_panic_trigger();
        let unwound = std::panic::catch_unwind(|| {
            {
                let _doomed = span!("test.flight.prepanic");
            }
            panic!("synthetic panic for the flight recorder");
        });
        assert!(unwound.is_err());
        let dump = take_anomaly_dump().expect("panic hook must fire the anomaly trigger");
        assert_eq!(dump.reason, "panic");
        assert!(dump.events.iter().any(|e| e.name == "test.flight.prepanic"));

        // 5. Depth is tracked even with no session active: the always-on
        //    ring records true nesting.
        {
            let _outer = span!("test.flight.depth_outer");
            let _inner = span!("test.flight.depth_inner");
        }
        trigger_anomaly("test-depth");
        let dump = take_anomaly_dump().expect("depth trigger must freeze a dump");
        let outer = dump
            .events
            .iter()
            .find(|e| e.name == "test.flight.depth_outer")
            .expect("outer span must be in the flight ring");
        let inner = dump
            .events
            .iter()
            .find(|e| e.name == "test.flight.depth_inner")
            .expect("inner span must be in the flight ring");
        assert_eq!(inner.depth, outer.depth + 1);
        assert!(inner.start_ns >= outer.start_ns);
    }
}
