//! Memory observatory: a counting [`std::alloc::GlobalAlloc`] wrapper over
//! the system allocator, with per-phase allocation attribution.
//!
//! This is the memory counterpart of the time-side telemetry in the parent
//! module. Installing the wrapper (done here, under the `mem-telemetry`
//! cargo feature) makes every allocation in the process pass through four
//! kinds of lock-free bookkeeping:
//!
//! * **Live / peak bytes** — two process-global atomics. `live` is
//!   `fetch_add`/`fetch_sub` on every alloc/dealloc; `peak` is a relaxed
//!   `fetch_max` high-water mark that [`reset`] re-seats at the current
//!   live value (so each bench configuration measures its own peak).
//! * **Striped totals** — alloc/dealloc byte and event counts, striped
//!   across [`STRIPE_COUNT`] cache-line-aligned slots indexed by a
//!   per-thread stripe id, so concurrent workers do not serialize on one
//!   cache line. Totals are exact once writers quiesce (relaxed adds).
//! * **Allocation-size histogram** — a fixed array of
//!   [`HISTOGRAM_BUCKETS`](crate::telemetry::HISTOGRAM_BUCKETS) atomics
//!   using the registry's log2 `bucket_index` scheme. Surfaced as the `mem.alloc_size` histogram
//!   in [`metrics_snapshot`](crate::telemetry::metrics_snapshot).
//! * **Phase attribution** — a thread-local current-phase cell, set by the
//!   RAII guard from [`phase`]. Every alloc/dealloc charges the active
//!   [`MemPhase`] on its thread, so `skydiag mem` and `skydiag report` can
//!   say which build phase owns the bytes. Phases nest by save/restore:
//!   a `PoolWorker` span opened inside a `QuadrantBuild` span charges the
//!   worker, and restores the build phase when it drops.
//!
//! # Why raw `std::sync::atomic` and not `crate::sync`
//!
//! The sync facade's `--cfg skyline_sched` twins are *scheduled*: every
//! atomic op is an interleaving-checker yield point, and the checker
//! itself allocates. An allocator hook that yields to a scheduler which
//! allocates would recurse into the hook. The counters here therefore use
//! raw `std::sync::atomic` (exempted by name in the `no-raw-atomic` lint)
//! and never allocate, lock, or call registry code on the hot path — the
//! registry's `Box::leak` registration would likewise recurse. The
//! registry only sees this module from the *snapshot* side:
//! `append_metrics` merges the counters into a [`MetricsSnapshot`]
//! after the fact.
//!
//! # Feature gate
//!
//! With `mem-telemetry` off, no `#[global_allocator]` is installed (the
//! process uses the unhooked system allocator), [`phase`] returns a
//! zero-sized guard with no `Drop`, and every query function returns
//! zeros. Diagram bytes and workload checksums are differentially tested
//! on/off, exactly like the `telemetry` feature.

use super::{HistogramSnapshot, MetricsSnapshot};

/// Number of attribution phases, including [`MemPhase::Unattributed`].
pub const PHASE_COUNT: usize = 10;

/// The build/serve phases that allocations can be charged to. Phase 0
/// ([`MemPhase::Unattributed`]) is the default for threads with no open
/// phase guard; the remaining variants mirror the time-side span names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum MemPhase {
    /// No phase guard open on the allocating thread.
    Unattributed = 0,
    /// Quadrant skyline diagram construction (`quadrant.build`).
    QuadrantBuild = 1,
    /// Global skyline diagram construction (`global.build`).
    GlobalBuild = 2,
    /// Dynamic skyline subcell diagram construction (`dynamic.build`).
    DynamicBuild = 3,
    /// A parallel pool worker executing band chunks (`pool.worker`).
    PoolWorker = 4,
    /// The stitch pass joining worker band outputs (`pool.stitch`).
    PoolStitch = 5,
    /// Snapshot container encoding (`container.encode`).
    ContainerEncode = 6,
    /// Snapshot container decoding (`container.decode`).
    ContainerDecode = 7,
    /// A serve-side writer rebuild + publish (`serve.rebuild`).
    ServeRebuild = 8,
    /// A serve-side result-cache miss filling a slot (`serve.cache.fill`).
    CacheFill = 9,
}

impl MemPhase {
    /// Every phase, in slot order (`ALL[i] as usize == i`).
    pub const ALL: [MemPhase; PHASE_COUNT] = [
        MemPhase::Unattributed,
        MemPhase::QuadrantBuild,
        MemPhase::GlobalBuild,
        MemPhase::DynamicBuild,
        MemPhase::PoolWorker,
        MemPhase::PoolStitch,
        MemPhase::ContainerEncode,
        MemPhase::ContainerDecode,
        MemPhase::ServeRebuild,
        MemPhase::CacheFill,
    ];

    /// The phase's snake_case name, used in metric keys
    /// (`mem.phase.<name>.alloc_bytes`) and `skydiag mem` tables.
    pub fn name(self) -> &'static str {
        match self {
            MemPhase::Unattributed => "unattributed",
            MemPhase::QuadrantBuild => "quadrant_build",
            MemPhase::GlobalBuild => "global_build",
            MemPhase::DynamicBuild => "dynamic_build",
            MemPhase::PoolWorker => "pool_worker",
            MemPhase::PoolStitch => "pool_stitch",
            MemPhase::ContainerEncode => "container_encode",
            MemPhase::ContainerDecode => "container_decode",
            MemPhase::ServeRebuild => "serve_rebuild",
            MemPhase::CacheFill => "cache_fill",
        }
    }
}

/// Process-wide allocator statistics at one instant. All fields are
/// relaxed-atomic reads: exact once allocating threads quiesce, monitoring
/// approximations while they run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Bytes currently allocated and not yet freed.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since process start or [`reset`].
    pub peak_bytes: u64,
    /// Total bytes passed to `alloc`/`alloc_zeroed`/`realloc` since
    /// [`reset`] (realloc counts the new size).
    pub alloc_bytes: u64,
    /// Total bytes freed since [`reset`] (realloc counts the old size).
    pub dealloc_bytes: u64,
    /// Number of allocation events since [`reset`].
    pub allocs: u64,
    /// Number of deallocation events since [`reset`].
    pub deallocs: u64,
}

/// One phase's attributed allocation traffic since the last [`reset`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseStats {
    /// The phase this row describes.
    pub phase: MemPhase,
    /// Bytes allocated while this phase was active on the allocating thread.
    pub alloc_bytes: u64,
    /// Bytes freed while this phase was active on the freeing thread.
    pub dealloc_bytes: u64,
    /// Allocation events charged to this phase.
    pub allocs: u64,
    /// Deallocation events charged to this phase.
    pub deallocs: u64,
}

/// Whether the counting allocator is compiled in (the `mem-telemetry`
/// cargo feature). With it off, every query function here returns zeros.
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "mem-telemetry")
}

/// Heap bytes owned by a `Vec`'s buffer: capacity (not length) times
/// element size — exactly what the allocator was asked for. Shared by the
/// arena `heap_bytes()` accessors so their arithmetic cannot drift from
/// the definition the cross-check tests assume. Always compiled; byte
/// accounting is plain arithmetic, not an allocator hook.
#[inline]
pub fn vec_heap_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Estimated heap bytes of a `HashMap`'s table. The std hashmap
/// (hashbrown) allocates one power-of-two bucket array sized so the load
/// factor stays under 7/8, at one `(K, V)` slot plus one control byte per
/// bucket. This reconstructs that layout from `capacity()`; it is an
/// estimate (the constant tail covers allocator rounding), which is why
/// the allocator cross-check tests compare with slack.
pub fn map_heap_bytes<K, V, S>(m: &std::collections::HashMap<K, V, S>) -> usize {
    let cap = m.capacity();
    if cap == 0 {
        return 0;
    }
    let buckets = (cap * 8 / 7).max(4).next_power_of_two();
    buckets * (std::mem::size_of::<(K, V)>() + 1) + std::mem::size_of::<usize>() * 4
}

/// Metric name for the per-phase counters, in [`MemPhase::ALL`] slot
/// order: `(alloc_bytes, dealloc_bytes, allocs, deallocs)` per phase.
/// Shared by `append_metrics` and its consumers (`skydiag`, benches) so
/// key spelling cannot drift.
pub const PHASE_METRIC_NAMES: [(&str, &str, &str, &str); PHASE_COUNT] = [
    (
        "mem.phase.unattributed.alloc_bytes",
        "mem.phase.unattributed.dealloc_bytes",
        "mem.phase.unattributed.allocs",
        "mem.phase.unattributed.deallocs",
    ),
    (
        "mem.phase.quadrant_build.alloc_bytes",
        "mem.phase.quadrant_build.dealloc_bytes",
        "mem.phase.quadrant_build.allocs",
        "mem.phase.quadrant_build.deallocs",
    ),
    (
        "mem.phase.global_build.alloc_bytes",
        "mem.phase.global_build.dealloc_bytes",
        "mem.phase.global_build.allocs",
        "mem.phase.global_build.deallocs",
    ),
    (
        "mem.phase.dynamic_build.alloc_bytes",
        "mem.phase.dynamic_build.dealloc_bytes",
        "mem.phase.dynamic_build.allocs",
        "mem.phase.dynamic_build.deallocs",
    ),
    (
        "mem.phase.pool_worker.alloc_bytes",
        "mem.phase.pool_worker.dealloc_bytes",
        "mem.phase.pool_worker.allocs",
        "mem.phase.pool_worker.deallocs",
    ),
    (
        "mem.phase.pool_stitch.alloc_bytes",
        "mem.phase.pool_stitch.dealloc_bytes",
        "mem.phase.pool_stitch.allocs",
        "mem.phase.pool_stitch.deallocs",
    ),
    (
        "mem.phase.container_encode.alloc_bytes",
        "mem.phase.container_encode.dealloc_bytes",
        "mem.phase.container_encode.allocs",
        "mem.phase.container_encode.deallocs",
    ),
    (
        "mem.phase.container_decode.alloc_bytes",
        "mem.phase.container_decode.dealloc_bytes",
        "mem.phase.container_decode.allocs",
        "mem.phase.container_decode.deallocs",
    ),
    (
        "mem.phase.serve_rebuild.alloc_bytes",
        "mem.phase.serve_rebuild.dealloc_bytes",
        "mem.phase.serve_rebuild.allocs",
        "mem.phase.serve_rebuild.deallocs",
    ),
    (
        "mem.phase.cache_fill.alloc_bytes",
        "mem.phase.cache_fill.dealloc_bytes",
        "mem.phase.cache_fill.allocs",
        "mem.phase.cache_fill.deallocs",
    ),
];

#[cfg(feature = "mem-telemetry")]
mod active {
    use super::super::{bucket_index, CounterSnapshot, HISTOGRAM_BUCKETS};
    use super::{
        HistogramSnapshot, MemPhase, MemStats, MetricsSnapshot, PhaseStats, PHASE_COUNT,
        PHASE_METRIC_NAMES,
    };
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;
    // The one sanctioned raw-atomic import in lib code: the sync facade's
    // scheduled twins allocate inside the interleaving checker, which
    // would recurse into the allocator hook below. `no-raw-atomic`
    // exempts exactly this file.
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    /// Number of counter stripes. Threads hash onto stripes round-robin;
    /// more stripes than typical worker counts keeps the common case
    /// contention-free without burning memory (each stripe is one table
    /// of `PHASE_COUNT` slots, cache-line aligned).
    pub const STRIPE_COUNT: usize = 16;

    /// Bytes currently live (allocated minus freed) across the process.
    static LIVE: AtomicU64 = AtomicU64::new(0);
    /// High-water mark of [`LIVE`]; re-seated to `LIVE` by [`reset`].
    static PEAK: AtomicU64 = AtomicU64::new(0);
    /// Round-robin source for thread stripe ids.
    static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

    /// One phase's counters within one stripe.
    struct PhaseSlot {
        alloc_bytes: AtomicU64,
        dealloc_bytes: AtomicU64,
        allocs: AtomicU64,
        deallocs: AtomicU64,
    }

    impl PhaseSlot {
        const fn new() -> Self {
            PhaseSlot {
                alloc_bytes: AtomicU64::new(0),
                dealloc_bytes: AtomicU64::new(0),
                allocs: AtomicU64::new(0),
                deallocs: AtomicU64::new(0),
            }
        }
    }

    /// One stripe: a full per-phase table, aligned so stripes never share
    /// a cache line with each other.
    #[repr(align(64))]
    struct Stripe {
        phases: [PhaseSlot; PHASE_COUNT],
    }

    // MSRV 1.75: const-item repetition (inline `const` blocks in array
    // repeats landed later). The consts exist only as array-repeat
    // initializers for the statics below — each array element is its own
    // atomic; nobody mutates "the const".
    #[allow(clippy::declare_interior_mutable_const)]
    const PHASE_SLOT_INIT: PhaseSlot = PhaseSlot::new();
    #[allow(clippy::declare_interior_mutable_const)]
    const STRIPE_INIT: Stripe = Stripe {
        phases: [PHASE_SLOT_INIT; PHASE_COUNT],
    };
    static STRIPES: [Stripe; STRIPE_COUNT] = [STRIPE_INIT; STRIPE_COUNT];

    #[allow(clippy::declare_interior_mutable_const)]
    const BUCKET_INIT: AtomicU64 = AtomicU64::new(0);
    /// Allocation-size histogram, log2 buckets per the registry scheme.
    static SIZE_HIST: [AtomicU64; HISTOGRAM_BUCKETS] = [BUCKET_INIT; HISTOGRAM_BUCKETS];

    thread_local! {
        // Const-initialized `Cell`s: no `Drop`, so first access registers
        // no TLS destructor and never allocates — both cells are safe to
        // touch from inside the allocator hook.
        static CURRENT_PHASE: Cell<usize> = const { Cell::new(0) };
        static STRIPE_ID: Cell<usize> = const { Cell::new(usize::MAX) };
    }

    /// This thread's stripe index, assigned round-robin on first use.
    /// Falls back to stripe 0 if TLS is unavailable (thread teardown).
    #[inline]
    fn stripe_id() -> usize {
        STRIPE_ID
            .try_with(|cell| {
                let id = cell.get();
                if id != usize::MAX {
                    id
                } else {
                    // relaxed-ok: any distribution of threads over stripes
                    // is correct; totals are summed over all stripes.
                    let id = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPE_COUNT;
                    cell.set(id);
                    id
                }
            })
            .unwrap_or(0)
    }

    /// The phase index active on this thread (0 during TLS teardown).
    #[inline]
    fn current_phase_index() -> usize {
        CURRENT_PHASE.try_with(Cell::get).unwrap_or(0)
    }

    /// Relaxed load shorthand for the snapshot paths.
    #[inline]
    fn read(a: &AtomicU64) -> u64 {
        // relaxed-ok: monitoring read; exact once writers quiesce.
        a.load(Ordering::Relaxed)
    }

    /// Relaxed zeroing store for [`reset`].
    #[inline]
    fn zero(a: &AtomicU64) {
        // relaxed-ok: caller quiesces workers before resetting stats.
        a.store(0, Ordering::Relaxed);
    }

    #[inline]
    fn record_alloc(size: u64) {
        // relaxed-ok: statistics; nothing is published through these.
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        // relaxed-ok: high-water mark, monotone under fetch_max.
        PEAK.fetch_max(live, Ordering::Relaxed);
        // relaxed-ok: per-bucket event count.
        SIZE_HIST[bucket_index(size)].fetch_add(1, Ordering::Relaxed);
        let slot = &STRIPES[stripe_id()].phases[current_phase_index()];
        // relaxed-ok: per-stripe totals, summed at snapshot time.
        slot.alloc_bytes.fetch_add(size, Ordering::Relaxed);
        // relaxed-ok: per-stripe totals, summed at snapshot time.
        slot.allocs.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn record_dealloc(size: u64) {
        // relaxed-ok: statistics; nothing is published through these.
        LIVE.fetch_sub(size, Ordering::Relaxed);
        let slot = &STRIPES[stripe_id()].phases[current_phase_index()];
        // relaxed-ok: per-stripe totals, summed at snapshot time.
        slot.dealloc_bytes.fetch_add(size, Ordering::Relaxed);
        // relaxed-ok: per-stripe totals, summed at snapshot time.
        slot.deallocs.fetch_add(1, Ordering::Relaxed);
    }

    /// The counting allocator: delegates every operation to [`System`]
    /// and records the byte delta. Never allocates, locks, or panics on
    /// its own — the recording paths are plain atomic adds plus two
    /// const-initialized TLS reads.
    pub struct CountingAlloc;

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    #[allow(unsafe_code)] // the one GlobalAlloc impl in the workspace
    unsafe impl GlobalAlloc for CountingAlloc {
        #[inline]
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let ptr = System.alloc(layout);
            if !ptr.is_null() {
                record_alloc(layout.size() as u64);
            }
            ptr
        }

        #[inline]
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let ptr = System.alloc_zeroed(layout);
            if !ptr.is_null() {
                record_alloc(layout.size() as u64);
            }
            ptr
        }

        #[inline]
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            record_dealloc(layout.size() as u64);
        }

        #[inline]
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let new_ptr = System.realloc(ptr, layout, new_size);
            if !new_ptr.is_null() {
                record_dealloc(layout.size() as u64);
                record_alloc(new_size as u64);
            }
            new_ptr
        }
    }

    /// RAII guard from [`phase`]: restores the thread's previous phase on
    /// drop, so phases nest by save/restore.
    #[derive(Debug)]
    pub struct PhaseGuard {
        prev: usize,
    }

    impl Drop for PhaseGuard {
        fn drop(&mut self) {
            let _ = CURRENT_PHASE.try_with(|cell| cell.set(self.prev));
        }
    }

    /// Makes `p` the active attribution phase on the current thread until
    /// the returned guard drops. Allocations (and frees) performed by this
    /// thread meanwhile are charged to `p` in [`phase_stats`].
    #[must_use = "attribution stops when the guard drops"]
    pub fn phase(p: MemPhase) -> PhaseGuard {
        let prev = CURRENT_PHASE
            .try_with(|cell| {
                let prev = cell.get();
                cell.set(p as usize);
                prev
            })
            .unwrap_or(0);
        PhaseGuard { prev }
    }

    /// Process-wide totals right now (see [`MemStats`] for semantics).
    pub fn stats() -> MemStats {
        let mut stats = MemStats {
            live_bytes: read(&LIVE),
            peak_bytes: read(&PEAK),
            ..MemStats::default()
        };
        for stripe in &STRIPES {
            for slot in &stripe.phases {
                stats.alloc_bytes += read(&slot.alloc_bytes);
                stats.dealloc_bytes += read(&slot.dealloc_bytes);
                stats.allocs += read(&slot.allocs);
                stats.deallocs += read(&slot.deallocs);
            }
        }
        stats
    }

    /// Per-phase attributed traffic, in [`MemPhase::ALL`] order (stripes
    /// summed per phase).
    pub fn phase_stats() -> Vec<PhaseStats> {
        MemPhase::ALL
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let mut row = PhaseStats {
                    phase: p,
                    alloc_bytes: 0,
                    dealloc_bytes: 0,
                    allocs: 0,
                    deallocs: 0,
                };
                for stripe in &STRIPES {
                    let slot = &stripe.phases[i];
                    row.alloc_bytes += read(&slot.alloc_bytes);
                    row.dealloc_bytes += read(&slot.dealloc_bytes);
                    row.allocs += read(&slot.allocs);
                    row.deallocs += read(&slot.deallocs);
                }
                row
            })
            .collect()
    }

    /// The allocation-size histogram as a registry-shaped snapshot named
    /// `mem.alloc_size` (`sum` is total allocated bytes, so `sum / count`
    /// is the mean allocation size).
    pub fn size_histogram() -> HistogramSnapshot {
        let totals = stats();
        HistogramSnapshot {
            name: "mem.alloc_size",
            count: totals.allocs,
            sum: totals.alloc_bytes,
            buckets: (0..HISTOGRAM_BUCKETS)
                .filter_map(|i| {
                    let count = read(&SIZE_HIST[i]);
                    (count > 0).then_some((i, count))
                })
                .collect(),
        }
    }

    /// Merges the allocator counters into a registry snapshot: `mem.*`
    /// counters (live/peak/totals plus per-phase attribution, skipping
    /// all-zero phases) and the `mem.alloc_size` histogram. The caller
    /// re-sorts; see [`crate::telemetry::metrics_snapshot`].
    pub fn append_metrics(snap: &mut MetricsSnapshot) {
        let totals = stats();
        let push = |counters: &mut Vec<CounterSnapshot>, name: &'static str, value: u64| {
            counters.push(CounterSnapshot { name, value });
        };
        push(&mut snap.counters, "mem.live_bytes", totals.live_bytes);
        push(&mut snap.counters, "mem.peak_bytes", totals.peak_bytes);
        push(&mut snap.counters, "mem.alloc_bytes", totals.alloc_bytes);
        push(
            &mut snap.counters,
            "mem.dealloc_bytes",
            totals.dealloc_bytes,
        );
        push(&mut snap.counters, "mem.allocs", totals.allocs);
        push(&mut snap.counters, "mem.deallocs", totals.deallocs);
        for (i, row) in phase_stats().into_iter().enumerate() {
            if row.alloc_bytes == 0
                && row.dealloc_bytes == 0
                && row.allocs == 0
                && row.deallocs == 0
            {
                continue;
            }
            let (alloc_bytes, dealloc_bytes, allocs, deallocs) = PHASE_METRIC_NAMES[i];
            push(&mut snap.counters, alloc_bytes, row.alloc_bytes);
            push(&mut snap.counters, dealloc_bytes, row.dealloc_bytes);
            push(&mut snap.counters, allocs, row.allocs);
            push(&mut snap.counters, deallocs, row.deallocs);
        }
        snap.histograms.push(size_histogram());
    }

    /// Zeroes the interval counters (totals, phase table, histogram) and
    /// re-seats the peak at the current live value. `live_bytes` itself is
    /// untouched — it tracks real outstanding memory, not an interval.
    /// Benches call this between configurations, mirroring
    /// [`crate::telemetry::reset_metrics`].
    pub fn reset() {
        for stripe in &STRIPES {
            for slot in &stripe.phases {
                zero(&slot.alloc_bytes);
                zero(&slot.dealloc_bytes);
                zero(&slot.allocs);
                zero(&slot.deallocs);
            }
        }
        for bucket in &SIZE_HIST {
            zero(bucket);
        }
        // relaxed-ok: high-water re-seat; the next fetch_max re-establishes
        // the peak >= live invariant.
        PEAK.store(read(&LIVE), Ordering::Relaxed);
    }
}

#[cfg(feature = "mem-telemetry")]
pub use active::{phase, phase_stats, reset, size_histogram, stats, PhaseGuard, STRIPE_COUNT};

#[cfg(feature = "mem-telemetry")]
pub(crate) use active::append_metrics;

#[cfg(not(feature = "mem-telemetry"))]
mod noop {
    use super::{HistogramSnapshot, MemPhase, MemStats, MetricsSnapshot, PhaseStats, PHASE_COUNT};

    /// Feature-off stripe count (kept so docs and tests can reference it).
    pub const STRIPE_COUNT: usize = 0;

    /// Feature-off phase guard: zero-sized, no `Drop`, fully free.
    #[derive(Debug)]
    pub struct PhaseGuard;

    /// No-op: returns a zero-sized guard; nothing is attributed.
    #[inline(always)]
    #[must_use = "attribution stops when the guard drops"]
    pub fn phase(_p: MemPhase) -> PhaseGuard {
        PhaseGuard
    }

    /// Always zeros.
    pub fn stats() -> MemStats {
        MemStats::default()
    }

    /// All-zero rows, in [`MemPhase::ALL`] order.
    pub fn phase_stats() -> Vec<PhaseStats> {
        let _ = PHASE_COUNT;
        MemPhase::ALL
            .iter()
            .map(|&p| PhaseStats {
                phase: p,
                alloc_bytes: 0,
                dealloc_bytes: 0,
                allocs: 0,
                deallocs: 0,
            })
            .collect()
    }

    /// An empty `mem.alloc_size` histogram.
    pub fn size_histogram() -> HistogramSnapshot {
        HistogramSnapshot {
            name: "mem.alloc_size",
            count: 0,
            sum: 0,
            buckets: Vec::new(),
        }
    }

    /// No-op.
    pub(crate) fn append_metrics(_snap: &mut MetricsSnapshot) {}

    /// No-op.
    pub fn reset() {}
}

#[cfg(not(feature = "mem-telemetry"))]
pub use noop::{phase, phase_stats, reset, size_histogram, stats, PhaseGuard, STRIPE_COUNT};

#[cfg(not(feature = "mem-telemetry"))]
pub(crate) use noop::append_metrics;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_all_matches_discriminants() {
        for (i, p) in MemPhase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "ALL[{i}] has the wrong discriminant");
        }
        assert_eq!(MemPhase::ALL.len(), PHASE_COUNT);
        assert_eq!(PHASE_METRIC_NAMES.len(), PHASE_COUNT);
        for (i, p) in MemPhase::ALL.iter().enumerate() {
            let (a, d, na, nd) = PHASE_METRIC_NAMES[i];
            for key in [a, d, na, nd] {
                assert!(
                    key.starts_with("mem.phase.") && key.contains(p.name()),
                    "{key} must embed phase name {}",
                    p.name()
                );
            }
        }
    }

    #[cfg(feature = "mem-telemetry")]
    #[test]
    fn alloc_moves_live_and_peak() {
        let before = stats();
        let buf = vec![0u8; 1 << 16];
        let during = stats();
        assert!(
            during.live_bytes >= before.live_bytes + (1 << 16),
            "live must grow by at least the allocation: {} -> {}",
            before.live_bytes,
            during.live_bytes
        );
        assert!(during.peak_bytes >= during.live_bytes.saturating_sub(relaxed_slack()));
        assert!(during.allocs > before.allocs);
        drop(buf);
        let after = stats();
        assert!(
            after.live_bytes < during.live_bytes,
            "dealloc must shrink live"
        );
        assert!(after.dealloc_bytes >= during.dealloc_bytes + (1 << 16));
    }

    /// Peak/live are separate relaxed atomics, so cross-thread interleaving
    /// can make an instantaneous comparison off by in-flight deltas.
    #[cfg(feature = "mem-telemetry")]
    fn relaxed_slack() -> u64 {
        1 << 20
    }

    #[cfg(feature = "mem-telemetry")]
    #[test]
    fn phase_guard_attributes_and_restores() {
        let base: Vec<_> = phase_stats();
        let outer = phase(MemPhase::ContainerEncode);
        let buf = {
            let _inner = phase(MemPhase::ContainerDecode);
            vec![0u8; 4096]
        };
        // Inner guard dropped: we are back on ContainerEncode.
        let buf2 = vec![0u8; 8192];
        drop(outer);
        let now: Vec<_> = phase_stats();
        let delta = |p: MemPhase| {
            now[p as usize]
                .alloc_bytes
                .saturating_sub(base[p as usize].alloc_bytes)
        };
        assert!(
            delta(MemPhase::ContainerDecode) >= 4096,
            "inner phase must be charged for the inner allocation"
        );
        assert!(
            delta(MemPhase::ContainerEncode) >= 8192,
            "outer phase must resume after the inner guard drops"
        );
        drop((buf, buf2));
    }

    #[cfg(feature = "mem-telemetry")]
    #[test]
    fn size_histogram_tracks_allocations() {
        let before = size_histogram();
        let bucket = super::super::bucket_index(3000);
        let buf = vec![0u8; 3000];
        let after = size_histogram();
        let count_at = |h: &HistogramSnapshot| {
            h.buckets
                .iter()
                .find(|(i, _)| *i == bucket)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        assert!(count_at(&after) > count_at(&before));
        assert!(after.count > before.count);
        assert!(after.sum >= before.sum + 3000);
        drop(buf);
    }

    #[cfg(not(feature = "mem-telemetry"))]
    #[test]
    fn feature_off_is_all_zeros() {
        let buf = vec![0u8; 4096];
        assert_eq!(stats(), MemStats::default());
        assert!(size_histogram().buckets.is_empty());
        assert_eq!(std::mem::size_of::<PhaseGuard>(), 0);
        let guard = phase(MemPhase::QuadrantBuild);
        drop(guard);
        drop(buf);
        assert_eq!(stats().allocs, 0);
    }
}
