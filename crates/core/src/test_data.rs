//! Shared fixtures for the crate's unit tests.

use crate::geometry::Dataset;

/// Reconstruction of the paper's Figure-1 hotel example (ids 0..=10 are
/// p1..=p11). See `skyline-data::hotel` for the canonical documented copy;
/// this private copy avoids a dev-dependency cycle.
pub(crate) fn hotel_dataset() -> Dataset {
    Dataset::from_coords([
        (1, 92),  // p1
        (3, 96),  // p2
        (12, 86), // p3
        (5, 94),  // p4
        (15, 85), // p5
        (8, 78),  // p6
        (16, 83), // p7
        (13, 83), // p8
        (6, 93),  // p9
        (21, 82), // p10
        (11, 9),  // p11
    ])
    .expect("hotel fixture is valid")
}

/// Deterministic pseudo-random datasets for exhaustive cross-validation
/// without pulling `rand` into unit tests.
pub(crate) fn lcg_dataset(n: usize, domain: i64, seed: u64) -> Dataset {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % domain as u64) as i64
    };
    Dataset::from_coords((0..n).map(|_| (next(), next())))
        .expect("n > 0 points with in-domain coordinates form a valid dataset")
}
