//! Differential property tests: the u64-block bitset representation vs the
//! sorted-id representation, and bitset-backed diagram builds vs the
//! sequential reference through the guided band split.
//!
//! Sizes concentrate on the word boundary (63/64/65 points — one block vs
//! two, with the boundary bit in each position), plus the degenerate empty,
//! full, and duplicate-coordinate datasets the arena code must round-trip.

use proptest::prelude::*;
use skyline_core::geometry::{Dataset, PointId};
use skyline_core::parallel::ParallelConfig;
use skyline_core::quadrant::QuadrantEngine;
use skyline_core::result_set::{
    decode_words, encode_results, scanning_combine, scanning_combine_words, subtract_words,
    union_sorted, union_words, words_for, BitsetInterner, ResultInterner,
};

/// Encodes a sorted id list as a bitset block of the given stride.
fn to_block(ids: &[PointId], words: usize) -> Vec<u64> {
    let mut block = vec![0u64; words];
    for id in ids {
        block[id.0 as usize / 64] |= 1u64 << (id.0 % 64);
    }
    block
}

/// Decodes a block back to sorted ids.
fn to_ids(block: &[u64]) -> Vec<PointId> {
    let mut out = Vec::new();
    decode_words(block, &mut out);
    out
}

/// A strictly sorted, deduplicated id list drawn from `0..n`.
fn arb_ids(n: u32) -> impl Strategy<Value = Vec<PointId>> {
    prop::collection::vec(0..n, 0..=(n as usize)).prop_map(|mut raw| {
        raw.sort_unstable();
        raw.dedup();
        raw.into_iter().map(PointId).collect()
    })
}

/// Word-boundary universe sizes: one word, exactly full, one bit into the
/// second word — where stride and masking bugs live.
fn boundary_n() -> impl Strategy<Value = u32> {
    const SIZES: [u32; 6] = [1, 63, 64, 65, 128, 129];
    (0usize..SIZES.len()).prop_map(|i| SIZES[i])
}

proptest! {
    #[test]
    fn union_words_matches_union_sorted(
        (n, a, b) in boundary_n().prop_flat_map(|n| (Just(n), arb_ids(n), arb_ids(n)))
    ) {
        let words = words_for(n as usize);
        let mut out = vec![0u64; words];
        union_words(&to_block(&a, words), &to_block(&b, words), &mut out);
        let mut expected = Vec::new();
        union_sorted(&a, &b, &mut expected);
        prop_assert_eq!(to_ids(&out), expected);
    }

    #[test]
    fn subtract_words_matches_sorted_difference(
        (n, a, b) in boundary_n().prop_flat_map(|n| (Just(n), arb_ids(n), arb_ids(n)))
    ) {
        let words = words_for(n as usize);
        let mut out = vec![0u64; words];
        subtract_words(&to_block(&a, words), &to_block(&b, words), &mut out);
        let expected: Vec<PointId> =
            a.iter().copied().filter(|id| b.binary_search(id).is_err()).collect();
        prop_assert_eq!(to_ids(&out), expected);
    }

    #[test]
    fn scanning_combine_words_matches_run_collapsed_recurrence(
        (n, right, up, diag) in boundary_n()
            .prop_flat_map(|n| (Just(n), arb_ids(n), arb_ids(n), arb_ids(n)))
    ) {
        let words = words_for(n as usize);
        let mut out = vec![0u64; words];
        scanning_combine_words(
            &to_block(&right, words),
            &to_block(&up, words),
            &to_block(&diag, words),
            &mut out,
        );
        let mut expected = Vec::new();
        scanning_combine(&right, &up, &diag, &mut expected);
        prop_assert_eq!(to_ids(&out), expected);
    }

    #[test]
    fn bitset_interner_round_trips_id_for_id(
        (n, sets) in boundary_n().prop_flat_map(|n| {
            (Just(n), proptest::collection::vec(arb_ids(n), 0..8))
        })
    ) {
        // Iterate: interning through the bitset arena and converting back
        // must reproduce the sorted-id interner exactly, id-for-id, with
        // every duplicate set collapsing to the same id in both.
        let words = words_for(n as usize);
        let mut bits = BitsetInterner::new(words);
        let mut sorted = ResultInterner::new();
        for ids in &sets {
            let bid = bits.intern_ids(ids.iter().copied());
            let rid = sorted.intern_slice(ids);
            prop_assert_eq!(bid, rid.0);
        }
        let converted = bits.to_result_interner();
        prop_assert_eq!(converted.len(), sorted.len());
        for (rid, ids) in sorted.iter() {
            prop_assert_eq!(converted.get(rid), ids);
        }
        // encode_results is the inverse of the conversion.
        let arena = encode_results(&converted, words);
        for (rid, ids) in sorted.iter() {
            let block = &arena[rid.0 as usize * words..(rid.0 as usize + 1) * words];
            prop_assert_eq!(to_ids(block), ids.to_vec());
        }
    }

    #[test]
    fn full_and_empty_blocks_survive_every_operator(n in boundary_n()) {
        let words = words_for(n as usize);
        let full: Vec<PointId> = (0..n).map(PointId).collect();
        let full_block = to_block(&full, words);
        let empty_block = vec![0u64; words];
        let mut out = vec![0u64; words];
        union_words(&full_block, &empty_block, &mut out);
        prop_assert_eq!(to_ids(&out), full.clone());
        subtract_words(&full_block, &full_block, &mut out);
        prop_assert_eq!(to_ids(&out), Vec::<PointId>::new());
        scanning_combine_words(&full_block, &full_block, &full_block, &mut out);
        prop_assert_eq!(to_ids(&out), full);
    }
}

/// Bit-identical diagrams across thread counts at the word-boundary sizes:
/// sequential reference (threads = 0) vs 1 and 4 exact workers through the
/// guided band split, for both bitset-backed engines and the global union.
#[test]
fn diagrams_bit_identical_across_threads_at_word_boundaries() {
    for n in [63usize, 64, 65] {
        let coords: Vec<(i64, i64)> = (0..n)
            .map(|i| {
                let x = (i as i64 * 37) % (3 * n as i64);
                let y = (i as i64 * 61 + 11) % (3 * n as i64);
                (x, y)
            })
            .collect();
        let ds = Dataset::from_coords(coords).expect("generated coords are in range");
        for engine in [QuadrantEngine::Scanning, QuadrantEngine::Sweeping] {
            let reference = engine.build_with(&ds, &ParallelConfig::sequential());
            for threads in [1usize, 4] {
                let built = engine.build_with(&ds, &ParallelConfig::with_threads(threads));
                assert!(
                    built.same_results(&reference),
                    "{} n={n} threads={threads}",
                    engine.name()
                );
            }
        }
        let global_ref = skyline_core::global::build_with(
            &ds,
            QuadrantEngine::Scanning,
            &ParallelConfig::sequential(),
        );
        for threads in [1usize, 4] {
            let built = skyline_core::global::build_with(
                &ds,
                QuadrantEngine::Scanning,
                &ParallelConfig::with_threads(threads),
            );
            assert!(
                built.same_results(&global_ref),
                "global n={n} threads={threads}"
            );
        }
    }
}

/// Duplicate-coordinate degeneracy: many points sharing coordinates collapse
/// the grid; the bitset recurrences must agree with the baseline engine.
#[test]
fn duplicate_coordinate_datasets_agree_with_baseline() {
    // 64 points on 4 distinct locations — ties on every grid line.
    let coords: Vec<(i64, i64)> = (0..64)
        .map(|i| ((i % 2) * 10, ((i / 2) % 2) * 10))
        .collect();
    let ds = Dataset::from_coords(coords).expect("tied coords are in range");
    let reference = QuadrantEngine::Baseline.build(&ds);
    for engine in [QuadrantEngine::Scanning, QuadrantEngine::Sweeping] {
        for threads in [0usize, 1, 4] {
            let built = engine.build_with(&ds, &ParallelConfig::with_threads(threads));
            assert!(
                built.same_results(&reference),
                "{} threads={threads}",
                engine.name()
            );
        }
    }
    let global_ref = skyline_core::global::build(&ds, QuadrantEngine::Baseline);
    for threads in [0usize, 1, 4] {
        let built = skyline_core::global::build_with(
            &ds,
            QuadrantEngine::Scanning,
            &ParallelConfig::with_threads(threads),
        );
        assert!(built.same_results(&global_ref), "global threads={threads}");
    }
}
